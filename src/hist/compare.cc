#include "hist/compare.h"

#include <cmath>

namespace daspos {

namespace {
Status CheckSameBinning(const Histo1D& a, const Histo1D& b) {
  if (!(a.axis() == b.axis())) {
    return Status::InvalidArgument("binning mismatch: '" + a.path() +
                                   "' vs '" + b.path() + "'");
  }
  return Status::OK();
}
}  // namespace

Result<Chi2Result> Chi2Test(const Histo1D& a, const Histo1D& b) {
  DASPOS_RETURN_IF_ERROR(CheckSameBinning(a, b));
  Chi2Result out;
  for (int i = 0; i < a.axis().nbins(); ++i) {
    double ea = a.BinError(i);
    double eb = b.BinError(i);
    double err2 = ea * ea + eb * eb;
    if (err2 <= 0.0) continue;
    double diff = a.BinContent(i) - b.BinContent(i);
    out.chi2 += diff * diff / err2;
    ++out.ndof;
  }
  return out;
}

Result<double> KolmogorovDistance(const Histo1D& a, const Histo1D& b) {
  DASPOS_RETURN_IF_ERROR(CheckSameBinning(a, b));
  double ta = a.Integral();
  double tb = b.Integral();
  if (ta == 0.0 || tb == 0.0) {
    return Status::InvalidArgument("KS on empty histogram");
  }
  double ca = 0.0;
  double cb = 0.0;
  double dmax = 0.0;
  for (int i = 0; i < a.axis().nbins(); ++i) {
    ca += a.BinContent(i) / ta;
    cb += b.BinContent(i) / tb;
    dmax = std::max(dmax, std::fabs(ca - cb));
  }
  return dmax;
}

Result<bool> CompatibleWithin(const Histo1D& a, const Histo1D& b,
                              double n_sigma, double abs_tol) {
  DASPOS_RETURN_IF_ERROR(CheckSameBinning(a, b));
  for (int i = 0; i < a.axis().nbins(); ++i) {
    double diff = std::fabs(a.BinContent(i) - b.BinContent(i));
    double ea = a.BinError(i);
    double eb = b.BinError(i);
    double err = std::sqrt(ea * ea + eb * eb);
    double allowed = err > 0.0 ? n_sigma * err : abs_tol;
    if (diff > allowed) return false;
  }
  return true;
}

}  // namespace daspos
