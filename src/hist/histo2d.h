// Two-dimensional weighted histogram, used for acceptance/efficiency grids in
// mass parameter spaces (the HepData "Reactions Database" SUSY-search use
// case, §2.3) and for detector occupancy maps.
#ifndef DASPOS_HIST_HISTO2D_H_
#define DASPOS_HIST_HISTO2D_H_

#include <string>
#include <vector>

#include "hist/axis.h"
#include "support/status.h"

namespace daspos {

class Histo2D {
 public:
  Histo2D() = default;
  Histo2D(std::string path, int nx, double xlo, double xhi, int ny, double ylo,
          double yhi)
      : path_(std::move(path)),
        xaxis_(nx, xlo, xhi),
        yaxis_(ny, ylo, yhi),
        sumw_(static_cast<size_t>(nx) * static_cast<size_t>(ny), 0.0),
        sumw2_(static_cast<size_t>(nx) * static_cast<size_t>(ny), 0.0) {}

  const std::string& path() const { return path_; }
  const Axis& xaxis() const { return xaxis_; }
  const Axis& yaxis() const { return yaxis_; }

  void Fill(double x, double y, double weight = 1.0);

  double BinContent(int ix, int iy) const {
    return sumw_[IndexOf(ix, iy)];
  }
  double BinError(int ix, int iy) const;

  uint64_t entries() const { return entries_; }
  /// Sum of in-range weights; out-of-range fills are dropped (tracked only
  /// by the `outside` counter).
  double Integral() const;
  double outside() const { return outside_; }

  void Scale(double factor);
  Status Add(const Histo2D& other);

  /// Projection onto x: sums over y bins. The result has the x binning.
  class Histo1D ProjectionX() const;

  /// Direct access used by IO and tests (row-major: index = iy*nx + ix).
  const std::vector<double>& sumw() const { return sumw_; }
  const std::vector<double>& sumw2() const { return sumw2_; }
  void SetBin(int ix, int iy, double sumw, double sumw2) {
    sumw_[IndexOf(ix, iy)] = sumw;
    sumw2_[IndexOf(ix, iy)] = sumw2;
  }
  void SetOutside(double outside, uint64_t entries) {
    outside_ = outside;
    entries_ = entries;
  }
  void set_path(std::string path) { path_ = std::move(path); }

 private:
  size_t IndexOf(int ix, int iy) const {
    return static_cast<size_t>(iy) * static_cast<size_t>(xaxis_.nbins()) +
           static_cast<size_t>(ix);
  }

  std::string path_;
  Axis xaxis_;
  Axis yaxis_;
  std::vector<double> sumw_;
  std::vector<double> sumw2_;
  double outside_ = 0.0;
  uint64_t entries_ = 0;
};

}  // namespace daspos

#endif  // DASPOS_HIST_HISTO2D_H_
