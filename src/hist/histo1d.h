// One-dimensional weighted histogram — the basic observable container of the
// analysis-preservation frameworks (RIVET-analog, HepData tables, master
// classes). Tracks sum-of-weights and sum-of-squared-weights per bin so
// statistical errors survive scaling and merging.
#ifndef DASPOS_HIST_HISTO1D_H_
#define DASPOS_HIST_HISTO1D_H_

#include <string>
#include <vector>

#include "hist/axis.h"
#include "support/status.h"

namespace daspos {

class Histo1D {
 public:
  Histo1D() = default;
  /// `path` is the YODA-style identifier ("/ANALYSIS/obs1").
  Histo1D(std::string path, int nbins, double lo, double hi)
      : path_(std::move(path)),
        axis_(nbins, lo, hi),
        sumw_(static_cast<size_t>(nbins), 0.0),
        sumw2_(static_cast<size_t>(nbins), 0.0) {}

  const std::string& path() const { return path_; }
  void set_path(std::string path) { path_ = std::move(path); }
  const Axis& axis() const { return axis_; }

  /// Adds an entry at x with the given weight.
  void Fill(double x, double weight = 1.0);

  /// Per-bin accessors (i in [0, nbins)).
  double BinContent(int i) const { return sumw_[static_cast<size_t>(i)]; }
  double BinError(int i) const;
  double BinCenter(int i) const { return axis_.BinCenter(i); }

  double underflow() const { return underflow_; }
  double overflow() const { return overflow_; }
  uint64_t entries() const { return entries_; }

  /// Sum of in-range weights (optionally times bin width).
  double Integral(bool width_weighted = false) const;

  /// Weighted mean / standard deviation of the filled x values (in-range).
  double Mean() const;
  double StdDev() const;

  /// Multiplies all contents (and errors accordingly) by `factor`.
  void Scale(double factor);

  /// Scales so the width-weighted integral is 1; no-op on empty histograms.
  void Normalize();

  /// Adds another histogram bin-by-bin; fails unless binning matches.
  Status Add(const Histo1D& other);

  /// Resets contents, keeping the binning.
  void Reset();

  /// Direct access used by IO and tests.
  const std::vector<double>& sumw() const { return sumw_; }
  const std::vector<double>& sumw2() const { return sumw2_; }
  void SetBin(int i, double sumw, double sumw2);
  void SetOutOfRange(double underflow, double overflow, uint64_t entries);

 private:
  std::string path_;
  Axis axis_;
  std::vector<double> sumw_;
  std::vector<double> sumw2_;
  double underflow_ = 0.0;
  double overflow_ = 0.0;
  uint64_t entries_ = 0;
  // First/second moments of in-range fills, for Mean/StdDev.
  double sumwx_ = 0.0;
  double sumwx2_ = 0.0;
};

}  // namespace daspos

#endif  // DASPOS_HIST_HISTO1D_H_
