#include "hist/yoda_io.h"

#include <cstdio>

#include "support/strings.h"

namespace daspos {

namespace {
std::string FormatG17(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}
}  // namespace

std::string WriteYoda(const std::vector<Histo1D>& histos) {
  std::string out;
  for (const Histo1D& h : histos) {
    out += "BEGIN HISTO1D " + h.path() + "\n";
    out += "binning: " + std::to_string(h.axis().nbins()) + " " +
           FormatG17(h.axis().lo()) + " " + FormatG17(h.axis().hi()) + "\n";
    out += "underflow: " + FormatG17(h.underflow()) + "\n";
    out += "overflow: " + FormatG17(h.overflow()) + "\n";
    out += "entries: " + std::to_string(h.entries()) + "\n";
    for (int i = 0; i < h.axis().nbins(); ++i) {
      out += FormatG17(h.BinContent(i)) + " " +
             FormatG17(h.sumw2()[static_cast<size_t>(i)]) + "\n";
    }
    out += "END HISTO1D\n";
  }
  return out;
}

Result<std::vector<Histo1D>> ReadYoda(const std::string& text) {
  std::vector<Histo1D> out;
  std::vector<std::string> lines = Split(text, '\n');
  size_t i = 0;

  auto next_content_line = [&]() -> std::string_view {
    while (i < lines.size()) {
      std::string_view line = Trim(lines[i]);
      if (line.empty() || line[0] == '#') {
        ++i;
        continue;
      }
      return line;
    }
    return {};
  };

  while (true) {
    std::string_view line = next_content_line();
    if (line.empty()) break;
    if (!StartsWith(line, "BEGIN HISTO1D ")) {
      return Status::Corruption("expected BEGIN HISTO1D, got: " +
                                std::string(line));
    }
    std::string path(Trim(line.substr(14)));
    ++i;

    auto expect_field = [&](std::string_view key) -> Result<std::string> {
      std::string_view l = next_content_line();
      if (l.empty() || !StartsWith(l, key)) {
        return Status::Corruption("expected field '" + std::string(key) +
                                  "' in histogram " + path);
      }
      ++i;
      return std::string(Trim(l.substr(key.size())));
    };

    DASPOS_ASSIGN_OR_RETURN(std::string binning, expect_field("binning:"));
    std::vector<std::string> parts = Split(std::string(Trim(binning)), ' ');
    // Drop empty tokens from repeated spaces.
    std::vector<std::string> fields;
    for (auto& p : parts) {
      if (!Trim(p).empty()) fields.emplace_back(Trim(p));
    }
    if (fields.size() != 3) {
      return Status::Corruption("bad binning line in histogram " + path);
    }
    DASPOS_ASSIGN_OR_RETURN(uint64_t nbins, ParseU64(fields[0]));
    DASPOS_ASSIGN_OR_RETURN(double lo, ParseDouble(fields[1]));
    DASPOS_ASSIGN_OR_RETURN(double hi, ParseDouble(fields[2]));
    if (nbins == 0 || hi <= lo) {
      return Status::Corruption("invalid binning in histogram " + path);
    }

    DASPOS_ASSIGN_OR_RETURN(std::string uf_text, expect_field("underflow:"));
    DASPOS_ASSIGN_OR_RETURN(double uf, ParseDouble(uf_text));
    DASPOS_ASSIGN_OR_RETURN(std::string of_text, expect_field("overflow:"));
    DASPOS_ASSIGN_OR_RETURN(double of, ParseDouble(of_text));
    DASPOS_ASSIGN_OR_RETURN(std::string ent_text, expect_field("entries:"));
    DASPOS_ASSIGN_OR_RETURN(uint64_t entries, ParseU64(ent_text));

    Histo1D h(path, static_cast<int>(nbins), lo, hi);
    h.SetOutOfRange(uf, of, entries);
    for (uint64_t b = 0; b < nbins; ++b) {
      std::string_view l = next_content_line();
      if (l.empty()) {
        return Status::Corruption("truncated bin list in histogram " + path);
      }
      ++i;
      std::vector<std::string> bin_fields;
      for (auto& p : Split(std::string(l), ' ')) {
        if (!Trim(p).empty()) bin_fields.emplace_back(Trim(p));
      }
      if (bin_fields.size() != 2) {
        return Status::Corruption("bad bin line in histogram " + path);
      }
      DASPOS_ASSIGN_OR_RETURN(double sw, ParseDouble(bin_fields[0]));
      DASPOS_ASSIGN_OR_RETURN(double sw2, ParseDouble(bin_fields[1]));
      h.SetBin(static_cast<int>(b), sw, sw2);
    }
    std::string_view end_line = next_content_line();
    if (end_line != "END HISTO1D") {
      return Status::Corruption("missing END HISTO1D for histogram " + path);
    }
    ++i;
    out.push_back(std::move(h));
  }
  return out;
}

std::string WriteYodaDocument(const YodaDocument& document) {
  std::string out = WriteYoda(document.histos1d);
  for (const Histo2D& h : document.histos2d) {
    out += "BEGIN HISTO2D " + h.path() + "\n";
    out += "xbinning: " + std::to_string(h.xaxis().nbins()) + " " +
           FormatG17(h.xaxis().lo()) + " " + FormatG17(h.xaxis().hi()) + "\n";
    out += "ybinning: " + std::to_string(h.yaxis().nbins()) + " " +
           FormatG17(h.yaxis().lo()) + " " + FormatG17(h.yaxis().hi()) + "\n";
    out += "outside: " + FormatG17(h.outside()) + "\n";
    out += "entries: " + std::to_string(h.entries()) + "\n";
    for (size_t i = 0; i < h.sumw().size(); ++i) {
      out += FormatG17(h.sumw()[i]) + " " + FormatG17(h.sumw2()[i]) + "\n";
    }
    out += "END HISTO2D\n";
  }
  for (const Profile1D& p : document.profiles) {
    out += "BEGIN PROFILE1D " + p.path() + "\n";
    out += "binning: " + std::to_string(p.axis().nbins()) + " " +
           FormatG17(p.axis().lo()) + " " + FormatG17(p.axis().hi()) + "\n";
    out += "entries: " + std::to_string(p.entries()) + "\n";
    for (size_t i = 0; i < p.sumw().size(); ++i) {
      out += FormatG17(p.sumw()[i]) + " " + FormatG17(p.sumwy()[i]) + " " +
             FormatG17(p.sumwy2()[i]) + "\n";
    }
    out += "END PROFILE1D\n";
  }
  return out;
}

namespace {

/// Shared line cursor for the document parser.
class LineCursor {
 public:
  explicit LineCursor(const std::string& text) : lines_(Split(text, '\n')) {}

  /// Next non-empty, non-comment line, or empty view at end.
  std::string_view Peek() {
    while (index_ < lines_.size()) {
      std::string_view line = Trim(lines_[index_]);
      if (line.empty() || line[0] == '#') {
        ++index_;
        continue;
      }
      return line;
    }
    return {};
  }
  void Advance() { ++index_; }

  /// Whitespace-split non-empty fields of the next content line.
  Result<std::vector<std::string>> TakeFields(size_t expected,
                                              const std::string& what) {
    std::string_view line = Peek();
    if (line.empty()) return Status::Corruption("truncated " + what);
    Advance();
    std::vector<std::string> fields;
    for (auto& part : Split(std::string(line), ' ')) {
      if (!Trim(part).empty()) fields.emplace_back(Trim(part));
    }
    if (fields.size() != expected) {
      return Status::Corruption("bad " + what + " line");
    }
    return fields;
  }

  /// Expects "key:" and returns the remainder.
  Result<std::string> TakeField(const std::string& key) {
    std::string_view line = Peek();
    if (line.empty() || !StartsWith(line, key)) {
      return Status::Corruption("expected field '" + key + "'");
    }
    Advance();
    return std::string(Trim(line.substr(key.size())));
  }

 private:
  std::vector<std::string> lines_;
  size_t index_ = 0;
};

struct Binning {
  int nbins;
  double lo;
  double hi;
};

Result<Binning> ParseBinning(const std::string& text,
                             const std::string& what) {
  std::vector<std::string> fields;
  for (auto& part : Split(text, ' ')) {
    if (!Trim(part).empty()) fields.emplace_back(Trim(part));
  }
  if (fields.size() != 3) return Status::Corruption("bad " + what);
  DASPOS_ASSIGN_OR_RETURN(uint64_t nbins, ParseU64(fields[0]));
  DASPOS_ASSIGN_OR_RETURN(double lo, ParseDouble(fields[1]));
  DASPOS_ASSIGN_OR_RETURN(double hi, ParseDouble(fields[2]));
  if (nbins == 0 || hi <= lo) return Status::Corruption("invalid " + what);
  return Binning{static_cast<int>(nbins), lo, hi};
}

}  // namespace

Result<YodaDocument> ReadYodaDocument(const std::string& text) {
  YodaDocument document;
  LineCursor cursor(text);
  for (;;) {
    std::string_view line = cursor.Peek();
    if (line.empty()) break;
    if (StartsWith(line, "BEGIN HISTO1D ")) {
      // Delegate single blocks to the 1D reader by re-serializing the
      // block; simpler: inline-parse here using the same field logic.
      std::string path(Trim(line.substr(14)));
      cursor.Advance();
      DASPOS_ASSIGN_OR_RETURN(std::string binning_text,
                              cursor.TakeField("binning:"));
      DASPOS_ASSIGN_OR_RETURN(Binning binning,
                              ParseBinning(binning_text, "binning"));
      DASPOS_ASSIGN_OR_RETURN(std::string uf, cursor.TakeField("underflow:"));
      DASPOS_ASSIGN_OR_RETURN(double underflow, ParseDouble(uf));
      DASPOS_ASSIGN_OR_RETURN(std::string of, cursor.TakeField("overflow:"));
      DASPOS_ASSIGN_OR_RETURN(double overflow, ParseDouble(of));
      DASPOS_ASSIGN_OR_RETURN(std::string ent, cursor.TakeField("entries:"));
      DASPOS_ASSIGN_OR_RETURN(uint64_t entries, ParseU64(ent));
      Histo1D histogram(path, binning.nbins, binning.lo, binning.hi);
      histogram.SetOutOfRange(underflow, overflow, entries);
      for (int i = 0; i < binning.nbins; ++i) {
        DASPOS_ASSIGN_OR_RETURN(auto fields, cursor.TakeFields(2, "bin"));
        DASPOS_ASSIGN_OR_RETURN(double sw, ParseDouble(fields[0]));
        DASPOS_ASSIGN_OR_RETURN(double sw2, ParseDouble(fields[1]));
        histogram.SetBin(i, sw, sw2);
      }
      if (cursor.Peek() != "END HISTO1D") {
        return Status::Corruption("missing END HISTO1D for " + path);
      }
      cursor.Advance();
      document.histos1d.push_back(std::move(histogram));
    } else if (StartsWith(line, "BEGIN HISTO2D ")) {
      std::string path(Trim(line.substr(14)));
      cursor.Advance();
      DASPOS_ASSIGN_OR_RETURN(std::string xb, cursor.TakeField("xbinning:"));
      DASPOS_ASSIGN_OR_RETURN(Binning x, ParseBinning(xb, "xbinning"));
      DASPOS_ASSIGN_OR_RETURN(std::string yb, cursor.TakeField("ybinning:"));
      DASPOS_ASSIGN_OR_RETURN(Binning y, ParseBinning(yb, "ybinning"));
      DASPOS_ASSIGN_OR_RETURN(std::string os, cursor.TakeField("outside:"));
      DASPOS_ASSIGN_OR_RETURN(double outside, ParseDouble(os));
      DASPOS_ASSIGN_OR_RETURN(std::string ent, cursor.TakeField("entries:"));
      DASPOS_ASSIGN_OR_RETURN(uint64_t entries, ParseU64(ent));
      Histo2D histogram(path, x.nbins, x.lo, x.hi, y.nbins, y.lo, y.hi);
      histogram.SetOutside(outside, entries);
      for (int iy = 0; iy < y.nbins; ++iy) {
        for (int ix = 0; ix < x.nbins; ++ix) {
          DASPOS_ASSIGN_OR_RETURN(auto fields, cursor.TakeFields(2, "cell"));
          DASPOS_ASSIGN_OR_RETURN(double sw, ParseDouble(fields[0]));
          DASPOS_ASSIGN_OR_RETURN(double sw2, ParseDouble(fields[1]));
          histogram.SetBin(ix, iy, sw, sw2);
        }
      }
      if (cursor.Peek() != "END HISTO2D") {
        return Status::Corruption("missing END HISTO2D for " + path);
      }
      cursor.Advance();
      document.histos2d.push_back(std::move(histogram));
    } else if (StartsWith(line, "BEGIN PROFILE1D ")) {
      std::string path(Trim(line.substr(16)));
      cursor.Advance();
      DASPOS_ASSIGN_OR_RETURN(std::string b, cursor.TakeField("binning:"));
      DASPOS_ASSIGN_OR_RETURN(Binning binning, ParseBinning(b, "binning"));
      DASPOS_ASSIGN_OR_RETURN(std::string ent, cursor.TakeField("entries:"));
      DASPOS_ASSIGN_OR_RETURN(uint64_t entries, ParseU64(ent));
      Profile1D profile(path, binning.nbins, binning.lo, binning.hi);
      profile.set_entries(entries);
      for (int i = 0; i < binning.nbins; ++i) {
        DASPOS_ASSIGN_OR_RETURN(auto fields,
                                cursor.TakeFields(3, "profile bin"));
        DASPOS_ASSIGN_OR_RETURN(double sw, ParseDouble(fields[0]));
        DASPOS_ASSIGN_OR_RETURN(double swy, ParseDouble(fields[1]));
        DASPOS_ASSIGN_OR_RETURN(double swy2, ParseDouble(fields[2]));
        profile.SetBin(i, sw, swy, swy2);
      }
      if (cursor.Peek() != "END PROFILE1D") {
        return Status::Corruption("missing END PROFILE1D for " + path);
      }
      cursor.Advance();
      document.profiles.push_back(std::move(profile));
    } else {
      return Status::Corruption("unexpected document line: " +
                                std::string(line));
    }
  }
  return document;
}

}  // namespace daspos
