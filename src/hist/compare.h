// Statistical comparison of histograms — the validation primitive of the
// RIVET-analog ("compare experimental observables with theoretical
// predictions", §2.3) and of re-execution validation in core/.
#ifndef DASPOS_HIST_COMPARE_H_
#define DASPOS_HIST_COMPARE_H_

#include "hist/histo1d.h"
#include "support/result.h"

namespace daspos {

/// Result of a chi-square shape comparison.
struct Chi2Result {
  double chi2 = 0.0;
  int ndof = 0;
  /// chi2 / ndof; 0 when ndof == 0.
  double reduced() const { return ndof > 0 ? chi2 / ndof : 0.0; }
};

/// Bin-by-bin chi-square between two histograms with identical binning,
/// using the quadrature sum of both bin errors. Bins where both errors
/// vanish are skipped (they carry no information).
Result<Chi2Result> Chi2Test(const Histo1D& a, const Histo1D& b);

/// Kolmogorov-Smirnov distance between the normalized cumulative
/// distributions of two histograms with identical binning.
Result<double> KolmogorovDistance(const Histo1D& a, const Histo1D& b);

/// True if every bin agrees within `n_sigma` combined errors; histograms with
/// no error information compare by absolute tolerance `abs_tol`.
Result<bool> CompatibleWithin(const Histo1D& a, const Histo1D& b,
                              double n_sigma, double abs_tol = 1e-9);

}  // namespace daspos

#endif  // DASPOS_HIST_COMPARE_H_
