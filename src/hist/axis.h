// Uniform binned axis shared by the histogram types.
#ifndef DASPOS_HIST_AXIS_H_
#define DASPOS_HIST_AXIS_H_

#include <cassert>
#include <cmath>

namespace daspos {

/// A uniform axis over [lo, hi) with `nbins` bins. Bin indices are
/// 0..nbins-1; kUnderflow / kOverflow are returned for out-of-range values.
class Axis {
 public:
  static constexpr int kUnderflow = -1;
  static constexpr int kOverflow = -2;

  Axis() : nbins_(1), lo_(0.0), hi_(1.0) {}
  Axis(int nbins, double lo, double hi) : nbins_(nbins), lo_(lo), hi_(hi) {
    assert(nbins > 0 && hi > lo);
  }

  int nbins() const { return nbins_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double width() const { return (hi_ - lo_) / nbins_; }

  /// Bin index for x, or kUnderflow/kOverflow. NaN maps to kOverflow.
  int Index(double x) const {
    if (std::isnan(x)) return kOverflow;
    if (x < lo_) return kUnderflow;
    if (x >= hi_) return kOverflow;
    int idx = static_cast<int>((x - lo_) / (hi_ - lo_) * nbins_);
    // Guard against floating rounding right at the upper edge.
    if (idx >= nbins_) idx = nbins_ - 1;
    return idx;
  }

  /// Lower edge / center of bin i (0 <= i < nbins).
  double BinLow(int i) const { return lo_ + width() * i; }
  double BinCenter(int i) const { return lo_ + width() * (i + 0.5); }
  double BinHigh(int i) const { return lo_ + width() * (i + 1); }

  bool operator==(const Axis& other) const {
    return nbins_ == other.nbins_ && lo_ == other.lo_ && hi_ == other.hi_;
  }

 private:
  int nbins_;
  double lo_;
  double hi_;
};

}  // namespace daspos

#endif  // DASPOS_HIST_AXIS_H_
