// Profile histogram: per-x-bin mean and spread of a sampled y value.
// Used for calibration monitoring (e.g. energy response vs. pseudorapidity).
#ifndef DASPOS_HIST_PROFILE1D_H_
#define DASPOS_HIST_PROFILE1D_H_

#include <string>
#include <vector>

#include "hist/axis.h"

namespace daspos {

class Profile1D {
 public:
  Profile1D() = default;
  Profile1D(std::string path, int nbins, double lo, double hi)
      : path_(std::move(path)),
        axis_(nbins, lo, hi),
        sumw_(static_cast<size_t>(nbins), 0.0),
        sumwy_(static_cast<size_t>(nbins), 0.0),
        sumwy2_(static_cast<size_t>(nbins), 0.0) {}

  const std::string& path() const { return path_; }
  const Axis& axis() const { return axis_; }

  void Fill(double x, double y, double weight = 1.0);

  /// Mean of y in bin i (0 if the bin is empty).
  double BinMean(int i) const;
  /// RMS spread of y in bin i.
  double BinRms(int i) const;
  /// Statistical error on the bin mean (RMS / sqrt(effective entries)).
  double BinMeanError(int i) const;
  /// Sum of weights in bin i.
  double BinWeight(int i) const { return sumw_[static_cast<size_t>(i)]; }

  uint64_t entries() const { return entries_; }

  /// Direct access used by IO and tests.
  const std::vector<double>& sumw() const { return sumw_; }
  const std::vector<double>& sumwy() const { return sumwy_; }
  const std::vector<double>& sumwy2() const { return sumwy2_; }
  void SetBin(int i, double sumw, double sumwy, double sumwy2) {
    size_t index = static_cast<size_t>(i);
    sumw_[index] = sumw;
    sumwy_[index] = sumwy;
    sumwy2_[index] = sumwy2;
  }
  void set_entries(uint64_t entries) { entries_ = entries; }

 private:
  std::string path_;
  Axis axis_;
  std::vector<double> sumw_;
  std::vector<double> sumwy_;
  std::vector<double> sumwy2_;
  uint64_t entries_ = 0;
};

}  // namespace daspos

#endif  // DASPOS_HIST_PROFILE1D_H_
