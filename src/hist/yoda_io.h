// YODA-like plain-text histogram serialization — the reference-data exchange
// format of the RIVET-analog. Plain text is a deliberate preservation choice
// (the paper praises RIVET's light, portable footprint, §2.4): documents stay
// human-readable and diff-able indefinitely.
//
// Format:
//   BEGIN HISTO1D <path>
//   # nbins lo hi
//   binning: <nbins> <lo> <hi>
//   underflow: <sumw>
//   overflow: <sumw>
//   entries: <n>
//   <sumw> <sumw2>            (one line per bin)
//   END HISTO1D
#ifndef DASPOS_HIST_YODA_IO_H_
#define DASPOS_HIST_YODA_IO_H_

#include <string>
#include <vector>

#include "hist/histo1d.h"
#include "hist/histo2d.h"
#include "hist/profile1d.h"
#include "support/result.h"

namespace daspos {

/// Serializes histograms to the text format, in order.
std::string WriteYoda(const std::vector<Histo1D>& histos);

/// Parses a document produced by WriteYoda (tolerates blank lines and
/// '#' comments). Fails with Corruption on structural errors, including
/// the presence of non-HISTO1D blocks (use ReadYodaDocument for those).
Result<std::vector<Histo1D>> ReadYoda(const std::string& text);

/// A mixed preserved-histogram document: 1D, 2D (acceptance grids in mass
/// planes, §2.3), and profiles (calibration monitoring).
struct YodaDocument {
  std::vector<Histo1D> histos1d;
  std::vector<Histo2D> histos2d;
  std::vector<Profile1D> profiles;
};

/// Serializes a mixed document. 2D blocks store cells row-major; profile
/// blocks store (sumw, sumwy, sumwy2) per bin.
std::string WriteYodaDocument(const YodaDocument& document);

/// Parses a mixed document (accepts everything WriteYoda emits too).
Result<YodaDocument> ReadYodaDocument(const std::string& text);

}  // namespace daspos

#endif  // DASPOS_HIST_YODA_IO_H_
