#include "hist/histo1d.h"

#include <cmath>

namespace daspos {

void Histo1D::Fill(double x, double weight) {
  ++entries_;
  int idx = axis_.Index(x);
  if (idx == Axis::kUnderflow) {
    underflow_ += weight;
    return;
  }
  if (idx == Axis::kOverflow) {
    overflow_ += weight;
    return;
  }
  sumw_[static_cast<size_t>(idx)] += weight;
  sumw2_[static_cast<size_t>(idx)] += weight * weight;
  sumwx_ += weight * x;
  sumwx2_ += weight * x * x;
}

double Histo1D::BinError(int i) const {
  return std::sqrt(sumw2_[static_cast<size_t>(i)]);
}

double Histo1D::Integral(bool width_weighted) const {
  double total = 0.0;
  for (double w : sumw_) total += w;
  return width_weighted ? total * axis_.width() : total;
}

double Histo1D::Mean() const {
  double total = Integral(false);
  return total != 0.0 ? sumwx_ / total : 0.0;
}

double Histo1D::StdDev() const {
  double total = Integral(false);
  if (total == 0.0) return 0.0;
  double mean = sumwx_ / total;
  double var = sumwx2_ / total - mean * mean;
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

void Histo1D::Scale(double factor) {
  for (double& w : sumw_) w *= factor;
  for (double& w2 : sumw2_) w2 *= factor * factor;
  underflow_ *= factor;
  overflow_ *= factor;
  sumwx_ *= factor;
  sumwx2_ *= factor;
}

void Histo1D::Normalize() {
  double integral = Integral(true);
  if (integral != 0.0) Scale(1.0 / integral);
}

Status Histo1D::Add(const Histo1D& other) {
  if (!(axis_ == other.axis_)) {
    return Status::InvalidArgument("histogram binning mismatch: " + path_ +
                                   " vs " + other.path_);
  }
  for (size_t i = 0; i < sumw_.size(); ++i) {
    sumw_[i] += other.sumw_[i];
    sumw2_[i] += other.sumw2_[i];
  }
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  entries_ += other.entries_;
  sumwx_ += other.sumwx_;
  sumwx2_ += other.sumwx2_;
  return Status::OK();
}

void Histo1D::Reset() {
  for (double& w : sumw_) w = 0.0;
  for (double& w2 : sumw2_) w2 = 0.0;
  underflow_ = overflow_ = 0.0;
  entries_ = 0;
  sumwx_ = sumwx2_ = 0.0;
}

void Histo1D::SetBin(int i, double sumw, double sumw2) {
  sumw_[static_cast<size_t>(i)] = sumw;
  sumw2_[static_cast<size_t>(i)] = sumw2;
}

void Histo1D::SetOutOfRange(double underflow, double overflow,
                            uint64_t entries) {
  underflow_ = underflow;
  overflow_ = overflow;
  entries_ = entries;
}

}  // namespace daspos
