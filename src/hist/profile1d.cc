#include "hist/profile1d.h"

#include <cmath>

namespace daspos {

void Profile1D::Fill(double x, double y, double weight) {
  ++entries_;
  int idx = axis_.Index(x);
  if (idx < 0) return;
  size_t i = static_cast<size_t>(idx);
  sumw_[i] += weight;
  sumwy_[i] += weight * y;
  sumwy2_[i] += weight * y * y;
}

double Profile1D::BinMean(int i) const {
  size_t idx = static_cast<size_t>(i);
  return sumw_[idx] != 0.0 ? sumwy_[idx] / sumw_[idx] : 0.0;
}

double Profile1D::BinRms(int i) const {
  size_t idx = static_cast<size_t>(i);
  if (sumw_[idx] == 0.0) return 0.0;
  double mean = sumwy_[idx] / sumw_[idx];
  double var = sumwy2_[idx] / sumw_[idx] - mean * mean;
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

double Profile1D::BinMeanError(int i) const {
  size_t idx = static_cast<size_t>(i);
  if (sumw_[idx] == 0.0) return 0.0;
  return BinRms(i) / std::sqrt(sumw_[idx]);
}

}  // namespace daspos
