#include "hist/histo2d.h"

#include <cmath>

#include "hist/histo1d.h"

namespace daspos {

void Histo2D::Fill(double x, double y, double weight) {
  ++entries_;
  int ix = xaxis_.Index(x);
  int iy = yaxis_.Index(y);
  if (ix < 0 || iy < 0) {
    outside_ += weight;
    return;
  }
  sumw_[IndexOf(ix, iy)] += weight;
  sumw2_[IndexOf(ix, iy)] += weight * weight;
}

double Histo2D::BinError(int ix, int iy) const {
  return std::sqrt(sumw2_[IndexOf(ix, iy)]);
}

double Histo2D::Integral() const {
  double total = 0.0;
  for (double w : sumw_) total += w;
  return total;
}

void Histo2D::Scale(double factor) {
  for (double& w : sumw_) w *= factor;
  for (double& w2 : sumw2_) w2 *= factor * factor;
  outside_ *= factor;
}

Status Histo2D::Add(const Histo2D& other) {
  if (!(xaxis_ == other.xaxis_) || !(yaxis_ == other.yaxis_)) {
    return Status::InvalidArgument("2D histogram binning mismatch: " + path_);
  }
  for (size_t i = 0; i < sumw_.size(); ++i) {
    sumw_[i] += other.sumw_[i];
    sumw2_[i] += other.sumw2_[i];
  }
  outside_ += other.outside_;
  entries_ += other.entries_;
  return Status::OK();
}

Histo1D Histo2D::ProjectionX() const {
  Histo1D proj(path_ + "_px", xaxis_.nbins(), xaxis_.lo(), xaxis_.hi());
  for (int ix = 0; ix < xaxis_.nbins(); ++ix) {
    double w = 0.0;
    double w2 = 0.0;
    for (int iy = 0; iy < yaxis_.nbins(); ++iy) {
      w += sumw_[IndexOf(ix, iy)];
      w2 += sumw2_[IndexOf(ix, iy)];
    }
    proj.SetBin(ix, w, w2);
  }
  return proj;
}

}  // namespace daspos
