// The RECAST <-> RIVET bridge: "It should be relatively straightforward to
// create a 'back end' for RECAST such that any analysis implemented in
// RIVET could be subject to the RECAST framework" (§2.4; §5 reports the
// DASPOS project to build it is underway). This back end serves the same
// front end as the full-simulation one, but evaluates signal regions at
// truth level — cheap, open, and detector-blind, which is exactly the E3
// trade-off.
#ifndef DASPOS_CORE_BRIDGE_H_
#define DASPOS_CORE_BRIDGE_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "event/truth.h"
#include "recast/backend.h"

namespace daspos {

/// A truth-level rendering of a search's signal region.
struct BridgedRegion {
  std::string name;
  std::function<bool(const GenEvent&)> truth_selection;
  double observed = 0.0;
  double background = 0.0;
};

/// A search exposed through the bridge.
struct BridgedSearch {
  std::string name;
  std::string description;
  double luminosity_pb = 0.0;
  /// Optional: a registered rivet analysis run alongside for histograms.
  std::string rivet_analysis;
  std::vector<BridgedRegion> regions;
};

/// Truth-level bridge rendering of the shipped dilepton-resonance search
/// (the counterpart of recast::DileptonResonanceSearch()).
BridgedSearch DileptonResonanceTruthSearch();

/// The bridge back end. Implements the same interface as the full-sim
/// RecastBackEnd, so a RecastFrontEnd can mediate to either.
class RivetBridgeBackEnd : public recast::BackEnd {
 public:
  Status RegisterSearch(BridgedSearch search);

  std::vector<std::string> SearchNames() const override;

  /// Generates truth events for the requested model and evaluates the
  /// truth-level selections — no detector simulation, no reconstruction.
  Result<recast::RecastResult> Process(
      const recast::RecastRequest& request) override;

  uint64_t events_generated() const { return events_generated_; }

 private:
  std::map<std::string, BridgedSearch> searches_;
  uint64_t events_generated_ = 0;
};

}  // namespace daspos

#endif  // DASPOS_CORE_BRIDGE_H_
