#include "core/replay.h"

#include <algorithm>

#include "workflow/steps.h"

namespace daspos {

Result<std::shared_ptr<WorkflowStep>> RebuildStep(
    const ProvenanceRecord& record) {
  const Json& config = record.config;
  // Standard step names are dataset-qualified ("generation[batch_a]") so a
  // workflow can hold several instances of one kind; dispatch on the kind.
  const std::string kind = record.producer.substr(0, record.producer.find('['));
  if (kind == "generation") {
    DASPOS_ASSIGN_OR_RETURN(GeneratorConfig generator,
                            GeneratorConfigFromJson(config.Get("generator")));
    size_t events = static_cast<size_t>(config.Get("event_count").as_int());
    return std::shared_ptr<WorkflowStep>(
        std::make_shared<GenerationStep>(generator, events, record.dataset));
  }
  if (kind == "simulation") {
    DASPOS_ASSIGN_OR_RETURN(
        SimulationConfig simulation,
        SimulationConfigFromJson(config.Get("simulation")));
    uint32_t run = static_cast<uint32_t>(config.Get("run_number").as_int());
    return std::shared_ptr<WorkflowStep>(
        std::make_shared<SimulationStep>(simulation, run, record.dataset));
  }
  if (kind == "reconstruction") {
    DASPOS_ASSIGN_OR_RETURN(DetectorGeometry geometry,
                            GeometryFromJson(config.Get("geometry")));
    return std::shared_ptr<WorkflowStep>(
        std::make_shared<ReconstructionStep>(geometry, record.dataset));
  }
  if (kind == "aod_reduction") {
    return std::shared_ptr<WorkflowStep>(
        std::make_shared<AodReductionStep>(record.dataset));
  }
  if (kind == "derivation") {
    DASPOS_ASSIGN_OR_RETURN(SkimSpec skim,
                            SkimSpec::FromJson(config.Get("skim")));
    DASPOS_ASSIGN_OR_RETURN(SlimSpec slim,
                            SlimSpec::FromJson(config.Get("slim")));
    return std::shared_ptr<WorkflowStep>(
        std::make_shared<DerivationStep>(skim, slim, record.dataset));
  }
  if (kind == "merge") {
    return std::shared_ptr<WorkflowStep>(
        std::make_shared<MergeStep>(record.dataset));
  }
  return Status::Unimplemented(
      "producer '" + record.producer +
      "' is not machine-reconstructible from provenance; preserve its code "
      "directly");
}

Result<ReplayReport> ReplayChain(const ProvenanceStore& provenance,
                                 const std::string& target,
                                 WorkflowContext* context,
                                 const WorkflowContext* expected) {
  DASPOS_ASSIGN_OR_RETURN(std::vector<std::string> ancestors,
                          provenance.Ancestry(target));
  // Rebuild in production order: ancestors first, target last.
  std::vector<std::string> order = ancestors;
  std::reverse(order.begin(), order.end());
  order.push_back(target);

  Workflow workflow;
  for (const std::string& dataset : order) {
    auto record = provenance.Get(dataset);
    if (!record.ok()) {
      return Status::FailedPrecondition(
          "provenance gap: no record for ancestor '" + dataset +
          "' — chain cannot be replayed (§3.2)");
    }
    DASPOS_ASSIGN_OR_RETURN(std::shared_ptr<WorkflowStep> step,
                            RebuildStep(*record));
    DASPOS_RETURN_IF_ERROR(
        workflow.AddStep(std::move(step), record->parents, dataset));
  }

  DASPOS_ASSIGN_OR_RETURN(WorkflowReport run_report,
                          workflow.Execute(context));
  ReplayReport report;
  for (const auto& step : run_report.steps) {
    report.steps.push_back(step.step + " -> " + step.output);
    if (expected != nullptr) {
      auto original = expected->GetDataset(step.output);
      auto replayed = context->GetDataset(step.output);
      if (original.ok() && replayed.ok() && *original == *replayed) {
        ++report.datasets_identical;
      } else {
        ++report.datasets_differing;
      }
    }
  }
  return report;
}

}  // namespace daspos
