#include "core/bridge.h"

#include "event/pdg.h"
#include "mc/generator.h"
#include "rivet/projections.h"
#include "stats/limits.h"
#include "workflow/steps.h"

namespace daspos {

namespace {

/// Truth dimuon mass with the same kinematic cuts as the preserved
/// detector-level search (pt > 25, |eta| < 2.5), or -1.
double TruthDimuonMass(const GenEvent& event) {
  auto pair = rivet::FindDilepton(event, pdg::kMuon, 1000.0, 0.0, 1e9,
                                  rivet::Cuts{25.0, 2.5});
  return pair ? pair->mass : -1.0;
}

}  // namespace

BridgedSearch DileptonResonanceTruthSearch() {
  BridgedSearch search;
  search.name = "DASPOS_EXO_14_001_RIVET";
  search.description =
      "truth-level bridge rendering of the dimuon resonance search";
  search.luminosity_pb = 20000.0;
  search.rivet_analysis = "DASPOS_2014_ZLL";

  BridgedRegion sr_low;
  sr_low.name = "SR_mll_400";
  sr_low.observed = 24.0;
  sr_low.background = 22.5;
  sr_low.truth_selection = [](const GenEvent& event) {
    double mass = TruthDimuonMass(event);
    return mass >= 400.0 && mass < 800.0;
  };
  search.regions.push_back(sr_low);

  BridgedRegion sr_high;
  sr_high.name = "SR_mll_800";
  sr_high.observed = 3.0;
  sr_high.background = 2.4;
  sr_high.truth_selection = [](const GenEvent& event) {
    return TruthDimuonMass(event) >= 800.0;
  };
  search.regions.push_back(sr_high);
  return search;
}

Status RivetBridgeBackEnd::RegisterSearch(BridgedSearch search) {
  if (search.name.empty()) {
    return Status::InvalidArgument("bridged search needs a name");
  }
  if (search.regions.empty()) {
    return Status::InvalidArgument("bridged search '" + search.name +
                                   "' has no regions");
  }
  auto [it, inserted] = searches_.emplace(search.name, std::move(search));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("bridged search already registered");
  }
  return Status::OK();
}

std::vector<std::string> RivetBridgeBackEnd::SearchNames() const {
  std::vector<std::string> out;
  out.reserve(searches_.size());
  for (const auto& [name, search] : searches_) {
    (void)search;
    out.push_back(name);
  }
  return out;
}

Result<recast::RecastResult> RivetBridgeBackEnd::Process(
    const recast::RecastRequest& request) {
  auto it = searches_.find(request.search_name);
  if (it == searches_.end()) {
    return Status::NotFound("no bridged search '" + request.search_name +
                            "'");
  }
  if (request.model_cross_section_pb <= 0.0) {
    return Status::InvalidArgument(
        "request must state the model cross section");
  }
  if (request.event_count == 0) {
    return Status::InvalidArgument("request must ask for at least one event");
  }
  const BridgedSearch& search = it->second;

  DASPOS_ASSIGN_OR_RETURN(GeneratorConfig model,
                          GeneratorConfigFromJson(request.model));
  EventGenerator generator(model);

  std::vector<uint64_t> passed(search.regions.size(), 0);
  for (size_t i = 0; i < request.event_count; ++i) {
    GenEvent truth = generator.Generate();
    for (size_t r = 0; r < search.regions.size(); ++r) {
      if (search.regions[r].truth_selection(truth)) ++passed[r];
    }
  }
  events_generated_ += request.event_count;

  recast::RecastResult result;
  result.search_name = search.name;
  result.events_processed = request.event_count;
  for (size_t r = 0; r < search.regions.size(); ++r) {
    const BridgedRegion& region = search.regions[r];
    recast::RegionResult region_result;
    region_result.region = region.name;
    region_result.efficiency = static_cast<double>(passed[r]) /
                               static_cast<double>(request.event_count);
    region_result.signal_per_mu = region_result.efficiency *
                                  request.model_cross_section_pb *
                                  search.luminosity_pb;
    region_result.observed = region.observed;
    region_result.background = region.background;
    if (region_result.signal_per_mu > 0.0) {
      CountingExperiment experiment;
      experiment.observed = region.observed;
      experiment.background = region.background;
      experiment.signal_per_mu = region_result.signal_per_mu;
      DASPOS_ASSIGN_OR_RETURN(region_result.upper_limit_mu,
                              UpperLimit(experiment));
      DASPOS_ASSIGN_OR_RETURN(region_result.expected_limit_mu,
                              ExpectedLimit(experiment));
    }
    result.regions.push_back(std::move(region_result));
  }
  return result;
}

}  // namespace daspos
