#include "core/preserved_analysis.h"

#include "hist/yoda_io.h"
#include "rivet/analysis.h"
#include "rivet/registry.h"
#include "workflow/steps.h"

namespace daspos {

namespace {

/// Runs the named rivet analysis over a freshly generated sample.
Result<std::vector<Histo1D>> RunAnalysis(const std::string& analysis_name,
                                         const GeneratorConfig& config,
                                         size_t event_count) {
  DASPOS_ASSIGN_OR_RETURN(auto analysis,
                          rivet::AnalysisRegistry::Global().Create(
                              analysis_name));
  rivet::AnalysisHandler handler;
  handler.Add(std::move(analysis));
  EventGenerator generator(config);
  handler.Run(generator.GenerateMany(event_count));
  return handler.Finalize();
}

}  // namespace

SubmissionPackage PreservedAnalysis::ToSubmission() const {
  SubmissionPackage submission;
  submission.title = name;
  submission.creator = "daspos";
  submission.description = physics_summary;
  submission.keywords = {"preserved-analysis", rivet_analysis};

  Json manifest = Json::Object();
  manifest["name"] = name;
  manifest["version"] = version;
  manifest["physics_summary"] = physics_summary;
  manifest["rivet_analysis"] = rivet_analysis;
  manifest["generator"] = GeneratorConfigToJson(generator_config);
  manifest["event_count"] = static_cast<uint64_t>(event_count);
  submission.context = manifest;

  submission.files.push_back({"analysis/manifest.json", "application/json",
                              manifest.Dump(2)});
  submission.files.push_back(
      {"analysis/reference.yoda", "text/plain", reference_yoda});
  if (!provenance_json.empty()) {
    submission.files.push_back(
        {"analysis/provenance.json", "application/json", provenance_json});
  }
  if (!conditions_snapshot.empty()) {
    submission.files.push_back({"analysis/conditions.snapshot", "text/plain",
                                conditions_snapshot});
  }
  if (!interview.is_null()) {
    submission.files.push_back(
        {"analysis/interview.json", "application/json", interview.Dump(2)});
  }
  return submission;
}

Result<PreservedAnalysis> PreservedAnalysis::FromPackage(
    const DisseminationPackage& package) {
  PreservedAnalysis analysis;
  const Json& manifest = package.content.context;
  if (!manifest.Has("rivet_analysis")) {
    return Status::Corruption(
        "package context is not a preserved-analysis manifest");
  }
  analysis.name = manifest.Get("name").as_string();
  analysis.version = manifest.Get("version").as_string();
  analysis.physics_summary = manifest.Get("physics_summary").as_string();
  analysis.rivet_analysis = manifest.Get("rivet_analysis").as_string();
  DASPOS_ASSIGN_OR_RETURN(
      analysis.generator_config,
      GeneratorConfigFromJson(manifest.Get("generator")));
  analysis.event_count =
      static_cast<size_t>(manifest.Get("event_count").as_int());

  for (const PackageFile& file : package.content.files) {
    if (file.logical_name == "analysis/reference.yoda") {
      analysis.reference_yoda = file.bytes;
    } else if (file.logical_name == "analysis/provenance.json") {
      analysis.provenance_json = file.bytes;
    } else if (file.logical_name == "analysis/conditions.snapshot") {
      analysis.conditions_snapshot = file.bytes;
    } else if (file.logical_name == "analysis/interview.json") {
      DASPOS_ASSIGN_OR_RETURN(analysis.interview,
                              Json::Parse(file.bytes));
    }
  }
  if (analysis.reference_yoda.empty()) {
    return Status::Corruption(
        "preserved analysis package without reference histograms");
  }
  return analysis;
}

Result<PreservedAnalysis> CaptureAnalysis(const std::string& name,
                                          const std::string& rivet_analysis,
                                          const GeneratorConfig& config,
                                          size_t event_count) {
  DASPOS_ASSIGN_OR_RETURN(
      std::vector<Histo1D> histograms,
      RunAnalysis(rivet_analysis, config, event_count));
  PreservedAnalysis analysis;
  analysis.name = name;
  analysis.rivet_analysis = rivet_analysis;
  analysis.generator_config = config;
  analysis.event_count = event_count;
  analysis.reference_yoda = WriteYoda(histograms);
  return analysis;
}

Result<ReexecutionReport> Reexecute(const PreservedAnalysis& analysis,
                                    double max_reduced_chi2) {
  DASPOS_ASSIGN_OR_RETURN(
      std::vector<Histo1D> produced,
      RunAnalysis(analysis.rivet_analysis, analysis.generator_config,
                  analysis.event_count));
  DASPOS_ASSIGN_OR_RETURN(std::vector<Histo1D> reference,
                          ReadYoda(analysis.reference_yoda));
  DASPOS_ASSIGN_OR_RETURN(
      rivet::ValidationResult validation,
      rivet::CompareToReference(produced, reference));
  ReexecutionReport report;
  report.events_generated = analysis.event_count;
  report.histograms_compared = validation.histograms_compared;
  report.worst_reduced_chi2 = validation.worst_reduced_chi2;
  report.validated = validation.Compatible(max_reduced_chi2);
  return report;
}

Result<std::string> DepositAnalysis(Archive* archive,
                                    const PreservedAnalysis& analysis) {
  return archive->Deposit(analysis.ToSubmission());
}

Result<PreservedAnalysis> RetrieveAnalysis(const Archive& archive,
                                           const std::string& archive_id) {
  DASPOS_ASSIGN_OR_RETURN(DisseminationPackage package,
                          archive.Retrieve(archive_id));
  return PreservedAnalysis::FromPackage(package);
}

}  // namespace daspos
