// Chain replay from provenance: rebuilds every processing step of a
// dataset's ancestry from the configurations captured in its provenance
// records and re-executes them. This is DASPOS's central claim made
// executable — a preserved provenance chain IS the workflow, not merely a
// description of it. Deterministic substrates make the replay
// byte-identical to the original production.
#ifndef DASPOS_CORE_REPLAY_H_
#define DASPOS_CORE_REPLAY_H_

#include <string>

#include "workflow/engine.h"
#include "workflow/provenance.h"

namespace daspos {

/// Rebuilds a WorkflowStep from one provenance record. Fails with
/// Unimplemented for producers whose configuration is not machine-
/// reconstructible (hand-written analyst code — §3.2's "direct
/// preservation ... is likely the only way" case).
Result<std::shared_ptr<WorkflowStep>> RebuildStep(
    const ProvenanceRecord& record);

struct ReplayReport {
  /// Steps re-executed, in order.
  std::vector<std::string> steps;
  /// Datasets whose replayed bytes matched the `expected` context exactly
  /// (only populated when `expected` is supplied to ReplayChain).
  int datasets_identical = 0;
  int datasets_differing = 0;
};

/// Re-executes the full ancestry of `target` (ancestors first) into
/// `context`. Each dataset must have a provenance record; external
/// services (conditions) must be attached to `context` by the caller.
/// If `expected` is non-null, every replayed dataset is byte-compared
/// against the same-named dataset there.
Result<ReplayReport> ReplayChain(const ProvenanceStore& provenance,
                                 const std::string& target,
                                 WorkflowContext* context,
                                 const WorkflowContext* expected = nullptr);

}  // namespace daspos

#endif  // DASPOS_CORE_REPLAY_H_
