// The DASPOS capstone API: capture a complete analysis — configuration,
// provenance chain, conditions snapshot, reference results, and the
// documentation interview — as one preservation package; deposit it in the
// archive; retrieve it; and *re-execute* it against the preserved reference
// ("the analysis can be re-run at any time ... for validation purposes",
// §2.4).
#ifndef DASPOS_CORE_PRESERVED_ANALYSIS_H_
#define DASPOS_CORE_PRESERVED_ANALYSIS_H_

#include <string>
#include <vector>

#include "archive/archive.h"
#include "hist/histo1d.h"
#include "mc/generator.h"
#include "serialize/json.h"
#include "support/result.h"

namespace daspos {

/// Everything needed to re-run and validate an analysis decades later.
struct PreservedAnalysis {
  std::string name;
  std::string version = "1";
  std::string physics_summary;

  /// The registered analysis implementing the physics (rivet/registry.h).
  std::string rivet_analysis;
  /// Generator configuration of the preserved input sample.
  GeneratorConfig generator_config;
  size_t event_count = 0;

  /// Reference histograms produced at preservation time (YODA text).
  std::string reference_yoda;
  /// Provenance chain of the preserved datasets (workflow/provenance.h
  /// JSON document; may be empty).
  std::string provenance_json;
  /// Conditions snapshot text (conditions/snapshot.h; may be empty).
  std::string conditions_snapshot;
  /// The documentation interview (interview/interview.h JSON; may be null).
  Json interview = Json();

  /// Packages into an archive submission (one file per ingredient).
  SubmissionPackage ToSubmission() const;
  /// Rebuilds from a retrieved package.
  static Result<PreservedAnalysis> FromPackage(
      const DisseminationPackage& package);
};

/// Runs the preserved analysis now and compares against the preserved
/// reference histograms.
struct ReexecutionReport {
  uint64_t events_generated = 0;
  int histograms_compared = 0;
  double worst_reduced_chi2 = 0.0;
  /// True when every histogram reproduces within tolerance — for an exact
  /// re-execution (same seed), bit-identical, so chi2 = 0.
  bool validated = false;
};

/// Re-executes `analysis` from its captured configuration and validates
/// against its stored reference.
Result<ReexecutionReport> Reexecute(const PreservedAnalysis& analysis,
                                    double max_reduced_chi2 = 3.0);

/// Convenience: capture = run the analysis once and store its output as
/// the reference.
Result<PreservedAnalysis> CaptureAnalysis(const std::string& name,
                                          const std::string& rivet_analysis,
                                          const GeneratorConfig& config,
                                          size_t event_count);

/// Deposit into / retrieve from the preservation archive.
Result<std::string> DepositAnalysis(Archive* archive,
                                    const PreservedAnalysis& analysis);
Result<PreservedAnalysis> RetrieveAnalysis(const Archive& archive,
                                           const std::string& archive_id);

}  // namespace daspos

#endif  // DASPOS_CORE_PRESERVED_ANALYSIS_H_
