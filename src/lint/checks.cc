#include "lint/checks.h"

#include <algorithm>

#include "archive/archive.h"
#include "conditions/store.h"
#include "lhada/lhada.h"
#include "support/strings.h"

namespace daspos {
namespace lint {

namespace {

constexpr size_t kNoRank = static_cast<size_t>(-1);

}  // namespace

// --------------------------------------------------------- workflow graph

LintReport CheckWorkflowGraph(const WorkflowGraphSpec& spec,
                              const std::string& artifact) {
  LintReport report;
  const size_t step_count = spec.steps.size();

  std::map<std::string, size_t> producer_of;
  for (size_t i = 0; i < step_count; ++i) {
    producer_of.emplace(spec.steps[i].output, i);
  }

  // Edges and per-step missing external inputs.
  std::vector<std::vector<size_t>> dependents(step_count);
  std::vector<size_t> indegree(step_count, 0);
  std::vector<std::vector<std::string>> missing_external(step_count);
  for (size_t i = 0; i < step_count; ++i) {
    for (const std::string& input : spec.steps[i].inputs) {
      auto it = producer_of.find(input);
      if (it != producer_of.end()) {
        dependents[it->second].push_back(i);
        ++indegree[i];
      } else if (spec.external_inputs.count(input) == 0) {
        missing_external[i].push_back(input);
      }
    }
  }

  // Kahn's algorithm, exactly as the engine schedules: a step becomes ready
  // only once all produced inputs exist and no external input is missing.
  std::vector<size_t> rank(step_count, kNoRank);
  {
    std::vector<size_t> pending = indegree;
    std::vector<size_t> ready;
    for (size_t i = 0; i < step_count; ++i) {
      if (pending[i] == 0 && missing_external[i].empty()) ready.push_back(i);
    }
    size_t next_rank = 0;
    while (!ready.empty()) {
      size_t i = ready.back();
      ready.pop_back();
      rank[i] = next_rank++;
      for (size_t dependent : dependents[i]) {
        if (--pending[dependent] == 0 &&
            missing_external[dependent].empty()) {
          ready.push_back(dependent);
        }
      }
    }
  }

  // W002: inputs nobody can ever provide.
  for (size_t i = 0; i < step_count; ++i) {
    if (missing_external[i].empty()) continue;
    report.Add("W002", artifact, spec.steps[i].name,
               "missing inputs: " + Join(missing_external[i], ", "),
               "produce the dataset with an upstream step or pre-load it "
               "into the context");
  }

  // W001: cycles among unranked steps. Walk producer edges from each
  // unranked step; returning to the start exposes one cycle. Cycles are
  // de-duplicated by membership so A->B->A reports once.
  std::set<size_t> on_cycle;
  std::set<std::set<size_t>> seen_cycles;
  for (size_t start = 0; start < step_count; ++start) {
    if (rank[start] != kNoRank) continue;
    std::vector<size_t> path;
    std::set<size_t> visited;
    // Iterative DFS over "depends on" edges restricted to unranked steps.
    std::vector<std::pair<size_t, size_t>> stack;  // (step, next input idx)
    stack.emplace_back(start, 0);
    path.push_back(start);
    visited.insert(start);
    bool found = false;
    while (!stack.empty() && !found) {
      auto& [current, input_index] = stack.back();
      if (input_index >= spec.steps[current].inputs.size()) {
        stack.pop_back();
        path.pop_back();
        continue;
      }
      const std::string& input = spec.steps[current].inputs[input_index++];
      auto it = producer_of.find(input);
      if (it == producer_of.end() || rank[it->second] != kNoRank) continue;
      size_t producer = it->second;
      if (producer == start) {
        found = true;
        break;
      }
      if (visited.insert(producer).second) {
        stack.emplace_back(producer, 0);
        path.push_back(producer);
      }
    }
    if (!found) continue;
    std::set<size_t> members(path.begin(), path.end());
    for (size_t member : members) on_cycle.insert(member);
    if (!seen_cycles.insert(members).second) continue;
    std::string chain;
    for (size_t member : path) chain += spec.steps[member].name + " -> ";
    chain += spec.steps[start].name;
    report.Add("W001", artifact, spec.steps[start].name,
               "dependency cycle: " + chain,
               "break the cycle by splitting one step's output");
  }

  // W003: unranked steps that are neither missing externals nor on a cycle
  // are transitively blocked; name what they wait for (the engine's
  // "missing inputs" diagnostic, now pre-execution).
  for (size_t i = 0; i < step_count; ++i) {
    if (rank[i] != kNoRank || !missing_external[i].empty() ||
        on_cycle.count(i) > 0) {
      continue;
    }
    std::vector<std::string> waiting;
    for (const std::string& input : spec.steps[i].inputs) {
      auto it = producer_of.find(input);
      if (it != producer_of.end() && rank[it->second] == kNoRank) {
        waiting.push_back(input);
      }
    }
    report.Add("W003", artifact, spec.steps[i].name,
               "missing inputs: " + Join(waiting, ", "),
               "unblock the producing steps first");
  }

  // W004: isolated steps — no produced input, no consumer — in a graph
  // that has other steps to be connected to.
  if (step_count > 1) {
    for (size_t i = 0; i < step_count; ++i) {
      if (indegree[i] > 0 || !dependents[i].empty()) continue;
      report.Add("W004", artifact, spec.steps[i].name,
                 "orphan step: consumes no produced dataset and nothing "
                 "consumes its output '" +
                     spec.steps[i].output + "'",
                 "connect it to the chain or run it as its own workflow");
    }
  }
  return report;
}

// ------------------------------------------------------------- provenance

Result<ProvenanceSpec> ProvenanceSpec::FromJson(const Json& json) {
  if (!json.is_array()) {
    return Status::Corruption("provenance document must be a JSON array");
  }
  ProvenanceSpec spec;
  for (size_t i = 0; i < json.size(); ++i) {
    const Json& entry = json.at(i);
    if (!entry.is_object() || !entry.Has("dataset")) {
      return Status::Corruption("provenance record " + std::to_string(i) +
                                " missing 'dataset'");
    }
    Record record;
    record.dataset = entry.Get("dataset").as_string();
    record.config_hash = entry.Get("config_hash").as_string();
    const Json& parents = entry.Get("parents");
    for (size_t p = 0; p < parents.size(); ++p) {
      record.parents.push_back(parents.at(p).as_string());
    }
    spec.records.push_back(std::move(record));
  }
  return spec;
}

LintReport CheckProvenance(const ProvenanceSpec& spec,
                           const std::string& artifact) {
  LintReport report;
  std::map<std::string, const ProvenanceSpec::Record*> by_dataset;
  for (const ProvenanceSpec::Record& record : spec.records) {
    by_dataset.emplace(record.dataset, &record);
  }

  // W101: parents referenced but never recorded, with every referrer named.
  std::map<std::string, std::vector<std::string>> referrers_of_missing;
  for (const ProvenanceSpec::Record& record : spec.records) {
    for (const std::string& parent : record.parents) {
      if (by_dataset.count(parent) == 0) {
        referrers_of_missing[parent].push_back(record.dataset);
      }
    }
  }
  for (const auto& [parent, referrers] : referrers_of_missing) {
    report.Add("W101", artifact, parent,
               "no provenance record, but referenced as a parent by: " +
                   Join(referrers, ", "),
               "capture the producing step's record or archive the dataset "
               "as an external input");
  }

  // W102: a dataset that is its own ancestor. BFS per record over recorded
  // parents; the visited set bounds the walk on cyclic chains.
  for (const ProvenanceSpec::Record& record : spec.records) {
    std::set<std::string> seen;
    std::vector<std::string> frontier = record.parents;
    bool cyclic = false;
    while (!frontier.empty() && !cyclic) {
      std::string current = std::move(frontier.back());
      frontier.pop_back();
      if (current == record.dataset) {
        cyclic = true;
        break;
      }
      if (!seen.insert(current).second) continue;
      auto it = by_dataset.find(current);
      if (it == by_dataset.end()) continue;
      for (const std::string& parent : it->second->parents) {
        frontier.push_back(parent);
      }
    }
    if (cyclic) {
      report.Add("W102", artifact, record.dataset,
                 "dataset is recorded as its own ancestor",
                 "re-capture the chain; parentage must be acyclic");
    }
  }

  // W103: config hash absent or not a SHA-256 hex digest.
  for (const ProvenanceSpec::Record& record : spec.records) {
    bool usable = record.config_hash.size() == 64;
    for (char c : record.config_hash) {
      if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) usable = false;
    }
    if (!usable) {
      report.Add("W103", artifact, record.dataset,
                 "config hash '" + record.config_hash +
                     "' is not a SHA-256 hex digest",
                 "re-capture with the canonical config hashing");
    }
  }
  return report;
}

// ------------------------------------------------------------ run journal

JournalSpec JournalSpec::FromJsonLines(const std::string& text) {
  JournalSpec spec;
  for (const std::string& line : Split(text, '\n')) {
    if (Trim(line).empty()) continue;
    auto parsed = Json::Parse(line);
    if (!parsed.ok() || !parsed->is_object() ||
        !parsed->Get("step").is_string()) {
      // Crash-truncated tail: everything before it is still meaningful.
      break;
    }
    spec.entries.push_back({parsed->Get("step").as_string(),
                            parsed->Get("output").as_string()});
  }
  return spec;
}

LintReport CheckJournal(const JournalSpec& journal,
                        const WorkflowGraphSpec& workflow,
                        const std::string& artifact) {
  LintReport report;
  std::set<std::string> known;
  for (const WorkflowGraphSpec::Step& step : workflow.steps) {
    known.insert(step.name);
  }
  std::set<std::string> reported;
  for (const JournalSpec::Entry& entry : journal.entries) {
    if (known.count(entry.step) > 0) continue;
    if (!reported.insert(entry.step).second) continue;
    report.Add("W104", artifact, entry.step,
               "journal checkpoints step '" + entry.step +
                   "', which the workflow does not contain",
               "the checkpoint is ignored on resume; delete the journal if "
               "the workflow was intentionally restructured");
  }
  return report;
}

// ------------------------------------------------------------------ LHADA

LintReport CheckLhada(const std::string& text, const std::string& artifact) {
  LintReport report;
  auto parsed = lhada::AnalysisDescription::ParseStructure(text);
  if (!parsed.ok()) {
    report.Add("L000", artifact, "", parsed.status().message(),
               "fix the syntax; see the grammar in lhada/lhada.h");
    return report;
  }
  const std::vector<lhada::ObjectDef>& objects = parsed->objects();
  const std::vector<lhada::CutDef>& cuts = parsed->cuts();

  // L004: duplicate names (objects among objects, cuts among cuts or
  // colliding with an object).
  std::set<std::string> object_names;
  for (const lhada::ObjectDef& object : objects) {
    if (!object_names.insert(object.name).second) {
      report.Add("L004", artifact, object.name,
                 "object name defined more than once",
                 "rename one of the definitions");
    }
  }
  std::set<std::string> cut_names;
  std::map<std::string, size_t> first_cut_index;
  for (size_t i = 0; i < cuts.size(); ++i) {
    if (object_names.count(cuts[i].name) > 0 ||
        !cut_names.insert(cuts[i].name).second) {
      report.Add("L004", artifact, cuts[i].name,
                 "cut name collides with an earlier object or cut",
                 "rename one of the definitions");
    }
    first_cut_index.emplace(cuts[i].name, i);
  }

  std::set<std::string> referenced_objects;
  auto reference = [&](const std::string& collection, const std::string& via,
                       const char* code) {
    if (collection.empty()) return;
    referenced_objects.insert(collection);
    if (object_names.count(collection) == 0) {
      report.Add(code, artifact, via,
                 "references undefined object collection '" + collection +
                     "'",
                 "define 'object " + collection + "' or fix the name");
    }
  };

  for (size_t i = 0; i < cuts.size(); ++i) {
    const lhada::CutDef& cut = cuts[i];
    // L002/L003: 'require' discipline.
    for (const std::string& required : cut.requires_cuts) {
      auto it = first_cut_index.find(required);
      if (it == first_cut_index.end()) {
        report.Add("L002", artifact, cut.name,
                   "requires undefined cut '" + required + "'",
                   "define the cut or fix the name");
      } else if (it->second >= i) {
        report.Add("L003", artifact, cut.name,
                   "requires cut '" + required +
                       "' which is not defined earlier",
                   "reorder the cuts; 'require' must reference earlier "
                   "cuts");
      }
    }
    // L001: conditions referencing undefined collections.
    for (const lhada::Condition& condition : cut.conditions) {
      if (condition.kind != lhada::Condition::Kind::kMet) {
        reference(condition.collection_a, cut.name, "L001");
      }
      reference(condition.collection_b, cut.name, "L001");
    }
    // L006: histograms referencing undefined collections.
    for (const lhada::HistDef& hist : cut.hists) {
      reference(hist.quantity.collection_a, cut.name + "/" + hist.tag,
                "L006");
      reference(hist.quantity.collection_b, cut.name + "/" + hist.tag,
                "L006");
    }
    // L007: a cut with neither conditions nor prerequisites is vacuous.
    if (cut.conditions.empty() && cut.requires_cuts.empty()) {
      report.Add("L007", artifact, cut.name,
                 "cut has no conditions and no prerequisites: it passes "
                 "every event",
                 "add a 'select' or fold it into another cut");
    }
  }

  // L005: defined objects nothing ever selects on.
  for (const lhada::ObjectDef& object : objects) {
    if (referenced_objects.count(object.name) == 0) {
      report.Add("L005", artifact, object.name,
                 "object is defined but never used by any condition or "
                 "histogram",
                 "remove the definition or use it in a cut");
    }
  }

  // L008: an analysis with no event-level cuts preserves nothing.
  if (cuts.empty()) {
    report.Add("L008", artifact, parsed->name(),
               "description defines no event-level cuts",
               "add at least one 'cut' block");
  }
  return report;
}

// ---------------------------------------------------------------- archive

LintReport CheckArchive(const ObjectStore& store,
                        const std::string& artifact) {
  LintReport report;
  const std::vector<std::string> ids = store.Ids();

  // Fixity pass over everything, and manifest discovery by shape.
  std::set<std::string> manifest_ids;
  std::map<std::string, Json> manifests;
  for (const std::string& id : ids) {
    Status verify = store.Verify(id);
    if (!verify.ok()) {
      report.Add("A002", artifact, id, verify.message(),
                 "restore the object from a replica");
    }
    auto bytes = store.Get(id);
    if (!bytes.ok()) continue;
    auto json = Json::Parse(*bytes);
    if (json.ok() && IsAipManifest(*json)) {
      manifest_ids.insert(id);
      manifests.emplace(id, std::move(*json));
    }
  }

  // Per-manifest reference checks.
  std::set<std::string> referenced;
  for (const auto& [manifest_id, manifest] : manifests) {
    if (manifest.Get("title").as_string().empty()) {
      report.Add("A005", artifact, manifest_id,
                 "package manifest has no title",
                 "deposit packages with descriptive metadata");
    }
    const Json& files = manifest.Get("files");
    for (size_t i = 0; i < files.size(); ++i) {
      const Json& entry = files.at(i);
      const std::string object_id = entry.Get("sha256").as_string();
      const std::string name = entry.Get("name").as_string();
      referenced.insert(object_id);
      if (!store.Has(object_id)) {
        report.Add("A001", artifact, object_id,
                   "referenced by manifest " + manifest_id.substr(0, 12) +
                       " as '" + name + "' but absent from the store",
                   "restore the object or re-deposit the package");
        continue;
      }
      auto bytes = store.Get(object_id);
      if (bytes.ok() &&
          static_cast<uint64_t>(entry.Get("bytes").as_int()) !=
              bytes->size()) {
        report.Add("A004", artifact, object_id,
                   "manifest " + manifest_id.substr(0, 12) + " declares " +
                       std::to_string(entry.Get("bytes").as_int()) +
                       " bytes for '" + name + "' but the store holds " +
                       std::to_string(bytes->size()),
                   "re-deposit the package with the corrected manifest");
      }
    }
  }

  // A003: blobs reachable from no manifest.
  for (const std::string& id : ids) {
    if (manifest_ids.count(id) > 0 || referenced.count(id) > 0) continue;
    report.Add("A003", artifact, id,
               "blob is referenced by no package manifest",
               "garbage-collect it or deposit a package that claims it");
  }

  // A006: blobs the store moved aside after a failed fixity check.
  for (const std::string& id : store.QuarantinedIds()) {
    report.Add("A006", artifact, id,
               "blob failed fixity on read and sits in quarantine",
               "restore it from a replica (re-Put the original bytes heals "
               "the store), then delete the quarantined copy");
  }
  return report;
}

// ------------------------------------------------------------- conditions

Result<ConditionsSpec> ConditionsSpec::FromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::Corruption("conditions dump must be a JSON object");
  }
  ConditionsSpec spec;
  const Json& tags = json.Get("tags");
  for (const auto& [tag, intervals] : tags.members()) {
    std::vector<RunRange>& list = spec.tags[tag];
    for (size_t i = 0; i < intervals.size(); ++i) {
      const Json& entry = intervals.at(i);
      RunRange range;
      range.first_run = static_cast<uint32_t>(entry.Get("first").as_int());
      range.last_run = entry.Has("last")
                           ? static_cast<uint32_t>(entry.Get("last").as_int())
                           : RunRange::kMaxRun;
      list.push_back(range);
    }
  }
  const Json& global_tags = json.Get("global_tags");
  for (size_t i = 0; i < global_tags.size(); ++i) {
    const Json& entry = global_tags.at(i);
    GlobalTag tag;
    tag.name = entry.Get("name").as_string();
    for (const auto& [role, target] : entry.Get("roles").members()) {
      tag.roles[role] = target.as_string();
    }
    spec.global_tags.push_back(std::move(tag));
  }
  return spec;
}

Json ConditionsSpec::ToJson() const {
  Json json = Json::Object();
  json["conditions_version"] = 1;
  Json tag_map = Json::Object();
  for (const auto& [tag, intervals] : tags) {
    Json list = Json::Array();
    for (const RunRange& range : intervals) {
      Json entry = Json::Object();
      entry["first"] = range.first_run;
      if (range.last_run != RunRange::kMaxRun) entry["last"] = range.last_run;
      list.push_back(std::move(entry));
    }
    tag_map[tag] = std::move(list);
  }
  json["tags"] = std::move(tag_map);
  Json global_list = Json::Array();
  for (const GlobalTag& tag : global_tags) {
    Json entry = Json::Object();
    entry["name"] = tag.name;
    Json roles = Json::Object();
    for (const auto& [role, target] : tag.roles) roles[role] = target;
    entry["roles"] = std::move(roles);
    global_list.push_back(std::move(entry));
  }
  json["global_tags"] = std::move(global_list);
  return json;
}

LintReport CheckConditions(const ConditionsSpec& spec,
                           const std::string& artifact) {
  LintReport report;
  for (const auto& [tag, intervals] : spec.tags) {
    if (intervals.empty()) {
      report.Add("C005", artifact, tag, "tag holds no intervals of validity",
                 "register payloads or drop the tag");
      continue;
    }
    // C003 first: inverted ranges poison the overlap/gap logic below, so
    // they are reported and skipped there.
    std::vector<RunRange> valid;
    for (const RunRange& range : intervals) {
      if (!range.Valid()) {
        report.Add("C003", artifact, tag,
                   "interval " + range.ToString() + " has first > last",
                   "fix the interval bounds");
      } else {
        valid.push_back(range);
      }
    }
    std::sort(valid.begin(), valid.end(),
              [](const RunRange& a, const RunRange& b) {
                return a.first_run < b.first_run ||
                       (a.first_run == b.first_run &&
                        a.last_run < b.last_run);
              });
    for (size_t i = 1; i < valid.size(); ++i) {
      const RunRange& prev = valid[i - 1];
      const RunRange& next = valid[i];
      if (prev.Overlaps(next)) {
        report.Add("C001", artifact, tag,
                   "intervals " + prev.ToString() + " and " +
                       next.ToString() + " overlap",
                   "conditions must be unambiguous; close the earlier "
                   "interval");
      } else if (prev.last_run + 1 < next.first_run) {
        report.Add("C002", artifact, tag,
                   "no payload for runs [" +
                       std::to_string(prev.last_run + 1) + "," +
                       std::to_string(next.first_run - 1) + "]",
                   "register a payload covering the gap");
      }
    }
    if (!valid.empty() && valid.back().last_run != RunRange::kMaxRun) {
      report.Add("C006", artifact, tag,
                 "coverage ends at run " +
                     std::to_string(valid.back().last_run),
                 "append an open-ended interval if the tag is still live");
    }
  }
  // C004: global-tag roles pointing at absent or empty tags.
  for (const GlobalTag& global_tag : spec.global_tags) {
    for (const auto& [role, target] : global_tag.roles) {
      auto it = spec.tags.find(target);
      if (it == spec.tags.end() || it->second.empty()) {
        report.Add("C004", artifact, global_tag.name,
                   "role '" + role + "' references tag '" + target +
                       "' which has no payloads",
                   "register the tag's payloads before freezing the global "
                   "tag");
      }
    }
  }
  return report;
}

}  // namespace lint
}  // namespace daspos
