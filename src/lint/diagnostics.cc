#include "lint/diagnostics.h"

#include <algorithm>
#include <set>

namespace daspos {
namespace lint {

std::string_view SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

bool ParseSeverity(std::string_view text, Severity* out) {
  if (text == "info") {
    *out = Severity::kInfo;
    return true;
  }
  if (text == "warning") {
    *out = Severity::kWarning;
    return true;
  }
  if (text == "error") {
    *out = Severity::kError;
    return true;
  }
  return false;
}

std::string Diagnostic::Render() const {
  std::string out = artifact + ": " + std::string(SeverityName(severity)) +
                    " " + code + ": ";
  if (!subject.empty()) out += subject + ": ";
  out += message;
  if (!hint.empty()) out += " (hint: " + hint + ")";
  return out;
}

Json Diagnostic::ToJson() const {
  Json json = Json::Object();
  json["code"] = code;
  json["severity"] = std::string(SeverityName(severity));
  json["artifact"] = artifact;
  json["subject"] = subject;
  json["message"] = message;
  if (!hint.empty()) json["hint"] = hint;
  return json;
}

void LintReport::Add(std::string_view code, std::string artifact,
                     std::string subject, std::string message,
                     std::string hint) {
  Diagnostic diagnostic;
  diagnostic.code = std::string(code);
  const CheckInfo* info = FindCheck(code);
  diagnostic.severity =
      info != nullptr ? info->default_severity : Severity::kWarning;
  diagnostic.artifact = std::move(artifact);
  diagnostic.subject = std::move(subject);
  diagnostic.message = std::move(message);
  diagnostic.hint = std::move(hint);
  diagnostics_.push_back(std::move(diagnostic));
}

void LintReport::Merge(LintReport other) {
  for (Diagnostic& diagnostic : other.diagnostics_) {
    diagnostics_.push_back(std::move(diagnostic));
  }
}

size_t LintReport::CountAtLeast(Severity severity) const {
  size_t count = 0;
  for (const Diagnostic& diagnostic : diagnostics_) {
    if (diagnostic.severity >= severity) ++count;
  }
  return count;
}

std::vector<std::string> LintReport::Codes() const {
  std::set<std::string> codes;
  for (const Diagnostic& diagnostic : diagnostics_) {
    codes.insert(diagnostic.code);
  }
  return std::vector<std::string>(codes.begin(), codes.end());
}

std::string LintReport::RenderText() const {
  std::string out;
  for (const Diagnostic& diagnostic : diagnostics_) {
    out += diagnostic.Render() + "\n";
  }
  out += std::to_string(CountAtLeast(Severity::kError)) + " error(s), " +
         std::to_string(CountAtLeast(Severity::kWarning) -
                        CountAtLeast(Severity::kError)) +
         " warning(s), " +
         std::to_string(size() - CountAtLeast(Severity::kWarning)) +
         " note(s)\n";
  return out;
}

Json LintReport::ToJson() const {
  Json json = Json::Object();
  Json findings = Json::Array();
  for (const Diagnostic& diagnostic : diagnostics_) {
    findings.push_back(diagnostic.ToJson());
  }
  json["findings"] = std::move(findings);
  Json counts = Json::Object();
  counts["error"] = static_cast<uint64_t>(CountAtLeast(Severity::kError));
  counts["warning"] = static_cast<uint64_t>(CountAtLeast(Severity::kWarning) -
                                            CountAtLeast(Severity::kError));
  counts["info"] =
      static_cast<uint64_t>(size() - CountAtLeast(Severity::kWarning));
  json["counts"] = std::move(counts);
  return json;
}

const std::vector<CheckInfo>& AllChecks() {
  // The taxonomy. Codes are append-only: never renumber, never reuse.
  static const std::vector<CheckInfo> kChecks = {
      // Workflow graph (W0xx) and provenance chain (W1xx).
      {"W001", Severity::kError,
       "workflow steps form a dependency cycle (beyond self-loops, which are "
       "rejected at AddStep)"},
      {"W002", Severity::kError,
       "step consumes an input no upstream step produces and no external "
       "dataset provides"},
      {"W003", Severity::kError,
       "step is unreachable: every schedule leaves it blocked behind a "
       "missing input or a cycle"},
      {"W004", Severity::kWarning,
       "orphan step: shares no datasets with the rest of the workflow"},
      {"W101", Severity::kError,
       "provenance gap: record references a parent dataset with no record of "
       "its own"},
      {"W102", Severity::kError,
       "provenance parentage is cyclic: a dataset is its own ancestor"},
      {"W103", Severity::kWarning,
       "provenance record carries no usable config hash (reproduction "
       "impossible)"},
      {"W104", Severity::kWarning,
       "run journal references a step absent from the workflow (stale or "
       "foreign checkpoint)"},
      // LHADA analysis descriptions (Lxxx).
      {"L000", Severity::kError, "description does not parse"},
      {"L001", Severity::kError,
       "cut condition references an object collection that is never defined"},
      {"L002", Severity::kError,
       "'require' references a cut that is never defined"},
      {"L003", Severity::kError,
       "'require' references a later cut or the cut itself (must reference "
       "earlier cuts)"},
      {"L004", Severity::kError, "duplicate object or cut name"},
      {"L005", Severity::kWarning,
       "object is defined but never used by any condition or histogram"},
      {"L006", Severity::kError,
       "histogram references an object collection that is never defined"},
      {"L007", Severity::kWarning,
       "cut has no conditions: it passes every event"},
      {"L008", Severity::kError,
       "description defines no event-level cuts"},
      // Archive manifests over the object store (Axxx).
      {"A001", Severity::kError,
       "manifest references an object absent from the store (dangling "
       "reference)"},
      {"A002", Severity::kError,
       "stored object's bytes no longer match its content id (digest "
       "mismatch / bit rot)"},
      {"A003", Severity::kWarning,
       "blob is referenced by no manifest (unreachable from any package)"},
      {"A004", Severity::kWarning,
       "manifest-declared file size disagrees with the stored object"},
      {"A005", Severity::kWarning,
       "package manifest lacks a title (undiscoverable holding)"},
      {"A006", Severity::kWarning,
       "quarantined blob present in the store (failed fixity on read)"},
      // Conditions stores and global tags (Cxxx).
      {"C001", Severity::kError,
       "overlapping intervals of validity within one tag (ambiguous "
       "conditions)"},
      {"C002", Severity::kWarning,
       "gap between consecutive intervals of validity within one tag"},
      {"C003", Severity::kError, "interval of validity with first > last"},
      {"C004", Severity::kError,
       "global tag role references a tag with no payloads"},
      {"C005", Severity::kWarning, "tag is declared but holds no intervals"},
      {"C006", Severity::kInfo,
       "tag coverage is closed: no payload for runs beyond its last interval"},
      // General / driver (Gxxx).
      {"G001", Severity::kError, "artifact type is not recognized"},
      {"G002", Severity::kError, "artifact cannot be read"},
  };
  return kChecks;
}

const CheckInfo* FindCheck(std::string_view code) {
  const std::vector<CheckInfo>& checks = AllChecks();
  auto it = std::find_if(
      checks.begin(), checks.end(),
      [code](const CheckInfo& info) { return info.code == code; });
  return it != checks.end() ? &*it : nullptr;
}

}  // namespace lint
}  // namespace daspos
