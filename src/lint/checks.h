// The preservation checks: each function statically analyzes one artifact
// family and returns findings, never executing or mutating the artifact.
//
// Family    artifact                          codes
// --------  --------------------------------  -----------
// workflow  processing-graph spec             W001..W004
// workflow  provenance chain (JSON array)     W101..W103
// lhada     analysis-description text         L000..L008
// archive   object store + AIP manifests      A001..A005
// cond      conditions dump (tags, IOVs, GTs) C001..C006
//
// The structs here are deliberately plain data (no dependency on the
// workflow engine): daspos_workflow links against daspos_lint to gate
// Workflow::Execute, so lint must sit below it in the dependency order.
#ifndef DASPOS_LINT_CHECKS_H_
#define DASPOS_LINT_CHECKS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "archive/object_store.h"
#include "conditions/global_tag.h"
#include "conditions/iov.h"
#include "lint/diagnostics.h"
#include "support/result.h"

namespace daspos {
namespace lint {

/// Execution-free description of a workflow graph: what each step consumes
/// and produces, plus which datasets exist before execution starts.
struct WorkflowGraphSpec {
  struct Step {
    std::string name;
    std::vector<std::string> inputs;
    std::string output;
  };
  std::vector<Step> steps;
  /// Dataset names available externally (pre-loaded into the context).
  std::set<std::string> external_inputs;
};

/// W001 cycles, W002 missing inputs, W003 unreachable steps, W004 orphans.
LintReport CheckWorkflowGraph(const WorkflowGraphSpec& spec,
                              const std::string& artifact = "workflow");

/// Execution-free view of a provenance chain (the serialized form of
/// ProvenanceStore: a JSON array of records).
struct ProvenanceSpec {
  struct Record {
    std::string dataset;
    std::vector<std::string> parents;
    std::string config_hash;
  };
  std::vector<Record> records;

  /// Parses the provenance-chain JSON array. Fails only on structural
  /// problems (not an array, record without a dataset name); semantic
  /// defects are the linter's job.
  static Result<ProvenanceSpec> FromJson(const Json& json);
};

/// W101 gaps, W102 parentage cycles, W103 missing config hashes.
LintReport CheckProvenance(const ProvenanceSpec& spec,
                           const std::string& artifact = "provenance");

/// Execution-free view of a run journal (the JSONL checkpoint file written
/// during Workflow::Execute): one entry per checkpointed step.
struct JournalSpec {
  struct Entry {
    std::string step;
    std::string output;
  };
  std::vector<Entry> entries;

  /// Parses journal.jsonl content. Tolerates a truncated tail exactly like
  /// the resume path does: parsing stops at the first malformed line.
  static JournalSpec FromJsonLines(const std::string& text);
};

/// W104: journal entries naming steps the workflow no longer contains —
/// stale checkpoints that resume would silently ignore.
LintReport CheckJournal(const JournalSpec& journal,
                        const WorkflowGraphSpec& workflow,
                        const std::string& artifact = "journal");

/// L000 parse failure, L001/L006 dangling references, L002/L003 bad
/// 'require', L004 duplicates, L005 unused objects, L007 vacuous cuts,
/// L008 no cuts. Works on raw description text so that defective documents
/// (which AnalysisDescription::Parse rejects outright) still get itemized
/// findings.
LintReport CheckLhada(const std::string& text,
                      const std::string& artifact = "lhada");

/// A001 dangling references, A002 digest mismatches, A003 unreferenced
/// blobs, A004 size disagreements, A005 untitled packages. Scans every
/// object; manifests are recognized by shape (see IsAipManifest).
LintReport CheckArchive(const ObjectStore& store,
                        const std::string& artifact = "archive");

/// Execution-free dump of a conditions store: per-tag IOV lists plus the
/// global tags that reference them. lint::DumpConditions (linter.h) builds
/// one from a live ConditionsDb; FromJson is deliberately lenient so
/// defective dumps (overlaps, inverted ranges) survive into the checks.
struct ConditionsSpec {
  std::map<std::string, std::vector<RunRange>> tags;
  std::vector<GlobalTag> global_tags;

  static Result<ConditionsSpec> FromJson(const Json& json);
  Json ToJson() const;
};

/// C001 overlaps, C002 gaps, C003 inverted ranges, C004 dangling global-tag
/// roles, C005 empty tags, C006 closed coverage.
LintReport CheckConditions(const ConditionsSpec& spec,
                           const std::string& artifact = "conditions");

}  // namespace lint
}  // namespace daspos

#endif  // DASPOS_LINT_CHECKS_H_
