// The linter driver: maps on-disk artifacts to the check families in
// checks.h. This is what `daspos lint` calls; the individual checks stay
// usable in-process (the workflow engine gates Execute on
// CheckWorkflowGraph without going through files).
#ifndef DASPOS_LINT_LINTER_H_
#define DASPOS_LINT_LINTER_H_

#include <string>

#include "conditions/global_tag.h"
#include "conditions/store.h"
#include "lint/checks.h"

namespace daspos {
namespace lint {

/// Lints one artifact path. Type detection:
///   directory                         -> archive (FileObjectStore root)
///   JSON array of provenance records  -> provenance chain
///   JSON object with "tags"           -> conditions dump
///   anything else                     -> LHADA analysis description
/// Unreadable or unrecognized artifacts yield G002/G001 findings — the
/// call itself never fails, so one broken path cannot hide findings from
/// the others.
LintReport LintPath(const std::string& path);

/// Builds a lintable conditions dump from a live store (plus, optionally,
/// every global tag in a registry).
ConditionsSpec DumpConditions(const ConditionsDb& db,
                              const GlobalTagRegistry* registry = nullptr);

}  // namespace lint
}  // namespace daspos

#endif  // DASPOS_LINT_LINTER_H_
