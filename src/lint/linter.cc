#include "lint/linter.h"

#include <filesystem>

#include "support/io.h"
#include "support/metrics_registry.h"
#include "support/trace.h"

namespace daspos {
namespace lint {

namespace {

/// Publishes one linted artifact and its finding count to the registry.
void RecordLintMetrics(const LintReport& report) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry
      .GetCounter(metric_names::kLintArtifactsTotal, "artifacts linted")
      .Increment();
  registry
      .GetCounter(metric_names::kLintFindingsTotal,
                  "lint diagnostics emitted")
      .Increment(static_cast<uint64_t>(report.diagnostics().size()));
}

LintReport LintPathImpl(const std::string& path);

}  // namespace

LintReport LintPath(const std::string& path) {
  Span span("lint:path", "lint");
  span.AddAttribute("path", path);
  LintReport report = LintPathImpl(path);
  span.AddAttribute("findings",
                    static_cast<uint64_t>(report.diagnostics().size()));
  RecordLintMetrics(report);
  return report;
}

namespace {

LintReport LintPathImpl(const std::string& path) {
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    FileObjectStore store(path);
    return CheckArchive(store, path);
  }

  auto bytes = ReadFileToString(path);
  if (!bytes.ok()) {
    LintReport report;
    report.Add("G002", path, "", bytes.status().message());
    return report;
  }

  // JSON artifacts: provenance chains are arrays of records, conditions
  // dumps are objects with a tag map.
  if (auto json = Json::Parse(*bytes); json.ok()) {
    if (json->is_array()) {
      auto spec = ProvenanceSpec::FromJson(*json);
      if (spec.ok()) return CheckProvenance(*spec, path);
      LintReport report;
      report.Add("G001", path, "", spec.status().message(),
                 "expected a provenance chain (array of records)");
      return report;
    }
    if (json->is_object() &&
        (json->Has("tags") || json->Has("conditions_version"))) {
      auto spec = ConditionsSpec::FromJson(*json);
      if (spec.ok()) return CheckConditions(*spec, path);
      LintReport report;
      report.Add("G001", path, "", spec.status().message(),
                 "expected a conditions dump");
      return report;
    }
    LintReport report;
    report.Add("G001", path, "",
               "JSON document is neither a provenance chain nor a "
               "conditions dump");
    return report;
  }

  // Everything else is treated as LHADA text; CheckLhada turns parse
  // failures into L000 findings.
  return CheckLhada(*bytes, path);
}

}  // namespace

ConditionsSpec DumpConditions(const ConditionsDb& db,
                              const GlobalTagRegistry* registry) {
  ConditionsSpec spec;
  for (const std::string& tag : db.Tags()) {
    spec.tags[tag] = db.Intervals(tag);
  }
  if (registry != nullptr) {
    for (const std::string& name : registry->Names()) {
      auto tag = registry->Get(name);
      if (tag.ok()) spec.global_tags.push_back(std::move(*tag));
    }
  }
  return spec;
}

}  // namespace lint
}  // namespace daspos
