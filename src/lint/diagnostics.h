// Diagnostics framework for the preservation linter: static findings over
// preserved artifacts (workflow graphs, LHADA descriptions, archive
// manifests, conditions stores), reported *before* anything is executed.
// DPHEP's validation framework (arXiv:1310.7814) and the HSF preservation
// white paper (arXiv:1810.01191) both call for exactly this: automated
// checks that catch silent rot — dangling references, provenance gaps,
// ambiguous conditions — while the analysis is still recoverable.
//
// Every finding carries a stable check code (W=workflow, L=LHADA,
// A=archive, C=conditions, G=general), a severity, the artifact and subject
// it concerns, a message, and an optional fix hint. Renderers produce the
// human text form and a machine JSON form (for CI).
#ifndef DASPOS_LINT_DIAGNOSTICS_H_
#define DASPOS_LINT_DIAGNOSTICS_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "serialize/json.h"

namespace daspos {
namespace lint {

/// How bad a finding is. kError findings mean the artifact cannot be
/// trusted to re-execute; kWarning findings mean it will likely mislead a
/// future analyst; kInfo findings are observations.
enum class Severity { kInfo = 0, kWarning = 1, kError = 2 };

std::string_view SeverityName(Severity severity);

/// Parses "info" / "warning" / "error" (as used by --fail-on).
bool ParseSeverity(std::string_view text, Severity* out);

/// One static finding.
struct Diagnostic {
  /// Stable check code, e.g. "W001". Codes are never reused or renumbered;
  /// retired checks leave a hole.
  std::string code;
  Severity severity = Severity::kWarning;
  /// The artifact the finding is about (file path, or a logical name like
  /// "workflow" for in-memory graphs).
  std::string artifact;
  /// The offending entity inside the artifact (step name, tag, object id).
  std::string subject;
  std::string message;
  /// Optional suggestion for fixing the finding.
  std::string hint;

  /// "<artifact>: <severity> <code>: <subject>: <message>".
  std::string Render() const;
  Json ToJson() const;
};

/// An ordered collection of findings plus the counting/rendering helpers
/// the CLI and the Execute gate need.
class LintReport {
 public:
  void Add(Diagnostic diagnostic) {
    diagnostics_.push_back(std::move(diagnostic));
  }
  /// Convenience: looks the code up in the registry for its default
  /// severity and summary-derived fields.
  void Add(std::string_view code, std::string artifact, std::string subject,
           std::string message, std::string hint = "");

  /// Appends every finding of `other`.
  void Merge(LintReport other);

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  bool empty() const { return diagnostics_.empty(); }
  size_t size() const { return diagnostics_.size(); }

  size_t CountAtLeast(Severity severity) const;
  bool HasErrors() const { return CountAtLeast(Severity::kError) > 0; }

  /// Distinct check codes present, sorted.
  std::vector<std::string> Codes() const;

  /// Human-readable listing, one finding per line, plus a summary line.
  std::string RenderText() const;
  /// {"findings": [...], "counts": {"error": n, ...}} — stable member order.
  Json ToJson() const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

/// Registry entry describing one check. The registry is the check-code
/// taxonomy: one row per code, with the severity a finding of that code
/// defaults to.
struct CheckInfo {
  std::string_view code;
  Severity default_severity;
  /// One-line description of what the check catches.
  std::string_view summary;
};

/// All registered checks, in code order.
const std::vector<CheckInfo>& AllChecks();

/// Looks up one check; nullptr if the code is unknown.
const CheckInfo* FindCheck(std::string_view code);

}  // namespace lint
}  // namespace daspos

#endif  // DASPOS_LINT_DIAGNOSTICS_H_
