// The `dasposd` server core: a single-threaded reactor serving the archive
// protocol (docs/PROTOCOL.md) to many concurrent clients. Requests are
// handled inline on the loop thread (run-to-completion, the Redis model):
// no handler ever blocks on another client, no lock is shared with another
// thread, and the reactor is TSan-clean by construction. The store behind
// it is whatever backend spec the operator opened (`file:`/`pack:`/
// `pack+z:` via OpenObjectStore).
//
// Flow control: each connection owns a bounded outbox. When queued response
// bytes exceed ServerOptions::max_outbox_bytes the server stops reading
// that connection (drops POLLIN) until the kernel drains the queue below
// half the cap — a slow reader throttles itself, never the daemon, and
// memory per connection stays bounded no matter how hard it pipelines.
//
// Graceful drain (SIGTERM): writing one byte to drain_fd() — safe from a
// signal handler — makes the loop (1) close the listen socket, (2) finish
// any complete requests already buffered, (3) flush every outbox, then
// exit Run() with OK. Half-read request frames are abandoned (their bytes
// were never acknowledged); clients see a clean close after their answered
// requests.
#ifndef DASPOS_NET_SERVER_H_
#define DASPOS_NET_SERVER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>

#include "net/protocol.h"
#include "net/reactor.h"
#include "support/result.h"

namespace daspos {

class Counter;
class Gauge;
class Histogram;
class ObjectStore;

namespace net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read the real one from port() after Start.
  uint16_t port = 0;
  /// Frames whose declared payload exceeds this are protocol errors.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Backpressure cap on queued response bytes per connection.
  size_t max_outbox_bytes = 8u << 20;
  /// Accepted connections beyond this are closed immediately.
  size_t max_connections = 1024;
  /// Human-readable backend label for STAT responses ("pack", "file", ...).
  std::string backend_name = "unknown";
};

class Server {
 public:
  /// The server borrows the store (not owned). It must outlive Run().
  Server(ObjectStore* store, ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds + listens + registers with the loop. After OK, port() is real.
  Status Start();
  /// Runs the reactor until a drain completes (or Stop). Loop thread.
  Status Run();

  uint16_t port() const { return port_; }
  /// Writing one byte here (any thread; async-signal-safe) begins a
  /// graceful drain.
  int drain_fd() const { return loop_.wakeup_fd(); }
  /// Thread-safe drain trigger for tests and embedders.
  void TriggerDrain();

  /// Requests served since Start (loop thread only; tests read it after
  /// Run returns).
  uint64_t requests_served() const { return requests_served_; }

 private:
  struct Connection {
    int fd = -1;
    std::string peer;     ///< "ip:port" for logs
    std::string inbox;    ///< bytes read, not yet framed
    std::deque<std::string> outbox;
    size_t outbox_head = 0;   ///< bytes of outbox.front() already written
    size_t outbox_bytes = 0;  ///< total queued, for backpressure
    bool reading_paused = false;
    bool closing = false;  ///< close once the outbox is flushed
    uint64_t requests = 0;
    uint64_t bytes_in = 0;
    uint64_t bytes_out = 0;
  };

  void OnAcceptable();
  void OnConnectionEvent(int fd, uint32_t revents);
  void ReadFromConnection(Connection& conn);
  void WriteToConnection(Connection& conn);
  /// Frames and dispatches everything complete in the inbox. Returns false
  /// if the connection was closed (protocol error).
  bool DrainInbox(Connection& conn);
  void DispatchRequest(Connection& conn, const FrameHeader& header,
                       std::string_view payload);
  /// Handles one request; the returned payload rides a `type|0x80` frame.
  Result<std::string> HandleRequest(MessageType type, std::string_view payload);
  Result<std::string> HandleLint(std::string_view payload);
  Result<std::string> HandleChain(std::string_view payload);
  std::string HandleStat();

  void Enqueue(Connection& conn, std::string frame);
  void UpdateInterest(Connection& conn);
  /// Counts a malformed frame, sends a best-effort ERROR, and closes after
  /// the flush. The daemon itself always stays up.
  void ProtocolError(Connection& conn, uint64_t request_id,
                     const std::string& detail);
  void CloseConnection(int fd);
  void BeginDrain();
  void CheckDrainComplete();

  ObjectStore* store_;
  ServerOptions options_;
  EventLoop loop_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  bool draining_ = false;
  uint64_t requests_served_ = 0;
  std::map<int, std::unique_ptr<Connection>> connections_;

  Counter* connections_total_;
  Gauge* active_connections_;
  Counter* requests_total_;
  Counter* request_errors_total_;
  Counter* protocol_errors_total_;
  Counter* bytes_read_total_;
  Counter* bytes_written_total_;
  Counter* backpressure_stalls_total_;
  Counter* drains_total_;
  Histogram* request_wall_ms_;
};

}  // namespace net
}  // namespace daspos

#endif  // DASPOS_NET_SERVER_H_
