// Poll-based reactor: the single-threaded event loop under `dasposd`,
// modeled on the rct EventLoop/SocketServer idiom (ROADMAP item 1). Every
// registered fd is non-blocking; the loop polls, then dispatches each
// ready fd's callback with the ready events. Handlers run to completion on
// the loop thread — there is no cross-thread state inside the loop, which
// is what keeps the reactor TSan-clean under any number of clients.
//
// The one cross-thread door is the wakeup pipe: writing a byte to
// wakeup_fd() from any thread (or from a signal handler — write(2) is
// async-signal-safe) makes the loop call the wakeup handler on its own
// thread. Graceful drain rides on this: SIGTERM's handler writes a byte,
// the loop wakes, and the server starts draining without a single shared
// mutable variable beyond the pipe itself.
#ifndef DASPOS_NET_REACTOR_H_
#define DASPOS_NET_REACTOR_H_

#include <cstdint>
#include <functional>
#include <map>

#include "support/status.h"

namespace daspos {
namespace net {

/// Event bits for Add/Modify (mirrors POLLIN/POLLOUT without leaking
/// <poll.h> into every include site).
inline constexpr uint32_t kEventRead = 1u << 0;
inline constexpr uint32_t kEventWrite = 1u << 1;

class EventLoop {
 public:
  /// `revents` is a kEvent* mask; error/hangup conditions are reported as
  /// kEventRead so handlers observe them via read() returning 0/-1.
  using FdHandler = std::function<void(uint32_t revents)>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` (already non-blocking) for `events`. The handler may
  /// call Add/Modify/Remove freely, including removing its own fd.
  Status Add(int fd, uint32_t events, FdHandler handler);
  Status Modify(int fd, uint32_t events);
  void Remove(int fd);
  bool Has(int fd) const { return handlers_.count(fd) != 0; }

  /// Runs until Stop(). Each iteration polls every registered fd plus the
  /// wakeup pipe (with `tick_ms` as the poll timeout so periodic work —
  /// drain re-checks — happens even on an idle socket set), then
  /// dispatches. Returns the first poll-level failure, or OK after Stop.
  Status Run(int tick_ms = 500);

  /// Stops the loop after the current dispatch round. Loop-thread only;
  /// other threads must write to wakeup_fd() and stop from the handler.
  void Stop() { running_ = false; }

  /// Write end of the self-pipe: one byte written here (from any thread or
  /// signal handler) drains the pipe and invokes the wakeup handler.
  int wakeup_fd() const { return wakeup_write_fd_; }
  void set_wakeup_handler(std::function<void()> handler) {
    wakeup_handler_ = std::move(handler);
  }

  /// Invoked once per loop iteration after dispatch (drain progress
  /// checks, timeouts). Optional.
  void set_tick_handler(std::function<void()> handler) {
    tick_handler_ = std::move(handler);
  }

 private:
  struct Registration {
    uint32_t events = 0;
    FdHandler handler;
  };

  std::map<int, Registration> handlers_;
  bool running_ = false;
  int wakeup_read_fd_ = -1;
  int wakeup_write_fd_ = -1;
  std::function<void()> wakeup_handler_;
  std::function<void()> tick_handler_;
};

/// Sets O_NONBLOCK on `fd`.
Status SetNonBlocking(int fd);

}  // namespace net
}  // namespace daspos

#endif  // DASPOS_NET_REACTOR_H_
