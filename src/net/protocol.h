// Wire protocol for `dasposd`: a length-prefixed binary framing over TCP,
// built on the serialize library's little-endian primitives. One frame is
// one message; a request frame carries a client-chosen id that the matching
// response echoes, so a client may pipeline requests and still correlate
// answers. The full byte-level spec (with a worked hexdump) lives in
// docs/PROTOCOL.md — the constants here are its single source of truth and
// CI greps the two against each other.
#ifndef DASPOS_NET_PROTOCOL_H_
#define DASPOS_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/result.h"

namespace daspos {
namespace net {

/// Frame header magic: the ASCII bytes "DPN1" in file order.
inline constexpr char kFrameMagic[4] = {'D', 'P', 'N', '1'};
/// Protocol version carried in every frame. A server rejects frames whose
/// version it does not speak with kWireInvalidArgument (it never guesses).
inline constexpr uint8_t kProtocolVersion = 1;
/// Fixed frame header size: magic(4) + version(1) + type(1) + reserved(2) +
/// request_id(8) + payload_len(4).
inline constexpr size_t kFrameHeaderSize = 20;
/// Default cap on a single frame's payload. A declared length above the
/// server's cap is a protocol error — the connection is closed before any
/// allocation happens, so a hostile 4 GiB declaration costs nothing.
inline constexpr size_t kDefaultMaxFrameBytes = 64ull << 20;

/// Message type registry. Requests are < 0x80; a response type is its
/// request's type | 0x80. kError (0xFF) answers any request that failed.
enum class MessageType : uint8_t {
  kPing = 0x01,      ///< health probe; payload echoed back verbatim
  kGet = 0x02,       ///< payload: object id -> response payload: bytes
  kPut = 0x03,       ///< payload: bytes -> response payload: object id
  kVerify = 0x04,    ///< payload: object id -> empty response
  kPutBatch = 0x05,  ///< payload: count + blobs -> count + ids
  kLint = 0x06,      ///< payload: named artifacts -> lint report JSON
  kChain = 0x07,     ///< payload: process/events/seed -> chain report JSON
  kStat = 0x08,      ///< empty payload -> server/store status JSON

  kPingOk = 0x81,
  kGetOk = 0x82,
  kPutOk = 0x83,
  kVerifyOk = 0x84,
  kPutBatchOk = 0x85,
  kLintOk = 0x86,
  kChainOk = 0x87,
  kStatOk = 0x88,

  kError = 0xFF,  ///< payload: wire status code (u8) + message string
};

/// True for the request half of the registry (valid things a client sends).
bool IsRequestType(uint8_t type);
/// The response type matching a request type (kGet -> kGetOk).
MessageType ResponseTypeFor(MessageType request);
/// Human-readable name ("GET", "PUT_BATCH_OK", ...) for logs and errors.
std::string_view MessageTypeName(MessageType type);

/// Error-code table: the u8 a kError payload leads with. Pinned values —
/// the wire contract must not move when StatusCode gains members.
inline constexpr uint8_t kWireNotFound = 1;
inline constexpr uint8_t kWireAlreadyExists = 2;
inline constexpr uint8_t kWireInvalidArgument = 3;
inline constexpr uint8_t kWireCorruption = 4;
inline constexpr uint8_t kWireIOError = 5;
inline constexpr uint8_t kWireFailedPrecondition = 6;
inline constexpr uint8_t kWirePermissionDenied = 7;
inline constexpr uint8_t kWireUnimplemented = 8;
inline constexpr uint8_t kWireOutOfRange = 9;
inline constexpr uint8_t kWireDeadlineExceeded = 10;
inline constexpr uint8_t kWireUnavailable = 11;  ///< server draining/overloaded
inline constexpr uint8_t kWireProtocolError = 12;  ///< malformed frame

/// Maps a non-OK Status onto its wire code (unknown codes fall back to
/// kWireIOError so every failure is representable).
uint8_t WireCodeForStatus(const Status& status);
/// Reconstructs a Status from a wire code + message; unknown codes come
/// back as IOError carrying the code in the message.
Status StatusFromWire(uint8_t code, std::string message);

/// Decoded frame header.
struct FrameHeader {
  uint8_t version = 0;
  uint8_t type = 0;
  uint64_t request_id = 0;
  uint32_t payload_len = 0;
};

/// Encodes header + payload into one contiguous wire frame.
std::string EncodeFrame(MessageType type, uint64_t request_id,
                        std::string_view payload);

/// Parses the first kFrameHeaderSize bytes of `bytes`. Fails with
/// Corruption on short input, bad magic, or unsupported version; the
/// declared payload length is NOT bounds-checked here (the caller owns the
/// cap, because the cap is policy, not format).
Result<FrameHeader> DecodeFrameHeader(std::string_view bytes);

/// Builds / parses a kError payload.
std::string EncodeErrorPayload(const Status& status);
/// Same, with an explicit wire code — for the codes no Status maps to
/// (kWireProtocolError, kWireUnavailable).
std::string EncodeErrorPayloadWithCode(uint8_t code, std::string_view message);
/// Decodes a kError payload into the Status it carries. A malformed error
/// payload is itself a wire corruption, so that too comes back as a non-OK
/// Status — this function never returns OK.
Status DecodeErrorPayload(std::string_view payload);

/// One artifact submitted to the remote linter.
struct LintArtifact {
  std::string name;  ///< logical file name; no '/' or ".." allowed
  std::string bytes;
};

/// Chain-submission request body.
struct ChainRequest {
  std::string process;
  uint64_t events = 0;
  uint64_t seed = 0;
};

/// Payload codecs for the structured request bodies (Get/Put/Verify carry
/// their string argument raw, so they need no codec).
std::string EncodePutBatchRequest(const std::vector<std::string>& blobs);
Result<std::vector<std::string>> DecodePutBatchRequest(
    std::string_view payload);
std::string EncodePutBatchResponse(const std::vector<std::string>& ids);
Result<std::vector<std::string>> DecodePutBatchResponse(
    std::string_view payload);
std::string EncodeLintRequest(const std::vector<LintArtifact>& artifacts);
Result<std::vector<LintArtifact>> DecodeLintRequest(std::string_view payload);
std::string EncodeChainRequest(const ChainRequest& request);
Result<ChainRequest> DecodeChainRequest(std::string_view payload);

}  // namespace net
}  // namespace daspos

#endif  // DASPOS_NET_PROTOCOL_H_
