// Thin blocking client for the dasposd wire protocol (docs/PROTOCOL.md).
// One Client owns one TCP connection; every call sends one request frame
// and blocks until the matching response frame arrives (requests are
// correlated by id, so a future pipelined client can share the codec).
// Not thread-safe: callers wanting concurrency open one Client per thread —
// that is also how the bench drives the server at N clients.
#ifndef DASPOS_NET_CLIENT_H_
#define DASPOS_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/protocol.h"
#include "support/result.h"

namespace daspos {
namespace net {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects to "host:port" (IPv4 dotted quad or "localhost").
  static Result<Client> Connect(const std::string& host_port);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Round-trips the payload through the server; the echo must match.
  Status Ping(std::string_view payload = "daspos");

  Result<std::string> Get(const std::string& id);
  Result<std::string> Put(std::string_view bytes);
  Status Verify(const std::string& id);
  Result<std::vector<std::string>> PutBatch(
      const std::vector<std::string>& blobs);
  /// Submits named artifacts for remote linting; returns the report JSON.
  Result<std::string> Lint(const std::vector<LintArtifact>& artifacts);
  /// Submits a chain run; returns the workflow report JSON.
  Result<std::string> Chain(const std::string& process, uint64_t events,
                            uint64_t seed);
  /// Server/store status JSON.
  Result<std::string> Stat();

  /// One full round trip at the frame level: sends `payload` under `type`,
  /// reads exactly one response frame, unwraps ERROR frames into their
  /// Status. Exposed for tests that need to speak raw frames.
  Result<std::string> RoundTrip(MessageType type, std::string_view payload);

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// Writes all of `bytes`, looping over partial writes.
  Status WriteAll(std::string_view bytes);
  /// Reads exactly `n` bytes into `out`. A connection that closes mid-read
  /// fails with Corruption("torn frame ...") — a half-delivered response is
  /// indistinguishable from a truncated one and must never be trusted.
  Status ReadExactly(size_t n, std::string* out);

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
};

}  // namespace net
}  // namespace daspos

#endif  // DASPOS_NET_CLIENT_H_
