#include "net/reactor.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cstring>
#include <vector>

namespace daspos {
namespace net {

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(std::string("fcntl(O_NONBLOCK): ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

EventLoop::EventLoop() {
  int fds[2] = {-1, -1};
  if (pipe(fds) == 0) {
    wakeup_read_fd_ = fds[0];
    wakeup_write_fd_ = fds[1];
    (void)SetNonBlocking(wakeup_read_fd_);
    (void)SetNonBlocking(wakeup_write_fd_);
  }
}

EventLoop::~EventLoop() {
  if (wakeup_read_fd_ >= 0) close(wakeup_read_fd_);
  if (wakeup_write_fd_ >= 0) close(wakeup_write_fd_);
}

Status EventLoop::Add(int fd, uint32_t events, FdHandler handler) {
  if (fd < 0) return Status::InvalidArgument("EventLoop::Add: bad fd");
  if (handlers_.count(fd) != 0) {
    return Status::AlreadyExists("fd " + std::to_string(fd) +
                                 " already registered");
  }
  handlers_[fd] = Registration{events, std::move(handler)};
  return Status::OK();
}

Status EventLoop::Modify(int fd, uint32_t events) {
  auto it = handlers_.find(fd);
  if (it == handlers_.end()) {
    return Status::NotFound("fd " + std::to_string(fd) + " not registered");
  }
  it->second.events = events;
  return Status::OK();
}

void EventLoop::Remove(int fd) { handlers_.erase(fd); }

Status EventLoop::Run(int tick_ms) {
  running_ = true;
  std::vector<pollfd> pollset;
  while (running_) {
    pollset.clear();
    if (wakeup_read_fd_ >= 0) {
      pollset.push_back(pollfd{wakeup_read_fd_, POLLIN, 0});
    }
    for (const auto& [fd, reg] : handlers_) {
      short events = 0;
      if (reg.events & kEventRead) events |= POLLIN;
      if (reg.events & kEventWrite) events |= POLLOUT;
      pollset.push_back(pollfd{fd, events, 0});
    }
    int ready = poll(pollset.data(), pollset.size(), tick_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;  // signal delivery; the pipe carries it
      return Status::IOError(std::string("poll: ") + std::strerror(errno));
    }
    for (const pollfd& entry : pollset) {
      if (entry.revents == 0) continue;
      if (entry.fd == wakeup_read_fd_) {
        char buf[64];
        while (read(wakeup_read_fd_, buf, sizeof(buf)) > 0) {
        }
        if (wakeup_handler_) wakeup_handler_();
        continue;
      }
      // A handler earlier in this round may have removed this fd.
      auto it = handlers_.find(entry.fd);
      if (it == handlers_.end()) continue;
      uint32_t revents = 0;
      if (entry.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL)) {
        revents |= kEventRead;
      }
      if (entry.revents & POLLOUT) revents |= kEventWrite;
      // Copying the handler keeps the call valid even if it removes itself.
      FdHandler handler = it->second.handler;
      handler(revents);
      if (!running_) break;
    }
    if (tick_handler_) tick_handler_();
  }
  return Status::OK();
}

}  // namespace net
}  // namespace daspos
