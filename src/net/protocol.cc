#include "net/protocol.h"

#include <cstring>

#include "serialize/binary.h"

namespace daspos {
namespace net {

bool IsRequestType(uint8_t type) {
  switch (static_cast<MessageType>(type)) {
    case MessageType::kPing:
    case MessageType::kGet:
    case MessageType::kPut:
    case MessageType::kVerify:
    case MessageType::kPutBatch:
    case MessageType::kLint:
    case MessageType::kChain:
    case MessageType::kStat:
      return true;
    default:
      return false;
  }
}

MessageType ResponseTypeFor(MessageType request) {
  return static_cast<MessageType>(static_cast<uint8_t>(request) | 0x80u);
}

std::string_view MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kPing: return "PING";
    case MessageType::kGet: return "GET";
    case MessageType::kPut: return "PUT";
    case MessageType::kVerify: return "VERIFY";
    case MessageType::kPutBatch: return "PUT_BATCH";
    case MessageType::kLint: return "LINT";
    case MessageType::kChain: return "CHAIN";
    case MessageType::kStat: return "STAT";
    case MessageType::kPingOk: return "PING_OK";
    case MessageType::kGetOk: return "GET_OK";
    case MessageType::kPutOk: return "PUT_OK";
    case MessageType::kVerifyOk: return "VERIFY_OK";
    case MessageType::kPutBatchOk: return "PUT_BATCH_OK";
    case MessageType::kLintOk: return "LINT_OK";
    case MessageType::kChainOk: return "CHAIN_OK";
    case MessageType::kStatOk: return "STAT_OK";
    case MessageType::kError: return "ERROR";
  }
  return "UNKNOWN";
}

uint8_t WireCodeForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kNotFound: return kWireNotFound;
    case StatusCode::kAlreadyExists: return kWireAlreadyExists;
    case StatusCode::kInvalidArgument: return kWireInvalidArgument;
    case StatusCode::kCorruption: return kWireCorruption;
    case StatusCode::kIOError: return kWireIOError;
    case StatusCode::kFailedPrecondition: return kWireFailedPrecondition;
    case StatusCode::kPermissionDenied: return kWirePermissionDenied;
    case StatusCode::kUnimplemented: return kWireUnimplemented;
    case StatusCode::kOutOfRange: return kWireOutOfRange;
    case StatusCode::kDeadlineExceeded: return kWireDeadlineExceeded;
    case StatusCode::kOk: break;  // callers never encode OK
  }
  return kWireIOError;
}

Status StatusFromWire(uint8_t code, std::string message) {
  switch (code) {
    case kWireNotFound: return Status::NotFound(std::move(message));
    case kWireAlreadyExists: return Status::AlreadyExists(std::move(message));
    case kWireInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case kWireCorruption: return Status::Corruption(std::move(message));
    case kWireIOError: return Status::IOError(std::move(message));
    case kWireFailedPrecondition:
      return Status::FailedPrecondition(std::move(message));
    case kWirePermissionDenied:
      return Status::PermissionDenied(std::move(message));
    case kWireUnimplemented: return Status::Unimplemented(std::move(message));
    case kWireOutOfRange: return Status::OutOfRange(std::move(message));
    case kWireDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(message));
    case kWireUnavailable:
      return Status::FailedPrecondition("server unavailable: " +
                                        std::move(message));
    case kWireProtocolError:
      return Status::Corruption("protocol error: " + std::move(message));
    default:
      return Status::IOError("unknown wire error code " +
                             std::to_string(code) + ": " + std::move(message));
  }
}

std::string EncodeFrame(MessageType type, uint64_t request_id,
                        std::string_view payload) {
  BinaryWriter writer;
  writer.Reserve(kFrameHeaderSize + payload.size());
  writer.PutRaw(std::string_view(kFrameMagic, sizeof(kFrameMagic)));
  writer.PutU8(kProtocolVersion);
  writer.PutU8(static_cast<uint8_t>(type));
  writer.PutU8(0);  // reserved
  writer.PutU8(0);  // reserved
  writer.PutU64(request_id);
  writer.PutU32(static_cast<uint32_t>(payload.size()));
  writer.PutRaw(payload);
  return writer.TakeBuffer();
}

Result<FrameHeader> DecodeFrameHeader(std::string_view bytes) {
  if (bytes.size() < kFrameHeaderSize) {
    return Status::Corruption("frame header truncated: " +
                              std::to_string(bytes.size()) + " of " +
                              std::to_string(kFrameHeaderSize) + " bytes");
  }
  if (std::memcmp(bytes.data(), kFrameMagic, sizeof(kFrameMagic)) != 0) {
    return Status::Corruption("bad frame magic");
  }
  BinaryReader reader(bytes.substr(sizeof(kFrameMagic)));
  FrameHeader header;
  DASPOS_ASSIGN_OR_RETURN(header.version, reader.GetU8());
  DASPOS_ASSIGN_OR_RETURN(header.type, reader.GetU8());
  DASPOS_ASSIGN_OR_RETURN(uint8_t reserved0, reader.GetU8());
  DASPOS_ASSIGN_OR_RETURN(uint8_t reserved1, reader.GetU8());
  if (reserved0 != 0 || reserved1 != 0) {
    return Status::Corruption("nonzero reserved bytes in frame header");
  }
  DASPOS_ASSIGN_OR_RETURN(header.request_id, reader.GetU64());
  DASPOS_ASSIGN_OR_RETURN(header.payload_len, reader.GetU32());
  if (header.version != kProtocolVersion) {
    return Status::Corruption("unsupported protocol version " +
                              std::to_string(header.version));
  }
  return header;
}

std::string EncodeErrorPayload(const Status& status) {
  return EncodeErrorPayloadWithCode(WireCodeForStatus(status),
                                    status.message());
}

std::string EncodeErrorPayloadWithCode(uint8_t code,
                                       std::string_view message) {
  BinaryWriter writer;
  writer.PutU8(code);
  writer.PutString(message);
  return writer.TakeBuffer();
}

Status DecodeErrorPayload(std::string_view payload) {
  BinaryReader reader(payload);
  auto code = reader.GetU8();
  if (!code.ok()) {
    return Status::Corruption("malformed error payload: " +
                              code.status().message());
  }
  auto message = reader.GetString();
  if (!message.ok()) {
    return Status::Corruption("malformed error payload: " +
                              message.status().message());
  }
  return StatusFromWire(*code, std::move(*message));
}

namespace {

std::string EncodeStringList(const std::vector<std::string>& items) {
  BinaryWriter writer;
  size_t total = 0;
  for (const std::string& item : items) total += item.size() + 5;
  writer.Reserve(total + 10);
  writer.PutVarint(items.size());
  for (const std::string& item : items) writer.PutString(item);
  return writer.TakeBuffer();
}

Result<std::vector<std::string>> DecodeStringList(std::string_view payload) {
  BinaryReader reader(payload);
  DASPOS_ASSIGN_OR_RETURN(uint64_t count, reader.GetVarint());
  // A count that cannot fit in the remaining bytes is malformed even before
  // the first element is read (each element costs >= 1 length byte).
  if (count > reader.remaining()) {
    return Status::Corruption("string list declares " + std::to_string(count) +
                              " items in " +
                              std::to_string(reader.remaining()) + " bytes");
  }
  std::vector<std::string> items;
  items.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    DASPOS_ASSIGN_OR_RETURN(std::string item, reader.GetString());
    items.push_back(std::move(item));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after string list");
  }
  return items;
}

}  // namespace

std::string EncodePutBatchRequest(const std::vector<std::string>& blobs) {
  return EncodeStringList(blobs);
}
Result<std::vector<std::string>> DecodePutBatchRequest(
    std::string_view payload) {
  return DecodeStringList(payload);
}
std::string EncodePutBatchResponse(const std::vector<std::string>& ids) {
  return EncodeStringList(ids);
}
Result<std::vector<std::string>> DecodePutBatchResponse(
    std::string_view payload) {
  return DecodeStringList(payload);
}

std::string EncodeLintRequest(const std::vector<LintArtifact>& artifacts) {
  BinaryWriter writer;
  writer.PutVarint(artifacts.size());
  for (const LintArtifact& artifact : artifacts) {
    writer.PutString(artifact.name);
    writer.PutString(artifact.bytes);
  }
  return writer.TakeBuffer();
}

Result<std::vector<LintArtifact>> DecodeLintRequest(std::string_view payload) {
  BinaryReader reader(payload);
  DASPOS_ASSIGN_OR_RETURN(uint64_t count, reader.GetVarint());
  if (count > reader.remaining()) {
    return Status::Corruption("lint request declares " +
                              std::to_string(count) + " artifacts in " +
                              std::to_string(reader.remaining()) + " bytes");
  }
  std::vector<LintArtifact> artifacts;
  artifacts.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    LintArtifact artifact;
    DASPOS_ASSIGN_OR_RETURN(artifact.name, reader.GetString());
    DASPOS_ASSIGN_OR_RETURN(artifact.bytes, reader.GetString());
    artifacts.push_back(std::move(artifact));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after lint request");
  }
  return artifacts;
}

std::string EncodeChainRequest(const ChainRequest& request) {
  BinaryWriter writer;
  writer.PutString(request.process);
  writer.PutVarint(request.events);
  writer.PutVarint(request.seed);
  return writer.TakeBuffer();
}

Result<ChainRequest> DecodeChainRequest(std::string_view payload) {
  BinaryReader reader(payload);
  ChainRequest request;
  DASPOS_ASSIGN_OR_RETURN(request.process, reader.GetString());
  DASPOS_ASSIGN_OR_RETURN(request.events, reader.GetVarint());
  DASPOS_ASSIGN_OR_RETURN(request.seed, reader.GetVarint());
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after chain request");
  }
  return request;
}

}  // namespace net
}  // namespace daspos
