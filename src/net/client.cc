#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

namespace daspos {
namespace net {

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), next_request_id_(other.next_request_id_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    next_request_id_ = other.next_request_id_;
    other.fd_ = -1;
  }
  return *this;
}

void Client::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Result<Client> Client::Connect(const std::string& host_port) {
  const size_t colon = host_port.rfind(':');
  if (colon == std::string::npos || colon + 1 == host_port.size()) {
    return Status::InvalidArgument("expected host:port, got '" + host_port +
                                   "'");
  }
  std::string host = host_port.substr(0, colon);
  if (host == "localhost") host = "127.0.0.1";
  int port = 0;
  for (size_t i = colon + 1; i < host_port.size(); ++i) {
    const char c = host_port[i];
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad port in '" + host_port + "'");
    }
    port = port * 10 + (c - '0');
    if (port > 65535) {
      return Status::InvalidArgument("port out of range in '" + host_port +
                                     "'");
    }
  }
  if (port == 0) {
    return Status::InvalidArgument("port 0 is not connectable");
  }

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host '" + host +
                                   "' (IPv4 dotted quad or 'localhost')");
  }
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = Status::IOError("connect " + host_port + ": " +
                                    std::strerror(errno));
    close(fd);
    return status;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Client(fd);
}

Status Client::WriteAll(std::string_view bytes) {
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = write(fd_, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status =
          Status::IOError(std::string("write: ") + std::strerror(errno));
      Close();
      return status;
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Client::ReadExactly(size_t n, std::string* out) {
  out->clear();
  out->reserve(n);
  char buffer[64 * 1024];
  while (out->size() < n) {
    const size_t want = std::min(n - out->size(), sizeof(buffer));
    ssize_t got = read(fd_, buffer, want);
    if (got < 0) {
      if (errno == EINTR) continue;
      Status status =
          Status::IOError(std::string("read: ") + std::strerror(errno));
      Close();
      return status;
    }
    if (got == 0) {
      Close();
      return Status::Corruption("torn frame: connection closed after " +
                                std::to_string(out->size()) + " of " +
                                std::to_string(n) + " expected bytes");
    }
    out->append(buffer, static_cast<size_t>(got));
  }
  return Status::OK();
}

Result<std::string> Client::RoundTrip(MessageType type,
                                      std::string_view payload) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("client is not connected");
  }
  const uint64_t request_id = next_request_id_++;
  DASPOS_RETURN_IF_ERROR(WriteAll(EncodeFrame(type, request_id, payload)));

  std::string header_bytes;
  DASPOS_RETURN_IF_ERROR(ReadExactly(kFrameHeaderSize, &header_bytes));
  DASPOS_ASSIGN_OR_RETURN(FrameHeader header,
                          DecodeFrameHeader(header_bytes));
  std::string response;
  DASPOS_RETURN_IF_ERROR(ReadExactly(header.payload_len, &response));

  if (header.request_id != request_id) {
    Close();  // the stream is desynchronized; nothing after it is trustable
    return Status::Corruption(
        "response correlates to request " + std::to_string(header.request_id) +
        ", expected " + std::to_string(request_id));
  }
  if (header.type == static_cast<uint8_t>(MessageType::kError)) {
    return DecodeErrorPayload(response);
  }
  if (header.type != static_cast<uint8_t>(ResponseTypeFor(type))) {
    Close();
    return Status::Corruption(
        "unexpected response type 0x" + std::to_string(header.type) + " to " +
        std::string(MessageTypeName(type)));
  }
  return response;
}

Status Client::Ping(std::string_view payload) {
  DASPOS_ASSIGN_OR_RETURN(std::string echo,
                          RoundTrip(MessageType::kPing, payload));
  if (echo != payload) {
    return Status::Corruption("ping echo mismatch: sent " +
                              std::to_string(payload.size()) +
                              " bytes, got " + std::to_string(echo.size()));
  }
  return Status::OK();
}

Result<std::string> Client::Get(const std::string& id) {
  return RoundTrip(MessageType::kGet, id);
}

Result<std::string> Client::Put(std::string_view bytes) {
  return RoundTrip(MessageType::kPut, bytes);
}

Status Client::Verify(const std::string& id) {
  DASPOS_ASSIGN_OR_RETURN(std::string empty,
                          RoundTrip(MessageType::kVerify, id));
  (void)empty;
  return Status::OK();
}

Result<std::vector<std::string>> Client::PutBatch(
    const std::vector<std::string>& blobs) {
  DASPOS_ASSIGN_OR_RETURN(
      std::string response,
      RoundTrip(MessageType::kPutBatch, EncodePutBatchRequest(blobs)));
  DASPOS_ASSIGN_OR_RETURN(std::vector<std::string> ids,
                          DecodePutBatchResponse(response));
  if (ids.size() != blobs.size()) {
    return Status::Corruption("put-batch returned " +
                              std::to_string(ids.size()) + " ids for " +
                              std::to_string(blobs.size()) + " blobs");
  }
  return ids;
}

Result<std::string> Client::Lint(const std::vector<LintArtifact>& artifacts) {
  return RoundTrip(MessageType::kLint, EncodeLintRequest(artifacts));
}

Result<std::string> Client::Chain(const std::string& process, uint64_t events,
                                  uint64_t seed) {
  ChainRequest request;
  request.process = process;
  request.events = events;
  request.seed = seed;
  return RoundTrip(MessageType::kChain, EncodeChainRequest(request));
}

Result<std::string> Client::Stat() {
  return RoundTrip(MessageType::kStat, "");
}

}  // namespace net
}  // namespace daspos
