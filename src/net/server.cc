#include "net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <vector>

#include "archive/object_store.h"
#include "conditions/store.h"
#include "detsim/calib.h"
#include "lint/diagnostics.h"
#include "lint/linter.h"
#include "mc/process.h"
#include "serialize/json.h"
#include "support/io.h"
#include "support/logging.h"
#include "support/metrics_registry.h"
#include "support/trace.h"
#include "workflow/steps.h"

namespace daspos {
namespace net {

namespace {

/// Upper bound on a remote chain submission: the request runs inline on
/// the loop thread, so an absurd event count must be rejected, not served.
constexpr uint64_t kMaxChainEvents = 100000;

std::string PeerName(const sockaddr_in& addr) {
  char ip[INET_ADDRSTRLEN] = {0};
  inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip));
  return std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));
}

/// Artifact names become temp-file names; anything that could traverse out
/// of the scratch directory is rejected before any byte lands on disk.
Status ValidateArtifactName(const std::string& name) {
  if (name.empty() || name.size() > 255) {
    return Status::InvalidArgument("bad artifact name length");
  }
  if (name.find('/') != std::string::npos ||
      name.find('\\') != std::string::npos ||
      name.find("..") != std::string::npos || name[0] == '.') {
    return Status::InvalidArgument("artifact name '" + name +
                                   "' may not contain path components");
  }
  return Status::OK();
}

}  // namespace

Server::Server(ObjectStore* store, ServerOptions options)
    : store_(store), options_(std::move(options)) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  connections_total_ = &registry.GetCounter(
      metric_names::kNetConnectionsTotal, "client connections accepted");
  active_connections_ = &registry.GetGauge(
      metric_names::kNetActiveConnections, "client connections open now");
  requests_total_ = &registry.GetCounter(metric_names::kNetRequestsTotal,
                                         "request frames dispatched");
  request_errors_total_ =
      &registry.GetCounter(metric_names::kNetRequestErrorsTotal,
                           "requests answered with an ERROR frame");
  protocol_errors_total_ = &registry.GetCounter(
      metric_names::kNetProtocolErrorsTotal, "malformed frames");
  bytes_read_total_ = &registry.GetCounter(metric_names::kNetBytesReadTotal,
                                           "bytes read from client sockets");
  bytes_written_total_ =
      &registry.GetCounter(metric_names::kNetBytesWrittenTotal,
                           "bytes written to client sockets");
  backpressure_stalls_total_ =
      &registry.GetCounter(metric_names::kNetBackpressureStallsTotal,
                           "reads paused by a full outbox");
  drains_total_ = &registry.GetCounter(metric_names::kNetDrainsTotal,
                                       "graceful drains begun");
  request_wall_ms_ =
      &registry.GetHistogram(metric_names::kNetRequestWallMs,
                             Histogram::DefaultLatencyBucketsMs(),
                             "per-request wall time");
}

Server::~Server() {
  for (auto& [fd, conn] : connections_) {
    close(fd);
    (void)conn;
  }
  connections_.clear();
  if (listen_fd_ >= 0) close(listen_fd_);
}

Status Server::Start() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  const std::string host =
      options_.host == "localhost" ? "127.0.0.1" : options_.host;
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address '" + options_.host +
                                   "' (IPv4 dotted quad or 'localhost')");
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::IOError("bind " + host + ":" +
                           std::to_string(options_.port) + ": " +
                           std::strerror(errno));
  }
  if (listen(listen_fd_, SOMAXCONN) < 0) {
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Status::IOError(std::string("getsockname: ") +
                           std::strerror(errno));
  }
  port_ = ntohs(addr.sin_port);
  DASPOS_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));
  DASPOS_RETURN_IF_ERROR(
      loop_.Add(listen_fd_, kEventRead, [this](uint32_t) { OnAcceptable(); }));
  loop_.set_wakeup_handler([this] { BeginDrain(); });
  loop_.set_tick_handler([this] { CheckDrainComplete(); });
  return Status::OK();
}

Status Server::Run() { return loop_.Run(); }

void Server::TriggerDrain() {
  char byte = 'D';
  ssize_t ignored = write(loop_.wakeup_fd(), &byte, 1);
  (void)ignored;
}

void Server::OnAcceptable() {
  for (;;) {
    sockaddr_in addr;
    socklen_t len = sizeof(addr);
    int fd = accept(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      DASPOS_LOG(kWarning) << "dasposd: accept failed: "
                           << std::strerror(errno);
      return;
    }
    if (draining_ || connections_.size() >= options_.max_connections) {
      close(fd);
      continue;
    }
    if (auto status = SetNonBlocking(fd); !status.ok()) {
      close(fd);
      continue;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->peer = PeerName(addr);
    Status added = loop_.Add(
        fd, kEventRead, [this, fd](uint32_t revents) {
          OnConnectionEvent(fd, revents);
        });
    if (!added.ok()) {
      close(fd);
      continue;
    }
    connections_[fd] = std::move(conn);
    connections_total_->Increment();
    active_connections_->Add(1);
  }
}

void Server::OnConnectionEvent(int fd, uint32_t revents) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = *it->second;
  if (revents & kEventWrite) WriteToConnection(conn);
  // The write may have closed the connection (flush-then-close).
  if (connections_.count(fd) == 0) return;
  if ((revents & kEventRead) && !conn.reading_paused && !conn.closing) {
    ReadFromConnection(conn);
  }
}

void Server::ReadFromConnection(Connection& conn) {
  char buffer[64 * 1024];
  for (;;) {
    ssize_t n = read(conn.fd, buffer, sizeof(buffer));
    if (n > 0) {
      conn.inbox.append(buffer, static_cast<size_t>(n));
      conn.bytes_in += static_cast<uint64_t>(n);
      bytes_read_total_->Increment(static_cast<uint64_t>(n));
      if (!DrainInbox(conn)) return;  // closed on protocol error
      if (conn.reading_paused || conn.closing) return;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    // EOF or hard error. A partial frame left behind means the client
    // disconnected mid-frame — counted so operators can see torn clients.
    if (!conn.inbox.empty()) {
      protocol_errors_total_->Increment();
      DASPOS_LOG(kInfo) << "dasposd: " << conn.peer << " disconnected with "
                        << conn.inbox.size() << " unframed byte(s)";
    }
    CloseConnection(conn.fd);
    return;
  }
}

bool Server::DrainInbox(Connection& conn) {
  const int fd = conn.fd;
  size_t consumed = 0;
  while (conn.inbox.size() - consumed >= kFrameHeaderSize) {
    std::string_view rest =
        std::string_view(conn.inbox).substr(consumed);
    auto header = DecodeFrameHeader(rest);
    if (!header.ok()) {
      ProtocolError(conn, 0, header.status().message());
      return false;
    }
    if (header->payload_len > options_.max_frame_bytes) {
      ProtocolError(conn, header->request_id,
                    "declared payload of " +
                        std::to_string(header->payload_len) +
                        " bytes exceeds the " +
                        std::to_string(options_.max_frame_bytes) +
                        "-byte frame cap");
      return false;
    }
    if (rest.size() - kFrameHeaderSize < header->payload_len) break;
    std::string_view payload = rest.substr(kFrameHeaderSize,
                                           header->payload_len);
    DispatchRequest(conn, *header, payload);
    // A hard write error inside the dispatch closes (and frees) the
    // connection; `conn` must not be touched again in that case.
    if (connections_.count(fd) == 0) return false;
    consumed += kFrameHeaderSize + header->payload_len;
    if (conn.closing) break;  // an unknown type closes after the error frame
  }
  if (consumed > 0) conn.inbox.erase(0, consumed);
  return true;
}

void Server::DispatchRequest(Connection& conn, const FrameHeader& header,
                             std::string_view payload) {
  if (!IsRequestType(header.type)) {
    ProtocolError(conn, header.request_id,
                  "unknown message type 0x" + [t = header.type] {
                    char buf[3];
                    std::snprintf(buf, sizeof(buf), "%02x", t);
                    return std::string(buf);
                  }());
    return;
  }
  const MessageType type = static_cast<MessageType>(header.type);
  requests_total_->Increment();
  ++conn.requests;
  ++requests_served_;
  const auto start = std::chrono::steady_clock::now();
  Result<std::string> response = [&]() -> Result<std::string> {
    Span span("net:request", "net");
    span.AddAttribute("type", MessageTypeName(type));
    span.AddAttribute("bytes", static_cast<uint64_t>(payload.size()));
    span.AddAttribute("peer", conn.peer);
    return HandleRequest(type, payload);
  }();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  request_wall_ms_->Observe(wall_ms);
  if (response.ok()) {
    Enqueue(conn, EncodeFrame(ResponseTypeFor(type), header.request_id,
                              *response));
  } else {
    request_errors_total_->Increment();
    Enqueue(conn, EncodeFrame(MessageType::kError, header.request_id,
                              EncodeErrorPayload(response.status())));
  }
}

Result<std::string> Server::HandleRequest(MessageType type,
                                          std::string_view payload) {
  switch (type) {
    case MessageType::kPing:
      return std::string(payload);
    case MessageType::kGet:
      return store_->Get(std::string(payload));
    case MessageType::kPut:
      return store_->Put(payload);
    case MessageType::kVerify: {
      DASPOS_RETURN_IF_ERROR(store_->Verify(std::string(payload)));
      return std::string();
    }
    case MessageType::kPutBatch: {
      DASPOS_ASSIGN_OR_RETURN(std::vector<std::string> blobs,
                              DecodePutBatchRequest(payload));
      std::vector<std::string_view> views(blobs.begin(), blobs.end());
      DASPOS_ASSIGN_OR_RETURN(std::vector<std::string> ids,
                              store_->PutBatch(views));
      return EncodePutBatchResponse(ids);
    }
    case MessageType::kLint:
      return HandleLint(payload);
    case MessageType::kChain:
      return HandleChain(payload);
    case MessageType::kStat:
      return HandleStat();
    default:
      return Status::Unimplemented("no handler for message type " +
                                   std::to_string(static_cast<int>(type)));
  }
}

Result<std::string> Server::HandleLint(std::string_view payload) {
  DASPOS_ASSIGN_OR_RETURN(std::vector<LintArtifact> artifacts,
                          DecodeLintRequest(payload));
  if (artifacts.empty()) {
    return Status::InvalidArgument("lint request carries no artifacts");
  }
  for (const LintArtifact& artifact : artifacts) {
    DASPOS_RETURN_IF_ERROR(ValidateArtifactName(artifact.name));
  }
  // The linter sniffs artifact kinds from disk paths, so the submitted
  // bytes land in a per-request scratch directory that is removed before
  // the response is framed (the no-orphaned-temp-files drain contract).
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::path scratch =
      fs::temp_directory_path(ec) /
      ("dasposd-lint-" + std::to_string(getpid()) + "-" +
       std::to_string(requests_served_));
  if (ec) return Status::IOError("no temp directory: " + ec.message());
  fs::create_directories(scratch, ec);
  if (ec) {
    return Status::IOError("cannot create lint scratch dir: " + ec.message());
  }
  lint::LintReport report;
  Status failure = Status::OK();
  for (const LintArtifact& artifact : artifacts) {
    const std::string path = (scratch / artifact.name).string();
    if (Status written = WriteStringToFile(path, artifact.bytes);
        !written.ok()) {
      failure = written;
      break;
    }
    report.Merge(lint::LintPath(path));
  }
  fs::remove_all(scratch, ec);  // best effort; scratch is per-request
  if (!failure.ok()) return failure;
  return report.ToJson().Dump(2);
}

Result<std::string> Server::HandleChain(std::string_view payload) {
  DASPOS_ASSIGN_OR_RETURN(ChainRequest request, DecodeChainRequest(payload));
  if (request.events == 0 || request.events > kMaxChainEvents) {
    return Status::InvalidArgument(
        "chain event count must be in [1, " +
        std::to_string(kMaxChainEvents) + "], got " +
        std::to_string(request.events));
  }
  Process process = Process::kMinimumBias;
  bool known = false;
  for (const ProcessInfo& info : AllProcesses()) {
    if (info.name == request.process) {
      process = info.id;
      known = true;
    }
  }
  if (!known) {
    return Status::InvalidArgument("unknown process '" + request.process +
                                   "'");
  }
  Workflow workflow = StandardChainWorkflow(
      process, static_cast<size_t>(request.events), request.seed);
  ConditionsDb conditions;
  CalibrationSet calib;
  DASPOS_RETURN_IF_ERROR(
      conditions.Append(kCalibrationTag, 1, calib.ToPayload()));
  WorkflowContext context;
  context.set_conditions(&conditions);
  ExecuteOptions options;
  options.max_threads = 1;  // inline on the loop thread; serial by contract
  DASPOS_ASSIGN_OR_RETURN(WorkflowReport report,
                          workflow.Execute(&context, nullptr, options));
  return report.ToJson().Dump(2);
}

std::string Server::HandleStat() {
  Json stat = Json::Object();
  stat["backend"] = options_.backend_name;
  stat["total_bytes"] = store_->TotalBytes();
  stat["connections"] = static_cast<uint64_t>(connections_.size());
  stat["requests_served"] = requests_served_;
  stat["draining"] = draining_;
  stat["protocol_version"] = static_cast<uint64_t>(kProtocolVersion);
  return stat.Dump(2);
}

void Server::Enqueue(Connection& conn, std::string frame) {
  conn.outbox_bytes += frame.size();
  conn.outbox.push_back(std::move(frame));
  WriteToConnection(conn);
}

void Server::WriteToConnection(Connection& conn) {
  const int fd = conn.fd;
  while (!conn.outbox.empty()) {
    const std::string& front = conn.outbox.front();
    ssize_t n = write(fd, front.data() + conn.outbox_head,
                      front.size() - conn.outbox_head);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      CloseConnection(fd);
      return;
    }
    conn.bytes_out += static_cast<uint64_t>(n);
    bytes_written_total_->Increment(static_cast<uint64_t>(n));
    conn.outbox_head += static_cast<size_t>(n);
    conn.outbox_bytes -= static_cast<size_t>(n);
    if (conn.outbox_head == front.size()) {
      conn.outbox.pop_front();
      conn.outbox_head = 0;
    }
  }
  if (conn.outbox.empty() && (conn.closing || draining_)) {
    CloseConnection(fd);
    return;
  }
  UpdateInterest(conn);
}

void Server::UpdateInterest(Connection& conn) {
  // Backpressure transitions: pause reads at the cap, resume below half.
  if (!conn.reading_paused && conn.outbox_bytes > options_.max_outbox_bytes) {
    conn.reading_paused = true;
    backpressure_stalls_total_->Increment();
  } else if (conn.reading_paused &&
             conn.outbox_bytes <= options_.max_outbox_bytes / 2) {
    conn.reading_paused = false;
  }
  uint32_t events = 0;
  if (!conn.reading_paused && !conn.closing && !draining_) {
    events |= kEventRead;
  }
  if (!conn.outbox.empty()) events |= kEventWrite;
  (void)loop_.Modify(conn.fd, events);
}

void Server::ProtocolError(Connection& conn, uint64_t request_id,
                           const std::string& detail) {
  protocol_errors_total_->Increment();
  DASPOS_LOG(kInfo) << "dasposd: protocol error from " << conn.peer << ": "
                    << detail;
  conn.closing = true;
  Enqueue(conn, EncodeFrame(MessageType::kError, request_id,
                            EncodeErrorPayloadWithCode(kWireProtocolError,
                                                       detail)));
}

void Server::CloseConnection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = *it->second;
  {
    // The connection's life is not a stack scope, so its span is emitted at
    // close: near-zero duration, with the totals as attributes.
    Span span("net:conn", "net");
    span.AddAttribute("peer", conn.peer);
    span.AddAttribute("requests", conn.requests);
    span.AddAttribute("bytes_in", conn.bytes_in);
    span.AddAttribute("bytes_out", conn.bytes_out);
  }
  loop_.Remove(fd);
  close(fd);
  connections_.erase(it);
  active_connections_->Add(-1);
  CheckDrainComplete();
}

void Server::BeginDrain() {
  if (draining_) return;
  draining_ = true;
  drains_total_->Increment();
  DASPOS_LOG(kInfo) << "dasposd: drain requested; closing listener, "
                    << connections_.size() << " connection(s) to flush";
  if (listen_fd_ >= 0) {
    loop_.Remove(listen_fd_);
    close(listen_fd_);
    listen_fd_ = -1;
  }
  // Flush-or-close every connection. Complete requests were already
  // answered inline at read time; a half-read frame is abandoned.
  std::vector<int> to_close;
  for (auto& [fd, conn] : connections_) {
    if (conn->outbox.empty()) {
      to_close.push_back(fd);
    } else {
      UpdateInterest(*conn);  // drops the read bit, keeps the write bit
    }
  }
  for (int fd : to_close) CloseConnection(fd);
  CheckDrainComplete();
}

void Server::CheckDrainComplete() {
  if (draining_ && connections_.empty()) loop_.Stop();
}

}  // namespace net
}  // namespace daspos
