// Alice-style conditions snapshot: "text files that can easily be shipped
// around with the data" (§3.2). A snapshot freezes every needed payload for
// one run into a single self-contained text document — no database service
// required to reprocess later, which is its preservation advantage.
//
// Format (length-prefixed so payloads may contain anything):
//   # daspos conditions snapshot
//   run: <run>
//   source: <backend name>
//   tag: <name> bytes: <n>
//   <exactly n payload bytes>
//   <repeat tag blocks...>
#ifndef DASPOS_CONDITIONS_SNAPSHOT_H_
#define DASPOS_CONDITIONS_SNAPSHOT_H_

#include <map>
#include <string>
#include <vector>

#include "conditions/provider.h"
#include "support/result.h"

namespace daspos {

class ConditionsSnapshot : public ConditionsProvider {
 public:
  /// Captures the payloads of `tags` valid at `run` from `source`.
  /// Fails if any tag has no payload at that run.
  static Result<ConditionsSnapshot> Capture(
      const ConditionsProvider& source, uint32_t run,
      const std::vector<std::string>& tags);

  /// Parses a serialized snapshot document.
  static Result<ConditionsSnapshot> Parse(const std::string& text);

  /// Serializes to the text format above.
  std::string Serialize() const;

  // ConditionsProvider. Lookups at a run other than the captured one fail
  // with FailedPrecondition: a snapshot is only valid for its run — the
  // operational limitation this backend trades for portability.
  Result<std::string> GetPayload(const std::string& tag,
                                 uint32_t run) const override;
  std::string BackendName() const override { return "conditions-snapshot"; }

  uint32_t run() const { return run_; }
  std::vector<std::string> Tags() const;
  uint64_t lookup_count() const { return lookup_count_; }

 private:
  uint32_t run_ = 0;
  std::string source_ = "unknown";
  std::map<std::string, std::string> payloads_;
  mutable uint64_t lookup_count_ = 0;
};

}  // namespace daspos

#endif  // DASPOS_CONDITIONS_SNAPSHOT_H_
