// The conditions database backend: tagged payloads with non-overlapping
// intervals of validity, resolved by run number.
#ifndef DASPOS_CONDITIONS_STORE_H_
#define DASPOS_CONDITIONS_STORE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "conditions/iov.h"
#include "conditions/provider.h"
#include "support/status.h"

namespace daspos {

/// In-memory conditions database. Models the "database access from
/// processing" strategy: every lookup goes to the (simulated) service and is
/// counted — the E7 bench uses the counters to contrast with snapshots.
class ConditionsDb : public ConditionsProvider {
 public:
  ConditionsDb() = default;
  // Copyable despite the atomic lookup counter (tests build one and return
  // it by value); the counter value carries over.
  ConditionsDb(const ConditionsDb& other)
      : tags_(other.tags_), lookup_count_(other.lookup_count_.load()) {}
  ConditionsDb& operator=(const ConditionsDb& other) {
    tags_ = other.tags_;
    lookup_count_ = other.lookup_count_.load();
    return *this;
  }

  /// Registers a payload for `tag` over `range`. Fails on invalid ranges or
  /// IOV overlap within the tag (conditions must be unambiguous).
  Status Put(const std::string& tag, const RunRange& range,
             std::string payload);

  /// Closes the open-ended latest IOV of `tag` at `last_run` and appends a
  /// new open-ended payload starting at `last_run + 1` — the typical
  /// calibration-update operation.
  Status Append(const std::string& tag, uint32_t first_run,
                std::string payload);

  // ConditionsProvider:
  Result<std::string> GetPayload(const std::string& tag,
                                 uint32_t run) const override;
  std::string BackendName() const override { return "conditions-db"; }

  /// All registered tags, sorted.
  std::vector<std::string> Tags() const;

  /// IOVs registered under one tag, ordered by first_run.
  std::vector<RunRange> Intervals(const std::string& tag) const;

  /// Number of GetPayload calls served so far (the external-dependency
  /// footprint the paper asks workflows to enumerate). Atomic: steps of a
  /// parallel workflow may consult conditions concurrently.
  uint64_t lookup_count() const { return lookup_count_.load(); }

 private:
  struct Entry {
    RunRange range;
    std::string payload;
  };
  // Per tag, entries sorted by first_run (non-overlapping).
  std::map<std::string, std::vector<Entry>> tags_;
  mutable std::atomic<uint64_t> lookup_count_{0};
};

}  // namespace daspos

#endif  // DASPOS_CONDITIONS_STORE_H_
