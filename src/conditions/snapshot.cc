#include "conditions/snapshot.h"

#include "support/strings.h"

namespace daspos {

Result<ConditionsSnapshot> ConditionsSnapshot::Capture(
    const ConditionsProvider& source, uint32_t run,
    const std::vector<std::string>& tags) {
  ConditionsSnapshot snapshot;
  snapshot.run_ = run;
  snapshot.source_ = source.BackendName();
  for (const std::string& tag : tags) {
    DASPOS_ASSIGN_OR_RETURN(std::string payload, source.GetPayload(tag, run));
    snapshot.payloads_[tag] = std::move(payload);
  }
  return snapshot;
}

std::string ConditionsSnapshot::Serialize() const {
  std::string out = "# daspos conditions snapshot\n";
  out += "run: " + std::to_string(run_) + "\n";
  out += "source: " + source_ + "\n";
  for (const auto& [tag, payload] : payloads_) {
    out += "tag: " + tag + " bytes: " + std::to_string(payload.size()) + "\n";
    out += payload;
    out += "\n";
  }
  return out;
}

Result<ConditionsSnapshot> ConditionsSnapshot::Parse(const std::string& text) {
  ConditionsSnapshot snapshot;
  size_t pos = 0;
  bool saw_run = false;

  auto next_line = [&]() -> Result<std::string> {
    if (pos >= text.size()) return Status::Corruption("snapshot truncated");
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    return line;
  };

  while (pos < text.size()) {
    DASPOS_ASSIGN_OR_RETURN(std::string line, next_line());
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    if (StartsWith(trimmed, "run:")) {
      DASPOS_ASSIGN_OR_RETURN(uint64_t run, ParseU64(trimmed.substr(4)));
      snapshot.run_ = static_cast<uint32_t>(run);
      saw_run = true;
    } else if (StartsWith(trimmed, "source:")) {
      snapshot.source_ = std::string(Trim(trimmed.substr(7)));
    } else if (StartsWith(trimmed, "tag:")) {
      // "tag: <name> bytes: <n>"
      size_t bytes_pos = trimmed.find(" bytes: ");
      if (bytes_pos == std::string_view::npos) {
        return Status::Corruption("snapshot tag line missing 'bytes:'");
      }
      std::string tag(Trim(trimmed.substr(4, bytes_pos - 4)));
      DASPOS_ASSIGN_OR_RETURN(uint64_t count,
                              ParseU64(trimmed.substr(bytes_pos + 8)));
      if (pos + count > text.size()) {
        return Status::Corruption("snapshot payload for tag '" + tag +
                                  "' truncated");
      }
      snapshot.payloads_[tag] = text.substr(pos, count);
      pos += count;
      // Consume the trailing newline after the payload block.
      if (pos < text.size() && text[pos] == '\n') ++pos;
    } else {
      return Status::Corruption("unrecognized snapshot line: " +
                                std::string(trimmed));
    }
  }
  if (!saw_run) return Status::Corruption("snapshot missing 'run:' header");
  return snapshot;
}

Result<std::string> ConditionsSnapshot::GetPayload(const std::string& tag,
                                                   uint32_t run) const {
  ++lookup_count_;
  if (run != run_) {
    return Status::FailedPrecondition(
        "snapshot captured for run " + std::to_string(run_) +
        " cannot serve run " + std::to_string(run));
  }
  auto it = payloads_.find(tag);
  if (it == payloads_.end()) {
    return Status::NotFound("tag '" + tag + "' not in snapshot");
  }
  return it->second;
}

std::vector<std::string> ConditionsSnapshot::Tags() const {
  std::vector<std::string> out;
  out.reserve(payloads_.size());
  for (const auto& [tag, payload] : payloads_) {
    (void)payload;
    out.push_back(tag);
  }
  return out;
}

}  // namespace daspos
