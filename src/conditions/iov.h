// Interval of validity: the run range over which a conditions payload is
// the correct one to use.
#ifndef DASPOS_CONDITIONS_IOV_H_
#define DASPOS_CONDITIONS_IOV_H_

#include <cstdint>
#include <limits>
#include <string>

namespace daspos {

/// Inclusive run interval [first_run, last_run].
struct RunRange {
  uint32_t first_run = 0;
  uint32_t last_run = std::numeric_limits<uint32_t>::max();

  /// Open-ended range starting at `first`.
  static RunRange From(uint32_t first) { return {first, kMaxRun}; }
  static constexpr uint32_t kMaxRun = std::numeric_limits<uint32_t>::max();

  bool Contains(uint32_t run) const {
    return run >= first_run && run <= last_run;
  }
  bool Overlaps(const RunRange& other) const {
    return first_run <= other.last_run && other.first_run <= last_run;
  }
  bool Valid() const { return first_run <= last_run; }

  std::string ToString() const {
    return "[" + std::to_string(first_run) + "," +
           (last_run == kMaxRun ? std::string("inf")
                                : std::to_string(last_run)) +
           "]";
  }
};

}  // namespace daspos

#endif  // DASPOS_CONDITIONS_IOV_H_
