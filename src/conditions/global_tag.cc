#include "conditions/global_tag.h"

#include "support/strings.h"

namespace daspos {

std::string GlobalTag::Serialize() const {
  std::string out = "globaltag: " + name + "\n";
  for (const auto& [role, tag] : roles) {
    out += role + " = " + tag + "\n";
  }
  return out;
}

Result<GlobalTag> GlobalTag::Parse(const std::string& text) {
  GlobalTag tag;
  bool saw_name = false;
  for (const std::string& line : Split(text, '\n')) {
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    if (StartsWith(trimmed, "globaltag:")) {
      tag.name = std::string(Trim(trimmed.substr(10)));
      saw_name = true;
      continue;
    }
    size_t eq = trimmed.find('=');
    if (eq == std::string_view::npos) {
      return Status::Corruption("global-tag line without '=': " +
                                std::string(trimmed));
    }
    std::string role(Trim(trimmed.substr(0, eq)));
    std::string underlying(Trim(trimmed.substr(eq + 1)));
    if (role.empty() || underlying.empty()) {
      return Status::Corruption("empty role or tag in global tag");
    }
    tag.roles[role] = underlying;
  }
  if (!saw_name || tag.name.empty()) {
    return Status::Corruption("global tag missing 'globaltag:' header");
  }
  return tag;
}

Status GlobalTagRegistry::Define(GlobalTag tag) {
  if (tag.name.empty()) {
    return Status::InvalidArgument("global tag needs a name");
  }
  if (tag.roles.empty()) {
    return Status::InvalidArgument("global tag '" + tag.name +
                                   "' maps no roles");
  }
  if (tags_.count(tag.name) > 0) {
    return Status::AlreadyExists(
        "global tag '" + tag.name +
        "' already defined (definitions are immutable)");
  }
  order_.push_back(tag.name);
  tags_.emplace(tag.name, std::move(tag));
  return Status::OK();
}

Result<GlobalTag> GlobalTagRegistry::Get(const std::string& name) const {
  auto it = tags_.find(name);
  if (it == tags_.end()) {
    return Status::NotFound("no global tag '" + name + "'");
  }
  return it->second;
}

bool GlobalTagRegistry::Has(const std::string& name) const {
  return tags_.count(name) > 0;
}

std::vector<std::string> GlobalTagRegistry::Names() const { return order_; }

Result<ConditionsSnapshot> CaptureByGlobalTag(const ConditionsProvider& source,
                                              uint32_t run,
                                              const GlobalTag& tag) {
  std::vector<std::string> tags;
  tags.reserve(tag.roles.size());
  for (const auto& [role, underlying] : tag.roles) {
    (void)role;
    tags.push_back(underlying);
  }
  return ConditionsSnapshot::Capture(source, run, tags);
}

Result<std::string> GetPayloadByRole(const ConditionsProvider& source,
                                     const GlobalTag& tag,
                                     const std::string& role, uint32_t run) {
  auto it = tag.roles.find(role);
  if (it == tag.roles.end()) {
    return Status::NotFound("global tag '" + tag.name + "' has no role '" +
                            role + "'");
  }
  return source.GetPayload(it->second, run);
}

}  // namespace daspos
