// Read interface for conditions access. §3.2 records two strategies among
// the experiments: live database access during processing, and Alice-style
// text files "that can easily be shipped around with the data". Both are
// implemented behind this interface (store.h, snapshot.h) so downstream
// processing code cannot tell them apart — which is precisely the
// preservation-relevant property.
#ifndef DASPOS_CONDITIONS_PROVIDER_H_
#define DASPOS_CONDITIONS_PROVIDER_H_

#include <string>

#include "support/result.h"

namespace daspos {

class ConditionsProvider {
 public:
  virtual ~ConditionsProvider() = default;

  /// Returns the payload for `tag` valid at `run`, or NotFound.
  virtual Result<std::string> GetPayload(const std::string& tag,
                                         uint32_t run) const = 0;

  /// Human-readable backend description (for provenance capture).
  virtual std::string BackendName() const = 0;
};

}  // namespace daspos

#endif  // DASPOS_CONDITIONS_PROVIDER_H_
