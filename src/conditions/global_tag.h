// Global tags: named, immutable mappings from detector roles to conditions
// tags. A processing campaign (and therefore a preserved analysis) is
// pinned to one global tag, which freezes the complete conditions
// configuration — the "enumerating and potentially encapsulating these
// external dependencies" that §3.2 asks preservation to do.
#ifndef DASPOS_CONDITIONS_GLOBAL_TAG_H_
#define DASPOS_CONDITIONS_GLOBAL_TAG_H_

#include <map>
#include <string>
#include <vector>

#include "conditions/provider.h"
#include "conditions/snapshot.h"
#include "support/result.h"

namespace daspos {

/// One global tag: role -> underlying conditions tag.
struct GlobalTag {
  std::string name;
  std::map<std::string, std::string> roles;

  /// Text form ("globaltag: NAME" + "role = tag" lines), for preservation
  /// alongside the data.
  std::string Serialize() const;
  static Result<GlobalTag> Parse(const std::string& text);
};

/// Registry of defined global tags. Definitions are immutable: re-defining
/// an existing name fails (reproducibility depends on it).
class GlobalTagRegistry {
 public:
  Status Define(GlobalTag tag);
  Result<GlobalTag> Get(const std::string& name) const;
  bool Has(const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, GlobalTag> tags_;
  std::vector<std::string> order_;
};

/// Captures a snapshot of every tag a global tag references, valid at
/// `run` — one call freezes the full conditions configuration of a
/// campaign into a shippable document.
Result<ConditionsSnapshot> CaptureByGlobalTag(const ConditionsProvider& source,
                                              uint32_t run,
                                              const GlobalTag& tag);

/// Resolves a role through a global tag and fetches its payload.
Result<std::string> GetPayloadByRole(const ConditionsProvider& source,
                                     const GlobalTag& tag,
                                     const std::string& role, uint32_t run);

}  // namespace daspos

#endif  // DASPOS_CONDITIONS_GLOBAL_TAG_H_
