#include "conditions/store.h"

#include <algorithm>

namespace daspos {

Status ConditionsDb::Put(const std::string& tag, const RunRange& range,
                         std::string payload) {
  if (!range.Valid()) {
    return Status::InvalidArgument("invalid run range " + range.ToString());
  }
  auto& entries = tags_[tag];
  for (const Entry& entry : entries) {
    if (entry.range.Overlaps(range)) {
      return Status::AlreadyExists("IOV overlap for tag '" + tag + "': " +
                                   entry.range.ToString() + " vs " +
                                   range.ToString());
    }
  }
  entries.push_back({range, std::move(payload)});
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return a.range.first_run < b.range.first_run;
            });
  return Status::OK();
}

Status ConditionsDb::Append(const std::string& tag, uint32_t first_run,
                            std::string payload) {
  auto it = tags_.find(tag);
  if (it != tags_.end() && !it->second.empty()) {
    Entry& last = it->second.back();
    if (first_run <= last.range.first_run) {
      return Status::InvalidArgument(
          "Append must advance: tag '" + tag + "' already has IOV " +
          last.range.ToString());
    }
    if (last.range.last_run >= first_run) {
      last.range.last_run = first_run - 1;
    }
  }
  return Put(tag, RunRange::From(first_run), std::move(payload));
}

Result<std::string> ConditionsDb::GetPayload(const std::string& tag,
                                             uint32_t run) const {
  ++lookup_count_;
  auto it = tags_.find(tag);
  if (it == tags_.end()) {
    return Status::NotFound("unknown conditions tag '" + tag + "'");
  }
  for (const Entry& entry : it->second) {
    if (entry.range.Contains(run)) return entry.payload;
  }
  return Status::NotFound("no IOV for tag '" + tag + "' at run " +
                          std::to_string(run));
}

std::vector<std::string> ConditionsDb::Tags() const {
  std::vector<std::string> out;
  out.reserve(tags_.size());
  for (const auto& [tag, entries] : tags_) {
    (void)entries;
    out.push_back(tag);
  }
  return out;
}

std::vector<RunRange> ConditionsDb::Intervals(const std::string& tag) const {
  std::vector<RunRange> out;
  auto it = tags_.find(tag);
  if (it == tags_.end()) return out;
  for (const Entry& entry : it->second) out.push_back(entry.range);
  return out;
}

}  // namespace daspos
