#include "archive/replicated_store.h"

#include <algorithm>
#include <cassert>

#include "support/logging.h"
#include "support/metrics_registry.h"
#include "support/parallel.h"
#include "support/sha256.h"
#include "support/trace.h"

namespace daspos {

ReplicatedObjectStore::ReplicatedObjectStore(std::vector<ObjectStore*> replicas)
    : replicas_(std::move(replicas)) {
  assert(!replicas_.empty() && "a replicated store needs >= 1 replica");
  using namespace metric_names;
  MetricsRegistry& registry = MetricsRegistry::Global();
  read_repairs_ =
      &registry.GetCounter(kArchiveReadRepairsTotal,
                           "rotted/missing replica copies healed during Get");
  degraded_reads_ = &registry.GetCounter(
      kArchiveDegradedReadsTotal,
      "reads served while only a minority of replicas was healthy");
  put_failures_ =
      &registry.GetCounter(kArchiveReplicaPutFailuresTotal,
                           "per-replica Put failures inside quorum writes");
  fallbacks_ = &registry.GetCounter(
      kArchiveReplicaFallbacksTotal, "reads that fell past an unhealthy replica");
}

Result<std::string> ReplicatedObjectStore::Put(std::string_view bytes) {
  Span span("replica:put", "archive");
  span.AddAttribute("replicas", static_cast<uint64_t>(replicas_.size()));
  size_t accepted = 0;
  Status first_failure = Status::OK();
  std::string id;
  for (ObjectStore* replica : replicas_) {
    auto put = replica->Put(bytes);
    if (put.ok()) {
      ++accepted;
      id = std::move(put).value();
    } else {
      put_failures_->Increment();
      if (first_failure.ok()) first_failure = put.status();
    }
  }
  if (accepted >= quorum()) return id;
  // The write is not durable enough to acknowledge: fewer than a majority
  // of replicas hold it. Surface the first underlying error.
  return Status::IOError("quorum write failed (" + std::to_string(accepted) +
                         "/" + std::to_string(replicas_.size()) +
                         " replicas accepted, need " +
                         std::to_string(quorum()) + "): " +
                         first_failure.ToString());
}

Result<std::string> ReplicatedObjectStore::Get(const std::string& id) const {
  DASPOS_RETURN_IF_ERROR(ValidateObjectId(id));
  Span span("replica:get", "archive");
  // Walk replicas in order; remember every replica that failed so the
  // healthy bytes can heal them before the read returns.
  std::vector<size_t> unhealthy;
  Status last_error = Status::NotFound("object " + id + " not in any replica");
  for (size_t i = 0; i < replicas_.size(); ++i) {
    auto got = replicas_[i]->Get(id);
    if (got.ok()) {
      // The replication layer's own fixity gate: a backend that does not
      // hash on read (MemoryObjectStore) must still never leak rot.
      if (Sha256::HashHex(*got) != id) {
        unhealthy.push_back(i);
        fallbacks_->Increment();
        last_error =
            Status::Corruption("fixity mismatch for object " + id +
                               " on replica " + std::to_string(i));
        continue;
      }
      // Read-repair: re-Put the verified bytes into every replica the read
      // fell past (missing the object or holding rot). Re-Put heals in
      // place; a FileObjectStore keeps its quarantined forensic copy.
      for (size_t bad : unhealthy) {
        auto healed = replicas_[bad]->Put(*got);
        if (healed.ok()) {
          read_repairs_->Increment();
        } else {
          DASPOS_LOG(kWarning)
              << "read-repair of object " << id << " on replica " << bad
              << " failed: " << healed.status().ToString();
        }
      }
      // Degraded mode: the serving replica is in the minority once the
      // read fell past >= quorum replicas. Serve, but warn loudly — the
      // archive is one failure away from data loss.
      if (unhealthy.size() >= quorum()) {
        degraded_reads_->Increment();
        DASPOS_LOG(kWarning)
            << "degraded read of object " << id << ": only "
            << replicas_.size() - unhealthy.size() << "/" << replicas_.size()
            << " replicas healthy";
      }
      return got;
    }
    unhealthy.push_back(i);
    fallbacks_->Increment();
    last_error = got.status();
  }
  return last_error;
}

bool ReplicatedObjectStore::Has(const std::string& id) const {
  for (ObjectStore* replica : replicas_) {
    if (replica->Has(id)) return true;
  }
  return false;
}

Status ReplicatedObjectStore::Verify(const std::string& id) const {
  DASPOS_RETURN_IF_ERROR(ValidateObjectId(id));
  // An audit, not a repair: the object survives if at least one replica
  // holds verifying bytes. (FileObjectStore replicas quarantine their own
  // rotted copies as a side effect; the scrubber is the healer.)
  size_t present = 0;
  Status last_error = Status::NotFound("object " + id + " not in any replica");
  for (ObjectStore* replica : replicas_) {
    Status status = replica->Verify(id);
    if (status.ok()) ++present;
    if (!status.ok()) last_error = status;
  }
  if (present > 0) return Status::OK();
  return last_error;
}

std::vector<std::string> ReplicatedObjectStore::Ids() const {
  std::vector<std::string> out;
  for (ObjectStore* replica : replicas_) {
    std::vector<std::string> ids = replica->Ids();
    out.insert(out.end(), ids.begin(), ids.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

uint64_t ReplicatedObjectStore::TotalBytes() const {
  uint64_t max_bytes = 0;
  for (ObjectStore* replica : replicas_) {
    max_bytes = std::max(max_bytes, replica->TotalBytes());
  }
  return max_bytes;
}

std::vector<std::string> ReplicatedObjectStore::QuarantinedIds() const {
  std::vector<std::string> out;
  for (ObjectStore* replica : replicas_) {
    std::vector<std::string> ids = replica->QuarantinedIds();
    out.insert(out.end(), ids.begin(), ids.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Result<std::vector<std::string>> ReplicatedObjectStore::PutBatch(
    const std::vector<std::string_view>& blobs, ThreadPool* pool) {
  Span span("replica:putbatch", "archive");
  span.AddAttribute("blobs", static_cast<uint64_t>(blobs.size()));
  // Each object independently gets the full quorum treatment; slots keep
  // the deterministic first-failure-wins contract of the base class.
  struct Slot {
    Status status;
    std::string id;
  };
  std::vector<Slot> slots = ParallelMap<Slot>(
      pool, blobs.size(),
      [this, &blobs](size_t i) {
        Slot slot;
        auto put = Put(blobs[i]);
        if (put.ok()) {
          slot.id = std::move(put).value();
        } else {
          slot.status = put.status();
        }
        return slot;
      },
      /*grain=*/1);
  std::vector<std::string> ids;
  ids.reserve(slots.size());
  for (Slot& slot : slots) {
    DASPOS_RETURN_IF_ERROR(slot.status);
    ids.push_back(std::move(slot.id));
  }
  return ids;
}

}  // namespace daspos
