#include "archive/object_store.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <utility>

#include "support/io.h"
#include "support/logging.h"
#include "support/metrics.h"
#include "support/metrics_registry.h"
#include "support/parallel.h"
#include "support/sha256.h"
#include "support/trace.h"

namespace daspos {

namespace fs = std::filesystem;

namespace {

bool IsLowerHex(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
}

/// True when `name` looks like a shard directory ("00".."ff"). Filters out
/// bookkeeping directories (quarantine/, tmp/) when walking the store.
bool IsShardName(const std::string& name) {
  return name.size() == 2 && IsLowerHex(name[0]) && IsLowerHex(name[1]);
}

}  // namespace

Status ValidateObjectId(const std::string& id) {
  if (id.empty()) return Status::InvalidArgument("empty object id");
  if (id.size() != 64) {
    return Status::InvalidArgument("malformed object id (want 64 hex chars): " +
                                   id);
  }
  for (char c : id) {
    if (!IsLowerHex(c)) {
      return Status::InvalidArgument(
          "malformed object id (non-hex character): " + id);
    }
  }
  return Status::OK();
}

Status ObjectStore::ForEachId(
    const std::function<Status(const std::string&)>& fn) const {
  // Fallback for backends without an incremental walk: correctness over
  // memory. Backends with a streamable layout override this.
  for (const std::string& id : Ids()) {
    DASPOS_RETURN_IF_ERROR(fn(id));
  }
  return Status::OK();
}

Result<std::vector<std::string>> ObjectStore::PutBatch(
    const std::vector<std::string_view>& blobs, ThreadPool* pool) {
  (void)pool;  // The sequential fallback ignores the pool.
  std::vector<std::string> ids;
  ids.reserve(blobs.size());
  for (std::string_view blob : blobs) {
    DASPOS_ASSIGN_OR_RETURN(std::string id, Put(blob));
    ids.push_back(std::move(id));
  }
  return ids;
}

// --------------------------------------------------------- MemoryObjectStore

Result<std::string> MemoryObjectStore::Put(std::string_view bytes) {
  std::string id = Sha256::HashHex(bytes);
  // Overwrite unconditionally: Put must guarantee Get(id) == bytes even if
  // a previously stored copy has rotted (re-putting good bytes heals).
  MutexLock lock(mutex_);
  objects_.insert_or_assign(id, std::string(bytes));
  return id;
}

Result<std::string> MemoryObjectStore::Get(const std::string& id) const {
  MutexLock lock(mutex_);
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("object " + id + " not in store");
  }
  return it->second;
}

bool MemoryObjectStore::Has(const std::string& id) const {
  MutexLock lock(mutex_);
  return objects_.count(id) > 0;
}

Status MemoryObjectStore::Verify(const std::string& id) const {
  MutexLock lock(mutex_);
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("object " + id + " not in store");
  }
  if (Sha256::HashHex(it->second) != id) {
    return Status::Corruption("fixity mismatch for object " + id);
  }
  return Status::OK();
}

std::vector<std::string> MemoryObjectStore::Ids() const {
  MutexLock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(objects_.size());
  for (const auto& [id, bytes] : objects_) {
    (void)bytes;
    out.push_back(id);
  }
  return out;
}

uint64_t MemoryObjectStore::TotalBytes() const {
  MutexLock lock(mutex_);
  uint64_t total = 0;
  for (const auto& [id, bytes] : objects_) {
    (void)id;
    total += bytes.size();
  }
  return total;
}

Status MemoryObjectStore::CorruptForTesting(const std::string& id,
                                            size_t byte_index) {
  MutexLock lock(mutex_);
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("object " + id + " not in store");
  }
  if (byte_index >= it->second.size()) {
    return Status::OutOfRange("byte index past object size");
  }
  it->second[byte_index] = static_cast<char>(it->second[byte_index] ^ 0x40);
  return Status::OK();
}

// ----------------------------------------------------------- FileObjectStore

FileObjectStore::FileObjectStore(std::string root) : root_(std::move(root)) {
  using namespace metric_names;
  MetricsRegistry& registry = MetricsRegistry::Global();
  const std::vector<double>& latency = Histogram::DefaultLatencyBucketsMs();
  put_total_ = &registry.GetCounter(kArchivePutTotal, "object-store Put calls");
  get_total_ = &registry.GetCounter(kArchiveGetTotal, "object-store Get calls");
  verify_total_ =
      &registry.GetCounter(kArchiveVerifyTotal, "object-store Verify calls");
  put_bytes_total_ =
      &registry.GetCounter(kArchivePutBytesTotal, "bytes written by Put");
  get_bytes_total_ =
      &registry.GetCounter(kArchiveGetBytesTotal, "bytes returned by Get");
  cache_hits_ = &registry.GetCounter(kArchiveCacheHitsTotal,
                                     "warm Gets that skipped the re-hash");
  cache_misses_ = &registry.GetCounter(kArchiveCacheMissesTotal,
                                       "cold Gets that hashed the full blob");
  cache_invalidations_ =
      &registry.GetCounter(kArchiveCacheInvalidationsTotal,
                           "verified-digest cache entries dropped");
  quarantines_ =
      &registry.GetCounter(kArchiveQuarantinesTotal,
                           "blobs moved aside after a fixity mismatch");
  quarantine_errors_ = &registry.GetCounter(
      kArchiveQuarantineErrorsTotal,
      "quarantine moves that failed (mkdir or rename error)");
  walk_errors_ = &registry.GetCounter(
      kArchiveWalkErrorsTotal,
      "store-walk iteration/stat failures (an unreadable store must not "
      "report as empty)");
  get_wall_ms_ =
      &registry.GetHistogram(kArchiveGetWallMs, latency, "Get wall time");
  put_wall_ms_ =
      &registry.GetHistogram(kArchivePutWallMs, latency, "Put wall time");
}

std::string FileObjectStore::PathFor(const std::string& id) const {
  return root_ + "/" + id.substr(0, 2) + "/" + id.substr(2);
}

void FileObjectStore::Quarantine(const std::string& id) const {
  quarantines_->Increment();
  CacheDrop(id);
  std::error_code ec;
  const fs::path quarantine = fs::path(root_) / "quarantine";
  fs::create_directories(quarantine, ec);
  if (ec) {
    quarantine_errors_->Increment();
    DASPOS_LOG(kError) << "quarantine of " << id
                       << " failed: cannot create " << quarantine.string()
                       << ": " << ec.message();
    return;
  }
  // Never clobber an earlier forensic copy: a second rot event for the same
  // id (e.g. after a read-repair healed the primary and it rotted again) is
  // independent evidence. Number the extras <id>.1, <id>.2, ...
  fs::path dest = quarantine / id;
  for (int suffix = 1; fs::exists(dest, ec); ++suffix) {
    dest = quarantine / (id + "." + std::to_string(suffix));
  }
  fs::rename(PathFor(id), dest, ec);
  if (ec) {
    quarantine_errors_->Increment();
    DASPOS_LOG(kError) << "quarantine of " << id << " failed: rename to "
                       << dest.string() << ": " << ec.message();
  }
}

Result<FileObjectStore::VerifiedStat> FileObjectStore::StatFingerprint(
    const std::string& path) {
  std::error_code ec;
  uintmax_t size = fs::file_size(path, ec);
  if (ec) return Status::NotFound("cannot stat: " + path);
  auto mtime = fs::last_write_time(path, ec);
  if (ec) return Status::NotFound("cannot stat: " + path);
  VerifiedStat fp;
  fp.size = static_cast<uint64_t>(size);
  fp.mtime_ns = static_cast<int64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          mtime.time_since_epoch())
          .count());
  return fp;
}

bool FileObjectStore::CacheMatches(const std::string& id,
                                   const VerifiedStat& current) const {
  MutexLock lock(cache_mutex_);
  auto it = verified_.find(id);
  if (it == verified_.end()) return false;
  if (it->second == current) return true;
  // The file changed behind the cache: the old verdict is worthless. Drop
  // it here so even an aborted read leaves no stale entry.
  verified_.erase(it);
  cache_invalidations_->Increment();
  return false;
}

void FileObjectStore::CacheStore(const std::string& id,
                                 const VerifiedStat& fp) const {
  MutexLock lock(cache_mutex_);
  verified_.insert_or_assign(id, fp);
}

void FileObjectStore::CacheDrop(const std::string& id) const {
  MutexLock lock(cache_mutex_);
  if (verified_.erase(id) > 0) cache_invalidations_->Increment();
}

Result<std::string> FileObjectStore::Put(std::string_view bytes) {
  Span span("archive:put", "archive");
  span.AddAttribute("bytes", static_cast<uint64_t>(bytes.size()));
  WallTimer timer;
  Result<std::string> result = PutImpl(bytes);
  put_total_->Increment();
  if (result.ok()) {
    put_bytes_total_->Increment(static_cast<uint64_t>(bytes.size()));
  }
  put_wall_ms_->Observe(timer.ElapsedMillis());
  return result;
}

Result<std::string> FileObjectStore::PutImpl(std::string_view bytes) {
  std::string id = Sha256::HashHex(bytes);
  std::string path = PathFor(id);
  // Skip the write only when the existing copy is intact, so re-putting
  // good bytes heals a rotted object (Verify quarantines the bad copy).
  if (FileExists(path) && Verify(id).ok()) return id;
  DASPOS_RETURN_IF_ERROR(AtomicWriteFile(path, bytes));
  // A write replaces whatever the cache knew about this id; the next read
  // re-verifies the published copy from scratch.
  CacheDrop(id);
  return id;
}

Result<std::string> FileObjectStore::Get(const std::string& id) const {
  Span span("archive:get", "archive");
  WallTimer timer;
  Result<std::string> result = GetImpl(id);
  get_total_->Increment();
  if (result.ok()) {
    uint64_t bytes = static_cast<uint64_t>(result.value().size());
    get_bytes_total_->Increment(bytes);
    span.AddAttribute("bytes", bytes);
  }
  get_wall_ms_->Observe(timer.ElapsedMillis());
  return result;
}

Result<std::string> FileObjectStore::GetImpl(const std::string& id) const {
  DASPOS_RETURN_IF_ERROR(ValidateObjectId(id));
  std::string path = PathFor(id);
  // Warm path: a previous successful hash check recorded this exact
  // {size, mtime}. If the stat still matches, skip the re-hash and only
  // read the bytes. The fingerprint is taken BEFORE the read, so a writer
  // racing the read can only make the next lookup conservative (re-hash),
  // never let stale bytes through unverified.
  auto fp = StatFingerprint(path);
  if (fp.ok() && CacheMatches(id, *fp)) {
    auto read = ReadFileToString(path);
    if (read.ok()) {
      cache_hits_->Increment();
      return read;
    }
    // The file vanished between stat and read; fall through to the cold
    // path for a coherent NotFound.
    CacheDrop(id);
  }
  // Cold path: one streaming pass reads and hashes together. Bytes that no
  // longer hash to their id must never reach a consumer: the rotted blob is
  // moved aside so future reads fail fast and the linter can report it
  // (A006).
  std::string hex;
  auto read = ReadFileHashed(path, &hex);
  if (!read.ok()) return Status::NotFound("object " + id + " not in store");
  if (hex != id) {
    Quarantine(id);
    return Status::Corruption("fixity mismatch for object " + id +
                              " (moved to quarantine)");
  }
  cache_misses_->Increment();
  if (fp.ok()) CacheStore(id, *fp);
  return read;
}

bool FileObjectStore::Has(const std::string& id) const {
  return ValidateObjectId(id).ok() && FileExists(PathFor(id));
}

Status FileObjectStore::Verify(const std::string& id) const {
  Span span("archive:verify", "archive");
  verify_total_->Increment();
  return VerifyImpl(id);
}

Status FileObjectStore::VerifyImpl(const std::string& id) const {
  DASPOS_RETURN_IF_ERROR(ValidateObjectId(id));
  std::string path = PathFor(id);
  // An audit is the authority the cache defers to, so it must always hash
  // the real bytes — never trust (or consult) the cache.
  auto fp = StatFingerprint(path);
  auto hex = HashFileHex(path);
  if (!hex.ok()) return Status::NotFound("object " + id + " not in store");
  if (*hex != id) {
    Quarantine(id);
    return Status::Corruption("fixity mismatch for object " + id +
                              " (moved to quarantine)");
  }
  // A clean audit refreshes the cache for free.
  if (fp.ok()) CacheStore(id, *fp);
  return Status::OK();
}

Result<std::vector<std::string>> FileObjectStore::PutBatch(
    const std::vector<std::string_view>& blobs, ThreadPool* pool) {
  Span span("archive:putbatch", "archive");
  span.AddAttribute("blobs", static_cast<uint64_t>(blobs.size()));
  // Each slot hashes and writes independently; duplicate blobs in one batch
  // land on the same path via atomic renames, which is safe.
  struct Slot {
    Status status;
    std::string id;
  };
  std::vector<Slot> slots = ParallelMap<Slot>(
      pool, blobs.size(),
      [this, &blobs](size_t i) {
        Slot slot;
        auto put = Put(blobs[i]);
        if (put.ok()) {
          slot.id = std::move(put).value();
        } else {
          slot.status = put.status();
        }
        return slot;
      },
      /*grain=*/1);
  std::vector<std::string> ids;
  ids.reserve(slots.size());
  for (Slot& slot : slots) {
    // Deterministic error reporting: the first failing input wins, exactly
    // as in the sequential loop.
    DASPOS_RETURN_IF_ERROR(slot.status);
    ids.push_back(std::move(slot.id));
  }
  return ids;
}

void FileObjectStore::CountWalkError(const std::string& what,
                                     const std::error_code& ec) const {
  walk_errors_->Increment();
  DASPOS_LOG(kError) << "object-store walk error at " << what << ": "
                     << ec.message();
}

std::vector<std::string> FileObjectStore::Ids() const {
  std::vector<std::string> out;
  // Walk errors (if any) were already counted and logged inside ForEachId;
  // this legacy vector interface has no error channel, so the partial
  // listing stands — audits that need the distinction stream ForEachId
  // directly and see the status.
  (void)ForEachId([&out](const std::string& id) {
    out.push_back(id);
    return Status::OK();
  });
  return out;
}

Status FileObjectStore::ForEachId(
    const std::function<Status(const std::string&)>& fn) const {
  std::error_code ec;
  // A root that does not exist yet is a legitimately empty store (nothing
  // was ever Put); a root that exists but cannot be iterated is an error —
  // reporting it as "empty" would let a fixity audit pass vacuously.
  fs::directory_iterator root_it(root_, ec);
  if (ec) {
    if (!fs::exists(root_)) return Status::OK();
    CountWalkError(root_, ec);
    return Status::IOError("object store root unreadable: " + root_);
  }
  std::vector<std::string> shards;
  for (const auto& shard : root_it) {
    if (!shard.is_directory()) continue;
    std::string prefix = shard.path().filename().string();
    if (IsShardName(prefix)) shards.push_back(std::move(prefix));
  }
  std::sort(shards.begin(), shards.end());
  // Shard names are the first two id characters, so walking shards in name
  // order and sorting within each shard yields globally ascending ids while
  // holding only one shard's names (~1/256th of the store) at a time.
  Status walk = Status::OK();
  std::vector<std::string> batch;
  for (const std::string& prefix : shards) {
    const std::string shard_path = root_ + "/" + prefix;
    fs::directory_iterator shard_it(shard_path, ec);
    if (ec) {
      CountWalkError(shard_path, ec);
      if (walk.ok()) {
        walk = Status::IOError("object store shard unreadable: " + shard_path);
      }
      continue;
    }
    batch.clear();
    for (const auto& entry : shard_it) {
      if (!entry.is_regular_file()) continue;
      batch.push_back(prefix + entry.path().filename().string());
    }
    std::sort(batch.begin(), batch.end());
    for (const std::string& id : batch) {
      DASPOS_RETURN_IF_ERROR(fn(id));
    }
  }
  return walk;
}

uint64_t FileObjectStore::TotalBytes() const {
  uint64_t total = 0;
  std::error_code ec;
  fs::directory_iterator root_it(root_, ec);
  if (ec) {
    if (fs::exists(root_)) CountWalkError(root_, ec);
    return total;
  }
  for (const auto& shard : root_it) {
    if (!shard.is_directory()) continue;
    if (!IsShardName(shard.path().filename().string())) continue;
    fs::directory_iterator shard_it(shard.path(), ec);
    if (ec) {
      CountWalkError(shard.path().string(), ec);
      continue;
    }
    for (const auto& entry : shard_it) {
      if (!entry.is_regular_file()) continue;
      uintmax_t size = entry.file_size(ec);
      if (ec) {
        // file_size's error value is uintmax_t(-1); adding it would turn an
        // unstattable blob into a wildly wrong total instead of an error.
        CountWalkError(entry.path().string(), ec);
        ec.clear();
        continue;
      }
      total += static_cast<uint64_t>(size);
    }
  }
  return total;
}

std::vector<std::string> FileObjectStore::QuarantinedIds() const {
  std::vector<std::string> out;
  std::error_code ec;
  const fs::path quarantine = fs::path(root_) / "quarantine";
  fs::directory_iterator it(quarantine, ec);
  if (ec) {
    // No quarantine directory means nothing was ever quarantined; an
    // existing-but-unreadable one hides rotted blobs from the linter.
    if (fs::exists(quarantine)) CountWalkError(quarantine.string(), ec);
    return out;
  }
  for (const auto& entry : it) {
    if (!entry.is_regular_file()) continue;
    // Numbered forensic copies (`<id>.1`, `<id>.2`, ...) report as their
    // base id: callers care which objects rotted, not how many times.
    std::string name = entry.path().filename().string();
    size_t dot = name.find('.');
    if (dot != std::string::npos) name.resize(dot);
    out.push_back(std::move(name));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace daspos
