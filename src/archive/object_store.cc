#include "archive/object_store.h"

#include <algorithm>
#include <filesystem>

#include "support/io.h"
#include "support/sha256.h"

namespace daspos {

namespace fs = std::filesystem;

namespace {

bool IsLowerHex(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
}

/// True when `name` looks like a shard directory ("00".."ff"). Filters out
/// bookkeeping directories (quarantine/, tmp/) when walking the store.
bool IsShardName(const std::string& name) {
  return name.size() == 2 && IsLowerHex(name[0]) && IsLowerHex(name[1]);
}

}  // namespace

Status ValidateObjectId(const std::string& id) {
  if (id.empty()) return Status::InvalidArgument("empty object id");
  if (id.size() != 64) {
    return Status::InvalidArgument("malformed object id (want 64 hex chars): " +
                                   id);
  }
  for (char c : id) {
    if (!IsLowerHex(c)) {
      return Status::InvalidArgument(
          "malformed object id (non-hex character): " + id);
    }
  }
  return Status::OK();
}

// --------------------------------------------------------- MemoryObjectStore

Result<std::string> MemoryObjectStore::Put(std::string_view bytes) {
  std::string id = Sha256::HashHex(bytes);
  // Overwrite unconditionally: Put must guarantee Get(id) == bytes even if
  // a previously stored copy has rotted (re-putting good bytes heals).
  objects_.insert_or_assign(id, std::string(bytes));
  return id;
}

Result<std::string> MemoryObjectStore::Get(const std::string& id) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("object " + id + " not in store");
  }
  return it->second;
}

bool MemoryObjectStore::Has(const std::string& id) const {
  return objects_.count(id) > 0;
}

Status MemoryObjectStore::Verify(const std::string& id) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("object " + id + " not in store");
  }
  if (Sha256::HashHex(it->second) != id) {
    return Status::Corruption("fixity mismatch for object " + id);
  }
  return Status::OK();
}

std::vector<std::string> MemoryObjectStore::Ids() const {
  std::vector<std::string> out;
  out.reserve(objects_.size());
  for (const auto& [id, bytes] : objects_) {
    (void)bytes;
    out.push_back(id);
  }
  return out;
}

uint64_t MemoryObjectStore::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& [id, bytes] : objects_) {
    (void)id;
    total += bytes.size();
  }
  return total;
}

Status MemoryObjectStore::CorruptForTesting(const std::string& id,
                                            size_t byte_index) {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("object " + id + " not in store");
  }
  if (byte_index >= it->second.size()) {
    return Status::OutOfRange("byte index past object size");
  }
  it->second[byte_index] = static_cast<char>(it->second[byte_index] ^ 0x40);
  return Status::OK();
}

// ----------------------------------------------------------- FileObjectStore

std::string FileObjectStore::PathFor(const std::string& id) const {
  return root_ + "/" + id.substr(0, 2) + "/" + id.substr(2);
}

void FileObjectStore::Quarantine(const std::string& id) const {
  std::error_code ec;
  fs::create_directories(fs::path(root_) / "quarantine", ec);
  if (ec) return;
  fs::rename(PathFor(id), fs::path(root_) / "quarantine" / id, ec);
}

Result<std::string> FileObjectStore::Put(std::string_view bytes) {
  std::string id = Sha256::HashHex(bytes);
  std::string path = PathFor(id);
  // Skip the write only when the existing copy is intact, so re-putting
  // good bytes heals a rotted object (Verify quarantines the bad copy).
  if (FileExists(path) && Verify(id).ok()) return id;
  DASPOS_RETURN_IF_ERROR(AtomicWriteFile(path, bytes));
  return id;
}

Result<std::string> FileObjectStore::Get(const std::string& id) const {
  DASPOS_RETURN_IF_ERROR(ValidateObjectId(id));
  auto read = ReadFileToString(PathFor(id));
  if (!read.ok()) return Status::NotFound("object " + id + " not in store");
  // Fixity gate on every read: bytes that no longer hash to their id must
  // never reach a consumer. The rotted blob is moved aside so future reads
  // fail fast and the linter can report it (A006).
  if (Sha256::HashHex(*read) != id) {
    Quarantine(id);
    return Status::Corruption("fixity mismatch for object " + id +
                              " (moved to quarantine)");
  }
  return read;
}

bool FileObjectStore::Has(const std::string& id) const {
  return ValidateObjectId(id).ok() && FileExists(PathFor(id));
}

Status FileObjectStore::Verify(const std::string& id) const {
  return Get(id).status();
}

std::vector<std::string> FileObjectStore::Ids() const {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& shard : fs::directory_iterator(root_, ec)) {
    if (!shard.is_directory()) continue;
    std::string prefix = shard.path().filename().string();
    if (!IsShardName(prefix)) continue;
    for (const auto& entry : fs::directory_iterator(shard.path(), ec)) {
      if (!entry.is_regular_file()) continue;
      out.push_back(prefix + entry.path().filename().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t FileObjectStore::TotalBytes() const {
  uint64_t total = 0;
  std::error_code ec;
  for (const auto& shard : fs::directory_iterator(root_, ec)) {
    if (!shard.is_directory()) continue;
    if (!IsShardName(shard.path().filename().string())) continue;
    for (const auto& entry : fs::directory_iterator(shard.path(), ec)) {
      if (entry.is_regular_file()) {
        total += static_cast<uint64_t>(entry.file_size(ec));
      }
    }
  }
  return total;
}

std::vector<std::string> FileObjectStore::QuarantinedIds() const {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry :
       fs::directory_iterator(fs::path(root_) / "quarantine", ec)) {
    if (!entry.is_regular_file()) continue;
    out.push_back(entry.path().filename().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace daspos
