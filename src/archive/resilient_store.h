// Object-store decorators for the fault-tolerance layer.
//
// FaultyObjectStore injects deterministic transient failures in front of a
// real backend (chaos testing); RetryingObjectStore recovers from transient
// failures with a RetryPolicy. Stacked as Retrying(Faulty(real)), they prove
// in tests that the retry machinery converges to the fault-free result.
#ifndef DASPOS_ARCHIVE_RESILIENT_STORE_H_
#define DASPOS_ARCHIVE_RESILIENT_STORE_H_

#include <string>
#include <vector>

#include "archive/object_store.h"
#include "support/fault.h"
#include "support/retry.h"

namespace daspos {

/// Wraps a backend and consults a FaultPlan before every keyed operation.
/// Injected failures are transient IOErrors; the backend is not touched on
/// an injected failure, mimicking a storage layer that dropped the request.
/// Neither pointer is owned; both must outlive the decorator.
class FaultyObjectStore : public ObjectStore {
 public:
  FaultyObjectStore(ObjectStore* backend, FaultPlan* plan)
      : backend_(backend), plan_(plan) {}

  Result<std::string> Put(std::string_view bytes) override;
  Result<std::string> Get(const std::string& id) const override;
  bool Has(const std::string& id) const override;
  Status Verify(const std::string& id) const override;
  std::vector<std::string> Ids() const override { return backend_->Ids(); }
  // Enumeration is bookkeeping, not a keyed operation: like Ids(), it passes
  // through without drawing fault-plan ordinals.
  Status ForEachId(const std::function<Status(const std::string&)>& fn)
      const override {
    return backend_->ForEachId(fn);
  }
  uint64_t TotalBytes() const override { return backend_->TotalBytes(); }
  std::vector<std::string> QuarantinedIds() const override {
    return backend_->QuarantinedIds();
  }

  /// Per-blob injection with deterministic plan ordinals: blob i consumes
  /// the i-th "put" slot regardless of pool size, so scripted "nth=K" specs
  /// hit the same blob on every run. Serial by design — a parallel fan-out
  /// would randomize which blob draws which ordinal.
  Result<std::vector<std::string>> PutBatch(
      const std::vector<std::string_view>& blobs,
      ThreadPool* pool = nullptr) override;

 private:
  ObjectStore* backend_;
  FaultPlan* plan_;
};

/// Wraps a backend and retries transient failures per the policy. Permanent
/// failures (NotFound, InvalidArgument, Corruption) pass through untouched.
/// The backend is not owned and must outlive the decorator.
class RetryingObjectStore : public ObjectStore {
 public:
  RetryingObjectStore(ObjectStore* backend, RetryPolicy policy)
      : backend_(backend), policy_(std::move(policy)) {}

  Result<std::string> Put(std::string_view bytes) override;
  Result<std::string> Get(const std::string& id) const override;
  bool Has(const std::string& id) const override { return backend_->Has(id); }
  Status Verify(const std::string& id) const override;
  std::vector<std::string> Ids() const override { return backend_->Ids(); }
  Status ForEachId(const std::function<Status(const std::string&)>& fn)
      const override {
    return backend_->ForEachId(fn);
  }
  uint64_t TotalBytes() const override { return backend_->TotalBytes(); }
  std::vector<std::string> QuarantinedIds() const override {
    return backend_->QuarantinedIds();
  }

  /// Per-object retry fanned out on `pool`: each blob independently runs
  /// the full retry loop, so one slow/flaky object never burns the retry
  /// budget of its batchmates. Deterministic first-failure-wins reporting.
  Result<std::vector<std::string>> PutBatch(
      const std::vector<std::string_view>& blobs,
      ThreadPool* pool = nullptr) override;

 private:
  ObjectStore* backend_;
  RetryPolicy policy_;
};

}  // namespace daspos

#endif  // DASPOS_ARCHIVE_RESILIENT_STORE_H_
