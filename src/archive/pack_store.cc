#include "archive/pack_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "serialize/json.h"
#include "support/checksum.h"
#include "support/compress.h"
#include "support/io.h"
#include "support/logging.h"
#include "support/metrics.h"
#include "support/metrics_registry.h"
#include "support/parallel.h"
#include "support/sha256.h"
#include "support/strings.h"
#include "support/trace.h"

namespace daspos {

namespace fs = std::filesystem;

namespace {

constexpr char kQuarantineLog[] = "quarantine.jsonl";
constexpr uint32_t kPackFormatVersion = 1;

// Explicit little-endian encode/decode: the on-disk format must be stable
// across hosts, so no memcpy-of-native-integers here.
void PutU32(char* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
}

void PutU64(char* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
}

uint32_t GetU32(const char* in) {
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(static_cast<unsigned char>(in[i]))
             << (8 * i);
  }
  return value;
}

uint64_t GetU64(const char* in) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(static_cast<unsigned char>(in[i]))
             << (8 * i);
  }
  return value;
}

std::string RawToHex(const char* raw) {
  static const char kHex[] = "0123456789abcdef";
  std::string out(64, '0');
  for (size_t i = 0; i < 32; ++i) {
    unsigned char byte = static_cast<unsigned char>(raw[i]);
    out[2 * i] = kHex[byte >> 4];
    out[2 * i + 1] = kHex[byte & 0x0f];
  }
  return out;
}

/// `id` must already be a validated 64-char lowercase-hex object id.
void HexToRaw(const std::string& id, char* out) {
  auto nibble = [](char c) -> unsigned {
    return c <= '9' ? static_cast<unsigned>(c - '0')
                    : static_cast<unsigned>(c - 'a') + 10;
  };
  for (size_t i = 0; i < 32; ++i) {
    out[i] = static_cast<char>((nibble(id[2 * i]) << 4) |
                               nibble(id[2 * i + 1]));
  }
}

Status WriteAll(int fd, const char* data, size_t size,
                const std::string& path) {
  while (size > 0) {
    ssize_t written = ::write(fd, data, size);
    if (written < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pack append failed: " + path + ": " +
                             std::strerror(errno));
    }
    data += written;
    size -= static_cast<size_t>(written);
  }
  return Status::OK();
}

Status FsyncFd(int fd, const std::string& path) {
  if (::fsync(fd) != 0) {
    return Status::IOError("pack fsync failed: " + path + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

PackObjectStore::PackObjectStore(std::string root, PackOptions options)
    : root_(std::move(root)), options_(options) {
  using namespace metric_names;
  MetricsRegistry& registry = MetricsRegistry::Global();
  const std::vector<double>& latency = Histogram::DefaultLatencyBucketsMs();
  appends_total_ = &registry.GetCounter(
      kPackAppendsTotal, "records appended to packfile segments");
  append_bytes_total_ = &registry.GetCounter(
      kPackAppendBytesTotal, "stored payload bytes appended to segments");
  reads_total_ = &registry.GetCounter(kPackReadsTotal, "packfile record reads");
  read_bytes_total_ = &registry.GetCounter(
      kPackReadBytesTotal, "raw (uncompressed) bytes served by packfile reads");
  mmap_reads_total_ = &registry.GetCounter(
      kPackMmapReadsTotal,
      "packfile reads served zero-copy from a sealed-segment mapping");
  compressed_total_ = &registry.GetCounter(
      kPackCompressedBlobsTotal, "blobs stored block-compressed in packfiles");
  compression_saved_bytes_ = &registry.GetCounter(
      kPackCompressionSavedBytesTotal,
      "raw-minus-stored bytes saved by block compression");
  checksum_failures_ = &registry.GetCounter(
      kPackChecksumFailuresTotal,
      "packfile records whose stored checksum no longer matches (rot or torn "
      "write)");
  index_rebuilds_ = &registry.GetCounter(
      kPackIndexRebuildsTotal,
      "segment indexes rebuilt by scanning the segment");
  torn_records_ = &registry.GetCounter(
      kPackTornRecordsTotal,
      "trailing torn records dropped during tail recovery");
  segments_created_ = &registry.GetCounter(kPackSegmentsCreatedTotal,
                                           "packfile segments created");
  quarantines_ = &registry.GetCounter(
      kPackQuarantinesTotal,
      "packfile records quarantined after a fixity or checksum mismatch");
  // Op latency lands in the shared archive histograms: they time store-level
  // Get/Put regardless of which backend served them.
  get_wall_ms_ =
      &registry.GetHistogram(kArchiveGetWallMs, latency, "Get wall time");
  put_wall_ms_ =
      &registry.GetHistogram(kArchivePutWallMs, latency, "Put wall time");
  Open();
}

PackObjectStore::~PackObjectStore() {
  Status sealed = Flush();
  if (!sealed.ok()) {
    // Losing the seal costs a rebuild scan on next open, never data.
    DASPOS_LOG(kWarning) << "pack store close without seal: "
                         << sealed.ToString();
  }
  MutexLock lock(mutex_);
  for (const auto& [segment, fd] : segment_fds_) {
    (void)segment;
    ::close(fd);
  }
  segment_fds_.clear();
}

std::string PackObjectStore::SegmentPath(uint32_t segment) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%06u.seg", segment);
  return root_ + "/segments/" + name;
}

std::string PackObjectStore::IndexPath(uint32_t segment) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%06u.idx", segment);
  return root_ + "/segments/" + name;
}

void PackObjectStore::Open() {
  MutexLock lock(mutex_);
  const std::string segments_dir = root_ + "/segments";
  std::error_code ec;
  fs::create_directories(segments_dir, ec);
  if (ec) {
    open_status_ = Status::IOError("cannot create pack store at " + root_ +
                                   ": " + ec.message());
    DASPOS_LOG(kError) << open_status_.ToString();
    return;
  }
  // Enumerate NNNNNN.seg files; anything else in segments/ is ignored.
  std::vector<uint32_t> segments;
  for (const auto& entry : fs::directory_iterator(segments_dir, ec)) {
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    if (name.size() < 5 || name.substr(name.size() - 4) != ".seg") continue;
    auto number = ParseU64(name.substr(0, name.size() - 4));
    if (!number.ok() || *number > 0xffffffffull) continue;
    segments.push_back(static_cast<uint32_t>(*number));
  }
  if (ec) {
    open_status_ =
        Status::IOError("cannot list pack segments: " + ec.message());
    DASPOS_LOG(kError) << open_status_.ToString();
    return;
  }
  std::sort(segments.begin(), segments.end());
  // Ascending replay: a later record for the same id supersedes an earlier
  // one, which is how re-Put heals rot without rewriting sealed segments.
  for (size_t i = 0; i < segments.size(); ++i) {
    const uint32_t segment = segments[i];
    uint64_t size = static_cast<uint64_t>(
        fs::file_size(SegmentPath(segment), ec));
    if (ec) {
      open_status_ = Status::IOError("cannot stat " + SegmentPath(segment) +
                                     ": " + ec.message());
      DASPOS_LOG(kError) << open_status_.ToString();
      return;
    }
    if (!LoadIndex(segment, size).ok()) {
      // Missing or invalid sidecar: the segment log is the ground truth.
      // Only the tail segment may have a torn tail truncated away — a bad
      // stretch inside an older sealed segment is rot, and its bytes stay
      // in place as evidence.
      index_rebuilds_->Increment();
      Status scanned = ScanSegment(segment, i + 1 == segments.size());
      if (!scanned.ok()) {
        open_status_ = scanned;
        DASPOS_LOG(kError) << open_status_.ToString();
        return;
      }
    }
  }
  next_segment_ = segments.empty() ? 0 : segments.back() + 1;
  segment_count_ = segments.size();
  ReplayQuarantineLog();
}

Status PackObjectStore::LoadIndex(uint32_t segment, uint64_t segment_size) {
  auto text = ReadFileToString(IndexPath(segment));
  if (!text.ok()) return text.status();
  const std::string& data = *text;
  if (data.size() < kPackIndexHeaderSize ||
      std::memcmp(data.data(), kPackIndexMagic, sizeof(kPackIndexMagic)) !=
          0 ||
      GetU32(data.data() + 8) != kPackFormatVersion) {
    return Status::Corruption("bad pack index header: " + IndexPath(segment));
  }
  const uint64_t count = GetU32(data.data() + 12);
  if (data.size() != kPackIndexHeaderSize + count * kPackIndexEntrySize) {
    return Status::Corruption("pack index size mismatch: " +
                              IndexPath(segment));
  }
  // Validate the whole sidecar before committing any entry: a half-loaded
  // index must not leave stray entries that the rebuild scan would miss.
  std::vector<std::pair<std::string, Entry>> parsed;
  parsed.reserve(count);
  std::string previous_id;
  for (uint64_t i = 0; i < count; ++i) {
    const char* record =
        data.data() + kPackIndexHeaderSize + i * kPackIndexEntrySize;
    Entry entry;
    entry.segment = segment;
    entry.offset = GetU64(record + 32);
    entry.raw_len = GetU64(record + 40);
    entry.stored_len = GetU64(record + 48);
    entry.checksum = GetU64(record + 56);
    entry.flags = static_cast<uint8_t>(record[64]);
    std::string id = RawToHex(record);
    if (i > 0 && previous_id >= id) {
      return Status::Corruption("unsorted pack index: " + IndexPath(segment));
    }
    if ((entry.flags & ~kPackFlagCompressed) != 0 ||
        entry.offset < kPackSegmentHeaderSize ||
        entry.offset + entry.stored_len > segment_size ||
        (!(entry.flags & kPackFlagCompressed) &&
         entry.raw_len != entry.stored_len)) {
      return Status::Corruption("invalid pack index entry: " +
                                IndexPath(segment));
    }
    previous_id = id;
    parsed.emplace_back(std::move(id), entry);
  }
  for (auto& [id, entry] : parsed) {
    index_.insert_or_assign(std::move(id), entry);
  }
  return Status::OK();
}

Status PackObjectStore::ScanSegment(uint32_t segment,
                                    bool truncate_torn_tail) {
  const std::string path = SegmentPath(segment);
  uint64_t valid_end = 0;
  uint64_t file_size = 0;
  {
    auto mapped = MemoryMappedFile::Open(path);
    if (!mapped.ok()) return mapped.status();
    std::string_view data = mapped->view();
    file_size = data.size();
    if (data.size() >= kPackSegmentHeaderSize &&
        std::memcmp(data.data(), kPackSegmentMagic,
                    sizeof(kPackSegmentMagic)) == 0 &&
        GetU32(data.data() + 8) == kPackFormatVersion) {
      uint64_t offset = kPackSegmentHeaderSize;
      valid_end = offset;
      while (offset + kPackRecordHeaderSize <= data.size()) {
        const char* header = data.data() + offset;
        if (std::memcmp(header, kPackRecordMagic, sizeof(kPackRecordMagic)) !=
            0) {
          break;
        }
        Entry entry;
        entry.segment = segment;
        entry.flags =
            static_cast<uint8_t>(header[kPackRecordFlagsOffset]);
        entry.raw_len = GetU64(header + kPackRecordRawLenOffset);
        entry.stored_len = GetU64(header + kPackRecordStoredLenOffset);
        entry.checksum = GetU64(header + kPackRecordChecksumOffset);
        entry.offset = offset + kPackRecordHeaderSize;
        if ((entry.flags & ~kPackFlagCompressed) != 0) break;
        if (entry.stored_len > data.size() - entry.offset) break;
        if (!(entry.flags & kPackFlagCompressed) &&
            entry.raw_len != entry.stored_len) {
          break;
        }
        // Checksum every payload during the scan: a record is only
        // re-indexed if its bytes still verify, so a torn write can never
        // resurrect as a servable object.
        std::string_view payload =
            data.substr(entry.offset, entry.stored_len);
        if (Checksum64(payload) != entry.checksum) break;
        index_.insert_or_assign(
            RawToHex(header + kPackRecordIdOffset), entry);
        offset = entry.offset + entry.stored_len;
        valid_end = offset;
      }
    }
  }
  if (valid_end < file_size) {
    if (!truncate_torn_tail) {
      DASPOS_LOG(kError) << "pack segment " << path << " has "
                         << (file_size - valid_end)
                         << " unreadable byte(s) at offset " << valid_end
                         << " (sealed segment: left in place as evidence)";
      return Status::OK();
    }
    torn_records_->Increment();
    DASPOS_LOG(kWarning) << "pack segment " << path
                         << ": dropping torn tail at offset " << valid_end
                         << " (" << (file_size - valid_end) << " byte(s))";
    if (::truncate(path.c_str(), static_cast<off_t>(valid_end)) != 0) {
      return Status::IOError("cannot truncate torn pack tail: " + path +
                             ": " + std::strerror(errno));
    }
  }
  return Status::OK();
}

void PackObjectStore::ReplayQuarantineLog() {
  auto text = ReadFileToString(root_ + "/" + kQuarantineLog);
  if (!text.ok()) return;
  for (const std::string& line : Split(*text, '\n')) {
    if (Trim(line).empty()) continue;
    auto parsed = Json::Parse(line);
    // Journal idiom: parsing stops at the first malformed (crash-truncated)
    // line; everything before it is usable.
    if (!parsed.ok() || !parsed->is_object()) break;
    const Json& id_json = parsed->Get("id");
    const Json& segment_json = parsed->Get("segment");
    const Json& offset_json = parsed->Get("offset");
    if (!id_json.is_string() || !segment_json.is_number() ||
        !offset_json.is_number()) {
      break;
    }
    const std::string id = id_json.as_string();
    quarantine_log_.insert(id);
    auto it = index_.find(id);
    // The quarantine only stands while the index still points at the exact
    // record it condemned; a later record for the same id is a heal.
    if (it != index_.end() &&
        it->second.segment ==
            static_cast<uint32_t>(segment_json.as_number()) &&
        it->second.offset == static_cast<uint64_t>(offset_json.as_number())) {
      index_.erase(it);
      quarantined_.insert(id);
    }
  }
}

PackObjectStore::Prepared PackObjectStore::PrepareBlob(
    std::string_view bytes) const {
  Prepared prepared;
  prepared.id = Sha256::HashHex(bytes);
  prepared.raw_len = bytes.size();
  if (options_.compress) {
    std::string packed = Compress(bytes);
    // Store compressed only when it wins; incompressible blobs stay raw so
    // reads never pay a pointless decompression pass.
    if (packed.size() < bytes.size()) {
      prepared.stored = std::move(packed);
      prepared.flags = kPackFlagCompressed;
    }
  }
  if (prepared.flags == 0) prepared.stored.assign(bytes);
  prepared.checksum = Checksum64(prepared.stored);
  return prepared;
}

Status PackObjectStore::EnsureActiveSegmentLocked(bool force_new) {
  if (has_active_) return Status::OK();
  DASPOS_RETURN_IF_ERROR(open_status_);
  const std::string segments_dir = root_ + "/segments";
  if (!force_new && next_segment_ > 0 &&
      retired_segments_.count(next_segment_ - 1) == 0) {
    const uint32_t tail = next_segment_ - 1;
    std::error_code ec;
    uint64_t size =
        static_cast<uint64_t>(fs::file_size(SegmentPath(tail), ec));
    if (!ec && size < options_.max_segment_bytes) {
      // Unseal the tail: dropping the sidecar first keeps the invariant
      // that only segments without a .idx ever grow — a crash after the
      // unlink just means a rebuild scan on next open.
      DASPOS_RETURN_IF_ERROR(RemoveFile(IndexPath(tail)));
      // Any cached mapping of the tail was made at its sealed size and
      // goes stale the moment the segment grows: retire it now so reads
      // of records appended past the old size remap instead of mistaking
      // the short view for a truncated record.
      RetireMappingLocked(tail);
      auto it = segment_fds_.find(tail);
      if (it == segment_fds_.end()) {
        int fd = ::open(SegmentPath(tail).c_str(),
                        O_RDWR | O_APPEND | O_CLOEXEC);
        if (fd < 0) {
          return Status::IOError("cannot open pack segment for append: " +
                                 SegmentPath(tail) + ": " +
                                 std::strerror(errno));
        }
        it = segment_fds_.emplace(tail, fd).first;
      }
      if (size < kPackSegmentHeaderSize) {
        // Tail recovery truncated the segment to zero (torn header): stamp
        // a fresh header before the first record.
        char header[kPackSegmentHeaderSize] = {};
        std::memcpy(header, kPackSegmentMagic, sizeof(kPackSegmentMagic));
        PutU32(header + 8, kPackFormatVersion);
        Status stamped = WriteAll(it->second, header, sizeof(header),
                                  SegmentPath(tail));
        if (!stamped.ok()) {
          // Cut a partial header away so the next attempt (or a rebuild
          // scan) starts from a clean prefix; the segment stays inactive.
          if (::ftruncate(it->second, static_cast<off_t>(size)) != 0) {
            retired_segments_.insert(tail);
          }
          return stamped;
        }
        size = kPackSegmentHeaderSize;
      }
      active_segment_ = tail;
      active_size_ = size;
      has_active_ = true;
      return Status::OK();
    }
  }
  const uint32_t segment = next_segment_;
  const std::string path = SegmentPath(segment);
  int fd = ::open(path.c_str(),
                  O_RDWR | O_CREAT | O_EXCL | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot create pack segment: " + path + ": " +
                           std::strerror(errno));
  }
  char header[kPackSegmentHeaderSize] = {};
  std::memcpy(header, kPackSegmentMagic, sizeof(kPackSegmentMagic));
  PutU32(header + 8, kPackFormatVersion);
  Status written = WriteAll(fd, header, sizeof(header), path);
  if (written.ok()) written = FsyncFd(fd, path);
  // The file NAME must survive a crash too, not just its bytes.
  if (written.ok()) written = FsyncDir(segments_dir);
  if (!written.ok()) {
    // Remove the stillborn (at most header-only, record-free) file: it
    // would otherwise block the O_EXCL create of the same number forever.
    ::close(fd);
    (void)::unlink(path.c_str());
    return written;
  }
  segment_fds_.emplace(segment, fd);
  next_segment_ = segment + 1;
  active_segment_ = segment;
  active_size_ = kPackSegmentHeaderSize;
  has_active_ = true;
  ++segment_count_;
  segments_created_->Increment();
  return Status::OK();
}

void PackObjectStore::RepairActiveTailLocked() {
  auto it = segment_fds_.find(active_segment_);
  if (it != segment_fds_.end() &&
      ::ftruncate(it->second, static_cast<off_t>(active_size_)) == 0) {
    // Back at the last known-good offset: the segment keeps accepting
    // appends and every index entry still points where it should.
    return;
  }
  DASPOS_LOG(kError) << "pack segment " << SegmentPath(active_segment_)
                     << ": cannot cut tail back to " << active_size_
                     << " after failed append; retiring segment from "
                        "appending";
  retired_segments_.insert(active_segment_);
  has_active_ = false;
}

Status PackObjectStore::AppendLocked(const Prepared& blob) {
  DASPOS_RETURN_IF_ERROR(EnsureActiveSegmentLocked());
  const uint64_t need = kPackRecordHeaderSize + blob.stored.size();
  if (active_size_ > kPackSegmentHeaderSize &&
      active_size_ + need > options_.max_segment_bytes) {
    // Roll over: seal the full segment (records first, then sidecar) and
    // start a fresh one. An over-sized single blob still lands alone in its
    // own segment rather than being refused.
    DASPOS_RETURN_IF_ERROR(FlushLocked());
    DASPOS_RETURN_IF_ERROR(EnsureActiveSegmentLocked(/*force_new=*/true));
  }
  auto fd_it = segment_fds_.find(active_segment_);
  if (fd_it == segment_fds_.end()) {
    return Status::IOError("pack append: active segment fd missing");
  }
  const std::string path = SegmentPath(active_segment_);
  char header[kPackRecordHeaderSize] = {};
  std::memcpy(header, kPackRecordMagic, sizeof(kPackRecordMagic));
  header[kPackRecordFlagsOffset] = static_cast<char>(blob.flags);
  HexToRaw(blob.id, header + kPackRecordIdOffset);
  PutU64(header + kPackRecordRawLenOffset, blob.raw_len);
  PutU64(header + kPackRecordStoredLenOffset, blob.stored.size());
  PutU64(header + kPackRecordChecksumOffset, blob.checksum);
  // Header and payload in one logical append; O_APPEND + the store mutex
  // keep records contiguous.
  Status appended = WriteAll(fd_it->second, header, sizeof(header), path);
  if (appended.ok()) {
    appended =
        WriteAll(fd_it->second, blob.stored.data(), blob.stored.size(), path);
  }
  if (!appended.ok()) {
    // Partial record bytes may have landed at the true EOF while
    // active_size_ stayed put — without repair, every later append would
    // be indexed at the wrong offset (O_APPEND writes at the kernel's
    // EOF, not ours) and freshly written data would read back corrupt.
    RepairActiveTailLocked();
    return appended;
  }
  Entry entry;
  entry.segment = active_segment_;
  entry.flags = blob.flags;
  entry.offset = active_size_ + kPackRecordHeaderSize;
  entry.raw_len = blob.raw_len;
  entry.stored_len = blob.stored.size();
  entry.checksum = blob.checksum;
  active_size_ += need;
  index_.insert_or_assign(blob.id, entry);
  // A fresh record supersedes any quarantined one: the re-Put IS the heal
  // (the condemned bytes stay in their sealed segment as evidence).
  quarantined_.erase(blob.id);
  appends_total_->Increment();
  append_bytes_total_->Increment(blob.stored.size());
  if (blob.flags & kPackFlagCompressed) {
    compressed_total_->Increment();
    compression_saved_bytes_->Increment(blob.raw_len - blob.stored.size());
  }
  return Status::OK();
}

Status PackObjectStore::SyncActiveLocked() {
  if (!has_active_) return Status::OK();
  auto it = segment_fds_.find(active_segment_);
  if (it == segment_fds_.end()) return Status::OK();
  return FsyncFd(it->second, SegmentPath(active_segment_));
}

Status PackObjectStore::FlushLocked() {
  if (!has_active_) return Status::OK();
  // Durability order: records before the index that certifies them.
  DASPOS_RETURN_IF_ERROR(SyncActiveLocked());
  std::vector<const std::pair<const std::string, Entry>*> entries;
  for (const auto& item : index_) {
    if (item.second.segment == active_segment_) entries.push_back(&item);
  }
  // index_ is an ordered map, so `entries` is already sorted by id.
  std::string data(kPackIndexHeaderSize +
                       entries.size() * kPackIndexEntrySize,
                   '\0');
  std::memcpy(data.data(), kPackIndexMagic, sizeof(kPackIndexMagic));
  PutU32(data.data() + 8, kPackFormatVersion);
  PutU32(data.data() + 12, static_cast<uint32_t>(entries.size()));
  for (size_t i = 0; i < entries.size(); ++i) {
    char* out = data.data() + kPackIndexHeaderSize + i * kPackIndexEntrySize;
    const Entry& entry = entries[i]->second;
    HexToRaw(entries[i]->first, out);
    PutU64(out + 32, entry.offset);
    PutU64(out + 40, entry.raw_len);
    PutU64(out + 48, entry.stored_len);
    PutU64(out + 56, entry.checksum);
    out[64] = static_cast<char>(entry.flags);
  }
  DASPOS_RETURN_IF_ERROR(
      AtomicWriteFile(IndexPath(active_segment_), data));
  has_active_ = false;
  return Status::OK();
}

Status PackObjectStore::Flush() {
  MutexLock lock(mutex_);
  return FlushLocked();
}

Result<std::string> PackObjectStore::Put(std::string_view bytes) {
  Span span("pack:put", "archive");
  span.AddAttribute("bytes", static_cast<uint64_t>(bytes.size()));
  WallTimer timer;
  Prepared prepared = PrepareBlob(bytes);  // hash + compress outside the lock
  bool have_existing = false;
  Entry existing;
  {
    MutexLock lock(mutex_);
    DASPOS_RETURN_IF_ERROR(open_status_);
    auto it = index_.find(prepared.id);
    if (it != index_.end()) {
      have_existing = true;
      existing = it->second;
    }
  }
  if (have_existing) {
    // Dedupe hit — but only when the existing record is still intact, so
    // re-putting good bytes heals silent rot (parity with the loose
    // backend's Put semantics). The checksum gate is cheap; no SHA needed
    // because identity was established when the record was written.
    bool via_mmap = false;
    if (ReadRecord(prepared.id, existing, &via_mmap).ok()) {
      put_wall_ms_->Observe(timer.ElapsedMillis());
      return prepared.id;
    }
    // ReadRecord quarantined the rotted record; fall through and append a
    // superseding one.
  }
  MutexLock lock(mutex_);
  DASPOS_RETURN_IF_ERROR(AppendLocked(prepared));
  DASPOS_RETURN_IF_ERROR(SyncActiveLocked());
  put_wall_ms_->Observe(timer.ElapsedMillis());
  return prepared.id;
}

Result<std::vector<std::string>> PackObjectStore::PutBatch(
    const std::vector<std::string_view>& blobs, ThreadPool* pool) {
  Span span("pack:putbatch", "archive");
  span.AddAttribute("blobs", static_cast<uint64_t>(blobs.size()));
  WallTimer timer;
  // Hashing and compression dominate and parallelize perfectly; the
  // appends then serialize under one lock with a single fsync for the
  // whole batch instead of one per blob.
  std::vector<Prepared> prepared = ParallelMap<Prepared>(
      pool, blobs.size(),
      [this, &blobs](size_t i) { return PrepareBlob(blobs[i]); },
      /*grain=*/1);
  // Dedupe with the same read-back gate as Put: an index hit only stands
  // while the existing record still verifies, so a batched re-put of
  // rotted bytes appends a superseding record — scrub backfill and
  // heal paths go through PutBatch and rely on this.
  std::vector<std::pair<bool, Entry>> existing(prepared.size());
  {
    MutexLock lock(mutex_);
    DASPOS_RETURN_IF_ERROR(open_status_);
    for (size_t i = 0; i < prepared.size(); ++i) {
      auto it = index_.find(prepared[i].id);
      if (it != index_.end()) existing[i] = {true, it->second};
    }
  }
  std::vector<uint8_t> rotted = ParallelMap<uint8_t>(
      pool, prepared.size(),
      [this, &prepared, &existing](size_t i) -> uint8_t {
        if (!existing[i].first) return 0;
        bool via_mmap = false;
        return ReadRecord(prepared[i].id, existing[i].second, &via_mmap).ok()
                   ? 0
                   : 1;
      },
      /*grain=*/1);
  std::vector<std::string> ids;
  ids.reserve(prepared.size());
  {
    MutexLock lock(mutex_);
    DASPOS_RETURN_IF_ERROR(open_status_);
    // A failed gate usually self-erased the condemned entry (quarantine),
    // making the id a plain index miss; `rotted` additionally covers gate
    // failures that leave the entry behind (I/O errors). The batch-local
    // set keeps a duplicate of an already-superseded id from appending
    // twice.
    std::set<std::string> appended_now;
    for (size_t i = 0; i < prepared.size(); ++i) {
      const Prepared& blob = prepared[i];
      if (index_.find(blob.id) == index_.end() ||
          (rotted[i] != 0 && appended_now.count(blob.id) == 0)) {
        DASPOS_RETURN_IF_ERROR(AppendLocked(blob));
        appended_now.insert(blob.id);
      }
      ids.push_back(blob.id);
    }
    DASPOS_RETURN_IF_ERROR(SyncActiveLocked());
  }
  put_wall_ms_->Observe(timer.ElapsedMillis());
  return ids;
}

void PackObjectStore::RetireMappingLocked(uint32_t segment) const {
  auto it = mmaps_.find(segment);
  if (it == mmaps_.end()) return;
  // Not destroyed: readers that took a view from this mapping may still be
  // copying out of it without holding the lock.
  retired_mmaps_.push_back(std::move(it->second));
  mmaps_.erase(it);
}

Result<const MemoryMappedFile*> PackObjectStore::SealedMappingLocked(
    uint32_t segment) const {
  auto it = mmaps_.find(segment);
  if (it == mmaps_.end()) {
    auto opened = MemoryMappedFile::Open(SegmentPath(segment));
    if (!opened.ok()) return opened.status();
    it = mmaps_
             .emplace(segment, std::unique_ptr<MemoryMappedFile>(
                                   new MemoryMappedFile(std::move(*opened))))
             .first;
  }
  // Mappings live as long as the store, so the view stays valid after the
  // lock is released.
  return it->second.get();
}

Result<std::string> PackObjectStore::ReadRecord(const std::string& id,
                                                const Entry& entry,
                                                bool* via_mmap) const {
  *via_mmap = false;
  const MemoryMappedFile* mapped = nullptr;
  int fd = -1;
  {
    MutexLock lock(mutex_);
    if (has_active_ && entry.segment == active_segment_) {
      // The active segment still grows; pread on its fd instead of chasing
      // a moving mapping.
      auto it = segment_fds_.find(entry.segment);
      if (it == segment_fds_.end()) {
        return Status::IOError("pack read: active segment fd missing");
      }
      fd = it->second;
    } else {
      DASPOS_ASSIGN_OR_RETURN(mapped, SealedMappingLocked(entry.segment));
    }
  }
  std::string buffer;
  std::string_view stored;
  if (mapped != nullptr) {
    std::string_view view = mapped->view();
    bool in_bounds = entry.offset <= view.size() &&
                     entry.stored_len <= view.size() - entry.offset;
    if (!in_bounds) {
      // A mapping cached before this segment was unsealed and grown is
      // shorter than the file; remap at the current size before concluding
      // the record itself is truncated — quarantining on a stale view
      // would condemn (and persistently log) perfectly healthy data.
      {
        MutexLock lock(mutex_);
        auto it = mmaps_.find(entry.segment);
        if (it != mmaps_.end() && it->second->view().size() <= view.size()) {
          RetireMappingLocked(entry.segment);
        }
        DASPOS_ASSIGN_OR_RETURN(mapped, SealedMappingLocked(entry.segment));
      }
      view = mapped->view();
      in_bounds = entry.offset <= view.size() &&
                  entry.stored_len <= view.size() - entry.offset;
    }
    if (!in_bounds) {
      QuarantineRecord(id, entry, "index points past segment end");
      return Status::Corruption("fixity mismatch for object " + id +
                                " (record truncated; quarantined)");
    }
    // Zero-copy: checksum and decompression read straight from the page
    // cache through the mapping; no read buffer is ever allocated.
    stored = view.substr(entry.offset, entry.stored_len);
    *via_mmap = true;
  } else {
    buffer.resize(entry.stored_len);
    size_t done = 0;
    while (done < buffer.size()) {
      ssize_t got = ::pread(fd, buffer.data() + done, buffer.size() - done,
                            static_cast<off_t>(entry.offset + done));
      if (got < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("pack pread failed: " +
                               SegmentPath(entry.segment) + ": " +
                               std::strerror(errno));
      }
      if (got == 0) {
        QuarantineRecord(id, entry, "record ends past segment end");
        return Status::Corruption("fixity mismatch for object " + id +
                                  " (record truncated; quarantined)");
      }
      done += static_cast<size_t>(got);
    }
    stored = buffer;
  }
  if (Checksum64(stored) != entry.checksum) {
    checksum_failures_->Increment();
    QuarantineRecord(id, entry, "stored checksum mismatch");
    return Status::Corruption("fixity mismatch for object " + id +
                              " (quarantined)");
  }
  if (entry.flags & kPackFlagCompressed) {
    auto raw = Decompress(stored);
    if (!raw.ok() || raw->size() != entry.raw_len) {
      QuarantineRecord(id, entry, "stored payload fails decompression");
      return Status::Corruption("fixity mismatch for object " + id +
                                " (quarantined)");
    }
    return std::move(*raw);
  }
  if (mapped != nullptr) return std::string(stored);
  return buffer;
}

void PackObjectStore::QuarantineRecord(const std::string& id,
                                       const Entry& entry,
                                       const std::string& detail) const {
  quarantines_->Increment();
  DASPOS_LOG(kError) << "pack quarantine: object " << id << " in segment "
                     << entry.segment << " @" << entry.offset << ": "
                     << detail;
  // Append-fsynced quarantine line (journal idiom). The condemned bytes
  // stay in their immutable segment — the log IS the forensic pointer.
  Json line = Json::Object();
  line["id"] = id;
  line["segment"] = static_cast<uint64_t>(entry.segment);
  line["offset"] = entry.offset;
  line["stored_len"] = entry.stored_len;
  line["detail"] = detail;
  const std::string path = root_ + "/" + kQuarantineLog;
  const bool created = !FileExists(path);
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    DASPOS_LOG(kError) << "pack quarantine log append failed: " << path
                       << ": " << std::strerror(errno);
  } else {
    std::string text = line.Dump() + "\n";
    Status written = WriteAll(fd, text.data(), text.size(), path);
    if (written.ok()) written = FsyncFd(fd, path);
    ::close(fd);
    if (written.ok() && created) written = FsyncDir(root_);
    if (!written.ok()) {
      DASPOS_LOG(kError) << "pack quarantine log append failed: "
                         << written.ToString();
    }
  }
  MutexLock lock(mutex_);
  auto it = index_.find(id);
  // Drop the exact condemned record only: a concurrent re-Put may already
  // have installed a healthy superseding record.
  if (it != index_.end() && it->second.segment == entry.segment &&
      it->second.offset == entry.offset) {
    index_.erase(it);
    quarantined_.insert(id);
  }
  quarantine_log_.insert(id);
}

Result<std::string> PackObjectStore::Get(const std::string& id) const {
  Span span("pack:get", "archive");
  WallTimer timer;
  DASPOS_RETURN_IF_ERROR(ValidateObjectId(id));
  Entry entry;
  {
    MutexLock lock(mutex_);
    auto it = index_.find(id);
    if (it == index_.end()) {
      return Status::NotFound("object " + id + " not in store");
    }
    entry = it->second;
  }
  bool via_mmap = false;
  auto bytes = ReadRecord(id, entry, &via_mmap);
  if (bytes.ok()) {
    reads_total_->Increment();
    read_bytes_total_->Increment(bytes->size());
    if (via_mmap) mmap_reads_total_->Increment();
    span.AddAttribute("bytes", static_cast<uint64_t>(bytes->size()));
  }
  get_wall_ms_->Observe(timer.ElapsedMillis());
  return bytes;
}

bool PackObjectStore::Has(const std::string& id) const {
  if (!ValidateObjectId(id).ok()) return false;
  MutexLock lock(mutex_);
  return index_.count(id) > 0;
}

Status PackObjectStore::Verify(const std::string& id) const {
  Span span("pack:verify", "archive");
  DASPOS_RETURN_IF_ERROR(ValidateObjectId(id));
  Entry entry;
  {
    MutexLock lock(mutex_);
    auto it = index_.find(id);
    if (it == index_.end()) {
      return Status::NotFound("object " + id + " not in store");
    }
    entry = it->second;
  }
  // An audit always re-hashes the full raw payload: the per-record
  // checksum gates reads, but SHA-256 is the preservation-grade authority.
  bool via_mmap = false;
  DASPOS_ASSIGN_OR_RETURN(std::string raw, ReadRecord(id, entry, &via_mmap));
  if (Sha256::HashHex(raw) != id) {
    QuarantineRecord(id, entry, "sha-256 fixity mismatch");
    return Status::Corruption("fixity mismatch for object " + id +
                              " (quarantined)");
  }
  return Status::OK();
}

std::vector<std::string> PackObjectStore::Ids() const {
  MutexLock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(index_.size());
  for (const auto& [id, entry] : index_) {
    (void)entry;
    out.push_back(id);
  }
  return out;  // std::map iteration order: already sorted
}

Status PackObjectStore::ForEachId(
    const std::function<Status(const std::string&)>& fn) const {
  // Snapshot the (in-memory, already resident) key set so callbacks can
  // freely call back into the store without holding its lock.
  std::vector<std::string> ids = Ids();
  {
    MutexLock lock(mutex_);
    // An unopenable store has an empty index; report the open failure
    // rather than letting an audit mistake it for an empty store.
    DASPOS_RETURN_IF_ERROR(open_status_);
  }
  for (const std::string& id : ids) {
    DASPOS_RETURN_IF_ERROR(fn(id));
  }
  return Status::OK();
}

uint64_t PackObjectStore::TotalBytes() const {
  MutexLock lock(mutex_);
  uint64_t total = 0;
  for (const auto& [id, entry] : index_) {
    (void)id;
    total += entry.raw_len;
  }
  return total;
}

uint64_t PackObjectStore::StoredBytes() const {
  MutexLock lock(mutex_);
  uint64_t total = 0;
  for (const auto& [id, entry] : index_) {
    (void)id;
    total += entry.stored_len;
  }
  return total;
}

size_t PackObjectStore::SegmentCount() const {
  MutexLock lock(mutex_);
  // Not next_segment_: numbering can be sparse (externally compacted /
  // deleted segments), and repack reporting counts real files.
  return segment_count_;
}

std::vector<std::string> PackObjectStore::QuarantinedIds() const {
  MutexLock lock(mutex_);
  return std::vector<std::string>(quarantine_log_.begin(),
                                  quarantine_log_.end());
}

}  // namespace daspos
