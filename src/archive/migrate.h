// Copy-verify-swap generation migration — the "media migration" half of bit
// preservation: every few hardware generations the whole archive is copied
// onto new storage, every copied object is re-hashed on the *target* before
// it counts, and only when the complete holdings verify does an atomic
// generation-marker swap make the new copy authoritative. The source is
// never modified or deleted: rollback is "keep using generation N".
#ifndef DASPOS_ARCHIVE_MIGRATE_H_
#define DASPOS_ARCHIVE_MIGRATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serialize/json.h"
#include "support/result.h"

namespace daspos {

class FaultPlan;
class ObjectStore;
class ThreadPool;

struct MigrateOptions {
  /// Directory holding the migration's durable state: the JSONL copy cursor
  /// (`migrate_cursor.jsonl`) and the generation marker (`GENERATION`).
  /// Required — a migration without durable state cannot resume or swap.
  std::string state_dir;
  /// Objects per batch: granularity of cursor checkpoints and sharding.
  size_t batch_size = 64;
  /// Pool for intra-batch parallel copy+verify (not owned; null = serial).
  ThreadPool* pool = nullptr;
  /// Chaos hook: consulted before each copy ("migrate:copy") and each final
  /// verification ("migrate:verify"). An injected fault aborts the
  /// migration mid-flight exactly like a crash would; a rerun must resume.
  FaultPlan* faults = nullptr;
};

struct MigrateReport {
  /// The generation number the swap installed (previous marker + 1).
  uint64_t generation = 0;
  uint64_t objects_total = 0;
  /// Objects copied by this invocation vs. found already verifying on the
  /// target (a resumed run skips what the crashed run completed).
  uint64_t copied = 0;
  uint64_t skipped = 0;
  uint64_t bytes_copied = 0;
  /// Objects re-verified in the final full sweep before the swap (always
  /// == objects_total on success: every object, copied or skipped).
  uint64_t verified = 0;
  /// True when a prior interrupted migration's cursor was found.
  bool resumed = false;
  double wall_ms = 0.0;

  std::string RenderText() const;
  Json ToJson() const;
};

/// Migrates every object in `source` to `target` with copy-verify-swap:
///
///  1. Copy: each source object is fetched (fixity-gated), written to the
///     target, and the *target's* copy is read back and re-hashed before the
///     object counts as migrated. Progress checkpoints to a JSONL cursor
///     after every batch, so a crash at any point resumes — objects already
///     verifying on the target are skipped, anything else is re-copied.
///  2. Verify: a final sweep re-verifies every object on the target —
///     including ones skipped as already-present — so the swap never
///     certifies stale or rotted bytes.
///  3. Swap: the generation marker in `state_dir` is atomically replaced
///     (temp + fsync + rename) with generation N+1 and the verified object
///     count. The source store is left untouched.
///
/// Fails without swapping if any object cannot be copied or verified; the
/// cursor preserves progress for the next attempt.
Result<MigrateReport> MigrateGeneration(const ObjectStore& source,
                                        ObjectStore& target,
                                        const MigrateOptions& options);

/// Reads the current generation from `state_dir`'s marker; 0 when no
/// migration has completed yet.
uint64_t ReadGeneration(const std::string& state_dir);

}  // namespace daspos

#endif  // DASPOS_ARCHIVE_MIGRATE_H_
