// Incremental fixity scrubbing — the "periodic scrub" half of bit
// preservation (H1/DPHEP): walk every object on every replica on a
// schedule, re-hash the real bytes, repair rot from a healthy replica, and
// leave a persistent cursor so an interrupted pass resumes where it
// stopped instead of starting over.
#ifndef DASPOS_ARCHIVE_SCRUB_H_
#define DASPOS_ARCHIVE_SCRUB_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "serialize/json.h"
#include "support/result.h"

namespace daspos {

class ObjectStore;
class ThreadPool;

struct ScrubOptions {
  /// Directory holding the persistent JSONL cursor (`scrub_cursor.jsonl`,
  /// journal idiom: append-fsynced lines, truncation-tolerant load). Empty
  /// runs a stateless full pass.
  std::string cursor_dir;
  /// Upper bound on objects scrubbed by this invocation; 0 = no bound. A
  /// truncated pass reports incomplete (warn) and the cursor carries the
  /// position into the next invocation.
  size_t max_objects = 0;
  /// Rate limit in objects/second across the pass; 0 = unthrottled. The
  /// limiter sleeps between batches, so a burst never exceeds one batch.
  double rate_limit_per_s = 0.0;
  /// Objects per batch: the granularity of cursor checkpoints, rate
  /// limiting, and parallel sharding.
  size_t batch_size = 64;
  /// Pool for intra-batch parallel verification (not owned; null = serial).
  ThreadPool* pool = nullptr;
  /// Sleep hook for the rate limiter (milliseconds); tests override to
  /// avoid real waiting. Defaults to std::this_thread::sleep_for.
  std::function<void(double)> sleeper;
};

enum class ScrubVerdict { kPass = 0, kWarn = 1, kFail = 2 };
std::string_view ScrubVerdictName(ScrubVerdict verdict);

/// One object the scrubber could not heal: no replica holds verifying
/// bytes. The rotted copies are quarantined by their stores; healthy bytes
/// must come from outside (e.g. an operator restoring from cold storage).
struct UnrepairableObject {
  std::string id;
  std::string detail;
};

struct ScrubReport {
  uint64_t pass_number = 0;
  /// Objects examined this invocation / total in the union of holdings.
  uint64_t objects_checked = 0;
  uint64_t objects_total = 0;
  /// Per-replica copy verifications (objects_checked x replicas).
  uint64_t replicas_checked = 0;
  /// Rotted or missing replica copies healed from a healthy replica.
  uint64_t repaired = 0;
  std::vector<UnrepairableObject> unrepairable;  // sorted by id
  /// False when max_objects truncated the pass before the end of holdings.
  bool complete = true;
  double wall_ms = 0.0;

  /// fail: any unrepairable object. warn: the pass was truncated
  /// (incomplete coverage is not a clean bill of health). pass: everything
  /// examined is healthy on every replica — including objects the scrubber
  /// itself just repaired, since healing is its job.
  ScrubVerdict Verdict() const;
  /// Deterministic operator report; exit-code contract mirrors
  /// `daspos validate` (0 pass / 2 warn / 1 fail).
  std::string RenderText() const;
  Json ToJson() const;
};

/// One scrub invocation over the union of holdings across `replicas`
/// (borrowed, not owned). Objects are visited in sorted-id order in batches
/// of `options.batch_size`; each batch verifies its objects on every
/// replica (sharded over `options.pool`), repairs unhealthy copies from a
/// healthy one, appends a cursor record, then yields to the rate limiter.
/// With a cursor_dir, a rerun resumes the interrupted pass after the last
/// checkpointed id; a completed pass starts the next one from the top.
Result<ScrubReport> ScrubReplicas(const std::vector<ObjectStore*>& replicas,
                                  const ScrubOptions& options = {});

}  // namespace daspos

#endif  // DASPOS_ARCHIVE_SCRUB_H_
