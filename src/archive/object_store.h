// Content-addressed object storage: objects are keyed by the SHA-256 of
// their bytes, so identity, deduplication, and fixity verification are all
// the same operation — the foundation of the preservation archive.
#ifndef DASPOS_ARCHIVE_OBJECT_STORE_H_
#define DASPOS_ARCHIVE_OBJECT_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <system_error>
#include <vector>

#include "support/result.h"
#include "support/sync.h"

namespace daspos {

class Counter;
class Histogram;
class ThreadPool;

/// Checks that `id` is a well-formed content id: exactly 64 lowercase hex
/// characters. Rejects empty ids, path separators, `..`, absolute paths, and
/// anything else that could escape a store root when spliced into a path.
Status ValidateObjectId(const std::string& id);

class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  /// Stores `bytes` and returns their content id (64 hex chars).
  /// Re-putting identical bytes is a no-op returning the same id.
  virtual Result<std::string> Put(std::string_view bytes) = 0;

  virtual Result<std::string> Get(const std::string& id) const = 0;
  virtual bool Has(const std::string& id) const = 0;

  /// Re-hashes the stored bytes and compares with the id; Corruption on
  /// mismatch (bit rot), NotFound if absent.
  virtual Status Verify(const std::string& id) const = 0;

  /// All stored ids (sorted).
  virtual std::vector<std::string> Ids() const = 0;

  /// Streams every stored id in ascending order WITHOUT materializing the
  /// full list — on large stores this is the O(1)-memory alternative to
  /// Ids() for scrubs, audits, and migrations. `fn` returning non-OK aborts
  /// the walk immediately and that status is returned. A store whose walk
  /// partially failed keeps going, then returns the first walk error after
  /// visiting everything reachable: callers can heal what they can, but an
  /// unreadable store is never mistaken for an empty one. Callbacks may call
  /// back into the store (Get/Verify/Has) — implementations must not hold
  /// internal locks while invoking `fn`. The base implementation adapts
  /// Ids().
  virtual Status ForEachId(
      const std::function<Status(const std::string&)>& fn) const;

  virtual uint64_t TotalBytes() const = 0;

  /// Ids of blobs that failed fixity and were moved aside (sorted). Backends
  /// without a quarantine area return an empty list.
  virtual std::vector<std::string> QuarantinedIds() const { return {}; }

  /// Stores every blob and returns their ids in input order; the first Put
  /// failure aborts the batch. The base implementation loops over Put, so
  /// decorators (fault injection, retry) keep their semantics; backends with
  /// thread-safe Put may override to hash/write on `pool`.
  virtual Result<std::vector<std::string>> PutBatch(
      const std::vector<std::string_view>& blobs, ThreadPool* pool = nullptr);
};

/// In-memory backend (tests, benches). NOT thread-safe: unlike
/// FileObjectStore there is no internal lock, so concurrent Put/Get require
/// external synchronization (PutBatch's parallel override is therefore only
/// on the file backend).
class MemoryObjectStore : public ObjectStore {
 public:
  Result<std::string> Put(std::string_view bytes) override;
  Result<std::string> Get(const std::string& id) const override;
  bool Has(const std::string& id) const override;
  Status Verify(const std::string& id) const override;
  std::vector<std::string> Ids() const override;
  uint64_t TotalBytes() const override;

  /// Test hook: silently corrupt a stored object (fixity must catch it).
  Status CorruptForTesting(const std::string& id, size_t byte_index);

 private:
  // Decorated stores fan per-object Puts over a pool (RetryingObjectStore::
  // PutBatch), so the map must tolerate concurrent mutation like
  // FileObjectStore does.
  mutable Mutex mutex_;
  std::map<std::string, std::string> objects_ DASPOS_GUARDED_BY(mutex_);
};

/// Filesystem backend: objects live at <root>/<id[0:2]>/<id[2:]>. Writes are
/// crash-safe (temp file + fsync + rename) and every read is fixity-gated;
/// a blob whose digest no longer matches its id is moved to
/// <root>/quarantine/<id> and the read fails with Corruption. Keyed lookups
/// validate the id first, so a hostile id ("../../etc/passwd") can never
/// address a path outside the store root.
///
/// Read fast path: after a successful hash check, Get records the blob's
/// {size, mtime} in an in-memory verified-digest cache. A warm Get whose
/// stat still matches skips the re-hash and just reads the bytes; any
/// mismatch (or a Put / quarantine on the id) drops the entry and the next
/// read re-hashes from scratch. Verify never consults the cache — an audit
/// must always touch the real bytes.
///
/// Put, Get, and Verify are safe to call concurrently (PutBatch relies on
/// this): the cache is mutex-guarded and on-disk publication is an atomic
/// rename.
///
/// Every operation publishes to MetricsRegistry::Global()
/// (daspos_archive_*: op counts, byte totals, digest-cache hits/misses/
/// invalidations, quarantines, get/put latency) and opens an "archive:*"
/// trace span when the tracer is enabled.
class FileObjectStore : public ObjectStore {
 public:
  explicit FileObjectStore(std::string root);

  Result<std::string> Put(std::string_view bytes) override;
  Result<std::string> Get(const std::string& id) const override;
  bool Has(const std::string& id) const override;
  Status Verify(const std::string& id) const override;
  std::vector<std::string> Ids() const override;
  /// Streams shard directories one at a time ("00".."ff" in order, ids
  /// sorted within each shard), so peak memory is one shard's worth of
  /// names — ~1/256th of the store — instead of the whole id list.
  Status ForEachId(const std::function<Status(const std::string&)>& fn)
      const override;
  uint64_t TotalBytes() const override;
  std::vector<std::string> QuarantinedIds() const override;

  /// Hashes and writes the blobs concurrently on `pool` (caller
  /// participates; ids still returned in input order).
  Result<std::vector<std::string>> PutBatch(
      const std::vector<std::string_view>& blobs,
      ThreadPool* pool = nullptr) override;

 private:
  /// Stat fingerprint of a verified blob. A later stat that differs means
  /// the file changed behind the cache and the verdict is stale.
  struct VerifiedStat {
    uint64_t size = 0;
    int64_t mtime_ns = 0;

    bool operator==(const VerifiedStat& other) const {
      return size == other.size && mtime_ns == other.mtime_ns;
    }
  };

  /// Op bodies behind the instrumented public wrappers.
  Result<std::string> PutImpl(std::string_view bytes);
  Result<std::string> GetImpl(const std::string& id) const;
  Status VerifyImpl(const std::string& id) const;

  std::string PathFor(const std::string& id) const;
  /// Records one store-walk failure (directory unreadable, stat failed)
  /// during Ids()/TotalBytes(): logs it and bumps
  /// daspos_archive_walk_errors_total so an unreadable store can never be
  /// mistaken for an empty one by audits reading the walk results.
  void CountWalkError(const std::string& what,
                      const std::error_code& ec) const;
  /// Moves the blob at PathFor(id) into the quarantine area and drops its
  /// cache entry. A prior forensic copy of the same id is never clobbered:
  /// repeat quarantines land at `<id>.1`, `<id>.2`, ... . Failures (mkdir,
  /// rename) are logged and counted in
  /// daspos_archive_quarantine_errors_total — a rotted blob that could not
  /// be moved aside must not vanish silently.
  void Quarantine(const std::string& id) const;
  /// Stat fingerprint of the file at `path`, or !ok if it cannot be statted.
  static Result<VerifiedStat> StatFingerprint(const std::string& path);
  /// True when the cache holds `id` with exactly `current`.
  bool CacheMatches(const std::string& id, const VerifiedStat& current) const
      DASPOS_EXCLUDES(cache_mutex_);
  /// Records `id` as verified at fingerprint `fp`.
  void CacheStore(const std::string& id, const VerifiedStat& fp) const
      DASPOS_EXCLUDES(cache_mutex_);
  /// Drops `id` from the cache, counting an invalidation if it was present.
  void CacheDrop(const std::string& id) const DASPOS_EXCLUDES(cache_mutex_);

  std::string root_;
  mutable Mutex cache_mutex_;
  mutable std::map<std::string, VerifiedStat> verified_
      DASPOS_GUARDED_BY(cache_mutex_);
  // Registry handles resolved once at construction (stable for process
  // life); the instruments themselves are owned by the global registry.
  Counter* put_total_;
  Counter* get_total_;
  Counter* verify_total_;
  Counter* put_bytes_total_;
  Counter* get_bytes_total_;
  Counter* cache_hits_;
  Counter* cache_misses_;
  Counter* cache_invalidations_;
  Counter* quarantines_;
  Counter* quarantine_errors_;
  Counter* walk_errors_;
  Histogram* get_wall_ms_;
  Histogram* put_wall_ms_;
};

}  // namespace daspos

#endif  // DASPOS_ARCHIVE_OBJECT_STORE_H_
