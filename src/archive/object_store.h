// Content-addressed object storage: objects are keyed by the SHA-256 of
// their bytes, so identity, deduplication, and fixity verification are all
// the same operation — the foundation of the preservation archive.
#ifndef DASPOS_ARCHIVE_OBJECT_STORE_H_
#define DASPOS_ARCHIVE_OBJECT_STORE_H_

#include <map>
#include <string>
#include <vector>

#include "support/result.h"

namespace daspos {

/// Checks that `id` is a well-formed content id: exactly 64 lowercase hex
/// characters. Rejects empty ids, path separators, `..`, absolute paths, and
/// anything else that could escape a store root when spliced into a path.
Status ValidateObjectId(const std::string& id);

class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  /// Stores `bytes` and returns their content id (64 hex chars).
  /// Re-putting identical bytes is a no-op returning the same id.
  virtual Result<std::string> Put(std::string_view bytes) = 0;

  virtual Result<std::string> Get(const std::string& id) const = 0;
  virtual bool Has(const std::string& id) const = 0;

  /// Re-hashes the stored bytes and compares with the id; Corruption on
  /// mismatch (bit rot), NotFound if absent.
  virtual Status Verify(const std::string& id) const = 0;

  /// All stored ids (sorted).
  virtual std::vector<std::string> Ids() const = 0;

  virtual uint64_t TotalBytes() const = 0;

  /// Ids of blobs that failed fixity and were moved aside (sorted). Backends
  /// without a quarantine area return an empty list.
  virtual std::vector<std::string> QuarantinedIds() const { return {}; }
};

/// In-memory backend (tests, benches).
class MemoryObjectStore : public ObjectStore {
 public:
  Result<std::string> Put(std::string_view bytes) override;
  Result<std::string> Get(const std::string& id) const override;
  bool Has(const std::string& id) const override;
  Status Verify(const std::string& id) const override;
  std::vector<std::string> Ids() const override;
  uint64_t TotalBytes() const override;

  /// Test hook: silently corrupt a stored object (fixity must catch it).
  Status CorruptForTesting(const std::string& id, size_t byte_index);

 private:
  std::map<std::string, std::string> objects_;
};

/// Filesystem backend: objects live at <root>/<id[0:2]>/<id[2:]>. Writes are
/// crash-safe (temp file + fsync + rename) and every read re-hashes the bytes;
/// a blob whose digest no longer matches its id is moved to
/// <root>/quarantine/<id> and the read fails with Corruption. Keyed lookups
/// validate the id first, so a hostile id ("../../etc/passwd") can never
/// address a path outside the store root.
class FileObjectStore : public ObjectStore {
 public:
  explicit FileObjectStore(std::string root) : root_(std::move(root)) {}

  Result<std::string> Put(std::string_view bytes) override;
  Result<std::string> Get(const std::string& id) const override;
  bool Has(const std::string& id) const override;
  Status Verify(const std::string& id) const override;
  std::vector<std::string> Ids() const override;
  uint64_t TotalBytes() const override;
  std::vector<std::string> QuarantinedIds() const override;

 private:
  std::string PathFor(const std::string& id) const;
  /// Moves the blob at PathFor(id) into the quarantine area (best-effort).
  void Quarantine(const std::string& id) const;
  std::string root_;
};

}  // namespace daspos

#endif  // DASPOS_ARCHIVE_OBJECT_STORE_H_
