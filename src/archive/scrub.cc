#include "archive/scrub.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <thread>

#include "archive/object_store.h"
#include "support/io.h"
#include "support/logging.h"
#include "support/metrics.h"
#include "support/metrics_registry.h"
#include "support/parallel.h"
#include "support/sha256.h"
#include "support/strings.h"
#include "support/trace.h"

namespace daspos {

namespace fs = std::filesystem;

namespace {

constexpr char kCursorFile[] = "scrub_cursor.jsonl";

/// One checkpoint line of the persistent cursor. `last_id` is the highest
/// id whose batch fully settled; `complete` marks the end of a pass.
struct CursorRecord {
  uint64_t pass = 1;
  std::string last_id;
  uint64_t checked = 0;
  uint64_t repaired = 0;
  bool complete = false;
};

Json CursorToJson(const CursorRecord& record) {
  Json json = Json::Object();
  json["pass"] = record.pass;
  json["last_id"] = record.last_id;
  json["checked"] = record.checked;
  json["repaired"] = record.repaired;
  json["complete"] = record.complete;
  return json;
}

bool CursorFromJson(const Json& json, CursorRecord* out) {
  if (!json.is_object()) return false;
  const Json& pass = json.Get("pass");
  if (!pass.is_number() || pass.as_number() < 1.0 ||
      pass.as_number() != std::floor(pass.as_number())) {
    return false;
  }
  if (!json.Get("last_id").is_string() || !json.Get("complete").is_bool()) {
    return false;
  }
  out->pass = static_cast<uint64_t>(pass.as_number());
  out->last_id = json.Get("last_id").as_string();
  out->complete = json.Get("complete").as_bool();
  const Json& checked = json.Get("checked");
  if (checked.is_number()) {
    out->checked = static_cast<uint64_t>(checked.as_number());
  }
  const Json& repaired = json.Get("repaired");
  if (repaired.is_number()) {
    out->repaired = static_cast<uint64_t>(repaired.as_number());
  }
  return true;
}

/// Latest valid cursor record, or a fresh pass-1 state. Parsing stops at
/// the first malformed line (journal idiom): everything before a
/// crash-truncated tail is still usable.
CursorRecord LoadCursor(const std::string& dir, bool* found) {
  *found = false;
  CursorRecord state;
  auto text = ReadFileToString(dir + "/" + kCursorFile);
  if (!text.ok()) return state;
  for (const std::string& line : Split(*text, '\n')) {
    if (Trim(line).empty()) continue;
    auto parsed = Json::Parse(line);
    CursorRecord record;
    if (!parsed.ok() || !CursorFromJson(*parsed, &record)) break;
    state = record;
    *found = true;
  }
  return state;
}

/// Appends one fsynced cursor line; the first append also fsyncs the
/// directory so a freshly created cursor survives a crash (PR-6 lesson).
Status AppendCursor(const std::string& dir, const CursorRecord& record) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create scrub cursor directory " + dir +
                           ": " + ec.message());
  }
  const std::string path = dir + "/" + kCursorFile;
  const bool created = !FileExists(path);
  std::string line = CursorToJson(record).Dump() + "\n";
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open scrub cursor for append: " + path +
                           ": " + std::strerror(errno));
  }
  const char* cursor = line.data();
  size_t remaining = line.size();
  while (remaining > 0) {
    ssize_t written = ::write(fd, cursor, remaining);
    if (written < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      ::close(fd);
      return Status::IOError("scrub cursor append failed: " + path + ": " +
                             std::strerror(saved));
    }
    cursor += written;
    remaining -= static_cast<size_t>(written);
  }
  if (::fsync(fd) != 0) {
    int saved = errno;
    ::close(fd);
    return Status::IOError("scrub cursor fsync failed: " + path + ": " +
                           std::strerror(saved));
  }
  ::close(fd);
  if (created) DASPOS_RETURN_IF_ERROR(FsyncDir(dir));
  return Status::OK();
}

/// Outcome of scrubbing one object across all replicas.
struct ObjectOutcome {
  uint64_t replicas_checked = 0;
  uint64_t repaired = 0;
  bool unrepairable = false;
  std::string detail;
};

/// Verifies `id` on every replica and heals unhealthy copies from a
/// healthy one. Thread-safe across distinct ids (FileObjectStore ops are
/// concurrent-safe; the batch shards over distinct ids only).
ObjectOutcome ScrubObject(const std::vector<ObjectStore*>& replicas,
                          const std::string& id) {
  ObjectOutcome outcome;
  std::vector<size_t> healthy;
  std::vector<size_t> unhealthy;
  for (size_t i = 0; i < replicas.size(); ++i) {
    ++outcome.replicas_checked;
    // Verify always hashes the real bytes (the digest cache is never
    // consulted); a rotted FileObjectStore copy is quarantined here.
    if (replicas[i]->Verify(id).ok()) {
      healthy.push_back(i);
    } else {
      unhealthy.push_back(i);
    }
  }
  if (unhealthy.empty()) return outcome;
  // Repair from a replica: fetch healthy bytes and re-Put them into every
  // replica whose copy rotted or is missing. Only when no replica holds
  // verifying bytes is the object left quarantined (unrepairable).
  std::string bytes;
  bool have_bytes = false;
  for (size_t i : healthy) {
    auto got = replicas[i]->Get(id);
    if (got.ok() && Sha256::HashHex(*got) == id) {
      bytes = std::move(*got);
      have_bytes = true;
      break;
    }
  }
  if (!have_bytes) {
    outcome.unrepairable = true;
    outcome.detail = "no healthy copy on any replica";
    return outcome;
  }
  for (size_t i : unhealthy) {
    auto healed = replicas[i]->Put(bytes);
    if (healed.ok() && replicas[i]->Verify(id).ok()) {
      ++outcome.repaired;
    } else {
      // A copy that cannot be healed leaves the object under-replicated;
      // the pass must not certify it.
      outcome.unrepairable = true;
      outcome.detail = "repair of replica " + std::to_string(i) + " failed";
    }
  }
  return outcome;
}

}  // namespace

std::string_view ScrubVerdictName(ScrubVerdict verdict) {
  switch (verdict) {
    case ScrubVerdict::kPass: return "PASS";
    case ScrubVerdict::kWarn: return "WARN";
    case ScrubVerdict::kFail: return "FAIL";
  }
  return "FAIL";
}

ScrubVerdict ScrubReport::Verdict() const {
  if (!unrepairable.empty()) return ScrubVerdict::kFail;
  if (!complete) return ScrubVerdict::kWarn;
  return ScrubVerdict::kPass;
}

std::string ScrubReport::RenderText() const {
  std::string out = "scrub pass " + std::to_string(pass_number) + ": " +
                    std::to_string(objects_checked) + "/" +
                    std::to_string(objects_total) + " object(s), " +
                    std::to_string(replicas_checked) +
                    " replica copies checked, " + std::to_string(repaired) +
                    " repaired\n";
  for (const UnrepairableObject& object : unrepairable) {
    out += "UNREPAIRABLE: " + object.id + " (" + object.detail + ")\n";
  }
  if (!complete) {
    out += "incomplete: pass truncated by --max-objects; rerun to continue\n";
  }
  out += "verdict: " + std::string(ScrubVerdictName(Verdict())) + "\n";
  return out;
}

Json ScrubReport::ToJson() const {
  Json json = Json::Object();
  json["pass"] = pass_number;
  json["objects_checked"] = objects_checked;
  json["objects_total"] = objects_total;
  json["replicas_checked"] = replicas_checked;
  json["repaired"] = repaired;
  Json bad = Json::Array();
  for (const UnrepairableObject& object : unrepairable) {
    Json entry = Json::Object();
    entry["id"] = object.id;
    entry["detail"] = object.detail;
    bad.push_back(std::move(entry));
  }
  json["unrepairable"] = std::move(bad);
  json["complete"] = complete;
  json["wall_ms"] = wall_ms;
  json["verdict"] = ToLower(ScrubVerdictName(Verdict()));
  return json;
}

Result<ScrubReport> ScrubReplicas(const std::vector<ObjectStore*>& replicas,
                                  const ScrubOptions& options) {
  if (replicas.empty()) {
    return Status::InvalidArgument("scrub needs at least one replica");
  }
  if (options.batch_size == 0) {
    return Status::InvalidArgument("scrub batch_size must be >= 1");
  }
  using namespace metric_names;
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& passes = registry.GetCounter(kScrubPassesTotal);
  Counter& objects = registry.GetCounter(kScrubObjectsTotal);
  Counter& repairs = registry.GetCounter(kScrubRepairsTotal);
  Counter& unrepairable_total = registry.GetCounter(kScrubUnrepairableTotal);
  Histogram& batch_wall = registry.GetHistogram(
      kScrubBatchWallMs, Histogram::DefaultLatencyBucketsMs());

  Span span("scrub:pass", "scrub");
  WallTimer pass_timer;
  std::function<void(double)> sleeper = options.sleeper;
  if (!sleeper) {
    sleeper = [](double ms) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
    };
  }

  ScrubReport report;
  // Union of holdings across replicas, sorted: a hole on one replica is a
  // scrub finding (backfill), not an enumeration gap. Each replica streams
  // its ids in order (ForEachId), so the union is a sequence of in-place
  // merges — no per-replica full copies alongside the union. A replica
  // whose walk partially failed still contributes everything reachable;
  // its missing objects surface through the other replicas' listings.
  std::vector<std::string> ids;
  for (ObjectStore* replica : replicas) {
    const auto before = static_cast<std::ptrdiff_t>(ids.size());
    Status walk = replica->ForEachId([&ids](const std::string& id) {
      ids.push_back(id);
      return Status::OK();
    });
    if (!walk.ok()) {
      DASPOS_LOG(kWarning) << "scrub: replica enumeration incomplete: "
                           << walk.ToString();
    }
    std::inplace_merge(ids.begin(), ids.begin() + before, ids.end());
  }
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  report.objects_total = ids.size();

  // Resume position from the persistent cursor: an interrupted pass picks
  // up after the last checkpointed id; a completed pass starts the next.
  size_t begin = 0;
  CursorRecord cursor;
  if (!options.cursor_dir.empty()) {
    bool found = false;
    cursor = LoadCursor(options.cursor_dir, &found);
    if (found && !cursor.complete) {
      auto it = std::upper_bound(ids.begin(), ids.end(), cursor.last_id);
      begin = static_cast<size_t>(it - ids.begin());
    } else if (found && cursor.complete) {
      cursor.pass += 1;
      cursor.checked = 0;
      cursor.repaired = 0;
    }
  }
  report.pass_number = cursor.pass;
  span.AddAttribute("pass", cursor.pass);
  span.AddAttribute("objects", static_cast<uint64_t>(ids.size()));

  const size_t budget =
      options.max_objects == 0
          ? ids.size() - begin
          : std::min(ids.size() - begin, options.max_objects);
  const size_t end = begin + budget;

  for (size_t batch_begin = begin; batch_begin < end;) {
    const size_t batch_end =
        std::min(end, batch_begin + options.batch_size);
    const size_t batch_count = batch_end - batch_begin;
    Span batch_span("scrub:batch", "scrub");
    batch_span.AddAttribute("objects", static_cast<uint64_t>(batch_count));
    WallTimer batch_timer;
    // Shard the batch over the pool: each worker owns distinct ids, so the
    // per-replica stores only see concurrent ops on different objects.
    std::vector<ObjectOutcome> outcomes = ParallelMap<ObjectOutcome>(
        options.pool, batch_count,
        [&replicas, &ids, batch_begin](size_t i) {
          return ScrubObject(replicas, ids[batch_begin + i]);
        },
        /*grain=*/1);
    for (size_t i = 0; i < outcomes.size(); ++i) {
      const ObjectOutcome& outcome = outcomes[i];
      ++report.objects_checked;
      report.replicas_checked += outcome.replicas_checked;
      report.repaired += outcome.repaired;
      if (outcome.unrepairable) {
        report.unrepairable.push_back(
            {ids[batch_begin + i], outcome.detail});
      }
    }
    objects.Increment(batch_count);
    const double batch_ms = batch_timer.ElapsedMillis();
    batch_wall.Observe(batch_ms);

    // Checkpoint after the batch settles: the cursor only ever names ids
    // whose scrub (including repairs) is fully done.
    cursor.last_id = ids[batch_end - 1];
    cursor.checked += batch_count;
    cursor.complete = batch_end == ids.size();
    if (!options.cursor_dir.empty()) {
      DASPOS_RETURN_IF_ERROR(AppendCursor(options.cursor_dir, cursor));
    }
    batch_begin = batch_end;

    // Rate limit: hold the pass to rate_limit_per_s objects/second by
    // sleeping off whatever the batch finished early.
    if (options.rate_limit_per_s > 0.0 && batch_begin < end) {
      const double target_ms =
          1000.0 * static_cast<double>(batch_count) / options.rate_limit_per_s;
      if (target_ms > batch_ms) sleeper(target_ms - batch_ms);
    }
  }

  report.complete = end == ids.size();
  report.wall_ms = pass_timer.ElapsedMillis();
  repairs.Increment(report.repaired);
  unrepairable_total.Increment(report.unrepairable.size());
  if (report.complete) passes.Increment();
  if (report.repaired > 0) {
    DASPOS_LOG(kWarning) << "scrub pass " << report.pass_number
                         << " repaired " << report.repaired
                         << " replica cop(ies); media may be rotting";
  }
  return report;
}

}  // namespace daspos
