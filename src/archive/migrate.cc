#include "archive/migrate.h"

#include <algorithm>
#include <filesystem>

#include "archive/object_store.h"
#include "support/fault.h"
#include "support/io.h"
#include "support/logging.h"
#include "support/metrics.h"
#include "support/metrics_registry.h"
#include "support/parallel.h"
#include "support/sha256.h"
#include "support/strings.h"
#include "support/trace.h"

namespace daspos {

namespace fs = std::filesystem;

namespace {

constexpr char kCursorFile[] = "migrate_cursor.jsonl";
constexpr char kGenerationFile[] = "GENERATION";

std::string CursorPath(const std::string& dir) {
  return dir + "/" + kCursorFile;
}

/// Appends one progress line to the migration cursor (journal idiom:
/// append + fsync; WriteStringToFile would not be append-safe, so this
/// rewrites atomically via read-modify-write only for the *first* line).
Status AppendCursorLine(const std::string& dir, const Json& record) {
  const std::string path = CursorPath(dir);
  std::string existing;
  if (auto text = ReadFileToString(path); text.ok()) {
    existing = std::move(*text);
  }
  existing += record.Dump() + "\n";
  // AtomicWriteFile fsyncs bytes and directory entry: the cursor is never
  // torn, and a crash keeps either the old or the new checkpoint.
  return AtomicWriteFile(path, existing);
}

/// Per-object outcome inside a batch (folded serially in input order).
struct CopySlot {
  Status status;
  bool copied = false;
  uint64_t bytes = 0;
};

}  // namespace

uint64_t ReadGeneration(const std::string& state_dir) {
  auto text = ReadFileToString(state_dir + "/" + kGenerationFile);
  if (!text.ok()) return 0;
  auto parsed = Json::Parse(*text);
  if (!parsed.ok() || !parsed->is_object()) return 0;
  const Json& generation = parsed->Get("generation");
  if (!generation.is_number() || generation.as_number() < 0.0) return 0;
  return static_cast<uint64_t>(generation.as_number());
}

std::string MigrateReport::RenderText() const {
  std::string out = "migration to generation " + std::to_string(generation) +
                    (resumed ? " (resumed)" : "") + ": " +
                    std::to_string(copied) + " copied, " +
                    std::to_string(skipped) + " already present, " +
                    std::to_string(verified) + "/" +
                    std::to_string(objects_total) + " verified on target, " +
                    FormatBytes(bytes_copied) + " moved\n";
  out += "swap: generation marker now " + std::to_string(generation) + "\n";
  return out;
}

Json MigrateReport::ToJson() const {
  Json json = Json::Object();
  json["generation"] = generation;
  json["objects_total"] = objects_total;
  json["copied"] = copied;
  json["skipped"] = skipped;
  json["bytes_copied"] = bytes_copied;
  json["verified"] = verified;
  json["resumed"] = resumed;
  json["wall_ms"] = wall_ms;
  return json;
}

Result<MigrateReport> MigrateGeneration(const ObjectStore& source,
                                        ObjectStore& target,
                                        const MigrateOptions& options) {
  if (options.state_dir.empty()) {
    return Status::InvalidArgument(
        "migration needs a state_dir for its cursor and generation marker");
  }
  if (options.batch_size == 0) {
    return Status::InvalidArgument("migrate batch_size must be >= 1");
  }
  std::error_code ec;
  fs::create_directories(options.state_dir, ec);
  if (ec) {
    return Status::IOError("cannot create migration state_dir " +
                           options.state_dir + ": " + ec.message());
  }
  using namespace metric_names;
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& objects_counter = registry.GetCounter(kMigrateObjectsTotal);
  Counter& bytes_counter = registry.GetCounter(kMigrateBytesTotal);
  Counter& resumed_counter = registry.GetCounter(kMigrateResumedTotal);
  Counter& verify_failures = registry.GetCounter(kMigrateVerifyFailuresTotal);

  Span span("migrate:run", "archive");
  WallTimer timer;
  MigrateReport report;
  report.generation = ReadGeneration(options.state_dir) + 1;

  // A surviving cursor means a previous invocation died mid-copy; the
  // target-presence checks below skip whatever it completed.
  if (FileExists(CursorPath(options.state_dir))) {
    report.resumed = true;
    resumed_counter.Increment();
    DASPOS_LOG(kWarning) << "resuming interrupted migration to generation "
                         << report.generation;
  }

  span.AddAttribute("generation", report.generation);

  // Phase 1 — copy: every object lands on the target and the *target's*
  // bytes are re-hashed before the object counts as migrated. Ids stream
  // from the source in ascending order (ForEachId), so only one batch of
  // ids is ever resident — constant memory however large the store — while
  // fault-plan ordinals stay deterministic (same order as the old sorted
  // vector). A partially unreadable source fails the run: migrating "what
  // we could see" and then swapping generations would silently shrink the
  // archive.
  std::vector<std::string> batch;
  batch.reserve(options.batch_size);
  auto process_batch = [&]() -> Status {
    if (batch.empty()) return Status::OK();
    Span batch_span("migrate:batch", "archive");
    batch_span.AddAttribute("objects", static_cast<uint64_t>(batch.size()));
    std::vector<CopySlot> slots = ParallelMap<CopySlot>(
        options.pool, batch.size(),
        [&](size_t i) {
          const std::string& id = batch[i];
          CopySlot slot;
          // Already verifying on the target: completed by a previous run
          // (or deduplicated content). Nothing to move.
          if (target.Verify(id).ok()) return slot;
          if (options.faults != nullptr) {
            slot.status = options.faults->Next("migrate:copy");
            if (!slot.status.ok()) return slot;
          }
          auto bytes = source.Get(id);
          if (!bytes.ok()) {
            slot.status = bytes.status();
            return slot;
          }
          auto put = target.Put(*bytes);
          if (!put.ok()) {
            slot.status = put.status();
            return slot;
          }
          // Copy-verify: read the target's copy back and re-hash it; a
          // torn or bit-flipped landing must never count as migrated.
          auto landed = target.Get(id);
          if (!landed.ok()) {
            slot.status = landed.status();
            return slot;
          }
          if (Sha256::HashHex(*landed) != id) {
            slot.status = Status::Corruption(
                "object " + id + " failed re-hash on migration target");
            return slot;
          }
          slot.copied = true;
          slot.bytes = bytes->size();
          return slot;
        },
        /*grain=*/1);
    for (const CopySlot& slot : slots) {
      if (!slot.status.ok()) {
        if (slot.status.IsCorruption()) verify_failures.Increment();
        // No cursor append for a failed batch: the resume path re-checks
        // target presence, so no completed copy is lost.
        return slot.status;
      }
      if (slot.copied) {
        ++report.copied;
        report.bytes_copied += slot.bytes;
      } else {
        ++report.skipped;
      }
    }
    objects_counter.Increment(batch.size());
    report.objects_total += batch.size();
    Json record = Json::Object();
    record["generation"] = report.generation;
    record["last_id"] = batch.back();
    record["copied"] = report.copied;
    record["skipped"] = report.skipped;
    DASPOS_RETURN_IF_ERROR(AppendCursorLine(options.state_dir, record));
    batch.clear();
    return Status::OK();
  };
  DASPOS_RETURN_IF_ERROR(source.ForEachId([&](const std::string& id) {
    batch.push_back(id);
    if (batch.size() >= options.batch_size) return process_batch();
    return Status::OK();
  }));
  DASPOS_RETURN_IF_ERROR(process_batch());
  span.AddAttribute("objects", report.objects_total);
  bytes_counter.Increment(report.bytes_copied);

  // Phase 2 — verify: a full serial sweep re-hashes every object on the
  // target, including ones skipped as already-present. The swap certifies
  // the *current* holdings, not this run's memory of them. The sweep
  // streams the source's ids again rather than caching phase 1's list —
  // same constant-memory bound, same ascending order.
  {
    Span verify_span("migrate:verify", "archive");
    DASPOS_RETURN_IF_ERROR(source.ForEachId([&](const std::string& id) {
      if (options.faults != nullptr) {
        DASPOS_RETURN_IF_ERROR(options.faults->Next("migrate:verify"));
      }
      auto landed = target.Get(id);
      if (!landed.ok() || Sha256::HashHex(*landed) != id) {
        verify_failures.Increment();
        return Status::Corruption(
            "final sweep: object " + id + " does not verify on target (" +
            (landed.ok() ? "hash mismatch" : landed.status().ToString()) +
            "); generation swap refused");
      }
      ++report.verified;
      return Status::OK();
    }));
  }

  // Phase 3 — swap: atomically install the new generation marker. The
  // source store is untouched; rollback is "keep reading generation N".
  Json marker = Json::Object();
  marker["generation"] = report.generation;
  marker["objects"] = report.objects_total;
  marker["bytes"] = target.TotalBytes();
  DASPOS_RETURN_IF_ERROR(AtomicWriteFile(
      options.state_dir + "/" + kGenerationFile, marker.Dump(2) + "\n"));
  // The migration is complete: drop the cursor so the next generation's
  // migration starts fresh instead of reporting a spurious resume.
  DASPOS_RETURN_IF_ERROR(RemoveFile(CursorPath(options.state_dir)));

  report.wall_ms = timer.ElapsedMillis();
  return report;
}

}  // namespace daspos
