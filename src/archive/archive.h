// The preservation archive: OAIS-flavoured deposits over a content-
// addressed store. A submission (SIP) of files + descriptive metadata is
// ingested into an archival package (AIP) whose manifest records every
// file's content hash; retrieval produces a verified dissemination package
// (DIP); fixity audits and format migrations operate on the holdings.
// This is the curation infrastructure whose absence §2.2 laments
// ("none of these modes of preservation would fit the characterization of
// proper curation").
#ifndef DASPOS_ARCHIVE_ARCHIVE_H_
#define DASPOS_ARCHIVE_ARCHIVE_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "archive/object_store.h"
#include "serialize/json.h"
#include "support/result.h"

namespace daspos {

/// One file inside a package.
struct PackageFile {
  std::string logical_name;
  std::string media_type = "application/octet-stream";
  std::string bytes;
};

/// What a depositor submits (SIP).
struct SubmissionPackage {
  std::string title;
  std::string creator;
  std::string description;
  std::vector<std::string> keywords;
  /// Free-form structured context: provenance chains, interview reports.
  Json context = Json::Object();
  std::vector<PackageFile> files;
};

/// What a consumer gets back (DIP): the SIP content plus archive identity.
struct DisseminationPackage {
  std::string archive_id;
  SubmissionPackage content;
};

/// Summary of one archival package (from its AIP manifest).
struct HoldingSummary {
  std::string archive_id;
  std::string title;
  uint64_t deposit_sequence = 0;
  size_t file_count = 0;
  uint64_t total_bytes = 0;
  /// Set when this package was produced by migrating another.
  std::string migrated_from;
};

/// True if `json` has the shape of an AIP manifest (a JSON object carrying
/// aip_version and a file list). Shared by catalog recovery and the
/// preservation linter, which both scan raw object stores.
bool IsAipManifest(const Json& json);

/// Result of a fixity audit over all holdings.
struct FixityReport {
  uint64_t objects_checked = 0;
  std::vector<std::string> corrupted_objects;
  std::vector<std::string> missing_objects;
  bool clean() const {
    return corrupted_objects.empty() && missing_objects.empty();
  }
};

class Archive {
 public:
  /// The archive borrows the object store (not owned).
  explicit Archive(ObjectStore* store) : store_(store) {}

  /// Ingests a SIP; returns the archive id (content id of the AIP
  /// manifest). Requires a title and at least one file. With a pool, the
  /// file blobs are hashed and stored concurrently (PutBatch); the manifest
  /// and catalog update are identical either way.
  Result<std::string> Deposit(const SubmissionPackage& submission,
                              ThreadPool* pool = nullptr);

  /// Rebuilds the catalog from the object store by scanning for AIP
  /// manifests — how a fresh process re-adopts a long-lived (disk-backed)
  /// archive. Packages are re-sequenced in object-id order; already-known
  /// ids are kept. Returns the number of packages found.
  Result<size_t> RecoverCatalog();

  /// Fetches and fixity-verifies a package.
  Result<DisseminationPackage> Retrieve(const std::string& archive_id) const;

  /// All deposited packages, in deposit order.
  std::vector<HoldingSummary> Holdings() const;

  /// Verifies every object referenced by every manifest. With a pool, the
  /// per-file verifications run concurrently; the report lists objects in
  /// the same (catalog, manifest) order as the serial audit.
  FixityReport AuditFixity(ThreadPool* pool = nullptr) const;

  /// Format migration: applies `transform` to each file of a package and
  /// deposits the result as a new package whose manifest records the
  /// origin. The original is retained (migrations must be reversible by
  /// retention, not by inverse transforms).
  using FileTransform = std::function<Result<PackageFile>(const PackageFile&)>;
  Result<std::string> Migrate(const std::string& archive_id,
                              const FileTransform& transform,
                              const std::string& migration_note);

 private:
  Result<Json> LoadManifest(const std::string& archive_id) const;

  ObjectStore* store_;
  /// Catalog: archive ids in deposit order (the manifest itself lives in
  /// the object store). The deposit sequence is catalog state, not manifest
  /// content, so byte-identical re-deposits stay idempotent.
  std::vector<std::string> catalog_;
  std::map<std::string, uint64_t> sequences_;
  uint64_t next_sequence_ = 1;
};

}  // namespace daspos

#endif  // DASPOS_ARCHIVE_ARCHIVE_H_
