#include "archive/backend.h"

#include <filesystem>
#include <utility>

#include "archive/pack_store.h"

namespace daspos {

namespace fs = std::filesystem;

std::string BackendName(const StoreSpec& spec) {
  if (spec.backend == StoreSpec::Backend::kPack) {
    return spec.compress ? "pack+z" : "pack";
  }
  return "file";
}

Result<StoreSpec> ParseStoreSpec(const std::string& text) {
  if (text.empty()) return Status::InvalidArgument("empty store spec");
  StoreSpec spec;
  auto strip_prefix = [&text](std::string_view prefix,
                              std::string* rest) -> bool {
    if (text.size() <= prefix.size()) return false;
    if (text.compare(0, prefix.size(), prefix) != 0) return false;
    *rest = text.substr(prefix.size());
    return true;
  };
  if (strip_prefix("file:", &spec.root)) {
    spec.backend = StoreSpec::Backend::kFile;
    return spec;
  }
  if (strip_prefix("pack+z:", &spec.root)) {
    spec.backend = StoreSpec::Backend::kPack;
    spec.compress = true;
    return spec;
  }
  if (strip_prefix("pack:", &spec.root)) {
    spec.backend = StoreSpec::Backend::kPack;
    return spec;
  }
  // Reject unknown "name:" prefixes so a typo ("pak:dir") fails loudly
  // instead of creating a loose store in a directory literally named
  // "pak:dir". Windows-style drive letters are not a concern here; specs
  // are single-word schemes followed by a path.
  size_t colon = text.find(':');
  size_t slash = text.find('/');
  if (colon != std::string::npos && (slash == std::string::npos ||
                                     colon < slash)) {
    return Status::InvalidArgument(
        "unknown store backend in spec \"" + text +
        "\" (want file:DIR, pack:DIR, pack+z:DIR, or a bare path)");
  }
  // Bare path: sniff the layout so existing command lines keep working on
  // either backend.
  spec.root = text;
  std::error_code ec;
  spec.backend = fs::is_directory(fs::path(text) / "segments", ec)
                     ? StoreSpec::Backend::kPack
                     : StoreSpec::Backend::kFile;
  return spec;
}

std::unique_ptr<ObjectStore> OpenObjectStore(const StoreSpec& spec) {
  if (spec.backend == StoreSpec::Backend::kPack) {
    PackOptions options;
    options.compress = spec.compress;
    return std::unique_ptr<ObjectStore>(
        new PackObjectStore(spec.root, options));
  }
  return std::unique_ptr<ObjectStore>(new FileObjectStore(spec.root));
}

Result<std::unique_ptr<ObjectStore>> OpenObjectStore(const std::string& text) {
  DASPOS_ASSIGN_OR_RETURN(StoreSpec spec, ParseStoreSpec(text));
  return OpenObjectStore(spec);
}

}  // namespace daspos
