// Packfile object-store backend: small blobs packed into large append-only
// segments, served by mmap.
//
// Why: the loose-file backend pays an open/read/close syscall triple plus a
// full SHA-256 re-hash on every cold Get, and a file-per-object on-disk
// layout wastes media on small blobs. Packing (the git-packfile / LSM-SST
// idea, and the rct DB-backend pattern) turns a cold read into a sorted-map
// lookup plus a memcpy out of a long-lived mapping.
//
// On-disk layout under <root>/ (full spec in docs/PACKFILE.md):
//   segments/NNNNNN.seg   append-only record log: 16-byte segment header,
//                         then [64-byte record header | payload]*
//   segments/NNNNNN.idx   sidecar index written atomically at seal time:
//                         16-byte header + sorted fixed-width 72-byte
//                         entries {raw id, offset, raw_len, stored_len,
//                         checksum, flags}
//   quarantine.jsonl      append-fsynced log of records that failed a
//                         checksum/fixity gate (the bad bytes stay in the
//                         immutable segment as the forensic copy)
//
// Integrity model (two tiers, like git's SHA-1 ids + pack CRC32s):
//   - The SHA-256 id <-> bytes binding is established at Put time (the id
//     IS the hash of the bytes) and re-audited by Verify, which always
//     decompresses and re-hashes the full payload. Scrub and `daspos audit`
//     build on Verify, so mass fixity checking is exactly as strong as on
//     the loose backend.
//   - Get is gated by a fast 64-bit checksum (support/checksum.h) stored in
//     the record header and computed over the *stored* (possibly
//     compressed) payload. It catches media rot and torn writes at memory
//     bandwidth; a mismatch quarantines the record and fails with
//     Corruption, never serving the bytes.
//   - Compression never changes identity: ids and Verify always apply to
//     the uncompressed bytes (fixity over raw bytes; "DZ01" streams are a
//     storage encoding, not content).
//
// Crash-safety rules:
//   - A segment with a valid .idx is sealed: immutable forever, mmap-served.
//   - Appends go only to the newest segment; appending to a previously
//     sealed segment first unlinks its .idx (crash after the unlink just
//     means a rebuild scan on next open).
//   - On open, a segment without a valid .idx is scanned record by record
//     (checksums included); a torn tail is truncated away (counted in
//     daspos_pack_torn_records_total) and the segment becomes the append
//     target again. Rebuild scans make the .idx purely an optimization: the
//     segment log is the single source of truth.
//   - Every append is fsynced before Put returns (PutBatch batches the
//     fsync); segment creation fsyncs the segments/ directory so the file
//     name itself survives a crash.
#ifndef DASPOS_ARCHIVE_PACK_STORE_H_
#define DASPOS_ARCHIVE_PACK_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "archive/object_store.h"
#include "support/mmap.h"
#include "support/result.h"
#include "support/sync.h"

namespace daspos {

class Counter;
class Histogram;

struct PackOptions {
  /// Compress payloads with the self-contained LZSS codec
  /// (support/compress.h) when it actually shrinks them; incompressible
  /// blobs are stored raw (per-record flag). Ids are unchanged either way.
  bool compress = false;
  /// Rollover threshold: a segment past this size is sealed and a new one
  /// started. 256 MiB keeps mappings coarse without unbounded segments.
  uint64_t max_segment_bytes = 256ull * 1024 * 1024;
};

// On-disk format constants, exported for tests and tooling.
// Segment: 8-byte magic, u32 format version, u32 reserved.
inline constexpr char kPackSegmentMagic[8] = {'D', 'P', 'S', 'E',
                                              'G', '0', '0', '1'};
inline constexpr size_t kPackSegmentHeaderSize = 16;
// Record header: 4-byte magic, u8 flags, 3 reserved bytes, 32-byte raw id,
// u64 raw_len, u64 stored_len, u64 checksum64(stored payload).
inline constexpr char kPackRecordMagic[4] = {'D', 'P', 'R', 'C'};
inline constexpr size_t kPackRecordHeaderSize = 64;
// Byte offsets inside the record header.
inline constexpr size_t kPackRecordFlagsOffset = 4;
inline constexpr size_t kPackRecordIdOffset = 8;
inline constexpr size_t kPackRecordRawLenOffset = 40;
inline constexpr size_t kPackRecordStoredLenOffset = 48;
inline constexpr size_t kPackRecordChecksumOffset = 56;
inline constexpr uint8_t kPackFlagCompressed = 0x01;
// Index: 8-byte magic, u32 format version, u32 entry count, then entries:
// 32-byte raw id, u64 offset, u64 raw_len, u64 stored_len, u64 checksum,
// u8 flags, 7 reserved bytes — fixed width, sorted by id.
inline constexpr char kPackIndexMagic[8] = {'D', 'P', 'I', 'D',
                                             'X', '0', '0', '1'};
inline constexpr size_t kPackIndexHeaderSize = 16;
inline constexpr size_t kPackIndexEntrySize = 72;

/// Packfile backend. Put/Get/Verify/Has/PutBatch are safe to call
/// concurrently; appends serialize on an internal mutex while reads of
/// sealed segments run lock-free on long-lived mappings. Re-putting an id
/// whose earlier record rotted appends a superseding record (the index
/// always points at the newest), which is what makes replicated read-repair
/// and scrub healing work unchanged over this backend.
class PackObjectStore : public ObjectStore {
 public:
  /// Opens (or creates) the store at `root`, loading sealed indexes and
  /// rebuild-scanning any segment that lacks one.
  explicit PackObjectStore(std::string root, PackOptions options = {});
  /// Best-effort Flush(): an unclean destructor loses only the seal
  /// optimization, never data.
  ~PackObjectStore() override;

  PackObjectStore(const PackObjectStore&) = delete;
  PackObjectStore& operator=(const PackObjectStore&) = delete;

  Result<std::string> Put(std::string_view bytes) override;
  Result<std::string> Get(const std::string& id) const override;
  bool Has(const std::string& id) const override;
  Status Verify(const std::string& id) const override;
  std::vector<std::string> Ids() const override;
  Status ForEachId(const std::function<Status(const std::string&)>& fn)
      const override;
  /// Logical (uncompressed) bytes, mirroring the loose backend's semantics.
  uint64_t TotalBytes() const override;
  std::vector<std::string> QuarantinedIds() const override;

  /// Hashes (and compresses) blobs concurrently on `pool`, then appends
  /// them under one lock with a single fsync for the whole batch.
  Result<std::vector<std::string>> PutBatch(
      const std::vector<std::string_view>& blobs,
      ThreadPool* pool = nullptr) override;

  /// Seals the active segment by writing its .idx sidecar. Idempotent; a
  /// sealed store opens without any rebuild scan.
  Status Flush();

  /// Physical payload bytes on disk (after compression) — for repack
  /// reporting and benchmarks.
  uint64_t StoredBytes() const;
  /// Number of .seg files currently backing the store.
  size_t SegmentCount() const;

 private:
  /// In-memory index entry: where the newest record for an id lives.
  struct Entry {
    uint32_t segment = 0;
    uint8_t flags = 0;
    uint64_t offset = 0;  // of the stored payload, not the record header
    uint64_t raw_len = 0;
    uint64_t stored_len = 0;
    uint64_t checksum = 0;
  };

  /// A blob prepared for append (hash + optional compression done outside
  /// the lock).
  struct Prepared {
    std::string id;
    std::string stored;  // compressed or raw payload bytes
    uint64_t raw_len = 0;
    uint8_t flags = 0;
    uint64_t checksum = 0;
  };

  std::string SegmentPath(uint32_t segment) const;
  std::string IndexPath(uint32_t segment) const;

  /// Open-time recovery: loads every segment's index, rebuild-scanning (and
  /// tail-truncating) segments without a valid one, then replays the
  /// quarantine log. Failures leave the store empty-but-alive; they are
  /// logged and the first one is kept in open_status_ so writes fail loudly
  /// instead of forking history.
  void Open() DASPOS_EXCLUDES(mutex_);
  Status LoadIndex(uint32_t segment, uint64_t segment_size)
      DASPOS_REQUIRES(mutex_);
  Status ScanSegment(uint32_t segment, bool truncate_torn_tail)
      DASPOS_REQUIRES(mutex_);
  void ReplayQuarantineLog() DASPOS_REQUIRES(mutex_);

  Prepared PrepareBlob(std::string_view bytes) const;
  /// Appends one prepared record to the active segment (creating/unsealing
  /// one as needed). Does NOT fsync — callers sync once per Put or batch.
  Status AppendLocked(const Prepared& blob) DASPOS_REQUIRES(mutex_);
  /// `force_new` skips the reuse-the-tail path: rollover must start a fresh
  /// segment even though the one it just sealed is still under the size cap.
  Status EnsureActiveSegmentLocked(bool force_new = false)
      DASPOS_REQUIRES(mutex_);
  Status SyncActiveLocked() DASPOS_REQUIRES(mutex_);
  Status FlushLocked() DASPOS_REQUIRES(mutex_);
  /// After a failed record append: cuts the segment back to the last
  /// known-good offset (partial bytes landed at the true EOF while
  /// active_size_ did not advance, so every later offset would be wrong).
  /// If even the truncate fails, the segment is retired from appending —
  /// its committed records stay readable, the garbage tail stays as
  /// evidence — and the next append starts a fresh segment.
  void RepairActiveTailLocked() DASPOS_REQUIRES(mutex_);
  /// Returns the long-lived mapping for a sealed segment, creating it on
  /// first use.
  Result<const MemoryMappedFile*> SealedMappingLocked(uint32_t segment) const
      DASPOS_REQUIRES(mutex_);
  /// Moves any cached mapping of `segment` to the retired list (kept alive
  /// so views already handed to readers stay valid) so the next read
  /// remaps at the segment's current size. Called when a tail segment is
  /// unsealed for appending and when a read finds its cached view too
  /// short.
  void RetireMappingLocked(uint32_t segment) const DASPOS_REQUIRES(mutex_);

  /// Reads the stored payload of `entry` and returns the raw bytes
  /// (decompressing if flagged), checksum-gated. `via_mmap` reports whether
  /// the read was served zero-copy from a sealed mapping.
  Result<std::string> ReadRecord(const std::string& id, const Entry& entry,
                                 bool* via_mmap) const
      DASPOS_EXCLUDES(mutex_);
  /// Appends one line to quarantine.jsonl, marks the id quarantined in
  /// memory, and drops it from the index. The segment bytes are untouched
  /// (immutable forensic copy in place).
  void QuarantineRecord(const std::string& id, const Entry& entry,
                        const std::string& detail) const
      DASPOS_EXCLUDES(mutex_);

  std::string root_;
  PackOptions options_;

  mutable Mutex mutex_;
  // mutable: a failed read gate (QuarantineRecord, const path) drops the
  // condemned entry so subsequent reads fail fast with NotFound.
  mutable std::map<std::string, Entry> index_ DASPOS_GUARDED_BY(mutex_);
  /// Ids whose newest record failed a gate and has no superseding record.
  mutable std::set<std::string> quarantined_ DASPOS_GUARDED_BY(mutex_);
  /// Every id that ever had a quarantine log line (QuarantinedIds reports
  /// history, matching the loose backend's surviving forensic copies).
  mutable std::set<std::string> quarantine_log_ DASPOS_GUARDED_BY(mutex_);
  /// Lazily created mappings of sealed segments. Mappings are never evicted
  /// while the store lives, so views handed to readers stay valid without
  /// holding the lock.
  mutable std::map<uint32_t, std::unique_ptr<MemoryMappedFile>> mmaps_
      DASPOS_GUARDED_BY(mutex_);
  /// Mappings that went stale (their segment was unsealed and grew) but
  /// must outlive any reader still holding a view into them. Bounded by
  /// the number of unseal events, not by reads.
  mutable std::vector<std::unique_ptr<MemoryMappedFile>> retired_mmaps_
      DASPOS_GUARDED_BY(mutex_);
  /// Read/write fds for segments opened this process (append target plus
  /// any segment read before it was mapped); closed only on destruction.
  std::map<uint32_t, int> segment_fds_ DASPOS_GUARDED_BY(mutex_);
  uint32_t active_segment_ DASPOS_GUARDED_BY(mutex_) = 0;
  bool has_active_ DASPOS_GUARDED_BY(mutex_) = false;
  uint64_t active_size_ DASPOS_GUARDED_BY(mutex_) = 0;
  uint64_t next_segment_ DASPOS_GUARDED_BY(mutex_) = 0;
  /// Segments present on disk (enumerated at Open, plus ones created
  /// since). Numbering can be sparse after external compaction, so this is
  /// what SegmentCount() reports — not next_segment_.
  uint64_t segment_count_ DASPOS_GUARDED_BY(mutex_) = 0;
  /// Segments whose tail could not be repaired after a failed append:
  /// never reused as the append target.
  std::set<uint32_t> retired_segments_ DASPOS_GUARDED_BY(mutex_);
  Status open_status_ DASPOS_GUARDED_BY(mutex_);

  Counter* appends_total_;
  Counter* append_bytes_total_;
  Counter* reads_total_;
  Counter* read_bytes_total_;
  Counter* mmap_reads_total_;
  Counter* compressed_total_;
  Counter* compression_saved_bytes_;
  Counter* checksum_failures_;
  Counter* index_rebuilds_;
  Counter* torn_records_;
  Counter* segments_created_;
  Counter* quarantines_;
  Histogram* get_wall_ms_;
  Histogram* put_wall_ms_;
};

}  // namespace daspos

#endif  // DASPOS_ARCHIVE_PACK_STORE_H_
