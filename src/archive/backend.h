// Pluggable storage-backend selection (the rct DB.h pattern): every CLI
// command and service that opens an object store does it through a backend
// spec string, so new backends slot in without touching call sites.
//
// Spec grammar:
//   file:DIR    loose-file backend, sharded by digest prefix (FileObjectStore)
//   pack:DIR    packfile backend (PackObjectStore)
//   pack+z:DIR  packfile backend with block compression enabled for writes
//   DIR         bare path: sniffed — pack if DIR/segments/ exists, else file
//               (keeps every pre-backend command line working unchanged)
#ifndef DASPOS_ARCHIVE_BACKEND_H_
#define DASPOS_ARCHIVE_BACKEND_H_

#include <memory>
#include <string>

#include "archive/object_store.h"
#include "support/result.h"

namespace daspos {

struct StoreSpec {
  enum class Backend { kFile, kPack };

  Backend backend = Backend::kFile;
  std::string root;
  /// Only meaningful for kPack: compress new writes (reads always handle
  /// both raw and compressed records).
  bool compress = false;
};

/// Human-readable backend name ("file", "pack", "pack+z") for reports.
std::string BackendName(const StoreSpec& spec);

/// Parses `text` per the grammar above. A bare path sniffs the on-disk
/// layout; a path that does not exist yet defaults to the loose backend.
Result<StoreSpec> ParseStoreSpec(const std::string& text);

/// Parses `text` and opens the store it names.
Result<std::unique_ptr<ObjectStore>> OpenObjectStore(const std::string& text);

/// Opens the store a parsed spec names.
std::unique_ptr<ObjectStore> OpenObjectStore(const StoreSpec& spec);

}  // namespace daspos

#endif  // DASPOS_ARCHIVE_BACKEND_H_
