// Replicated, self-healing object storage — the bit-preservation layer the
// H1/DPHEP status reports name as the reason their archives survived
// decades: every object lives on N independent backend stores, writes need
// a quorum, and reads that hit a rotted copy fall back to a healthy replica
// and repair the rot in place.
#ifndef DASPOS_ARCHIVE_REPLICATED_STORE_H_
#define DASPOS_ARCHIVE_REPLICATED_STORE_H_

#include <string>
#include <vector>

#include "archive/object_store.h"

namespace daspos {

/// ObjectStore over N backend replicas (none owned; all must outlive the
/// decorator).
///
/// Write path: `Put` writes to every replica and succeeds when at least a
/// quorum (N/2 + 1) of them accepted the bytes; per-replica failures are
/// counted (daspos_archive_replica_put_failures_total) but do not fail the
/// operation while the quorum holds. `PutBatch` forwards per object so each
/// blob gets full quorum semantics.
///
/// Read path: `Get` walks the replicas in order and serves the first copy
/// whose bytes re-hash to the id — the fixity gate lives in this layer too,
/// so a backend without its own gate (MemoryObjectStore) can never leak
/// rotted bytes through replication. Every replica that failed before the
/// healthy one — missing the object or holding rot — is then *read-repaired*
/// in place by re-putting the healthy bytes (re-Put heals, per the PR-3
/// store semantics); a FileObjectStore replica keeps its quarantined
/// forensic copy. When the serving replica is in the minority (the read fell
/// past >= quorum unhealthy replicas), the read still succeeds but is
/// counted in daspos_archive_degraded_reads_total and logged — degraded
/// mode serves with warnings rather than refusing.
///
/// `Verify` is an audit: it checks every replica and is clean only when at
/// least one replica verifies; it never repairs (scrub does that).
/// Enumeration unions the replicas: Ids/QuarantinedIds merge and dedupe,
/// TotalBytes reports the most complete replica (healthy replication makes
/// them equal; during rot or backfill the max is the logical holdings).
class ReplicatedObjectStore : public ObjectStore {
 public:
  explicit ReplicatedObjectStore(std::vector<ObjectStore*> replicas);

  size_t replica_count() const { return replicas_.size(); }
  /// Minimum replicas that must accept a write: N/2 + 1.
  size_t quorum() const { return replicas_.size() / 2 + 1; }

  Result<std::string> Put(std::string_view bytes) override;
  Result<std::string> Get(const std::string& id) const override;
  bool Has(const std::string& id) const override;
  Status Verify(const std::string& id) const override;
  std::vector<std::string> Ids() const override;
  uint64_t TotalBytes() const override;
  std::vector<std::string> QuarantinedIds() const override;

  /// Per-object quorum writes, fanned out on `pool` (deterministic
  /// first-failure-wins error reporting, ids in input order).
  Result<std::vector<std::string>> PutBatch(
      const std::vector<std::string_view>& blobs,
      ThreadPool* pool = nullptr) override;

 private:
  std::vector<ObjectStore*> replicas_;
  Counter* read_repairs_;
  Counter* degraded_reads_;
  Counter* put_failures_;
  Counter* fallbacks_;
};

}  // namespace daspos

#endif  // DASPOS_ARCHIVE_REPLICATED_STORE_H_
