#include "archive/archive.h"

#include "support/parallel.h"

namespace daspos {

bool IsAipManifest(const Json& json) {
  return json.is_object() && json.Has("aip_version") && json.Has("files");
}

Result<std::string> Archive::Deposit(const SubmissionPackage& submission,
                                     ThreadPool* pool) {
  if (submission.title.empty()) {
    return Status::InvalidArgument("deposit requires a title");
  }
  if (submission.files.empty()) {
    return Status::InvalidArgument("deposit requires at least one file");
  }

  Json manifest = Json::Object();
  manifest["aip_version"] = 1;
  manifest["title"] = submission.title;
  manifest["creator"] = submission.creator;
  manifest["description"] = submission.description;
  Json keywords = Json::Array();
  for (const std::string& keyword : submission.keywords) {
    keywords.push_back(keyword);
  }
  manifest["keywords"] = std::move(keywords);
  manifest["context"] = submission.context;

  std::vector<std::string_view> blobs;
  blobs.reserve(submission.files.size());
  for (const PackageFile& file : submission.files) {
    if (file.logical_name.empty()) {
      return Status::InvalidArgument("package file needs a logical name");
    }
    blobs.push_back(file.bytes);
  }
  DASPOS_ASSIGN_OR_RETURN(std::vector<std::string> object_ids,
                          store_->PutBatch(blobs, pool));

  Json files = Json::Array();
  for (size_t i = 0; i < submission.files.size(); ++i) {
    const PackageFile& file = submission.files[i];
    Json entry = Json::Object();
    entry["name"] = file.logical_name;
    entry["media_type"] = file.media_type;
    entry["bytes"] = static_cast<uint64_t>(file.bytes.size());
    entry["sha256"] = object_ids[i];
    files.push_back(std::move(entry));
  }
  manifest["files"] = std::move(files);

  DASPOS_ASSIGN_OR_RETURN(std::string archive_id,
                          store_->Put(manifest.Dump(2)));
  // A byte-identical re-deposit maps to the same AIP; don't double-list it.
  if (sequences_.count(archive_id) > 0) return archive_id;
  sequences_[archive_id] = next_sequence_++;
  catalog_.push_back(archive_id);
  return archive_id;
}

Result<size_t> Archive::RecoverCatalog() {
  size_t found = 0;
  // Stream the store's ids (ascending) instead of materializing the full
  // listing. A store whose walk failed now fails recovery outright —
  // rebuilding a partial catalog that a later audit would certify is worse
  // than refusing.
  DASPOS_RETURN_IF_ERROR(store_->ForEachId([&](const std::string& id) {
    DASPOS_ASSIGN_OR_RETURN(std::string bytes, store_->Get(id));
    // AIP manifests are recognized by shape; anything else in the store is
    // package payload.
    auto json = Json::Parse(bytes);
    if (!json.ok() || !IsAipManifest(*json)) return Status::OK();
    ++found;
    if (sequences_.count(id) == 0) {
      sequences_[id] = next_sequence_++;
      catalog_.push_back(id);
    }
    return Status::OK();
  }));
  return found;
}

Result<Json> Archive::LoadManifest(const std::string& archive_id) const {
  DASPOS_ASSIGN_OR_RETURN(std::string manifest_text, store_->Get(archive_id));
  DASPOS_ASSIGN_OR_RETURN(Json manifest, Json::Parse(manifest_text));
  if (!manifest.Has("files")) {
    return Status::Corruption("AIP manifest without file list: " + archive_id);
  }
  return manifest;
}

Result<DisseminationPackage> Archive::Retrieve(
    const std::string& archive_id) const {
  DASPOS_ASSIGN_OR_RETURN(Json manifest, LoadManifest(archive_id));

  DisseminationPackage package;
  package.archive_id = archive_id;
  package.content.title = manifest.Get("title").as_string();
  package.content.creator = manifest.Get("creator").as_string();
  package.content.description = manifest.Get("description").as_string();
  const Json& keywords = manifest.Get("keywords");
  for (size_t i = 0; i < keywords.size(); ++i) {
    package.content.keywords.push_back(keywords.at(i).as_string());
  }
  package.content.context = manifest.Get("context");

  const Json& files = manifest.Get("files");
  for (size_t i = 0; i < files.size(); ++i) {
    const Json& entry = files.at(i);
    std::string object_id = entry.Get("sha256").as_string();
    DASPOS_RETURN_IF_ERROR(store_->Verify(object_id));
    DASPOS_ASSIGN_OR_RETURN(std::string bytes, store_->Get(object_id));
    PackageFile file;
    file.logical_name = entry.Get("name").as_string();
    file.media_type = entry.Get("media_type").as_string();
    file.bytes = std::move(bytes);
    package.content.files.push_back(std::move(file));
  }
  return package;
}

std::vector<HoldingSummary> Archive::Holdings() const {
  std::vector<HoldingSummary> out;
  for (const std::string& archive_id : catalog_) {
    auto manifest = LoadManifest(archive_id);
    if (!manifest.ok()) continue;  // surfaced by AuditFixity instead
    HoldingSummary summary;
    summary.archive_id = archive_id;
    summary.title = manifest->Get("title").as_string();
    auto seq = sequences_.find(archive_id);
    summary.deposit_sequence = seq != sequences_.end() ? seq->second : 0;
    const Json& files = manifest->Get("files");
    summary.file_count = files.size();
    for (size_t i = 0; i < files.size(); ++i) {
      summary.total_bytes +=
          static_cast<uint64_t>(files.at(i).Get("bytes").as_int());
    }
    summary.migrated_from = manifest->Get("migrated_from").as_string();
    out.push_back(std::move(summary));
  }
  return out;
}

FixityReport Archive::AuditFixity(ThreadPool* pool) const {
  FixityReport report;
  // Phase 1 (serial): verify each manifest and collect the referenced file
  // objects in (catalog, manifest) order. Manifests are few and small; the
  // payload blobs dominate the hash cost.
  std::vector<std::string> file_objects;
  for (const std::string& archive_id : catalog_) {
    // The manifest itself is an object too.
    ++report.objects_checked;
    Status manifest_status = store_->Verify(archive_id);
    if (manifest_status.IsNotFound()) {
      report.missing_objects.push_back(archive_id);
      continue;
    }
    if (!manifest_status.ok()) {
      report.corrupted_objects.push_back(archive_id);
      continue;
    }
    auto manifest = LoadManifest(archive_id);
    if (!manifest.ok()) {
      report.corrupted_objects.push_back(archive_id);
      continue;
    }
    const Json& files = manifest->Get("files");
    for (size_t i = 0; i < files.size(); ++i) {
      file_objects.push_back(files.at(i).Get("sha256").as_string());
    }
  }
  // Phase 2: hash every payload blob, concurrently when a pool is given.
  // Statuses land in a pre-sized vector, so the report classification below
  // walks them in the same order as the serial audit.
  std::vector<Status> verdicts = ParallelMap<Status>(
      pool, file_objects.size(),
      [this, &file_objects](size_t i) {
        return store_->Verify(file_objects[i]);
      },
      /*grain=*/1);
  for (size_t i = 0; i < file_objects.size(); ++i) {
    ++report.objects_checked;
    if (verdicts[i].IsNotFound()) {
      report.missing_objects.push_back(file_objects[i]);
    } else if (!verdicts[i].ok()) {
      report.corrupted_objects.push_back(file_objects[i]);
    }
  }
  return report;
}

Result<std::string> Archive::Migrate(const std::string& archive_id,
                                     const FileTransform& transform,
                                     const std::string& migration_note) {
  DASPOS_ASSIGN_OR_RETURN(DisseminationPackage original,
                          Retrieve(archive_id));

  SubmissionPackage migrated;
  migrated.title = original.content.title;
  migrated.creator = original.content.creator;
  migrated.description = original.content.description;
  migrated.keywords = original.content.keywords;
  migrated.context = original.content.context;
  for (const PackageFile& file : original.content.files) {
    DASPOS_ASSIGN_OR_RETURN(PackageFile transformed, transform(file));
    migrated.files.push_back(std::move(transformed));
  }

  // Deposit, then rewrite the manifest with migration lineage. Simplest
  // correct path: build the manifest via Deposit semantics but add the
  // lineage fields first — so we inline a tweaked deposit here.
  Json manifest = Json::Object();
  manifest["aip_version"] = 1;
  manifest["title"] = migrated.title;
  manifest["creator"] = migrated.creator;
  manifest["description"] = migrated.description;
  Json keywords = Json::Array();
  for (const std::string& keyword : migrated.keywords) {
    keywords.push_back(keyword);
  }
  manifest["keywords"] = std::move(keywords);
  manifest["context"] = migrated.context;
  manifest["migrated_from"] = archive_id;
  manifest["migration_note"] = migration_note;

  Json files = Json::Array();
  for (const PackageFile& file : migrated.files) {
    DASPOS_ASSIGN_OR_RETURN(std::string object_id, store_->Put(file.bytes));
    Json entry = Json::Object();
    entry["name"] = file.logical_name;
    entry["media_type"] = file.media_type;
    entry["bytes"] = static_cast<uint64_t>(file.bytes.size());
    entry["sha256"] = object_id;
    files.push_back(std::move(entry));
  }
  manifest["files"] = std::move(files);

  DASPOS_ASSIGN_OR_RETURN(std::string new_id, store_->Put(manifest.Dump(2)));
  if (sequences_.count(new_id) == 0) {
    sequences_[new_id] = next_sequence_++;
    catalog_.push_back(new_id);
  }
  return new_id;
}

}  // namespace daspos
