#include "archive/resilient_store.h"

namespace daspos {

// ---------------------------------------------------------- FaultyObjectStore

Result<std::string> FaultyObjectStore::Put(std::string_view bytes) {
  DASPOS_RETURN_IF_ERROR(plan_->Next("put"));
  return backend_->Put(bytes);
}

Result<std::string> FaultyObjectStore::Get(const std::string& id) const {
  DASPOS_RETURN_IF_ERROR(plan_->Next("get"));
  return backend_->Get(id);
}

bool FaultyObjectStore::Has(const std::string& id) const {
  // Has has no error channel; an injected fault reads as "not there yet",
  // which is exactly how a flaky backend looks to a caller.
  if (!plan_->Next("has").ok()) return false;
  return backend_->Has(id);
}

Status FaultyObjectStore::Verify(const std::string& id) const {
  DASPOS_RETURN_IF_ERROR(plan_->Next("verify"));
  return backend_->Verify(id);
}

// -------------------------------------------------------- RetryingObjectStore

Result<std::string> RetryingObjectStore::Put(std::string_view bytes) {
  return RetryResult<std::string>(
      policy_, [&]() { return backend_->Put(bytes); }, "object-store put");
}

Result<std::string> RetryingObjectStore::Get(const std::string& id) const {
  return RetryResult<std::string>(
      policy_, [&]() { return backend_->Get(id); }, "object-store get " + id);
}

Status RetryingObjectStore::Verify(const std::string& id) const {
  return RetryCall(
      policy_, [&]() { return backend_->Verify(id); },
      "object-store verify " + id);
}

}  // namespace daspos
