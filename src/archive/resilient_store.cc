#include "archive/resilient_store.h"

#include "support/parallel.h"

namespace daspos {

// ---------------------------------------------------------- FaultyObjectStore

Result<std::string> FaultyObjectStore::Put(std::string_view bytes) {
  DASPOS_RETURN_IF_ERROR(plan_->Next("put"));
  return backend_->Put(bytes);
}

Result<std::string> FaultyObjectStore::Get(const std::string& id) const {
  DASPOS_RETURN_IF_ERROR(plan_->Next("get"));
  return backend_->Get(id);
}

bool FaultyObjectStore::Has(const std::string& id) const {
  // Has has no error channel; an injected fault reads as "not there yet",
  // which is exactly how a flaky backend looks to a caller.
  if (!plan_->Next("has").ok()) return false;
  return backend_->Has(id);
}

Status FaultyObjectStore::Verify(const std::string& id) const {
  DASPOS_RETURN_IF_ERROR(plan_->Next("verify"));
  return backend_->Verify(id);
}

Result<std::vector<std::string>> FaultyObjectStore::PutBatch(
    const std::vector<std::string_view>& blobs, ThreadPool* pool) {
  (void)pool;  // Serial: keeps plan ordinals deterministic per blob.
  std::vector<std::string> ids;
  ids.reserve(blobs.size());
  for (std::string_view blob : blobs) {
    DASPOS_RETURN_IF_ERROR(plan_->Next("put"));
    DASPOS_ASSIGN_OR_RETURN(std::string id, backend_->Put(blob));
    ids.push_back(std::move(id));
  }
  return ids;
}

// -------------------------------------------------------- RetryingObjectStore

Result<std::string> RetryingObjectStore::Put(std::string_view bytes) {
  return RetryResult<std::string>(
      policy_, [&]() { return backend_->Put(bytes); }, "object-store put");
}

Result<std::string> RetryingObjectStore::Get(const std::string& id) const {
  return RetryResult<std::string>(
      policy_, [&]() { return backend_->Get(id); }, "object-store get " + id);
}

Status RetryingObjectStore::Verify(const std::string& id) const {
  return RetryCall(
      policy_, [&]() { return backend_->Verify(id); },
      "object-store verify " + id);
}

Result<std::vector<std::string>> RetryingObjectStore::PutBatch(
    const std::vector<std::string_view>& blobs, ThreadPool* pool) {
  struct Slot {
    Status status;
    std::string id;
  };
  std::vector<Slot> slots = ParallelMap<Slot>(
      pool, blobs.size(),
      [this, &blobs](size_t i) {
        Slot slot;
        auto put = RetryResult<std::string>(
            policy_, [&]() { return backend_->Put(blobs[i]); },
            "object-store put (batch slot " + std::to_string(i) + ")");
        if (put.ok()) {
          slot.id = std::move(put).value();
        } else {
          slot.status = put.status();
        }
        return slot;
      },
      /*grain=*/1);
  std::vector<std::string> ids;
  ids.reserve(slots.size());
  for (Slot& slot : slots) {
    DASPOS_RETURN_IF_ERROR(slot.status);
    ids.push_back(std::move(slot.id));
  }
  return ids;
}

}  // namespace daspos
