#include "event/truth.h"

namespace daspos {

std::vector<GenParticle> GenEvent::FinalState() const {
  std::vector<GenParticle> out;
  for (const GenParticle& p : particles) {
    if (p.IsFinalState()) out.push_back(p);
  }
  return out;
}

void GenEvent::Serialize(BinaryWriter* writer) const {
  writer->PutVarint(event_number);
  writer->PutSVarint(process_id);
  writer->PutDouble(weight);
  writer->PutVarint(particles.size());
  for (const GenParticle& p : particles) {
    writer->PutSVarint(p.pdg_id);
    writer->PutSVarint(p.status);
    writer->PutSVarint(p.mother);
    writer->PutDouble(p.momentum.px());
    writer->PutDouble(p.momentum.py());
    writer->PutDouble(p.momentum.pz());
    writer->PutDouble(p.momentum.e());
    writer->PutDouble(p.vertex_mm);
  }
}

Result<GenEvent> GenEvent::Deserialize(BinaryReader* reader) {
  GenEvent event;
  DASPOS_ASSIGN_OR_RETURN(event.event_number, reader->GetVarint());
  DASPOS_ASSIGN_OR_RETURN(int64_t process_id, reader->GetSVarint());
  event.process_id = static_cast<int>(process_id);
  DASPOS_ASSIGN_OR_RETURN(event.weight, reader->GetDouble());
  DASPOS_ASSIGN_OR_RETURN(uint64_t count, reader->GetVarint());
  // Guard the allocation: every particle needs bytes in the stream, so a
  // count beyond the remaining input is corruption, not a reserve target.
  if (count > reader->remaining()) {
    return Status::Corruption("particle count exceeds record size");
  }
  event.particles.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    GenParticle p;
    DASPOS_ASSIGN_OR_RETURN(int64_t pdg_id, reader->GetSVarint());
    DASPOS_ASSIGN_OR_RETURN(int64_t status, reader->GetSVarint());
    DASPOS_ASSIGN_OR_RETURN(int64_t mother, reader->GetSVarint());
    p.pdg_id = static_cast<int>(pdg_id);
    p.status = static_cast<int>(status);
    p.mother = static_cast<int>(mother);
    DASPOS_ASSIGN_OR_RETURN(double px, reader->GetDouble());
    DASPOS_ASSIGN_OR_RETURN(double py, reader->GetDouble());
    DASPOS_ASSIGN_OR_RETURN(double pz, reader->GetDouble());
    DASPOS_ASSIGN_OR_RETURN(double e, reader->GetDouble());
    p.momentum = FourVector(px, py, pz, e);
    DASPOS_ASSIGN_OR_RETURN(p.vertex_mm, reader->GetDouble());
    event.particles.push_back(p);
  }
  return event;
}

std::string GenEvent::ToRecord() const {
  BinaryWriter writer;
  Serialize(&writer);
  return writer.TakeBuffer();
}

Result<GenEvent> GenEvent::FromRecord(std::string_view record) {
  BinaryReader reader(record);
  DASPOS_ASSIGN_OR_RETURN(GenEvent event, Deserialize(&reader));
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after GenEvent record");
  }
  return event;
}

}  // namespace daspos
