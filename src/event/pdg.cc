#include "event/pdg.h"

#include <cmath>
#include <cstdlib>

namespace daspos {
namespace pdg {

double Mass(int pdg_id) {
  switch (std::abs(pdg_id)) {
    case kElectron:
      return 0.000511;
    case kMuon:
      return 0.10566;
    case kTau:
      return 1.77686;
    case kNuE:
    case kNuMu:
    case kNuTau:
      return 0.0;
    case kDown:
      return 0.0047;
    case kUp:
      return 0.0022;
    case kStrange:
      return 0.095;
    case kCharm:
      return 1.27;
    case kBottom:
      return 4.18;
    case kTop:
      return 172.76;
    case kGluon:
    case kPhoton:
      return 0.0;
    case kZ:
      return 91.1876;
    case kWPlus:
      return 80.379;
    case kHiggs:
      return 125.25;
    case kZPrime:
      return 0.0;  // model-dependent; set per generated event
    case kPiPlus:
      return 0.13957;
    case kPiZero:
      return 0.13498;
    case kKPlus:
      return 0.49368;
    case kD0:
      return 1.86484;
    case kDPlus:
      return 1.86966;
    case kProton:
      return 0.93827;
    case kNeutron:
      return 0.93957;
    default:
      return 0.0;
  }
}

double Charge(int pdg_id) {
  int a = std::abs(pdg_id);
  double q = 0.0;
  switch (a) {
    case kElectron:
    case kMuon:
    case kTau:
      q = -1.0;
      break;
    case kDown:
    case kStrange:
    case kBottom:
      q = -1.0 / 3.0;
      break;
    case kUp:
    case kCharm:
    case kTop:
      q = 2.0 / 3.0;
      break;
    case kWPlus:
    case kPiPlus:
    case kKPlus:
    case kDPlus:
    case kProton:
      q = 1.0;
      break;
    default:
      q = 0.0;
  }
  return pdg_id >= 0 ? q : -q;
}

std::string Name(int pdg_id) {
  int a = std::abs(pdg_id);
  bool anti = pdg_id < 0;
  switch (a) {
    case kElectron:
      return anti ? "e+" : "e-";
    case kMuon:
      return anti ? "mu+" : "mu-";
    case kTau:
      return anti ? "tau+" : "tau-";
    case kNuE:
      return anti ? "nu_e~" : "nu_e";
    case kNuMu:
      return anti ? "nu_mu~" : "nu_mu";
    case kNuTau:
      return anti ? "nu_tau~" : "nu_tau";
    case kDown:
      return anti ? "d~" : "d";
    case kUp:
      return anti ? "u~" : "u";
    case kStrange:
      return anti ? "s~" : "s";
    case kCharm:
      return anti ? "c~" : "c";
    case kBottom:
      return anti ? "b~" : "b";
    case kTop:
      return anti ? "t~" : "t";
    case kGluon:
      return "g";
    case kPhoton:
      return "gamma";
    case kZ:
      return "Z";
    case kWPlus:
      return anti ? "W-" : "W+";
    case kHiggs:
      return "H";
    case kZPrime:
      return "Z'";
    case kPiPlus:
      return anti ? "pi-" : "pi+";
    case kPiZero:
      return "pi0";
    case kKPlus:
      return anti ? "K-" : "K+";
    case kD0:
      return anti ? "D0~" : "D0";
    case kDPlus:
      return anti ? "D-" : "D+";
    case kProton:
      return anti ? "p~" : "p";
    case kNeutron:
      return anti ? "n~" : "n";
    default:
      return "id:" + std::to_string(pdg_id);
  }
}

bool IsChargedLepton(int pdg_id) {
  int a = std::abs(pdg_id);
  return a == kElectron || a == kMuon || a == kTau;
}

bool IsNeutrino(int pdg_id) {
  int a = std::abs(pdg_id);
  return a == kNuE || a == kNuMu || a == kNuTau;
}

bool IsLepton(int pdg_id) {
  return IsChargedLepton(pdg_id) || IsNeutrino(pdg_id);
}

bool IsQuark(int pdg_id) {
  int a = std::abs(pdg_id);
  return a >= kDown && a <= kTop;
}

bool IsHadron(int pdg_id) {
  int a = std::abs(pdg_id);
  return a == kPiPlus || a == kPiZero || a == kKPlus || a == kD0 ||
         a == kDPlus || a == kProton || a == kNeutron;
}

bool IsDetectorStable(int pdg_id) {
  int a = std::abs(pdg_id);
  return a == kElectron || a == kMuon || a == kPhoton || a == kPiPlus ||
         a == kKPlus || a == kProton || a == kNeutron || IsNeutrino(pdg_id);
}

bool IsInvisible(int pdg_id) { return IsNeutrino(pdg_id); }

}  // namespace pdg
}  // namespace daspos
