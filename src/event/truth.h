// Truth-level (generator) event record, HepMC-like: the exchange format the
// RIVET-analog consumes ("any Monte Carlo output can be juxtaposed with the
// data, as long as it can produce output in HepMC format", §2.3).
#ifndef DASPOS_EVENT_TRUTH_H_
#define DASPOS_EVENT_TRUTH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "event/fourvector.h"
#include "serialize/binary.h"
#include "support/result.h"

namespace daspos {

/// One generator particle. `status` follows the HepMC convention subset we
/// use: 1 = final state, 2 = decayed, 3 = hard process.
struct GenParticle {
  int pdg_id = 0;
  int status = 1;
  /// Index of the mother particle within the event, or -1 for beam-level.
  int mother = -1;
  FourVector momentum;
  /// Production vertex displacement from the beamline, in millimetres —
  /// carries lifetime information (D-meson master class).
  double vertex_mm = 0.0;

  bool IsFinalState() const { return status == 1; }
};

/// One generated collision.
struct GenEvent {
  uint64_t event_number = 0;
  /// Which physics process produced the event (mc/process.h ids).
  int process_id = 0;
  /// Generator weight (cross-section normalization happens downstream).
  double weight = 1.0;
  std::vector<GenParticle> particles;

  /// Final-state (status 1) particles.
  std::vector<GenParticle> FinalState() const;

  /// Binary record round-trip for container storage.
  void Serialize(BinaryWriter* writer) const;
  static Result<GenEvent> Deserialize(BinaryReader* reader);
  std::string ToRecord() const;
  static Result<GenEvent> FromRecord(std::string_view record);
};

}  // namespace daspos

#endif  // DASPOS_EVENT_TRUTH_H_
