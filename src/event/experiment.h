// The four LHC experiments of the paper's Table 1. Used to parameterize
// detector dialects (detsim), Level-2 outreach formats (level2), and
// interview profiles (interview) — the per-experiment divergence the paper
// documents is modeled by configuration, not separate code bases.
#ifndef DASPOS_EVENT_EXPERIMENT_H_
#define DASPOS_EVENT_EXPERIMENT_H_

#include <array>
#include <string_view>

namespace daspos {

enum class Experiment { kAlice = 0, kAtlas = 1, kCms = 2, kLhcb = 3 };

inline constexpr std::array<Experiment, 4> kAllExperiments = {
    Experiment::kAlice, Experiment::kAtlas, Experiment::kCms,
    Experiment::kLhcb};

constexpr std::string_view ExperimentName(Experiment e) {
  switch (e) {
    case Experiment::kAlice:
      return "Alice";
    case Experiment::kAtlas:
      return "Atlas";
    case Experiment::kCms:
      return "CMS";
    case Experiment::kLhcb:
      return "LHCb";
  }
  return "unknown";
}

}  // namespace daspos

#endif  // DASPOS_EVENT_EXPERIMENT_H_
