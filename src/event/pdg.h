// PDG Monte-Carlo particle numbering: the ids, masses, and classification
// helpers the generator, simulation, and analysis layers share.
#ifndef DASPOS_EVENT_PDG_H_
#define DASPOS_EVENT_PDG_H_

#include <cstdint>
#include <string>

namespace daspos {
namespace pdg {

// Leptons.
inline constexpr int kElectron = 11;
inline constexpr int kNuE = 12;
inline constexpr int kMuon = 13;
inline constexpr int kNuMu = 14;
inline constexpr int kTau = 15;
inline constexpr int kNuTau = 16;
// Quarks and gluon.
inline constexpr int kDown = 1;
inline constexpr int kUp = 2;
inline constexpr int kStrange = 3;
inline constexpr int kCharm = 4;
inline constexpr int kBottom = 5;
inline constexpr int kTop = 6;
inline constexpr int kGluon = 21;
// Bosons.
inline constexpr int kPhoton = 22;
inline constexpr int kZ = 23;
inline constexpr int kWPlus = 24;
inline constexpr int kHiggs = 25;
/// A generic new heavy neutral resonance — the "new physics model" used by
/// the RECAST reinterpretation use case (§2.3).
inline constexpr int kZPrime = 32;
// Hadrons used by the toy hadronization and the D-lifetime master class.
inline constexpr int kPiPlus = 211;
inline constexpr int kPiZero = 111;
inline constexpr int kKPlus = 321;
inline constexpr int kKMinus = -321;
inline constexpr int kD0 = 421;
inline constexpr int kDPlus = 411;
inline constexpr int kProton = 2212;
inline constexpr int kNeutron = 2112;

/// Mass in GeV for the ids above (0 for unknown ids).
double Mass(int pdg_id);

/// Electric charge in units of e (handles antiparticles by sign).
double Charge(int pdg_id);

/// Short name like "mu-", "Z", "pi+"; "id:<n>" for unknown ids.
std::string Name(int pdg_id);

bool IsChargedLepton(int pdg_id);
bool IsNeutrino(int pdg_id);
bool IsLepton(int pdg_id);
bool IsQuark(int pdg_id);
bool IsHadron(int pdg_id);
/// Stable on detector scales (reaches the detector): e, mu, gamma, pi+-,
/// K+-, p, n, and neutrinos (which escape).
bool IsDetectorStable(int pdg_id);
/// Leaves no detector signal (neutrinos).
bool IsInvisible(int pdg_id);

}  // namespace pdg
}  // namespace daspos

#endif  // DASPOS_EVENT_PDG_H_
