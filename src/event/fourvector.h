// Relativistic four-vector (px, py, pz, E) in GeV, with the collider
// kinematic accessors every analysis layer uses (pt, eta, phi, mass, dR).
#ifndef DASPOS_EVENT_FOURVECTOR_H_
#define DASPOS_EVENT_FOURVECTOR_H_

#include <cmath>

namespace daspos {

class FourVector {
 public:
  FourVector() = default;
  FourVector(double px, double py, double pz, double e)
      : px_(px), py_(py), pz_(pz), e_(e) {}

  /// Builds from transverse momentum, pseudorapidity, azimuth, and mass —
  /// the coordinates analyses are written in.
  static FourVector FromPtEtaPhiM(double pt, double eta, double phi,
                                  double mass);

  double px() const { return px_; }
  double py() const { return py_; }
  double pz() const { return pz_; }
  double e() const { return e_; }

  /// Transverse momentum.
  double Pt() const { return std::sqrt(px_ * px_ + py_ * py_); }
  /// Magnitude of the 3-momentum.
  double P() const { return std::sqrt(px_ * px_ + py_ * py_ + pz_ * pz_); }
  /// Azimuthal angle in (-pi, pi].
  double Phi() const { return std::atan2(py_, px_); }
  /// Pseudorapidity; large values are clamped for straight-line particles.
  double Eta() const;
  /// Invariant mass; negative m^2 (from rounding) clamps to 0.
  double Mass() const;
  /// Transverse energy E * sin(theta).
  double Et() const;

  FourVector operator+(const FourVector& o) const {
    return FourVector(px_ + o.px_, py_ + o.py_, pz_ + o.pz_, e_ + o.e_);
  }
  FourVector& operator+=(const FourVector& o) {
    px_ += o.px_;
    py_ += o.py_;
    pz_ += o.pz_;
    e_ += o.e_;
    return *this;
  }
  FourVector operator*(double k) const {
    return FourVector(k * px_, k * py_, k * pz_, k * e_);
  }

  bool operator==(const FourVector& o) const {
    return px_ == o.px_ && py_ == o.py_ && pz_ == o.pz_ && e_ == o.e_;
  }

 private:
  double px_ = 0.0;
  double py_ = 0.0;
  double pz_ = 0.0;
  double e_ = 0.0;
};

/// Azimuthal separation wrapped into [0, pi].
double DeltaPhi(const FourVector& a, const FourVector& b);

/// Separation in the eta-phi plane.
double DeltaR(const FourVector& a, const FourVector& b);

/// Invariant mass of a pair.
double InvariantMass(const FourVector& a, const FourVector& b);

}  // namespace daspos

#endif  // DASPOS_EVENT_FOURVECTOR_H_
