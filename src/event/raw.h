// Raw detector data: "all electronic detector signals originating in a
// single interaction" (§3.1). This is the largest tier; reconstruction
// converts it into objects and it is then normally discarded from analysis
// formats (§3.2).
#ifndef DASPOS_EVENT_RAW_H_
#define DASPOS_EVENT_RAW_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serialize/binary.h"
#include "support/result.h"

namespace daspos {

/// Identifies which detector subsystem a channel belongs to.
enum class SubDetector : uint8_t {
  kTracker = 0,
  kEcal = 1,
  kHcal = 2,
  kMuon = 3,
};

/// One fired electronics channel.
struct RawHit {
  SubDetector detector = SubDetector::kTracker;
  /// Dense channel index within the subsystem (layer/cell encoding is the
  /// detector description's business, detsim/geometry.h).
  uint32_t channel = 0;
  /// Digitized pulse height (ADC counts).
  uint16_t adc = 0;
  /// Hit time relative to the bunch crossing, in nanoseconds.
  float time_ns = 0.0f;
};

/// One triggered readout of the whole detector.
struct RawEvent {
  uint32_t run_number = 0;
  uint64_t event_number = 0;
  /// Bitmask of fired trigger lines (detsim/trigger.h).
  uint32_t trigger_bits = 0;
  std::vector<RawHit> hits;

  void Serialize(BinaryWriter* writer) const;
  static Result<RawEvent> Deserialize(BinaryReader* reader);
  std::string ToRecord() const;
  static Result<RawEvent> FromRecord(std::string_view record);
};

}  // namespace daspos

#endif  // DASPOS_EVENT_RAW_H_
