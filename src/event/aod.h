// Analysis Object Data (AOD): "only the refined objects necessary for
// further analysis are kept ... the basis for many physics analyses" (§3.2).
// Derived from RecoEvent by dropping tracks/clusters (intermediate data).
#ifndef DASPOS_EVENT_AOD_H_
#define DASPOS_EVENT_AOD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "event/reco.h"
#include "serialize/binary.h"
#include "support/result.h"

namespace daspos {

/// The analysis-facing event: refined physics objects plus event-level
/// summaries, nothing else.
struct AodEvent {
  uint32_t run_number = 0;
  uint64_t event_number = 0;
  uint32_t trigger_bits = 0;
  double weight = 1.0;
  int vertex_count = 0;
  std::vector<PhysicsObject> objects;

  /// Builds an AOD event from full reconstruction output (the RECO->AOD
  /// workflow step): keeps refined objects, drops basic and intermediate
  /// categories.
  static AodEvent FromReco(const RecoEvent& reco);

  /// Objects of one type, ordered as stored (descending pt by convention of
  /// the producer).
  std::vector<PhysicsObject> ObjectsOfType(ObjectType type) const;

  /// Missing transverse energy object, if present.
  const PhysicsObject* Met() const;

  void Serialize(BinaryWriter* writer) const;
  static Result<AodEvent> Deserialize(BinaryReader* reader);
  std::string ToRecord() const;
  static Result<AodEvent> FromRecord(std::string_view record);
};

}  // namespace daspos

#endif  // DASPOS_EVENT_AOD_H_
