// Reconstruction-level event model: the "recognizable objects" produced from
// raw data (particle trajectories, energy clusters) and the "candidate
// physics objects" refined from them (§3.2).
#ifndef DASPOS_EVENT_RECO_H_
#define DASPOS_EVENT_RECO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "event/fourvector.h"
#include "serialize/binary.h"
#include "support/result.h"

namespace daspos {

/// A reconstructed charged-particle trajectory.
struct Track {
  FourVector momentum;
  int charge = 0;
  /// Number of tracker hits on the trajectory.
  int hit_count = 0;
  /// Track-fit quality.
  double chi2 = 0.0;
  /// Transverse impact parameter, millimetres (displaced-vertex physics).
  double d0_mm = 0.0;
};

/// A cluster of energy depositions in a calorimeter.
struct CaloCluster {
  double energy = 0.0;
  double eta = 0.0;
  double phi = 0.0;
  /// Fraction of the energy in the electromagnetic compartment;
  /// discriminates electrons/photons (high) from hadrons (low).
  double em_fraction = 0.0;
  int cell_count = 0;
};

/// Candidate physics-object types.
enum class ObjectType : uint8_t {
  kElectron = 0,
  kMuon = 1,
  kPhoton = 2,
  kJet = 3,
  kMet = 4,
};

std::string_view ObjectTypeName(ObjectType type);

/// Inverse of ObjectTypeName; InvalidArgument for unknown names.
Result<ObjectType> ObjectTypeFromName(std::string_view name);

/// A refined candidate physics object (electron, muon, photon, jet, MET).
struct PhysicsObject {
  ObjectType type = ObjectType::kJet;
  FourVector momentum;
  int charge = 0;
  /// Scalar activity around the object; small = isolated lepton/photon.
  double isolation = 0.0;
  /// Identification quality in [0,1].
  double quality = 1.0;
  /// Displacement of the associated vertex, millimetres (0 = prompt).
  double displacement_mm = 0.0;

  void Serialize(BinaryWriter* writer) const;
  static Result<PhysicsObject> Deserialize(BinaryReader* reader);
};

/// Full reconstruction output: basic + intermediate + refined content.
/// "Most of the basic and intermediate data categories are discarded"
/// downstream (§3.2) — that discarding is the AOD step (event/aod.h).
struct RecoEvent {
  uint32_t run_number = 0;
  uint64_t event_number = 0;
  uint32_t trigger_bits = 0;
  double weight = 1.0;
  std::vector<Track> tracks;
  std::vector<CaloCluster> clusters;
  std::vector<PhysicsObject> objects;
  /// Reconstructed primary-vertex count (pileup estimate).
  int vertex_count = 0;

  void Serialize(BinaryWriter* writer) const;
  static Result<RecoEvent> Deserialize(BinaryReader* reader);
  std::string ToRecord() const;
  static Result<RecoEvent> FromRecord(std::string_view record);
};

}  // namespace daspos

#endif  // DASPOS_EVENT_RECO_H_
