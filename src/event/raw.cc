#include "event/raw.h"

namespace daspos {

void RawEvent::Serialize(BinaryWriter* writer) const {
  writer->PutU32(run_number);
  writer->PutVarint(event_number);
  writer->PutU32(trigger_bits);
  writer->PutVarint(hits.size());
  for (const RawHit& hit : hits) {
    writer->PutU8(static_cast<uint8_t>(hit.detector));
    writer->PutVarint(hit.channel);
    writer->PutVarint(hit.adc);
    // float stored as double: simple and lossless.
    writer->PutDouble(hit.time_ns);
  }
}

Result<RawEvent> RawEvent::Deserialize(BinaryReader* reader) {
  RawEvent event;
  DASPOS_ASSIGN_OR_RETURN(event.run_number, reader->GetU32());
  DASPOS_ASSIGN_OR_RETURN(event.event_number, reader->GetVarint());
  DASPOS_ASSIGN_OR_RETURN(event.trigger_bits, reader->GetU32());
  DASPOS_ASSIGN_OR_RETURN(uint64_t count, reader->GetVarint());
  // Allocation guard: see GenEvent::Deserialize.
  if (count > reader->remaining()) {
    return Status::Corruption("hit count exceeds record size");
  }
  event.hits.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    RawHit hit;
    DASPOS_ASSIGN_OR_RETURN(uint8_t det, reader->GetU8());
    if (det > static_cast<uint8_t>(SubDetector::kMuon)) {
      return Status::Corruption("bad subdetector id in raw hit");
    }
    hit.detector = static_cast<SubDetector>(det);
    DASPOS_ASSIGN_OR_RETURN(uint64_t channel, reader->GetVarint());
    hit.channel = static_cast<uint32_t>(channel);
    DASPOS_ASSIGN_OR_RETURN(uint64_t adc, reader->GetVarint());
    hit.adc = static_cast<uint16_t>(adc);
    DASPOS_ASSIGN_OR_RETURN(double time, reader->GetDouble());
    hit.time_ns = static_cast<float>(time);
    event.hits.push_back(hit);
  }
  return event;
}

std::string RawEvent::ToRecord() const {
  BinaryWriter writer;
  Serialize(&writer);
  return writer.TakeBuffer();
}

Result<RawEvent> RawEvent::FromRecord(std::string_view record) {
  BinaryReader reader(record);
  DASPOS_ASSIGN_OR_RETURN(RawEvent event, Deserialize(&reader));
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after RawEvent record");
  }
  return event;
}

}  // namespace daspos
