#include "event/aod.h"

namespace daspos {

AodEvent AodEvent::FromReco(const RecoEvent& reco) {
  AodEvent aod;
  aod.run_number = reco.run_number;
  aod.event_number = reco.event_number;
  aod.trigger_bits = reco.trigger_bits;
  aod.weight = reco.weight;
  aod.vertex_count = reco.vertex_count;
  aod.objects = reco.objects;
  return aod;
}

std::vector<PhysicsObject> AodEvent::ObjectsOfType(ObjectType type) const {
  std::vector<PhysicsObject> out;
  for (const PhysicsObject& obj : objects) {
    if (obj.type == type) out.push_back(obj);
  }
  return out;
}

const PhysicsObject* AodEvent::Met() const {
  for (const PhysicsObject& obj : objects) {
    if (obj.type == ObjectType::kMet) return &obj;
  }
  return nullptr;
}

void AodEvent::Serialize(BinaryWriter* writer) const {
  writer->PutU32(run_number);
  writer->PutVarint(event_number);
  writer->PutU32(trigger_bits);
  writer->PutDouble(weight);
  writer->PutSVarint(vertex_count);
  writer->PutVarint(objects.size());
  for (const PhysicsObject& obj : objects) obj.Serialize(writer);
}

Result<AodEvent> AodEvent::Deserialize(BinaryReader* reader) {
  AodEvent event;
  DASPOS_ASSIGN_OR_RETURN(event.run_number, reader->GetU32());
  DASPOS_ASSIGN_OR_RETURN(event.event_number, reader->GetVarint());
  DASPOS_ASSIGN_OR_RETURN(event.trigger_bits, reader->GetU32());
  DASPOS_ASSIGN_OR_RETURN(event.weight, reader->GetDouble());
  DASPOS_ASSIGN_OR_RETURN(int64_t vertex_count, reader->GetSVarint());
  event.vertex_count = static_cast<int>(vertex_count);
  DASPOS_ASSIGN_OR_RETURN(uint64_t count, reader->GetVarint());
  // Allocation guard: see GenEvent::Deserialize.
  if (count > reader->remaining()) {
    return Status::Corruption("object count exceeds record size");
  }
  event.objects.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    DASPOS_ASSIGN_OR_RETURN(PhysicsObject obj,
                            PhysicsObject::Deserialize(reader));
    event.objects.push_back(obj);
  }
  return event;
}

std::string AodEvent::ToRecord() const {
  BinaryWriter writer;
  Serialize(&writer);
  return writer.TakeBuffer();
}

Result<AodEvent> AodEvent::FromRecord(std::string_view record) {
  BinaryReader reader(record);
  DASPOS_ASSIGN_OR_RETURN(AodEvent event, Deserialize(&reader));
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after AodEvent record");
  }
  return event;
}

}  // namespace daspos
