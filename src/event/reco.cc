#include "event/reco.h"

namespace daspos {

std::string_view ObjectTypeName(ObjectType type) {
  switch (type) {
    case ObjectType::kElectron:
      return "electron";
    case ObjectType::kMuon:
      return "muon";
    case ObjectType::kPhoton:
      return "photon";
    case ObjectType::kJet:
      return "jet";
    case ObjectType::kMet:
      return "met";
  }
  return "unknown";
}

Result<ObjectType> ObjectTypeFromName(std::string_view name) {
  for (ObjectType type :
       {ObjectType::kElectron, ObjectType::kMuon, ObjectType::kPhoton,
        ObjectType::kJet, ObjectType::kMet}) {
    if (name == ObjectTypeName(type)) return type;
  }
  return Status::InvalidArgument("unknown object type '" +
                                 std::string(name) + "'");
}

namespace {

void PutFourVector(BinaryWriter* writer, const FourVector& v) {
  writer->PutDouble(v.px());
  writer->PutDouble(v.py());
  writer->PutDouble(v.pz());
  writer->PutDouble(v.e());
}

Result<FourVector> GetFourVector(BinaryReader* reader) {
  DASPOS_ASSIGN_OR_RETURN(double px, reader->GetDouble());
  DASPOS_ASSIGN_OR_RETURN(double py, reader->GetDouble());
  DASPOS_ASSIGN_OR_RETURN(double pz, reader->GetDouble());
  DASPOS_ASSIGN_OR_RETURN(double e, reader->GetDouble());
  return FourVector(px, py, pz, e);
}

}  // namespace

void PhysicsObject::Serialize(BinaryWriter* writer) const {
  writer->PutU8(static_cast<uint8_t>(type));
  PutFourVector(writer, momentum);
  writer->PutSVarint(charge);
  writer->PutDouble(isolation);
  writer->PutDouble(quality);
  writer->PutDouble(displacement_mm);
}

Result<PhysicsObject> PhysicsObject::Deserialize(BinaryReader* reader) {
  PhysicsObject obj;
  DASPOS_ASSIGN_OR_RETURN(uint8_t type, reader->GetU8());
  if (type > static_cast<uint8_t>(ObjectType::kMet)) {
    return Status::Corruption("bad physics-object type");
  }
  obj.type = static_cast<ObjectType>(type);
  DASPOS_ASSIGN_OR_RETURN(obj.momentum, GetFourVector(reader));
  DASPOS_ASSIGN_OR_RETURN(int64_t charge, reader->GetSVarint());
  obj.charge = static_cast<int>(charge);
  DASPOS_ASSIGN_OR_RETURN(obj.isolation, reader->GetDouble());
  DASPOS_ASSIGN_OR_RETURN(obj.quality, reader->GetDouble());
  DASPOS_ASSIGN_OR_RETURN(obj.displacement_mm, reader->GetDouble());
  return obj;
}

void RecoEvent::Serialize(BinaryWriter* writer) const {
  writer->PutU32(run_number);
  writer->PutVarint(event_number);
  writer->PutU32(trigger_bits);
  writer->PutDouble(weight);
  writer->PutSVarint(vertex_count);

  writer->PutVarint(tracks.size());
  for (const Track& t : tracks) {
    PutFourVector(writer, t.momentum);
    writer->PutSVarint(t.charge);
    writer->PutSVarint(t.hit_count);
    writer->PutDouble(t.chi2);
    writer->PutDouble(t.d0_mm);
  }

  writer->PutVarint(clusters.size());
  for (const CaloCluster& c : clusters) {
    writer->PutDouble(c.energy);
    writer->PutDouble(c.eta);
    writer->PutDouble(c.phi);
    writer->PutDouble(c.em_fraction);
    writer->PutSVarint(c.cell_count);
  }

  writer->PutVarint(objects.size());
  for (const PhysicsObject& obj : objects) obj.Serialize(writer);
}

Result<RecoEvent> RecoEvent::Deserialize(BinaryReader* reader) {
  RecoEvent event;
  DASPOS_ASSIGN_OR_RETURN(event.run_number, reader->GetU32());
  DASPOS_ASSIGN_OR_RETURN(event.event_number, reader->GetVarint());
  DASPOS_ASSIGN_OR_RETURN(event.trigger_bits, reader->GetU32());
  DASPOS_ASSIGN_OR_RETURN(event.weight, reader->GetDouble());
  DASPOS_ASSIGN_OR_RETURN(int64_t vertex_count, reader->GetSVarint());
  event.vertex_count = static_cast<int>(vertex_count);

  DASPOS_ASSIGN_OR_RETURN(uint64_t n_tracks, reader->GetVarint());
  // Allocation guards on all three counts: see GenEvent::Deserialize.
  if (n_tracks > reader->remaining()) {
    return Status::Corruption("track count exceeds record size");
  }
  event.tracks.reserve(static_cast<size_t>(n_tracks));
  for (uint64_t i = 0; i < n_tracks; ++i) {
    Track t;
    DASPOS_ASSIGN_OR_RETURN(t.momentum, GetFourVector(reader));
    DASPOS_ASSIGN_OR_RETURN(int64_t charge, reader->GetSVarint());
    t.charge = static_cast<int>(charge);
    DASPOS_ASSIGN_OR_RETURN(int64_t hits, reader->GetSVarint());
    t.hit_count = static_cast<int>(hits);
    DASPOS_ASSIGN_OR_RETURN(t.chi2, reader->GetDouble());
    DASPOS_ASSIGN_OR_RETURN(t.d0_mm, reader->GetDouble());
    event.tracks.push_back(t);
  }

  DASPOS_ASSIGN_OR_RETURN(uint64_t n_clusters, reader->GetVarint());
  if (n_clusters > reader->remaining()) {
    return Status::Corruption("cluster count exceeds record size");
  }
  event.clusters.reserve(static_cast<size_t>(n_clusters));
  for (uint64_t i = 0; i < n_clusters; ++i) {
    CaloCluster c;
    DASPOS_ASSIGN_OR_RETURN(c.energy, reader->GetDouble());
    DASPOS_ASSIGN_OR_RETURN(c.eta, reader->GetDouble());
    DASPOS_ASSIGN_OR_RETURN(c.phi, reader->GetDouble());
    DASPOS_ASSIGN_OR_RETURN(c.em_fraction, reader->GetDouble());
    DASPOS_ASSIGN_OR_RETURN(int64_t cells, reader->GetSVarint());
    c.cell_count = static_cast<int>(cells);
    event.clusters.push_back(c);
  }

  DASPOS_ASSIGN_OR_RETURN(uint64_t n_objects, reader->GetVarint());
  if (n_objects > reader->remaining()) {
    return Status::Corruption("object count exceeds record size");
  }
  event.objects.reserve(static_cast<size_t>(n_objects));
  for (uint64_t i = 0; i < n_objects; ++i) {
    DASPOS_ASSIGN_OR_RETURN(PhysicsObject obj,
                            PhysicsObject::Deserialize(reader));
    event.objects.push_back(obj);
  }
  return event;
}

std::string RecoEvent::ToRecord() const {
  BinaryWriter writer;
  Serialize(&writer);
  return writer.TakeBuffer();
}

Result<RecoEvent> RecoEvent::FromRecord(std::string_view record) {
  BinaryReader reader(record);
  DASPOS_ASSIGN_OR_RETURN(RecoEvent event, Deserialize(&reader));
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after RecoEvent record");
  }
  return event;
}

}  // namespace daspos
