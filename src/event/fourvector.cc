#include "event/fourvector.h"

#include <algorithm>

namespace daspos {

namespace {
constexpr double kPi = 3.14159265358979323846;
constexpr double kMaxEta = 20.0;
}  // namespace

FourVector FourVector::FromPtEtaPhiM(double pt, double eta, double phi,
                                     double mass) {
  double px = pt * std::cos(phi);
  double py = pt * std::sin(phi);
  double pz = pt * std::sinh(eta);
  double e = std::sqrt(px * px + py * py + pz * pz + mass * mass);
  return FourVector(px, py, pz, e);
}

double FourVector::Eta() const {
  double pt = Pt();
  if (pt <= 0.0) return pz_ >= 0.0 ? kMaxEta : -kMaxEta;
  double eta = std::asinh(pz_ / pt);
  return std::clamp(eta, -kMaxEta, kMaxEta);
}

double FourVector::Mass() const {
  double m2 = e_ * e_ - px_ * px_ - py_ * py_ - pz_ * pz_;
  return m2 > 0.0 ? std::sqrt(m2) : 0.0;
}

double FourVector::Et() const {
  double p = P();
  if (p <= 0.0) return 0.0;
  return e_ * Pt() / p;
}

double DeltaPhi(const FourVector& a, const FourVector& b) {
  double dphi = std::fabs(a.Phi() - b.Phi());
  if (dphi > kPi) dphi = 2.0 * kPi - dphi;
  return dphi;
}

double DeltaR(const FourVector& a, const FourVector& b) {
  double deta = a.Eta() - b.Eta();
  double dphi = DeltaPhi(a, b);
  return std::sqrt(deta * deta + dphi * dphi);
}

double InvariantMass(const FourVector& a, const FourVector& b) {
  return (a + b).Mass();
}

}  // namespace daspos
