#include "serialize/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "support/strings.h"

namespace daspos {

size_t Json::size() const {
  if (is_array()) return array_.size();
  if (is_object()) return object_.size();
  return 0;
}

const Json& Json::at(size_t index) const {
  static const Json kNull;
  if (!is_array() || index >= array_.size()) return kNull;
  return array_[index];
}

void Json::push_back(Json value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  array_.push_back(std::move(value));
}

Json& Json::operator[](std::string_view key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  for (auto& [k, v] : object_) {
    if (k == key) return v;
  }
  object_.emplace_back(std::string(key), Json());
  return object_.back().second;
}

const Json& Json::Get(std::string_view key) const {
  static const Json kNull;
  for (const auto& [k, v] : object_) {
    if (k == key) return v;
  }
  return kNull;
}

bool Json::Has(std::string_view key) const {
  for (const auto& [k, v] : object_) {
    (void)v;
    if (k == key) return true;
  }
  return false;
}

namespace {

void AppendEscaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char raw : s) {
    unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
}

void AppendNumber(std::string& out, double n) {
  if (!std::isfinite(n)) {
    out += "null";  // JSON has no NaN/Inf; preserve document validity.
    return;
  }
  // Integers render without decimal point for stable, compact documents.
  if (n == std::floor(n) && std::fabs(n) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(n));
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", n);
  out += buf;
}

}  // namespace

void Json::DumpTo(std::string& out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent >= 0) {
      out.push_back('\n');
      out.append(static_cast<size_t>(indent) * static_cast<size_t>(d), ' ');
    }
  };
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      AppendNumber(out, number_);
      break;
    case Type::kString:
      AppendEscaped(out, string_);
      break;
    case Type::kArray: {
      out.push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out.push_back(',');
        newline(depth + 1);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      if (!array_.empty()) newline(depth);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out.push_back(',');
        newline(depth + 1);
        AppendEscaped(out, object_[i].first);
        out += indent >= 0 ? ": " : ":";
        object_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (!object_.empty()) newline(depth);
      out.push_back('}');
      break;
    }
  }
}

size_t Json::DumpSizeHint() const {
  switch (type_) {
    case Type::kNull:
    case Type::kBool:
      return 5;
    case Type::kNumber:
      return 24;
    case Type::kString:
      return string_.size() + 8;
    case Type::kArray: {
      size_t total = 2;
      for (const Json& item : array_) total += item.DumpSizeHint() + 2;
      return total;
    }
    case Type::kObject: {
      size_t total = 2;
      for (const auto& [key, value] : object_) {
        total += key.size() + value.DumpSizeHint() + 6;
      }
      return total;
    }
  }
  return 0;
}

std::string Json::Dump(int indent) const {
  std::string out;
  out.reserve(DumpSizeHint());
  DumpTo(out, indent, 0);
  return out;
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return number_ == other.number_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return array_ == other.array_;
    case Type::kObject:
      return object_ == other.object_;
  }
  return false;
}

namespace {

/// Recursive-descent JSON parser over a string_view.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> Parse() {
    SkipWs();
    Json value;
    Status st = ParseValue(&value, 0);
    if (!st.ok()) return st;
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 256;

  Status Fail(const std::string& what) {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Status ParseValue(Json* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        DASPOS_RETURN_IF_ERROR(ParseString(&s));
        *out = Json(std::move(s));
        return Status::OK();
      }
      case 't':
        if (ConsumeWord("true")) {
          *out = Json(true);
          return Status::OK();
        }
        return Fail("bad literal");
      case 'f':
        if (ConsumeWord("false")) {
          *out = Json(false);
          return Status::OK();
        }
        return Fail("bad literal");
      case 'n':
        if (ConsumeWord("null")) {
          *out = Json();
          return Status::OK();
        }
        return Fail("bad literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(Json* out, int depth) {
    ++pos_;  // '{'
    *out = Json::Object();
    SkipWs();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key string");
      }
      std::string key;
      DASPOS_RETURN_IF_ERROR(ParseString(&key));
      SkipWs();
      if (!Consume(':')) return Fail("expected ':'");
      SkipWs();
      Json value;
      DASPOS_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      (*out)[key] = std::move(value);
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Fail("expected ',' or '}'");
    }
  }

  Status ParseArray(Json* out, int depth) {
    ++pos_;  // '['
    *out = Json::Array();
    SkipWs();
    if (Consume(']')) return Status::OK();
    for (;;) {
      SkipWs();
      Json value;
      DASPOS_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->push_back(std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Fail("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("bad escape");
        char e = text_[pos_++];
        switch (e) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Fail("bad \\u escape");
              }
            }
            // UTF-8 encode the BMP code point (surrogate pairs collapse to
            // the replacement character; outreach formats are ASCII-heavy).
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xc0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
            } else {
              out->push_back(static_cast<char>(0xe0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
            }
            break;
          }
          default:
            return Fail("bad escape character");
        }
      } else {
        out->push_back(c);
      }
    }
    return Fail("unterminated string");
  }

  Status ParseNumber(Json* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected value");
    auto parsed = ParseDouble(text_.substr(start, pos_ - start));
    if (!parsed.ok()) return Fail("bad number");
    *out = Json(*parsed);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(std::string_view text) {
  Parser parser(text);
  return parser.Parse();
}

}  // namespace daspos
