// JSON value model, parser, and writer.
//
// The Level-2 outreach formats in the paper's Table 1 are dominated by
// XML/JSON dialects (CMS "ig", ATLAS JiveXML); the common simplified format we
// implement (level2/) is JSON-based, as are archive metadata records.
// Object member order is preserved so emitted documents are deterministic —
// a preservation requirement (fixity over metadata).
#ifndef DASPOS_SERIALIZE_JSON_H_
#define DASPOS_SERIALIZE_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/result.h"

namespace daspos {

/// A JSON document node: null, bool, number (double), string, array, or
/// object. Objects keep insertion order.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double n) : type_(Type::kNumber), number_(n) {}
  Json(int n) : type_(Type::kNumber), number_(n) {}
  Json(unsigned int n) : type_(Type::kNumber), number_(n) {}
  Json(int64_t n) : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  Json(uint64_t n) : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(std::string_view s) : type_(Type::kString), string_(s) {}

  /// An empty array / empty object.
  static Json Array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; calling the wrong one returns a zero value.
  bool as_bool() const { return is_bool() ? bool_ : false; }
  double as_number() const { return is_number() ? number_ : 0.0; }
  int64_t as_int() const { return static_cast<int64_t>(as_number()); }
  const std::string& as_string() const {
    static const std::string kEmpty;
    return is_string() ? string_ : kEmpty;
  }

  /// Array access.
  size_t size() const;
  const Json& at(size_t index) const;
  void push_back(Json value);

  /// Object access. operator[] inserts a null member if missing (and converts
  /// a null node into an object); Get returns null for missing members.
  Json& operator[](std::string_view key);
  const Json& Get(std::string_view key) const;
  bool Has(std::string_view key) const;
  const std::vector<std::pair<std::string, Json>>& members() const {
    return object_;
  }
  const std::vector<Json>& items() const { return array_; }

  /// Serializes. indent < 0 -> compact single line; otherwise pretty with the
  /// given indent width.
  std::string Dump(int indent = -1) const;

  /// Parses a JSON document; fails with InvalidArgument on malformed input.
  static Result<Json> Parse(std::string_view text);

  bool operator==(const Json& other) const;

 private:
  void DumpTo(std::string& out, int indent, int depth) const;
  /// Approximate compact serialized size, used to pre-reserve Dump output.
  size_t DumpSizeHint() const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace daspos

#endif  // DASPOS_SERIALIZE_JSON_H_
