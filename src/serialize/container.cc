#include "serialize/container.h"

#include <cassert>

#include "serialize/binary.h"
#include "support/sha256.h"

namespace daspos {

namespace {
constexpr char kHeaderMagic[] = "DSPC";
constexpr char kFooterMagic[] = "DSPE";
constexpr size_t kMagicLen = 4;

/// LEB128 varint straight into `out` — record framing without a temporary
/// BinaryWriter per record.
void AppendVarint(std::string& out, uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

}  // namespace

ContainerWriter::ContainerWriter(const Json& metadata) {
  BinaryWriter w;
  w.PutRaw(std::string_view(kHeaderMagic, kMagicLen));
  w.PutU32(kContainerVersion);
  w.PutString(metadata.Dump());
  buffer_ = w.TakeBuffer();
}

void ContainerWriter::AddRecord(std::string_view record) {
  assert(!finished_);
  AppendVarint(buffer_, record.size());
  buffer_.append(record.data(), record.size());
  ++record_count_;
}

void ContainerWriter::AppendEncodedRecords(std::string_view encoded,
                                           size_t count) {
  assert(!finished_);
  buffer_.append(encoded.data(), encoded.size());
  record_count_ += count;
}

void ContainerWriter::Reserve(size_t payload_bytes) {
  buffer_.reserve(buffer_.size() + payload_bytes);
}

std::string ContainerWriter::Finish() {
  assert(!finished_);
  finished_ = true;
  Sha256 hasher;
  hasher.Update(buffer_);
  auto digest = hasher.Digest();

  BinaryWriter w;
  w.PutRaw(std::string_view(kFooterMagic, kMagicLen));
  w.PutU64(record_count_);
  w.PutRaw(std::string_view(reinterpret_cast<const char*>(digest.data()),
                            digest.size()));
  buffer_ += w.buffer();
  return std::move(buffer_);
}

Result<ContainerReader> ContainerReader::Open(std::string_view data) {
  return OpenImpl(data, /*verify=*/true);
}

Result<ContainerReader> ContainerReader::OpenUnverified(std::string_view data) {
  return OpenImpl(data, /*verify=*/false);
}

Result<ContainerReader> ContainerReader::OpenImpl(std::string_view data,
                                                  bool verify) {
  constexpr size_t kFooterSize = kMagicLen + 8 + Sha256::kDigestSize;
  if (data.size() < kMagicLen + 4 + kFooterSize) {
    return Status::Corruption("container too small");
  }
  if (data.substr(0, kMagicLen) != std::string_view(kHeaderMagic, kMagicLen)) {
    return Status::Corruption("bad container magic");
  }
  std::string_view footer = data.substr(data.size() - kFooterSize);
  if (footer.substr(0, kMagicLen) != std::string_view(kFooterMagic, kMagicLen)) {
    return Status::Corruption("bad container footer magic (truncated file?)");
  }

  BinaryReader footer_reader(footer.substr(kMagicLen));
  DASPOS_ASSIGN_OR_RETURN(uint64_t record_count, footer_reader.GetU64());
  DASPOS_ASSIGN_OR_RETURN(std::string stored_hash,
                          footer_reader.GetRaw(Sha256::kDigestSize));

  std::string_view body = data.substr(0, data.size() - kFooterSize);
  if (verify) {
    Sha256 hasher;
    hasher.Update(body);
    auto digest = hasher.Digest();
    if (std::string_view(reinterpret_cast<const char*>(digest.data()),
                         digest.size()) != stored_hash) {
      return Status::Corruption("container fixity hash mismatch");
    }
  }

  ContainerReader reader;
  reader.record_count_ = record_count;

  BinaryReader r(body.substr(kMagicLen));
  DASPOS_ASSIGN_OR_RETURN(uint32_t version, r.GetU32());
  if (version != kContainerVersion) {
    return Status::Corruption("unsupported container version " +
                              std::to_string(version));
  }
  DASPOS_ASSIGN_OR_RETURN(std::string metadata_text, r.GetString());
  DASPOS_ASSIGN_OR_RETURN(reader.metadata_, Json::Parse(metadata_text));

  // Record region: offsets are relative to `body` after the header fields.
  size_t base = kMagicLen + r.position();
  std::string_view record_region = body.substr(base);
  // Allocation guard: each record costs at least one length byte, so a
  // count beyond the region size is corruption (matters for the
  // unverified salvage path, where the footer is not trusted).
  if (record_count > record_region.size()) {
    return Status::Corruption("record count exceeds container body");
  }
  BinaryReader rr(record_region);
  reader.records_.reserve(static_cast<size_t>(record_count));
  while (!rr.AtEnd()) {
    DASPOS_ASSIGN_OR_RETURN(uint64_t len, rr.GetVarint());
    size_t offset = rr.position();
    if (rr.remaining() < len) {
      return Status::Corruption("record extends past container body");
    }
    reader.records_.push_back(record_region.substr(offset, len));
    DASPOS_RETURN_IF_ERROR(rr.Skip(static_cast<size_t>(len)));
  }
  if (reader.records_.size() != record_count) {
    return Status::Corruption("record count mismatch: footer says " +
                              std::to_string(record_count) + ", found " +
                              std::to_string(reader.records_.size()));
  }
  return reader;
}

}  // namespace daspos
