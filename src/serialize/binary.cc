#include "serialize/binary.h"

#include <cstring>

namespace daspos {

void BinaryWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void BinaryWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void BinaryWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    PutU8(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  PutU8(static_cast<uint8_t>(v));
}

void BinaryWriter::PutSVarint(int64_t v) {
  uint64_t zz = (static_cast<uint64_t>(v) << 1) ^
                static_cast<uint64_t>(v >> 63);
  PutVarint(zz);
}

void BinaryWriter::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void BinaryWriter::PutString(std::string_view s) {
  PutVarint(s.size());
  PutRaw(s);
}

void BinaryWriter::PutRaw(std::string_view bytes) {
  buffer_.append(bytes.data(), bytes.size());
}

Result<uint8_t> BinaryReader::GetU8() {
  if (pos_ >= data_.size()) return Status::Corruption("truncated: u8");
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> BinaryReader::GetU32() {
  if (remaining() < 4) return Status::Corruption("truncated: u32");
  uint32_t v = 0;
  for (size_t i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> BinaryReader::GetU64() {
  if (remaining() < 8) return Status::Corruption("truncated: u64");
  uint64_t v = 0;
  for (size_t i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<uint64_t> BinaryReader::GetVarint() {
  uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (pos_ >= data_.size()) return Status::Corruption("truncated: varint");
    uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    if (shift == 63 && (byte & 0x7e) != 0) {
      return Status::Corruption("varint overflow");
    }
    if (shift > 63) return Status::Corruption("varint too long");
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
}

Result<int64_t> BinaryReader::GetSVarint() {
  DASPOS_ASSIGN_OR_RETURN(uint64_t zz, GetVarint());
  return static_cast<int64_t>((zz >> 1) ^ (~(zz & 1) + 1));
}

Result<double> BinaryReader::GetDouble() {
  DASPOS_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> BinaryReader::GetString() {
  DASPOS_ASSIGN_OR_RETURN(uint64_t len, GetVarint());
  return GetRaw(static_cast<size_t>(len));
}

Result<std::string> BinaryReader::GetRaw(size_t n) {
  if (remaining() < n) return Status::Corruption("truncated: raw bytes");
  std::string out(data_.substr(pos_, n));
  pos_ += n;
  return out;
}

Status BinaryReader::Skip(size_t n) {
  if (remaining() < n) return Status::Corruption("truncated: skip");
  pos_ += n;
  return Status::OK();
}

}  // namespace daspos
