// Self-describing record container — the on-disk format for every data tier.
//
// The paper stresses that preserved formats must be self-documenting
// (Table 1 row "self-documenting?"; §3.2 provenance discussion). A container
// therefore embeds a JSON metadata document (schema name + version, producer,
// parent files) ahead of the payload records, and ends with a footer that
// carries the record count and a SHA-256 of everything before it, so fixity
// is verifiable without external information.
//
// Layout:
//   "DSPC" | u32 container_version | metadata json (len-prefixed)
//   repeated: varint record_len | record bytes
//   "DSPE" | u64 record_count | 32-byte sha256 of all preceding bytes
#ifndef DASPOS_SERIALIZE_CONTAINER_H_
#define DASPOS_SERIALIZE_CONTAINER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "serialize/json.h"
#include "support/result.h"

namespace daspos {

/// Current container layout version.
inline constexpr uint32_t kContainerVersion = 1;

/// Builds a container in memory.
class ContainerWriter {
 public:
  /// `metadata` should carry at least "schema" and "schema_version"; callers
  /// add producer / parentage fields (see workflow/provenance.h).
  explicit ContainerWriter(const Json& metadata);

  /// Appends one opaque record.
  void AddRecord(std::string_view record);

  /// Appends `count` pre-framed records in one splice. `encoded` must be
  /// exactly the bytes AddRecord would have produced for those records
  /// (varint length + payload each) — this is how parallel producers merge
  /// per-chunk record buffers without re-framing.
  void AppendEncodedRecords(std::string_view encoded, size_t count);

  /// Pre-allocates room for about `payload_bytes` of upcoming records.
  void Reserve(size_t payload_bytes);

  size_t record_count() const { return record_count_; }

  /// Seals the container (writes the footer) and returns the bytes.
  /// The writer must not be reused afterwards.
  std::string Finish();

 private:
  std::string buffer_;
  size_t record_count_ = 0;
  bool finished_ = false;
};

/// Reads a container; validates magic, version, footer, and fixity hash on
/// open, so any truncation or bit-rot is caught before records are consumed.
class ContainerReader {
 public:
  /// Parses and verifies `data` (which must outlive the reader).
  static Result<ContainerReader> Open(std::string_view data);

  /// Opens without verifying the fixity hash (for salvage tooling).
  static Result<ContainerReader> OpenUnverified(std::string_view data);

  const Json& metadata() const { return metadata_; }
  uint64_t record_count() const { return record_count_; }

  /// Record payloads, in order. Views into the underlying data.
  const std::vector<std::string_view>& records() const { return records_; }

 private:
  ContainerReader() = default;
  static Result<ContainerReader> OpenImpl(std::string_view data, bool verify);

  Json metadata_;
  uint64_t record_count_ = 0;
  std::vector<std::string_view> records_;
};

}  // namespace daspos

#endif  // DASPOS_SERIALIZE_CONTAINER_H_
