// Binary encoding primitives: varints, zigzag integers, fixed-width doubles,
// and length-prefixed strings, over an in-memory buffer. All multi-byte fixed
// values are little-endian; encodings are platform-independent so preserved
// files decode identically decades later.
#ifndef DASPOS_SERIALIZE_BINARY_H_
#define DASPOS_SERIALIZE_BINARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/result.h"

namespace daspos {

/// Appends encoded values to an owned byte buffer.
class BinaryWriter {
 public:
  void PutU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  /// LEB128-style varint.
  void PutVarint(uint64_t v);
  /// Zigzag-mapped signed varint.
  void PutSVarint(int64_t v);
  /// IEEE-754 double, 8 bytes little-endian.
  void PutDouble(double v);
  /// Varint length followed by raw bytes.
  void PutString(std::string_view s);
  /// Raw bytes, no length prefix.
  void PutRaw(std::string_view bytes);

  /// Pre-allocates room for about `upcoming_bytes` more output — size it
  /// from input counts (records * typical size) to avoid regrowth copies.
  void Reserve(size_t upcoming_bytes) {
    buffer_.reserve(buffer_.size() + upcoming_bytes);
  }

  const std::string& buffer() const { return buffer_; }
  std::string TakeBuffer() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

/// Decodes values from a byte range. All getters fail with Corruption on
/// truncated or malformed input instead of reading past the end.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<uint64_t> GetVarint();
  Result<int64_t> GetSVarint();
  Result<double> GetDouble();
  Result<std::string> GetString();
  /// Reads exactly `n` raw bytes.
  Result<std::string> GetRaw(size_t n);
  /// Advances past `n` bytes without copying.
  Status Skip(size_t n);

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t position() const { return pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace daspos

#endif  // DASPOS_SERIALIZE_BINARY_H_
