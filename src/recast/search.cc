#include "recast/search.h"

#include "event/fourvector.h"

namespace daspos {
namespace recast {

namespace {

/// Highest-mass opposite-charge dimuon pair, or -1 if none.
double BestDimuonMass(const AodEvent& event, double min_pt) {
  const PhysicsObject* best_plus = nullptr;
  const PhysicsObject* best_minus = nullptr;
  for (const PhysicsObject& obj : event.objects) {
    if (obj.type != ObjectType::kMuon) continue;
    if (obj.momentum.Pt() < min_pt) continue;
    if (obj.charge > 0) {
      if (best_plus == nullptr ||
          obj.momentum.Pt() > best_plus->momentum.Pt()) {
        best_plus = &obj;
      }
    } else if (obj.charge < 0) {
      if (best_minus == nullptr ||
          obj.momentum.Pt() > best_minus->momentum.Pt()) {
        best_minus = &obj;
      }
    }
  }
  if (best_plus == nullptr || best_minus == nullptr) return -1.0;
  return InvariantMass(best_plus->momentum, best_minus->momentum);
}

}  // namespace

PreservedSearch DileptonResonanceSearch() {
  PreservedSearch search;
  search.name = "DASPOS_EXO_14_001";
  search.description =
      "search for a heavy neutral resonance in the dimuon channel";
  search.luminosity_pb = 20000.0;  // ~ LHC Run-1 dataset

  search.sim_config = SimulationConfig{};
  search.sim_config.seed = 20140001;
  search.sim_config.noise_cells_mean = 20.0;

  // Published counts: toy values consistent with no excess over a small
  // Drell-Yan tail background.
  SignalRegion sr_low;
  sr_low.name = "SR_mll_400";
  sr_low.description = "dimuon mass in [400, 800) GeV";
  sr_low.observed = 24.0;
  sr_low.background = 22.5;
  sr_low.selection = [](const AodEvent& event) {
    double mass = BestDimuonMass(event, 25.0);
    return mass >= 400.0 && mass < 800.0;
  };
  search.regions.push_back(sr_low);

  SignalRegion sr_high;
  sr_high.name = "SR_mll_800";
  sr_high.description = "dimuon mass >= 800 GeV";
  sr_high.observed = 3.0;
  sr_high.background = 2.4;
  sr_high.selection = [](const AodEvent& event) {
    return BestDimuonMass(event, 25.0) >= 800.0;
  };
  search.regions.push_back(sr_high);
  return search;
}

}  // namespace recast
}  // namespace daspos
