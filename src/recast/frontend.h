// The RECAST front end: "a 'front end' interface to the outside world where
// those interested in re-using an analysis can submit requests ... The
// RECAST API would mediate between the user interface and various
// capabilities provided by the 'back end' ... the results, if approved, are
// returned to the user" (§2.3).
#ifndef DASPOS_RECAST_FRONTEND_H_
#define DASPOS_RECAST_FRONTEND_H_

#include <map>
#include <string>
#include <vector>

#include "recast/backend.h"
#include "recast/request.h"
#include "support/result.h"

namespace daspos {
namespace recast {

class RecastFrontEnd {
 public:
  /// The front end mediates to one back end (not owned).
  explicit RecastFrontEnd(BackEnd* backend) : backend_(backend) {}

  /// Outside users submit here. Validates the target search exists; returns
  /// the request id ("REQ-1", ...).
  Result<std::string> Submit(RecastRequest request);

  /// Public catalog of re-runnable analyses (names only — the content is
  /// the experiment's).
  std::vector<std::string> Catalog() const { return backend_->SearchNames(); }

  Result<RequestState> GetState(const std::string& request_id) const;

  /// Experiment-side: runs the back end on every queued request.
  /// Failed requests become kRejected with the failure as the reason.
  Status ProcessQueue();

  /// Experiment-side gate: release or withhold a processed result.
  Status Approve(const std::string& request_id);
  Status Reject(const std::string& request_id, const std::string& reason);

  /// User-side: only approved results are released; otherwise
  /// PermissionDenied (pending/rejected) or NotFound.
  Result<RecastResult> GetResult(const std::string& request_id) const;
  Result<std::string> GetRejectionReason(const std::string& request_id) const;

  /// Request ids in submission order.
  std::vector<std::string> RequestIds() const { return order_; }

 private:
  struct Entry {
    RecastRequest request;
    RequestState state = RequestState::kQueued;
    RecastResult result;
    std::string rejection_reason;
  };

  BackEnd* backend_;
  std::map<std::string, Entry> entries_;
  std::vector<std::string> order_;
  uint64_t next_id_ = 1;
};

}  // namespace recast
}  // namespace daspos

#endif  // DASPOS_RECAST_FRONTEND_H_
