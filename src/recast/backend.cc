#include "recast/backend.h"

#include "mc/generator.h"
#include "reco/reconstruction.h"
#include "stats/limits.h"
#include "tiers/dataset.h"
#include "workflow/steps.h"

namespace daspos {
namespace recast {

Status RecastBackEnd::RegisterSearch(PreservedSearch search) {
  if (search.name.empty()) {
    return Status::InvalidArgument("search needs a name");
  }
  if (search.regions.empty()) {
    return Status::InvalidArgument("search '" + search.name +
                                   "' has no signal regions");
  }
  auto [it, inserted] = searches_.emplace(search.name, std::move(search));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("search already registered");
  }
  return Status::OK();
}

std::vector<std::string> RecastBackEnd::SearchNames() const {
  std::vector<std::string> out;
  out.reserve(searches_.size());
  for (const auto& [name, search] : searches_) {
    (void)search;
    out.push_back(name);
  }
  return out;
}

Result<RecastResult> RecastBackEnd::Process(const RecastRequest& request) {
  auto it = searches_.find(request.search_name);
  if (it == searches_.end()) {
    return Status::NotFound("no preserved search '" + request.search_name +
                            "'");
  }
  if (request.model_cross_section_pb <= 0.0) {
    return Status::InvalidArgument(
        "request must state the model cross section");
  }
  if (request.event_count == 0) {
    return Status::InvalidArgument("request must ask for at least one event");
  }
  const PreservedSearch& search = it->second;

  DASPOS_ASSIGN_OR_RETURN(GeneratorConfig model,
                          GeneratorConfigFromJson(request.model));

  // The encapsulated full chain, exactly as preserved.
  EventGenerator generator(model);
  DetectorSimulation simulation(search.sim_config);
  ReconstructionConfig reco_config;
  reco_config.geometry = search.sim_config.geometry;
  reco_config.calib = search.sim_config.calib;
  Reconstructor reconstructor(reco_config);

  std::vector<uint64_t> passed(search.regions.size(), 0);
  for (size_t i = 0; i < request.event_count; ++i) {
    GenEvent truth = generator.Generate();
    RawEvent raw = simulation.Simulate(truth, /*run_number=*/1);
    AodEvent aod = AodEvent::FromReco(reconstructor.Reconstruct(raw));
    for (size_t r = 0; r < search.regions.size(); ++r) {
      if (search.regions[r].selection(aod)) ++passed[r];
    }
  }
  events_simulated_ += request.event_count;

  RecastResult result;
  result.search_name = search.name;
  result.events_processed = request.event_count;
  for (size_t r = 0; r < search.regions.size(); ++r) {
    const SignalRegion& region = search.regions[r];
    RegionResult region_result;
    region_result.region = region.name;
    region_result.efficiency = static_cast<double>(passed[r]) /
                               static_cast<double>(request.event_count);
    region_result.signal_per_mu = region_result.efficiency *
                                  request.model_cross_section_pb *
                                  search.luminosity_pb;
    region_result.observed = region.observed;
    region_result.background = region.background;
    if (region_result.signal_per_mu > 0.0) {
      CountingExperiment experiment;
      experiment.observed = region.observed;
      experiment.background = region.background;
      experiment.signal_per_mu = region_result.signal_per_mu;
      DASPOS_ASSIGN_OR_RETURN(region_result.upper_limit_mu,
                              UpperLimit(experiment));
      DASPOS_ASSIGN_OR_RETURN(region_result.expected_limit_mu,
                              ExpectedLimit(experiment));
    }
    result.regions.push_back(std::move(region_result));
  }
  return result;
}

Result<std::vector<RecastBackEnd::DatasetCounts>>
RecastBackEnd::ProcessDataset(const std::string& search_name,
                              std::string_view aod_blob) const {
  auto it = searches_.find(search_name);
  if (it == searches_.end()) {
    return Status::NotFound("no preserved search '" + search_name + "'");
  }
  const PreservedSearch& search = it->second;
  DASPOS_ASSIGN_OR_RETURN(std::vector<AodEvent> events,
                          ReadAodDataset(aod_blob));
  std::vector<DatasetCounts> out;
  out.reserve(search.regions.size());
  for (const SignalRegion& region : search.regions) {
    DatasetCounts counts;
    counts.region = region.name;
    counts.preserved_observed = region.observed;
    counts.preserved_background = region.background;
    for (const AodEvent& event : events) {
      if (region.selection(event)) ++counts.passed;
    }
    out.push_back(std::move(counts));
  }
  return out;
}

}  // namespace recast
}  // namespace daspos
