#include "recast/request.h"

namespace daspos {
namespace recast {

double RecastResult::BestUpperLimit() const {
  double best = 1e300;
  for (const RegionResult& region : regions) {
    if (region.upper_limit_mu > 0.0 && region.upper_limit_mu < best) {
      best = region.upper_limit_mu;
    }
  }
  return regions.empty() ? 0.0 : best;
}

Json RecastResult::ToJson() const {
  Json json = Json::Object();
  json["search"] = search_name;
  json["events_processed"] = events_processed;
  Json region_list = Json::Array();
  for (const RegionResult& region : regions) {
    Json entry = Json::Object();
    entry["region"] = region.region;
    entry["efficiency"] = region.efficiency;
    entry["signal_per_mu"] = region.signal_per_mu;
    entry["observed"] = region.observed;
    entry["background"] = region.background;
    entry["upper_limit_mu"] = region.upper_limit_mu;
    entry["expected_limit_mu"] = region.expected_limit_mu;
    region_list.push_back(std::move(entry));
  }
  json["regions"] = std::move(region_list);
  json["excluded_at_nominal"] = Excluded();
  return json;
}

Json RecastRequest::ToJson() const {
  Json json = Json::Object();
  json["api"] = "daspos-recast-v1";
  json["search"] = search_name;
  json["requester"] = requester;
  json["model"] = model;
  json["model_cross_section_pb"] = model_cross_section_pb;
  json["event_count"] = static_cast<uint64_t>(event_count);
  return json;
}

Result<RecastRequest> RecastRequest::FromJson(const Json& json) {
  if (!json.is_object() ||
      json.Get("api").as_string() != "daspos-recast-v1") {
    return Status::InvalidArgument("not a daspos-recast-v1 request");
  }
  RecastRequest request;
  request.search_name = json.Get("search").as_string();
  request.requester = json.Get("requester").as_string();
  request.model = json.Get("model");
  request.model_cross_section_pb =
      json.Get("model_cross_section_pb").as_number();
  request.event_count =
      static_cast<size_t>(json.Get("event_count").as_int());
  if (request.search_name.empty()) {
    return Status::InvalidArgument("request JSON missing 'search'");
  }
  return request;
}

Result<RecastResult> RecastResult::FromJson(const Json& json) {
  if (!json.is_object() || !json.Has("regions")) {
    return Status::InvalidArgument("not a recast result document");
  }
  RecastResult result;
  result.search_name = json.Get("search").as_string();
  result.events_processed =
      static_cast<uint64_t>(json.Get("events_processed").as_int());
  const Json& regions = json.Get("regions");
  for (size_t i = 0; i < regions.size(); ++i) {
    const Json& entry = regions.at(i);
    RegionResult region;
    region.region = entry.Get("region").as_string();
    region.efficiency = entry.Get("efficiency").as_number();
    region.signal_per_mu = entry.Get("signal_per_mu").as_number();
    region.observed = entry.Get("observed").as_number();
    region.background = entry.Get("background").as_number();
    region.upper_limit_mu = entry.Get("upper_limit_mu").as_number();
    region.expected_limit_mu = entry.Get("expected_limit_mu").as_number();
    result.regions.push_back(std::move(region));
  }
  return result;
}

std::string_view RequestStateName(RequestState state) {
  switch (state) {
    case RequestState::kQueued:
      return "queued";
    case RequestState::kProcessed:
      return "processed";
    case RequestState::kApproved:
      return "approved";
    case RequestState::kRejected:
      return "rejected";
  }
  return "?";
}

}  // namespace recast
}  // namespace daspos
