#include "recast/frontend.h"

namespace daspos {
namespace recast {

Result<std::string> RecastFrontEnd::Submit(RecastRequest request) {
  bool known = false;
  for (const std::string& name : backend_->SearchNames()) {
    if (name == request.search_name) known = true;
  }
  if (!known) {
    return Status::NotFound("no analysis '" + request.search_name +
                            "' in the catalog");
  }
  if (request.requester.empty()) {
    return Status::InvalidArgument("request must identify the requester");
  }
  std::string id = "REQ-" + std::to_string(next_id_++);
  Entry entry;
  entry.request = std::move(request);
  entries_.emplace(id, std::move(entry));
  order_.push_back(id);
  return id;
}

Result<RequestState> RecastFrontEnd::GetState(
    const std::string& request_id) const {
  auto it = entries_.find(request_id);
  if (it == entries_.end()) {
    return Status::NotFound("unknown request " + request_id);
  }
  return it->second.state;
}

Status RecastFrontEnd::ProcessQueue() {
  for (auto& [id, entry] : entries_) {
    (void)id;
    if (entry.state != RequestState::kQueued) continue;
    auto result = backend_->Process(entry.request);
    if (result.ok()) {
      entry.result = std::move(result).value();
      entry.state = RequestState::kProcessed;
    } else {
      entry.state = RequestState::kRejected;
      entry.rejection_reason =
          "processing failed: " + result.status().ToString();
    }
  }
  return Status::OK();
}

Status RecastFrontEnd::Approve(const std::string& request_id) {
  auto it = entries_.find(request_id);
  if (it == entries_.end()) {
    return Status::NotFound("unknown request " + request_id);
  }
  if (it->second.state != RequestState::kProcessed) {
    return Status::FailedPrecondition(
        "request " + request_id + " is " +
        std::string(RequestStateName(it->second.state)) +
        ", only processed requests can be approved");
  }
  it->second.state = RequestState::kApproved;
  return Status::OK();
}

Status RecastFrontEnd::Reject(const std::string& request_id,
                              const std::string& reason) {
  auto it = entries_.find(request_id);
  if (it == entries_.end()) {
    return Status::NotFound("unknown request " + request_id);
  }
  if (it->second.state == RequestState::kApproved) {
    return Status::FailedPrecondition("request already approved/released");
  }
  it->second.state = RequestState::kRejected;
  it->second.rejection_reason = reason;
  return Status::OK();
}

Result<RecastResult> RecastFrontEnd::GetResult(
    const std::string& request_id) const {
  auto it = entries_.find(request_id);
  if (it == entries_.end()) {
    return Status::NotFound("unknown request " + request_id);
  }
  switch (it->second.state) {
    case RequestState::kApproved:
      return it->second.result;
    case RequestState::kRejected:
      return Status::PermissionDenied("request was rejected: " +
                                      it->second.rejection_reason);
    default:
      return Status::PermissionDenied(
          "result not released (state: " +
          std::string(RequestStateName(it->second.state)) + ")");
  }
}

Result<std::string> RecastFrontEnd::GetRejectionReason(
    const std::string& request_id) const {
  auto it = entries_.find(request_id);
  if (it == entries_.end()) {
    return Status::NotFound("unknown request " + request_id);
  }
  if (it->second.state != RequestState::kRejected) {
    return Status::FailedPrecondition("request was not rejected");
  }
  return it->second.rejection_reason;
}

}  // namespace recast
}  // namespace daspos
