// The closed RECAST back end: holds the preserved searches and runs the
// full experiment chain (generation of the requested model -> detector
// simulation -> reconstruction -> detector-level selection -> limit).
// "None of this code base [is] exposed to the outside world, leaving the
// experiment in complete control" (§2.4) — callers see RecastResult only.
#ifndef DASPOS_RECAST_BACKEND_H_
#define DASPOS_RECAST_BACKEND_H_

#include <map>
#include <string>
#include <vector>

#include "recast/request.h"
#include "recast/search.h"
#include "support/result.h"

namespace daspos {
namespace recast {

/// Interface so alternative back ends (e.g. the core/ RIVET bridge) can
/// serve the same front end.
class BackEnd {
 public:
  virtual ~BackEnd() = default;
  virtual Result<RecastResult> Process(const RecastRequest& request) = 0;
  virtual std::vector<std::string> SearchNames() const = 0;
};

/// The full-simulation back end.
class RecastBackEnd : public BackEnd {
 public:
  /// Installs a preserved search; fails on duplicate names.
  Status RegisterSearch(PreservedSearch search);

  std::vector<std::string> SearchNames() const override;

  /// Runs the preserved chain for the requested model. Costs real CPU —
  /// the E3 bench contrasts this with the truth-level bridge.
  Result<RecastResult> Process(const RecastRequest& request) override;

  /// Total events pushed through the full chain so far (cost accounting).
  uint64_t events_simulated() const { return events_simulated_; }

  /// §2.4 extension: "it would also be possible with some re-configuration
  /// to re-run the analysis on different or new data." Applies the
  /// preserved signal-region selections to a supplied AOD dataset and
  /// returns the per-region observed counts — re-deriving the "observed"
  /// column from new data while background expectations stay preserved.
  struct DatasetCounts {
    std::string region;
    uint64_t passed = 0;
    double preserved_observed = 0.0;
    double preserved_background = 0.0;
  };
  Result<std::vector<DatasetCounts>> ProcessDataset(
      const std::string& search_name, std::string_view aod_blob) const;

 private:
  std::map<std::string, PreservedSearch> searches_;
  uint64_t events_simulated_ = 0;
};

}  // namespace recast
}  // namespace daspos

#endif  // DASPOS_RECAST_BACKEND_H_
