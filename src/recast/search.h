// A preserved experimental search: the full ingredients RECAST encapsulates
// — detector simulation configuration, reconstruction calibration, the
// detector-level signal-region selections, and the observed/background
// counts of the publication (§2.3/§2.4: "the full code base and
// executables from the experiment are encapsulated in the RECAST back end").
#ifndef DASPOS_RECAST_SEARCH_H_
#define DASPOS_RECAST_SEARCH_H_

#include <functional>
#include <string>
#include <vector>

#include "detsim/simulation.h"
#include "event/aod.h"

namespace daspos {
namespace recast {

/// One signal region of a search.
struct SignalRegion {
  std::string name;
  std::string description;
  /// Full detector-level event selection.
  std::function<bool(const AodEvent&)> selection;
  /// Published observed event count in this region.
  double observed = 0.0;
  /// Published expected background.
  double background = 0.0;
};

/// One preserved search.
struct PreservedSearch {
  std::string name;
  std::string description;
  /// Integrated luminosity of the published dataset, in pb^-1.
  double luminosity_pb = 0.0;
  /// The experiment's detector + calibration, frozen at publication time.
  SimulationConfig sim_config;
  std::vector<SignalRegion> regions;
};

/// The dilepton-resonance search shipped with this repository (the E3/
/// reinterpretation target): two opposite-charge muons, pT > 25 GeV, with
/// high dilepton mass regions.
PreservedSearch DileptonResonanceSearch();

}  // namespace recast
}  // namespace daspos

#endif  // DASPOS_RECAST_SEARCH_H_
