// The RECAST request/response vocabulary exchanged across the front-end
// API: a theorist submits a new-physics model against a named preserved
// search; the experiment's back end returns (after approval) the
// reinterpretation result. No experiment internals cross this boundary.
#ifndef DASPOS_RECAST_REQUEST_H_
#define DASPOS_RECAST_REQUEST_H_

#include <string>
#include <vector>

#include "serialize/json.h"

namespace daspos {
namespace recast {

/// What the outside user submits.
struct RecastRequest {
  /// Name of the preserved search to re-run.
  std::string search_name;
  /// Who asks (for the experiment's approval decision).
  std::string requester;
  /// Generator configuration of the new model (workflow/steps.h JSON form).
  Json model;
  /// Production cross section of the model, pb (theorist-provided).
  double model_cross_section_pb = 0.0;
  /// Monte-Carlo statistics to run.
  size_t event_count = 2000;

  /// Wire format for the front-end API (§2.3: "The RECAST API would
  /// mediate between the user interface and ... the back end").
  Json ToJson() const;
  static Result<RecastRequest> FromJson(const Json& json);
};

/// Reinterpretation outcome for one signal region.
struct RegionResult {
  std::string region;
  double efficiency = 0.0;        // selection efficiency for the model
  double signal_per_mu = 0.0;     // expected signal events at mu = 1
  double observed = 0.0;
  double background = 0.0;
  double upper_limit_mu = 0.0;    // 95% upper limit on signal strength
  /// Median limit expected if exactly the background were observed — the
  /// reference curve of every limit plot.
  double expected_limit_mu = 0.0;
};

/// Full response (only released after experiment approval).
struct RecastResult {
  std::string search_name;
  std::vector<RegionResult> regions;
  uint64_t events_processed = 0;

  /// Best (smallest) upper limit across regions.
  double BestUpperLimit() const;
  /// True if the model at nominal cross section (mu = 1) is excluded.
  bool Excluded() const { return BestUpperLimit() < 1.0; }

  Json ToJson() const;
  static Result<RecastResult> FromJson(const Json& json);
};

/// Lifecycle of a submitted request.
enum class RequestState {
  kQueued,
  kProcessed,   // back end done, awaiting experiment approval
  kApproved,    // result released
  kRejected,
};

std::string_view RequestStateName(RequestState state);

}  // namespace recast
}  // namespace daspos

#endif  // DASPOS_RECAST_REQUEST_H_
