// Model-grid scans: the "acceptance/efficiency grids in mass parameter
// spaces" of §2.3. A grid of (mass, relative width) points is pushed
// through a RECAST back end; the output is a pair of 2D histograms
// (efficiency and 95% upper limit) ready for HepData-style publication or
// YODA-document preservation.
#ifndef DASPOS_RECAST_SCAN_H_
#define DASPOS_RECAST_SCAN_H_

#include <string>

#include "hist/histo2d.h"
#include "recast/backend.h"
#include "support/result.h"

namespace daspos {
namespace recast {

struct GridScanConfig {
  /// Mass axis (uniform grid; points are bin centers).
  double mass_lo = 500.0;
  double mass_hi = 1500.0;
  int mass_points = 5;
  /// Relative-width axis (width = frac * mass).
  double width_frac_lo = 0.01;
  double width_frac_hi = 0.10;
  int width_points = 3;
  /// Model cross section assumed at every point, pb.
  double cross_section_pb = 0.05;
  size_t events_per_point = 200;
  /// Signal region whose efficiency/limit is gridded.
  std::string region;
  /// Lepton flavour of the scanned Z' decays.
  int lepton_flavor = 13;
  uint64_t seed = 1;
};

struct GridScanOutput {
  Histo2D efficiency;   // x = mass, y = width fraction
  Histo2D upper_limit;  // 95% CL mu upper limit
  uint64_t events_processed = 0;
};

/// Scans the Z' model plane against `search_name` on `backend`.
Result<GridScanOutput> ScanZPrimeGrid(BackEnd* backend,
                                      const std::string& search_name,
                                      const GridScanConfig& config);

}  // namespace recast
}  // namespace daspos

#endif  // DASPOS_RECAST_SCAN_H_
