#include "recast/scan.h"

#include "mc/generator.h"
#include "workflow/steps.h"

namespace daspos {
namespace recast {

Result<GridScanOutput> ScanZPrimeGrid(BackEnd* backend,
                                      const std::string& search_name,
                                      const GridScanConfig& config) {
  if (config.mass_points < 1 || config.width_points < 1) {
    return Status::InvalidArgument("grid needs at least one point per axis");
  }
  if (config.region.empty()) {
    return Status::InvalidArgument("grid scan needs a target region");
  }
  if (config.mass_hi <= config.mass_lo ||
      config.width_frac_hi < config.width_frac_lo) {
    return Status::InvalidArgument("bad grid axis bounds");
  }

  double mass_step =
      (config.mass_hi - config.mass_lo) / config.mass_points;
  double width_step =
      config.width_points > 1
          ? (config.width_frac_hi - config.width_frac_lo) /
                config.width_points
          : 1.0;

  GridScanOutput output;
  output.efficiency =
      Histo2D("/recast/" + search_name + "/" + config.region + "/efficiency",
              config.mass_points, config.mass_lo, config.mass_hi,
              config.width_points, config.width_frac_lo,
              config.width_points > 1 ? config.width_frac_hi
                                      : config.width_frac_lo + width_step);
  output.upper_limit =
      Histo2D("/recast/" + search_name + "/" + config.region + "/mu95",
              config.mass_points, config.mass_lo, config.mass_hi,
              config.width_points, config.width_frac_lo,
              config.width_points > 1 ? config.width_frac_hi
                                      : config.width_frac_lo + width_step);

  for (int im = 0; im < config.mass_points; ++im) {
    double mass = config.mass_lo + (im + 0.5) * mass_step;
    for (int iw = 0; iw < config.width_points; ++iw) {
      double width_frac = config.width_frac_lo + (iw + 0.5) * width_step;
      GeneratorConfig model;
      model.process = Process::kZPrimeToLL;
      model.zprime_mass = mass;
      model.zprime_width = width_frac * mass;
      model.lepton_flavor = config.lepton_flavor;
      model.seed = config.seed + static_cast<uint64_t>(im) * 1000 +
                   static_cast<uint64_t>(iw);

      RecastRequest request;
      request.search_name = search_name;
      request.requester = "grid-scan";
      request.model = GeneratorConfigToJson(model);
      request.model_cross_section_pb = config.cross_section_pb;
      request.event_count = config.events_per_point;

      DASPOS_ASSIGN_OR_RETURN(RecastResult result,
                              backend->Process(request));
      output.events_processed += result.events_processed;
      const RegionResult* region = nullptr;
      for (const RegionResult& candidate : result.regions) {
        if (candidate.region == config.region) region = &candidate;
      }
      if (region == nullptr) {
        return Status::NotFound("search has no region '" + config.region +
                                "'");
      }
      output.efficiency.SetBin(im, iw, region->efficiency, 0.0);
      output.upper_limit.SetBin(im, iw, region->upper_limit_mu, 0.0);
    }
  }
  return output;
}

}  // namespace recast
}  // namespace daspos
