// Kinematic building blocks for the toy generator: Lorentz boosts, isotropic
// two-body decays, and simple fragmentation.
#ifndef DASPOS_MC_KINEMATICS_H_
#define DASPOS_MC_KINEMATICS_H_

#include <utility>
#include <vector>

#include "event/fourvector.h"
#include "support/rng.h"

namespace daspos {

/// Boosts `p` from the rest frame of `frame` into the lab frame where
/// `frame` has its given momentum.
FourVector BoostToLab(const FourVector& p, const FourVector& frame);

/// Decays a parent with lab-frame momentum `parent` (invariant mass M) into
/// two daughters of masses m1, m2, isotropically in the rest frame. Returns
/// lab-frame daughter momenta. Requires M >= m1 + m2 (clamped if violated
/// within rounding).
std::pair<FourVector, FourVector> TwoBodyDecay(const FourVector& parent,
                                               double m1, double m2, Rng* rng);

/// Fragments a massless parton of energy `energy` flying along (eta, phi)
/// into charged/neutral pions and kaons collinear within `spread` in
/// eta-phi. Returns the hadron four-vectors with pdg ids.
struct Fragment {
  int pdg_id;
  FourVector momentum;
};
std::vector<Fragment> FragmentParton(double energy, double eta, double phi,
                                     double spread, Rng* rng);

}  // namespace daspos

#endif  // DASPOS_MC_KINEMATICS_H_
