#include "mc/generator.h"

#include <cmath>

#include "event/pdg.h"
#include "mc/kinematics.h"

namespace daspos {

namespace {
constexpr double kPi = 3.14159265358979323846;

/// Draws a hard-scatter system four-vector with the given mass: modest
/// transverse recoil and a broad longitudinal spread, as at a hadron
/// collider.
FourVector DrawSystem(double mass, Rng* rng) {
  double pt = rng->Exponential(8.0);
  double phi = rng->Uniform(0.0, 2.0 * kPi);
  double rapidity = rng->Gauss(0.0, 1.4);
  // Build from (pt, y, phi, m): pz = mt * sinh(y), E = mt * cosh(y).
  double mt = std::sqrt(mass * mass + pt * pt);
  double px = pt * std::cos(phi);
  double py = pt * std::sin(phi);
  double pz = mt * std::sinh(rapidity);
  double e = mt * std::cosh(rapidity);
  return FourVector(px, py, pz, e);
}

}  // namespace

EventGenerator::EventGenerator(const GeneratorConfig& config)
    : config_(config), rng_(config.seed) {}

GenEvent EventGenerator::Generate() {
  GenEvent event;
  event.event_number = next_event_number_++;
  event.process_id = static_cast<int>(config_.process);
  event.weight = 1.0;
  AddHardProcess(&event);
  AddPileup(&event);
  return event;
}

std::vector<GenEvent> EventGenerator::GenerateMany(size_t count) {
  std::vector<GenEvent> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(Generate());
  return out;
}

void EventGenerator::AddHardProcess(GenEvent* event) {
  switch (config_.process) {
    case Process::kMinimumBias:
      AddSoftActivity(event, 12.0 * config_.tune_activity);
      break;
    case Process::kZToLL:
      AddResonanceToLL(event, pdg::kZ, 91.1876, 2.4952,
                       config_.lepton_flavor);
      AddSoftActivity(event, 8.0 * config_.tune_activity);
      break;
    case Process::kWToLNu:
      AddWToLNu(event);
      AddSoftActivity(event, 8.0 * config_.tune_activity);
      break;
    case Process::kHiggsToGammaGamma:
      AddHiggsToGammaGamma(event);
      AddSoftActivity(event, 10.0 * config_.tune_activity);
      break;
    case Process::kQcdDijet:
      AddQcdDijet(event);
      AddSoftActivity(event, 6.0 * config_.tune_activity);
      break;
    case Process::kDMeson:
      AddDMeson(event);
      AddSoftActivity(event, 10.0 * config_.tune_activity);
      break;
    case Process::kZPrimeToLL:
      AddResonanceToLL(event, pdg::kZPrime, config_.zprime_mass,
                       config_.zprime_width, config_.lepton_flavor);
      AddSoftActivity(event, 8.0 * config_.tune_activity);
      break;
  }
}

void EventGenerator::AddResonanceToLL(GenEvent* event, int resonance_id,
                                      double mass, double width, int flavor) {
  double m = rng_.BreitWigner(mass, width);
  // Keep the tail physical: at least 2 lepton masses, at most ~3x the pole.
  double m_min = 2.0 * pdg::Mass(flavor) + 0.1;
  if (m < m_min) m = m_min;
  if (m > 3.0 * mass) m = 3.0 * mass;

  FourVector system = DrawSystem(m, &rng_);
  GenParticle resonance;
  resonance.pdg_id = resonance_id;
  resonance.status = 2;
  resonance.mother = -1;
  resonance.momentum = system;
  event->particles.push_back(resonance);
  int mother_index = static_cast<int>(event->particles.size()) - 1;

  double ml = pdg::Mass(flavor);
  auto [lp, lm] = TwoBodyDecay(system, ml, ml, &rng_);
  GenParticle lepton_minus;
  lepton_minus.pdg_id = flavor;  // negative lepton has positive pdg id
  lepton_minus.status = 1;
  lepton_minus.mother = mother_index;
  lepton_minus.momentum = lp;
  GenParticle lepton_plus;
  lepton_plus.pdg_id = -flavor;
  lepton_plus.status = 1;
  lepton_plus.mother = mother_index;
  lepton_plus.momentum = lm;
  event->particles.push_back(lepton_minus);
  event->particles.push_back(lepton_plus);
}

void EventGenerator::AddWToLNu(GenEvent* event) {
  // W+ / W- production ratio ~ 1.35 at the LHC (more u quarks in protons).
  bool plus = rng_.Accept(0.574);
  double m = rng_.BreitWigner(80.379, 2.085);
  if (m < 10.0) m = 10.0;
  if (m > 200.0) m = 200.0;

  FourVector system = DrawSystem(m, &rng_);
  GenParticle w;
  w.pdg_id = plus ? pdg::kWPlus : -pdg::kWPlus;
  w.status = 2;
  w.mother = -1;
  w.momentum = system;
  event->particles.push_back(w);
  int mother_index = static_cast<int>(event->particles.size()) - 1;

  int flavor = config_.lepton_flavor;
  double ml = pdg::Mass(flavor);
  auto [lepton_mom, nu_mom] = TwoBodyDecay(system, ml, 0.0, &rng_);

  GenParticle lepton;
  // W+ -> l+ nu ; W- -> l- nu~.
  lepton.pdg_id = plus ? -flavor : flavor;
  lepton.status = 1;
  lepton.mother = mother_index;
  lepton.momentum = lepton_mom;
  GenParticle neutrino;
  int nu_id = flavor + 1;  // nu_e=12 for e=11, nu_mu=14 for mu=13
  neutrino.pdg_id = plus ? nu_id : -nu_id;
  neutrino.status = 1;
  neutrino.mother = mother_index;
  neutrino.momentum = nu_mom;
  event->particles.push_back(lepton);
  event->particles.push_back(neutrino);
}

void EventGenerator::AddHiggsToGammaGamma(GenEvent* event) {
  // The natural width is ~4 MeV: the observed peak width is entirely
  // detector resolution, which is the point of the E3 fidelity comparison.
  double m = rng_.BreitWigner(125.25, 0.004);
  FourVector system = DrawSystem(m, &rng_);
  GenParticle higgs;
  higgs.pdg_id = pdg::kHiggs;
  higgs.status = 2;
  higgs.mother = -1;
  higgs.momentum = system;
  event->particles.push_back(higgs);
  int mother_index = static_cast<int>(event->particles.size()) - 1;

  auto [g1, g2] = TwoBodyDecay(system, 0.0, 0.0, &rng_);
  for (const FourVector& mom : {g1, g2}) {
    GenParticle photon;
    photon.pdg_id = pdg::kPhoton;
    photon.status = 1;
    photon.mother = mother_index;
    photon.momentum = mom;
    event->particles.push_back(photon);
  }
}

void EventGenerator::AddQcdDijet(GenEvent* event) {
  // Falling pT spectrum: pT = pTmin * u^(-1/(n-1)) with n ~ 6.
  double u = rng_.Uniform();
  while (u <= 0.0) u = rng_.Uniform();
  double pt = 20.0 * std::pow(u, -1.0 / 5.0);
  if (pt > 2000.0) pt = 2000.0;
  double phi = rng_.Uniform(0.0, 2.0 * kPi);
  double eta1 = rng_.Gauss(0.0, 1.5);
  double eta2 = rng_.Gauss(0.0, 1.5);

  struct Parton {
    double pt, eta, phi;
  };
  Parton partons[2] = {{pt, eta1, phi}, {pt, eta2, phi + kPi}};
  for (const Parton& parton : partons) {
    GenParticle quark;
    quark.pdg_id = pdg::kGluon;
    quark.status = 2;
    quark.mother = -1;
    quark.momentum =
        FourVector::FromPtEtaPhiM(parton.pt, parton.eta, parton.phi, 0.0);
    event->particles.push_back(quark);
    int mother_index = static_cast<int>(event->particles.size()) - 1;

    double energy = quark.momentum.e();
    for (const Fragment& frag :
         FragmentParton(energy, parton.eta, parton.phi, 0.12, &rng_)) {
      GenParticle hadron;
      hadron.pdg_id = frag.pdg_id;
      hadron.status = 1;
      hadron.mother = mother_index;
      hadron.momentum = frag.momentum;
      event->particles.push_back(hadron);
    }
  }
}

void EventGenerator::AddDMeson(GenEvent* event) {
  // Produce one D0 with a charm-like pT spectrum; decay D0 -> K- pi+ with
  // proper lifetime c*tau = 0.123 mm.
  double pt = 2.0 + rng_.Exponential(4.0);
  double eta = rng_.Gauss(0.0, 1.2);
  double phi = rng_.Uniform(0.0, 2.0 * kPi);
  double md = pdg::Mass(pdg::kD0);
  FourVector d_momentum = FourVector::FromPtEtaPhiM(pt, eta, phi, md);

  GenParticle d_meson;
  d_meson.pdg_id = pdg::kD0;
  d_meson.status = 2;
  d_meson.mother = -1;
  d_meson.momentum = d_momentum;
  event->particles.push_back(d_meson);
  int mother_index = static_cast<int>(event->particles.size()) - 1;

  // Decay length in the lab: boost factor beta*gamma = p/m.
  double ctau_mm = 0.123;
  double proper = rng_.Exponential(ctau_mm);
  double decay_length_mm = proper * d_momentum.P() / md;

  auto [kaon_mom, pion_mom] =
      TwoBodyDecay(d_momentum, pdg::Mass(pdg::kKPlus),
                   pdg::Mass(pdg::kPiPlus), &rng_);
  GenParticle kaon;
  kaon.pdg_id = pdg::kKMinus;
  kaon.status = 1;
  kaon.mother = mother_index;
  kaon.momentum = kaon_mom;
  kaon.vertex_mm = decay_length_mm;
  GenParticle pion;
  pion.pdg_id = pdg::kPiPlus;
  pion.status = 1;
  pion.mother = mother_index;
  pion.momentum = pion_mom;
  pion.vertex_mm = decay_length_mm;
  event->particles.push_back(kaon);
  event->particles.push_back(pion);
}

void EventGenerator::AddSoftActivity(GenEvent* event, double mean_particles) {
  uint64_t count = rng_.Poisson(mean_particles);
  for (uint64_t i = 0; i < count; ++i) {
    double pt = rng_.Exponential(0.7) + 0.1;
    double eta = rng_.Uniform(-4.0, 4.0);
    double phi = rng_.Uniform(0.0, 2.0 * kPi);
    double species = rng_.Uniform();
    int pdg_id;
    if (species < 0.35) {
      pdg_id = pdg::kPiPlus;
    } else if (species < 0.70) {
      pdg_id = -pdg::kPiPlus;
    } else if (species < 0.90) {
      pdg_id = pdg::kPiZero;
    } else {
      pdg_id = rng_.Accept(0.5) ? pdg::kKPlus : pdg::kKMinus;
    }
    GenParticle particle;
    particle.pdg_id = pdg_id;
    particle.status = 1;
    particle.mother = -1;
    particle.momentum =
        FourVector::FromPtEtaPhiM(pt, eta, phi, pdg::Mass(pdg_id));
    event->particles.push_back(particle);
  }
}

void EventGenerator::AddPileup(GenEvent* event) {
  if (config_.pileup_mean <= 0.0) return;
  uint64_t interactions = rng_.Poisson(config_.pileup_mean);
  for (uint64_t i = 0; i < interactions; ++i) {
    AddSoftActivity(event, 12.0);
  }
}

}  // namespace daspos
