// Physics-process catalog for the toy Monte-Carlo generator. Cross sections
// are order-of-magnitude realistic for 13 TeV pp so that tier-size and
// skimming benchmarks show the paper's "small signal over huge background"
// structure; absolute values are not the point.
#ifndef DASPOS_MC_PROCESS_H_
#define DASPOS_MC_PROCESS_H_

#include <string>
#include <vector>

namespace daspos {

/// Generator process identifiers (stored in GenEvent::process_id).
enum class Process : int {
  kMinimumBias = 0,
  kZToLL = 1,
  kWToLNu = 2,
  kHiggsToGammaGamma = 3,
  kQcdDijet = 4,
  kDMeson = 5,
  /// Hypothetical heavy dilepton resonance; the RECAST reinterpretation
  /// target ("generate events from new physics models", §2.3).
  kZPrimeToLL = 100,
};

/// Static metadata for one process.
struct ProcessInfo {
  Process id;
  std::string name;
  /// Production cross section in picobarns (toy values, realistic ordering).
  double cross_section_pb;
  std::string description;
};

/// Catalog lookup; fails an assert on unknown id.
const ProcessInfo& GetProcessInfo(Process process);

/// All catalogued processes.
const std::vector<ProcessInfo>& AllProcesses();

}  // namespace daspos

#endif  // DASPOS_MC_PROCESS_H_
