#include "mc/kinematics.h"

#include <algorithm>
#include <cmath>

#include "event/pdg.h"

namespace daspos {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

FourVector BoostToLab(const FourVector& p, const FourVector& frame) {
  double m = frame.Mass();
  if (m <= 0.0) return p;  // massless frame: boost undefined, leave as-is
  double bx = frame.px() / frame.e();
  double by = frame.py() / frame.e();
  double bz = frame.pz() / frame.e();
  double b2 = bx * bx + by * by + bz * bz;
  if (b2 <= 0.0) return p;
  double gamma = frame.e() / m;
  double bp = bx * p.px() + by * p.py() + bz * p.pz();
  double k = (gamma - 1.0) * bp / b2 + gamma * p.e();
  return FourVector(p.px() + k * bx, p.py() + k * by, p.pz() + k * bz,
                    gamma * (p.e() + bp));
}

std::pair<FourVector, FourVector> TwoBodyDecay(const FourVector& parent,
                                               double m1, double m2,
                                               Rng* rng) {
  double mass = parent.Mass();
  double min_mass = m1 + m2;
  if (mass < min_mass) mass = min_mass;  // clamp rounding violations

  // Rest-frame momentum magnitude (Kallen function).
  double term1 = mass * mass - (m1 + m2) * (m1 + m2);
  double term2 = mass * mass - (m1 - m2) * (m1 - m2);
  double pstar = std::sqrt(std::max(0.0, term1 * term2)) / (2.0 * mass);

  // Isotropic direction.
  double cos_theta = rng->Uniform(-1.0, 1.0);
  double sin_theta = std::sqrt(1.0 - cos_theta * cos_theta);
  double phi = rng->Uniform(0.0, 2.0 * kPi);
  double px = pstar * sin_theta * std::cos(phi);
  double py = pstar * sin_theta * std::sin(phi);
  double pz = pstar * cos_theta;

  FourVector d1(px, py, pz, std::sqrt(pstar * pstar + m1 * m1));
  FourVector d2(-px, -py, -pz, std::sqrt(pstar * pstar + m2 * m2));
  return {BoostToLab(d1, parent), BoostToLab(d2, parent)};
}

std::vector<Fragment> FragmentParton(double energy, double eta, double phi,
                                     double spread, Rng* rng) {
  std::vector<Fragment> out;
  double remaining = energy;
  while (remaining > 0.3) {
    // Draw the energy fraction this hadron takes (soft-favoring spectrum).
    double z = rng->Uniform(0.1, 0.6);
    double e = std::max(0.2, z * remaining);
    if (e > remaining) e = remaining;
    remaining -= e;

    // Species: ~60% charged pions, 25% neutral pions, 15% kaons.
    double u = rng->Uniform();
    int pdg_id;
    if (u < 0.30) {
      pdg_id = pdg::kPiPlus;
    } else if (u < 0.60) {
      pdg_id = -pdg::kPiPlus;
    } else if (u < 0.85) {
      pdg_id = pdg::kPiZero;
    } else {
      pdg_id = rng->Accept(0.5) ? pdg::kKPlus : pdg::kKMinus;
    }
    double mass = pdg::Mass(pdg_id);
    if (e < mass * 1.05) e = mass * 1.05;

    double h_eta = eta + rng->Gauss(0.0, spread);
    double h_phi = phi + rng->Gauss(0.0, spread);
    double momentum = std::sqrt(std::max(0.0, e * e - mass * mass));
    double pt = momentum / std::cosh(h_eta);
    out.push_back(
        {pdg_id, FourVector::FromPtEtaPhiM(pt, h_eta, h_phi, mass)});
  }
  return out;
}

}  // namespace daspos
