// Toy Monte-Carlo event generator — the "Monte Carlo Generation" processing
// step of §3.2 and the event source for the whole chain. Deterministic given
// (config, seed): a preserved configuration regenerates identical samples,
// which is what makes generator-level preservation meaningful.
#ifndef DASPOS_MC_GENERATOR_H_
#define DASPOS_MC_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "event/truth.h"
#include "mc/process.h"
#include "support/rng.h"

namespace daspos {

/// Full configuration of a generation job. Everything that affects the
/// output is in here (and is captured into provenance by workflow/).
struct GeneratorConfig {
  Process process = Process::kZToLL;
  uint64_t seed = 1;
  /// Mean number of overlaid pileup (minimum-bias) interactions.
  double pileup_mean = 0.0;
  /// Z' resonance parameters (used by kZPrimeToLL only).
  double zprime_mass = 1000.0;
  double zprime_width = 30.0;
  /// Underlying-event activity multiplier ("tune"): scales the number of
  /// soft particles accompanying the hard process. Two tunes of the same
  /// process are the classic RIVET comparison (§2.3).
  double tune_activity = 1.0;
  /// Lepton flavour for resonance decays: 11 (electrons) or 13 (muons).
  int lepton_flavor = 13;
};

/// Streams GenEvents for one configuration.
class EventGenerator {
 public:
  explicit EventGenerator(const GeneratorConfig& config);

  /// Generates the next event; event numbers increase from 1.
  GenEvent Generate();

  /// Generates a batch.
  std::vector<GenEvent> GenerateMany(size_t count);

  const GeneratorConfig& config() const { return config_; }

 private:
  void AddHardProcess(GenEvent* event);
  void AddResonanceToLL(GenEvent* event, int resonance_id, double mass,
                        double width, int flavor);
  void AddWToLNu(GenEvent* event);
  void AddHiggsToGammaGamma(GenEvent* event);
  void AddQcdDijet(GenEvent* event);
  void AddDMeson(GenEvent* event);
  void AddSoftActivity(GenEvent* event, double mean_particles);
  void AddPileup(GenEvent* event);

  GeneratorConfig config_;
  Rng rng_;
  uint64_t next_event_number_ = 1;
};

}  // namespace daspos

#endif  // DASPOS_MC_GENERATOR_H_
