#include "mc/process.h"

#include <cassert>

namespace daspos {

const std::vector<ProcessInfo>& AllProcesses() {
  static const std::vector<ProcessInfo> kCatalog = {
      {Process::kMinimumBias, "minbias", 7.8e10,
       "soft inelastic pp collision (pileup substrate)"},
      {Process::kZToLL, "z_ll", 1950.0,
       "Drell-Yan Z -> l+l- (one lepton flavour)"},
      {Process::kWToLNu, "w_lnu", 20400.0,
       "W -> l nu (one lepton flavour, both charges)"},
      {Process::kHiggsToGammaGamma, "h_gammagamma", 0.11,
       "gluon-fusion Higgs with H -> gamma gamma"},
      {Process::kQcdDijet, "qcd_dijet", 8.0e8,
       "QCD 2->2 with fragmentation into jets (pT > 20 GeV)"},
      {Process::kDMeson, "d_meson", 1.0e9,
       "charm production with D0 -> K- pi+ (lifetime master class)"},
      {Process::kZPrimeToLL, "zprime_ll", 0.01,
       "hypothetical heavy Z' -> l+l- (reinterpretation target)"},
  };
  return kCatalog;
}

const ProcessInfo& GetProcessInfo(Process process) {
  for (const ProcessInfo& info : AllProcesses()) {
    if (info.id == process) return info;
  }
  assert(false && "unknown process id");
  return AllProcesses().front();
}

}  // namespace daspos
