// Detector simulation: turns generator truth into raw detector data.
// This is the parameterized substitute for a full GEANT-style simulation
// (see DESIGN.md §5): particles deposit quantized hits in tracker layers,
// calorimeter cells, and muon chambers, with per-technology resolution,
// efficiency, noise, and the calibration constants applied in reverse
// (reconstruction must undo them).
#ifndef DASPOS_DETSIM_SIMULATION_H_
#define DASPOS_DETSIM_SIMULATION_H_

#include <cstdint>

#include "detsim/calib.h"
#include "detsim/geometry.h"
#include "event/raw.h"
#include "event/truth.h"
#include "support/rng.h"

namespace daspos {

/// Trigger line bit assignments (RawEvent::trigger_bits).
struct TriggerBits {
  static constexpr uint32_t kEGamma = 1u << 0;  // e/gamma ET > threshold
  static constexpr uint32_t kMuon = 1u << 1;    // muon pT > threshold
  static constexpr uint32_t kJetHt = 1u << 2;   // scalar hadronic sum
  static constexpr uint32_t kMinBias = 1u << 3; // prescaled pass-through
};

/// Everything that determines the detector response.
struct SimulationConfig {
  DetectorGeometry geometry;
  CalibrationSet calib;
  uint64_t seed = 1;
  /// Mean number of ECAL noise cells per event (above zero suppression).
  double noise_cells_mean = 40.0;
  // Trigger thresholds (GeV).
  double trig_egamma_et = 18.0;
  double trig_muon_pt = 8.0;
  double trig_ht = 60.0;
  /// Min-bias prescale: one in N events fires the min-bias line.
  uint32_t minbias_prescale = 1000;
};

/// Simulates events independently and deterministically: the response of
/// event N depends only on (config, truth event), not on call order.
class DetectorSimulation {
 public:
  explicit DetectorSimulation(const SimulationConfig& config)
      : config_(config) {}

  /// Digitizes one truth event into a raw event.
  RawEvent Simulate(const GenEvent& truth, uint32_t run_number) const;

  const SimulationConfig& config() const { return config_; }

 private:
  void SimulateTracker(const GenEvent& truth, Rng* rng,
                       RawEvent* raw) const;
  void SimulateCalorimeters(const GenEvent& truth, Rng* rng,
                            RawEvent* raw) const;
  void SimulateMuonSystem(const GenEvent& truth, Rng* rng,
                          RawEvent* raw) const;
  void AddNoise(Rng* rng, RawEvent* raw) const;
  uint32_t ComputeTrigger(const GenEvent& truth, Rng* rng) const;

  /// Signed transverse impact parameter (metres) of a particle produced at
  /// the displaced vertex its mother's flight defines.
  double ImpactParameter(const GenEvent& truth,
                         const GenParticle& particle) const;

  SimulationConfig config_;
};

}  // namespace daspos

#endif  // DASPOS_DETSIM_SIMULATION_H_
