// Calibration constants: the payload that flows from the conditions
// database into digitization and reconstruction. §3.2: "the Reconstruction
// step requires ... databases that store all manner of calibration
// constants, conditions data, etc." — reconstructing with the wrong set
// visibly degrades physics, which the E7 bench demonstrates.
#ifndef DASPOS_DETSIM_CALIB_H_
#define DASPOS_DETSIM_CALIB_H_

#include <cstdint>
#include <string>

#include "support/result.h"

namespace daspos {

/// One coherent set of detector calibration constants.
struct CalibrationSet {
  /// Monotonically increasing calibration version.
  uint32_t version = 1;
  /// EM calorimeter gain, GeV per ADC count.
  double ecal_gain = 0.02;
  /// Hadronic calorimeter gain, GeV per ADC count.
  double hcal_gain = 0.05;
  /// Global tracker azimuthal misalignment, radians. Digitization applies
  /// it; reconstruction must subtract the same value.
  double tracker_phi_offset = 0.0;
  /// ECAL electronics noise, ADC counts (mean of fired noise cells).
  double ecal_noise_adc = 3.0;
  /// ECAL zero-suppression threshold, ADC counts.
  uint16_t ecal_zs_threshold = 8;

  /// Serializes to the conditions-payload text form (key = value lines) —
  /// the same representation works for both the database backend and the
  /// Alice-style text-file snapshot (§3.2).
  std::string ToPayload() const;
  static Result<CalibrationSet> FromPayload(const std::string& payload);

  bool operator==(const CalibrationSet& other) const;
};

}  // namespace daspos

#endif  // DASPOS_DETSIM_CALIB_H_
