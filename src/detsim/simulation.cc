#include "detsim/simulation.h"

#include <algorithm>
#include <cmath>

#include "event/pdg.h"

namespace daspos {

namespace {

/// Azimuthal drift per unit radius for unit charge: phi(r) = phi0 +
/// q * kCurvature * B[T] * r[m] / pt[GeV]. Shared constant between
/// digitization here and the track fit in reco/tracking.cc.
constexpr double kCurvature = 0.15;

uint16_t ClampAdc(double counts) {
  if (counts <= 0.0) return 0;
  if (counts >= 65535.0) return 65535;
  return static_cast<uint16_t>(counts);
}

}  // namespace

RawEvent DetectorSimulation::Simulate(const GenEvent& truth,
                                      uint32_t run_number) const {
  // Event-local stream: deterministic in (seed, event number) only.
  Rng rng(config_.seed ^ (truth.event_number * 0x9e3779b97f4a7c15ull));

  RawEvent raw;
  raw.run_number = run_number;
  raw.event_number = truth.event_number;
  SimulateTracker(truth, &rng, &raw);
  SimulateCalorimeters(truth, &rng, &raw);
  SimulateMuonSystem(truth, &rng, &raw);
  AddNoise(&rng, &raw);
  raw.trigger_bits = ComputeTrigger(truth, &rng);
  return raw;
}

double DetectorSimulation::ImpactParameter(
    const GenEvent& truth, const GenParticle& particle) const {
  if (particle.vertex_mm == 0.0 || particle.mother < 0 ||
      particle.mother >= static_cast<int>(truth.particles.size())) {
    return 0.0;
  }
  const FourVector& mother =
      truth.particles[static_cast<size_t>(particle.mother)].momentum;
  double mother_p = mother.P();
  if (mother_p <= 0.0) return 0.0;
  double length_m = particle.vertex_mm / 1000.0;
  double x0 = length_m * mother.px() / mother_p;
  double y0 = length_m * mother.py() / mother_p;
  double pt = particle.momentum.Pt();
  if (pt <= 0.0) return 0.0;
  return (x0 * particle.momentum.py() - y0 * particle.momentum.px()) / pt;
}

void DetectorSimulation::SimulateTracker(const GenEvent& truth, Rng* rng,
                                         RawEvent* raw) const {
  const DetectorGeometry& geo = config_.geometry;
  for (const GenParticle& particle : truth.particles) {
    if (!particle.IsFinalState()) continue;
    double charge = pdg::Charge(particle.pdg_id);
    if (std::fabs(charge) < 0.3) continue;
    double pt = particle.momentum.Pt();
    double eta = particle.momentum.Eta();
    if (pt < 0.2 || std::fabs(eta) > geo.tracker_eta_max) continue;

    double phi0 = particle.momentum.Phi();
    double d0_m = ImpactParameter(truth, particle);
    int eta_cell = geo.TrackerEtaCell(eta);

    for (int layer = 0; layer < geo.tracker_layers; ++layer) {
      if (!rng->Accept(geo.tracker_hit_efficiency)) continue;
      double r = geo.TrackerLayerRadius(layer);
      // Helix drift + impact-parameter term + (mis)alignment.
      double phi = phi0 + charge * kCurvature * geo.field_tesla * r / pt +
                   d0_m / r + config_.calib.tracker_phi_offset;
      int phi_cell = geo.TrackerPhiCell(phi);
      RawHit hit;
      hit.detector = SubDetector::kTracker;
      hit.channel = geo.TrackerChannel(layer, eta_cell, phi_cell);
      // Landau-like ionization pulse.
      hit.adc = ClampAdc(30.0 + rng->Exponential(20.0));
      hit.time_ns = static_cast<float>(rng->Gauss(0.0, 1.5));
      raw->hits.push_back(hit);
    }
  }
}

void DetectorSimulation::SimulateCalorimeters(const GenEvent& truth, Rng* rng,
                                              RawEvent* raw) const {
  const DetectorGeometry& geo = config_.geometry;
  const CalibrationSet& calib = config_.calib;

  auto deposit_ecal = [&](double eta, double phi, double energy) {
    if (energy <= 0.0 || std::fabs(eta) > geo.ecal_eta_max) return;
    // Shower spread: 70% in the seed cell, 30% over the 3x3 neighbourhood.
    int eta_cell = geo.EcalEtaCell(eta);
    int phi_cell = geo.EcalPhiCell(phi);
    struct Share {
      int deta, dphi;
      double frac;
    };
    static constexpr Share kShares[] = {
        {0, 0, 0.70},  {1, 0, 0.08},  {-1, 0, 0.08},
        {0, 1, 0.07},  {0, -1, 0.07},
    };
    for (const Share& share : kShares) {
      int ec = eta_cell + share.deta;
      int pc = phi_cell + share.dphi;
      if (ec < 0 || ec >= geo.ecal_eta_cells) continue;
      if (pc < 0) pc += geo.ecal_phi_cells;
      if (pc >= geo.ecal_phi_cells) pc -= geo.ecal_phi_cells;
      double counts = energy * share.frac / calib.ecal_gain;
      uint16_t adc = ClampAdc(counts);
      if (adc < calib.ecal_zs_threshold) continue;
      RawHit hit;
      hit.detector = SubDetector::kEcal;
      hit.channel = geo.EcalChannel(ec, pc);
      hit.adc = adc;
      hit.time_ns = static_cast<float>(rng->Gauss(0.0, 0.5));
      raw->hits.push_back(hit);
    }
  };

  auto deposit_hcal = [&](double eta, double phi, double energy) {
    if (energy <= 0.0 || std::fabs(eta) > geo.hcal_eta_max) return;
    uint16_t adc = ClampAdc(energy / calib.hcal_gain);
    if (adc == 0) return;
    RawHit hit;
    hit.detector = SubDetector::kHcal;
    hit.channel = geo.HcalChannel(geo.HcalEtaCell(eta), geo.HcalPhiCell(phi));
    hit.adc = adc;
    hit.time_ns = static_cast<float>(rng->Gauss(0.0, 1.0));
    raw->hits.push_back(hit);
  };

  for (const GenParticle& particle : truth.particles) {
    if (!particle.IsFinalState()) continue;
    if (pdg::IsInvisible(particle.pdg_id)) continue;
    int a = std::abs(particle.pdg_id);
    double e = particle.momentum.e();
    double eta = particle.momentum.Eta();
    double phi = particle.momentum.Phi();
    if (e < 0.1) continue;

    if (a == pdg::kElectron || a == pdg::kPhoton || a == pdg::kPiZero) {
      // Electromagnetic shower: full energy in ECAL with EM resolution.
      double sigma = std::sqrt(geo.ecal_stochastic * geo.ecal_stochastic * e +
                               geo.ecal_constant * geo.ecal_constant * e * e);
      deposit_ecal(eta, phi, std::max(0.0, rng->Gauss(e, sigma)));
    } else if (a == pdg::kMuon) {
      // Minimum-ionizing deposits only.
      deposit_ecal(eta, phi, 0.3);
      deposit_hcal(eta, phi, 2.0);
    } else {
      // Hadron: small EM component, the rest in HCAL with hadronic
      // resolution.
      double em_fraction = rng->Uniform(0.05, 0.30);
      double sigma = std::sqrt(geo.hcal_stochastic * geo.hcal_stochastic * e +
                               geo.hcal_constant * geo.hcal_constant * e * e);
      double smeared = std::max(0.0, rng->Gauss(e, sigma));
      deposit_ecal(eta, phi, smeared * em_fraction);
      deposit_hcal(eta, phi, smeared * (1.0 - em_fraction));
    }
  }
}

void DetectorSimulation::SimulateMuonSystem(const GenEvent& truth, Rng* rng,
                                            RawEvent* raw) const {
  const DetectorGeometry& geo = config_.geometry;
  for (const GenParticle& particle : truth.particles) {
    if (!particle.IsFinalState()) continue;
    if (std::abs(particle.pdg_id) != pdg::kMuon) continue;
    double pt = particle.momentum.Pt();
    double eta = particle.momentum.Eta();
    if (pt < 2.0 || std::fabs(eta) > geo.muon_eta_max) continue;
    int eta_cell = geo.MuonEtaCell(eta);
    int phi_cell = geo.MuonPhiCell(particle.momentum.Phi());
    for (int layer = 0; layer < geo.muon_layers; ++layer) {
      if (!rng->Accept(geo.muon_hit_efficiency)) continue;
      RawHit hit;
      hit.detector = SubDetector::kMuon;
      hit.channel = geo.MuonChannel(layer, eta_cell, phi_cell);
      hit.adc = ClampAdc(40.0 + rng->Exponential(10.0));
      hit.time_ns = static_cast<float>(rng->Gauss(15.0, 2.0));  // drift time
      raw->hits.push_back(hit);
    }
  }
}

void DetectorSimulation::AddNoise(Rng* rng, RawEvent* raw) const {
  const DetectorGeometry& geo = config_.geometry;
  uint64_t cells = rng->Poisson(config_.noise_cells_mean);
  uint32_t total_cells = static_cast<uint32_t>(geo.ecal_eta_cells) *
                         static_cast<uint32_t>(geo.ecal_phi_cells);
  for (uint64_t i = 0; i < cells; ++i) {
    double counts = config_.calib.ecal_zs_threshold +
                    rng->Exponential(config_.calib.ecal_noise_adc);
    RawHit hit;
    hit.detector = SubDetector::kEcal;
    hit.channel = static_cast<uint32_t>(rng->UniformInt(total_cells));
    hit.adc = ClampAdc(counts);
    hit.time_ns = static_cast<float>(rng->Uniform(-12.5, 12.5));
    raw->hits.push_back(hit);
  }
}

uint32_t DetectorSimulation::ComputeTrigger(const GenEvent& truth,
                                            Rng* rng) const {
  const DetectorGeometry& geo = config_.geometry;
  uint32_t bits = 0;
  double ht = 0.0;
  for (const GenParticle& particle : truth.particles) {
    if (!particle.IsFinalState()) continue;
    if (pdg::IsInvisible(particle.pdg_id)) continue;
    int a = std::abs(particle.pdg_id);
    double et = particle.momentum.Et();
    double eta = particle.momentum.Eta();
    // Trigger-level (coarse) smearing.
    double smeared_et = std::max(0.0, rng->Gauss(et, 0.1 * et));
    if ((a == pdg::kElectron || a == pdg::kPhoton) &&
        std::fabs(eta) < geo.ecal_eta_max &&
        smeared_et > config_.trig_egamma_et) {
      bits |= TriggerBits::kEGamma;
    }
    if (a == pdg::kMuon && std::fabs(eta) < geo.muon_eta_max &&
        smeared_et > config_.trig_muon_pt) {
      bits |= TriggerBits::kMuon;
    }
    if (pdg::IsHadron(particle.pdg_id)) ht += smeared_et;
  }
  if (ht > config_.trig_ht) bits |= TriggerBits::kJetHt;
  if (config_.minbias_prescale > 0 &&
      truth.event_number % config_.minbias_prescale == 0) {
    bits |= TriggerBits::kMinBias;
  }
  return bits;
}

}  // namespace daspos
