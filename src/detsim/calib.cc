#include "detsim/calib.h"

#include <cstdio>

#include "support/strings.h"

namespace daspos {

std::string CalibrationSet::ToPayload() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "version = %u\n"
                "ecal_gain = %.17g\n"
                "hcal_gain = %.17g\n"
                "tracker_phi_offset = %.17g\n"
                "ecal_noise_adc = %.17g\n"
                "ecal_zs_threshold = %u\n",
                version, ecal_gain, hcal_gain, tracker_phi_offset,
                ecal_noise_adc, ecal_zs_threshold);
  return buf;
}

Result<CalibrationSet> CalibrationSet::FromPayload(
    const std::string& payload) {
  CalibrationSet calib;
  bool saw_version = false;
  for (const std::string& line : Split(payload, '\n')) {
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    size_t eq = trimmed.find('=');
    if (eq == std::string_view::npos) {
      return Status::Corruption("calibration payload line without '=': " +
                                std::string(trimmed));
    }
    std::string_view key = Trim(trimmed.substr(0, eq));
    std::string_view value = Trim(trimmed.substr(eq + 1));
    if (key == "version") {
      DASPOS_ASSIGN_OR_RETURN(uint64_t v, ParseU64(value));
      calib.version = static_cast<uint32_t>(v);
      saw_version = true;
    } else if (key == "ecal_gain") {
      DASPOS_ASSIGN_OR_RETURN(calib.ecal_gain, ParseDouble(value));
    } else if (key == "hcal_gain") {
      DASPOS_ASSIGN_OR_RETURN(calib.hcal_gain, ParseDouble(value));
    } else if (key == "tracker_phi_offset") {
      DASPOS_ASSIGN_OR_RETURN(calib.tracker_phi_offset, ParseDouble(value));
    } else if (key == "ecal_noise_adc") {
      DASPOS_ASSIGN_OR_RETURN(calib.ecal_noise_adc, ParseDouble(value));
    } else if (key == "ecal_zs_threshold") {
      DASPOS_ASSIGN_OR_RETURN(uint64_t v, ParseU64(value));
      calib.ecal_zs_threshold = static_cast<uint16_t>(v);
    } else {
      // Unknown keys are tolerated for forward compatibility of preserved
      // payloads.
    }
  }
  if (!saw_version) {
    return Status::Corruption("calibration payload missing 'version'");
  }
  return calib;
}

bool CalibrationSet::operator==(const CalibrationSet& other) const {
  return version == other.version && ecal_gain == other.ecal_gain &&
         hcal_gain == other.hcal_gain &&
         tracker_phi_offset == other.tracker_phi_offset &&
         ecal_noise_adc == other.ecal_noise_adc &&
         ecal_zs_threshold == other.ecal_zs_threshold;
}

}  // namespace daspos
