#include "detsim/geometry.h"

#include <algorithm>
#include <cmath>

namespace daspos {

namespace {
constexpr double kPi = 3.14159265358979323846;
constexpr double kTwoPi = 2.0 * kPi;

int ClampCell(int cell, int n) { return std::clamp(cell, 0, n - 1); }

int EtaToCell(double eta, double eta_max, int cells) {
  double u = (eta + eta_max) / (2.0 * eta_max);
  return ClampCell(static_cast<int>(u * cells), cells);
}

double CellToEta(int cell, double eta_max, int cells) {
  return -eta_max + (cell + 0.5) * (2.0 * eta_max / cells);
}

int PhiToCell(double phi, int cells) {
  double wrapped = std::fmod(phi, kTwoPi);
  if (wrapped < 0) wrapped += kTwoPi;
  return ClampCell(static_cast<int>(wrapped / kTwoPi * cells), cells);
}

double CellToPhi(int cell, int cells) {
  double phi = (cell + 0.5) * kTwoPi / cells;
  return phi > kPi ? phi - kTwoPi : phi;  // back to (-pi, pi]
}

// Cell indices and cell counts are non-negative by construction.
uint32_t U(int value) { return static_cast<uint32_t>(value); }

}  // namespace

uint32_t DetectorGeometry::TrackerChannel(int layer, int eta_cell,
                                          int phi_cell) const {
  return (U(layer) * U(tracker_eta_cells) + U(eta_cell)) *
             U(tracker_phi_cells) +
         U(phi_cell);
}

void DetectorGeometry::DecodeTrackerChannel(uint32_t channel, int* layer,
                                            int* eta_cell,
                                            int* phi_cell) const {
  *phi_cell = static_cast<int>(channel % U(tracker_phi_cells));
  uint32_t rest = channel / U(tracker_phi_cells);
  *eta_cell = static_cast<int>(rest % U(tracker_eta_cells));
  *layer = static_cast<int>(rest / U(tracker_eta_cells));
}

uint32_t DetectorGeometry::EcalChannel(int eta_cell, int phi_cell) const {
  return U(eta_cell) * U(ecal_phi_cells) + U(phi_cell);
}

void DetectorGeometry::DecodeEcalChannel(uint32_t channel, int* eta_cell,
                                         int* phi_cell) const {
  *phi_cell = static_cast<int>(channel % U(ecal_phi_cells));
  *eta_cell = static_cast<int>(channel / U(ecal_phi_cells));
}

uint32_t DetectorGeometry::HcalChannel(int eta_cell, int phi_cell) const {
  return U(eta_cell) * U(hcal_phi_cells) + U(phi_cell);
}

void DetectorGeometry::DecodeHcalChannel(uint32_t channel, int* eta_cell,
                                         int* phi_cell) const {
  *phi_cell = static_cast<int>(channel % U(hcal_phi_cells));
  *eta_cell = static_cast<int>(channel / U(hcal_phi_cells));
}

uint32_t DetectorGeometry::MuonChannel(int layer, int eta_cell,
                                       int phi_cell) const {
  return (U(layer) * U(muon_eta_cells) + U(eta_cell)) * U(muon_phi_cells) +
         U(phi_cell);
}

void DetectorGeometry::DecodeMuonChannel(uint32_t channel, int* layer,
                                         int* eta_cell, int* phi_cell) const {
  *phi_cell = static_cast<int>(channel % U(muon_phi_cells));
  uint32_t rest = channel / U(muon_phi_cells);
  *eta_cell = static_cast<int>(rest % U(muon_eta_cells));
  *layer = static_cast<int>(rest / U(muon_eta_cells));
}

int DetectorGeometry::TrackerEtaCell(double eta) const {
  return EtaToCell(eta, tracker_eta_max, tracker_eta_cells);
}
int DetectorGeometry::TrackerPhiCell(double phi) const {
  return PhiToCell(phi, tracker_phi_cells);
}
double DetectorGeometry::TrackerEtaCellCenter(int cell) const {
  return CellToEta(cell, tracker_eta_max, tracker_eta_cells);
}
double DetectorGeometry::TrackerPhiCellCenter(int cell) const {
  return CellToPhi(cell, tracker_phi_cells);
}
int DetectorGeometry::EcalEtaCell(double eta) const {
  return EtaToCell(eta, ecal_eta_max, ecal_eta_cells);
}
int DetectorGeometry::EcalPhiCell(double phi) const {
  return PhiToCell(phi, ecal_phi_cells);
}
double DetectorGeometry::EcalEtaCellCenter(int cell) const {
  return CellToEta(cell, ecal_eta_max, ecal_eta_cells);
}
double DetectorGeometry::EcalPhiCellCenter(int cell) const {
  return CellToPhi(cell, ecal_phi_cells);
}
int DetectorGeometry::HcalEtaCell(double eta) const {
  return EtaToCell(eta, hcal_eta_max, hcal_eta_cells);
}
int DetectorGeometry::HcalPhiCell(double phi) const {
  return PhiToCell(phi, hcal_phi_cells);
}
double DetectorGeometry::HcalEtaCellCenter(int cell) const {
  return CellToEta(cell, hcal_eta_max, hcal_eta_cells);
}
double DetectorGeometry::HcalPhiCellCenter(int cell) const {
  return CellToPhi(cell, hcal_phi_cells);
}
int DetectorGeometry::MuonEtaCell(double eta) const {
  return EtaToCell(eta, muon_eta_max, muon_eta_cells);
}
int DetectorGeometry::MuonPhiCell(double phi) const {
  return PhiToCell(phi, muon_phi_cells);
}
double DetectorGeometry::MuonEtaCellCenter(int cell) const {
  return CellToEta(cell, muon_eta_max, muon_eta_cells);
}
double DetectorGeometry::MuonPhiCellCenter(int cell) const {
  return CellToPhi(cell, muon_phi_cells);
}

DetectorGeometry DetectorGeometry::Preset(Experiment experiment) {
  DetectorGeometry g;
  g.name = std::string(ExperimentName(experiment));
  switch (experiment) {
    case Experiment::kAlice:
      // TPC-like: many tracking layers, low field, central acceptance.
      g.tracker_layers = 14;
      g.field_tesla = 0.5;
      g.tracker_eta_max = 0.9;
      g.tracker_eta_cells = 180;
      g.ecal_eta_max = 0.9;
      g.ecal_eta_cells = 36;
      g.muon_eta_max = 0.9;
      break;
    case Experiment::kAtlas:
      g.tracker_layers = 10;
      g.field_tesla = 2.0;
      g.ecal_stochastic = 0.10;
      g.hcal_stochastic = 0.50;
      break;
    case Experiment::kCms:
      // Stronger solenoid, finer EM crystals.
      g.tracker_layers = 12;
      g.field_tesla = 3.8;
      g.ecal_stochastic = 0.03;
      g.ecal_constant = 0.005;
      g.ecal_eta_cells = 170;
      g.ecal_phi_cells = 180;
      g.hcal_stochastic = 0.85;
      break;
    case Experiment::kLhcb:
      // Forward spectrometer: model as one-sided eta coverage.
      g.tracker_layers = 9;
      g.field_tesla = 1.0;
      g.tracker_eta_max = 4.9;  // forward acceptance (|eta| 2-5 in reality)
      g.ecal_eta_max = 4.9;
      g.muon_eta_max = 4.9;
      break;
  }
  return g;
}

}  // namespace daspos
