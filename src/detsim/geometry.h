// Parameterized detector description: a cylindrical tracker in a solenoid
// field, EM and hadronic calorimeters, and muon chambers. Channel ids encode
// (layer, eta-cell, phi-cell) densely; decoding them is the first step of
// reconstruction ("pattern-recognition ... convert the raw binary data into
// recognizable objects", §3.2).
#ifndef DASPOS_DETSIM_GEOMETRY_H_
#define DASPOS_DETSIM_GEOMETRY_H_

#include <cstdint>
#include <string>

#include "event/experiment.h"
#include "event/raw.h"

namespace daspos {

/// Geometric + granularity description of one detector. The four experiment
/// presets differ in acceptance, field, layer count, and calorimeter
/// granularity — enough to make their raw formats genuinely incompatible,
/// as in the paper's Table 1.
struct DetectorGeometry {
  std::string name = "generic";

  // Tracker.
  int tracker_layers = 10;
  double tracker_inner_radius_m = 0.05;
  double tracker_layer_spacing_m = 0.10;
  double tracker_eta_max = 2.5;
  int tracker_eta_cells = 500;
  int tracker_phi_cells = 12566;  // ~0.5 mrad
  double field_tesla = 2.0;
  double tracker_hit_efficiency = 0.97;

  // EM calorimeter.
  double ecal_eta_max = 2.5;
  int ecal_eta_cells = 100;
  int ecal_phi_cells = 126;
  double ecal_stochastic = 0.10;  // sigma_E/E = stoch/sqrt(E) (+) const
  double ecal_constant = 0.01;

  // Hadronic calorimeter.
  double hcal_eta_max = 3.0;
  int hcal_eta_cells = 60;
  int hcal_phi_cells = 63;
  double hcal_stochastic = 0.60;
  double hcal_constant = 0.05;

  // Muon system.
  int muon_layers = 4;
  double muon_eta_max = 2.4;
  int muon_eta_cells = 48;
  int muon_phi_cells = 63;
  double muon_hit_efficiency = 0.95;

  /// Radius of tracker layer l, metres.
  double TrackerLayerRadius(int layer) const {
    return tracker_inner_radius_m + tracker_layer_spacing_m * layer;
  }

  // --- channel encoding -----------------------------------------------
  // Tracker: channel = ((layer * eta_cells) + eta_cell) * phi_cells + phi.
  uint32_t TrackerChannel(int layer, int eta_cell, int phi_cell) const;
  void DecodeTrackerChannel(uint32_t channel, int* layer, int* eta_cell,
                            int* phi_cell) const;
  // Calorimeters: channel = eta_cell * phi_cells + phi_cell.
  uint32_t EcalChannel(int eta_cell, int phi_cell) const;
  void DecodeEcalChannel(uint32_t channel, int* eta_cell,
                         int* phi_cell) const;
  uint32_t HcalChannel(int eta_cell, int phi_cell) const;
  void DecodeHcalChannel(uint32_t channel, int* eta_cell,
                         int* phi_cell) const;
  uint32_t MuonChannel(int layer, int eta_cell, int phi_cell) const;
  void DecodeMuonChannel(uint32_t channel, int* layer, int* eta_cell,
                         int* phi_cell) const;

  // --- cell <-> coordinate helpers -------------------------------------
  int TrackerEtaCell(double eta) const;
  int TrackerPhiCell(double phi) const;
  double TrackerEtaCellCenter(int cell) const;
  double TrackerPhiCellCenter(int cell) const;
  int EcalEtaCell(double eta) const;
  int EcalPhiCell(double phi) const;
  double EcalEtaCellCenter(int cell) const;
  double EcalPhiCellCenter(int cell) const;
  int HcalEtaCell(double eta) const;
  int HcalPhiCell(double phi) const;
  double HcalEtaCellCenter(int cell) const;
  double HcalPhiCellCenter(int cell) const;
  int MuonEtaCell(double eta) const;
  int MuonPhiCell(double phi) const;
  double MuonEtaCellCenter(int cell) const;
  double MuonPhiCellCenter(int cell) const;

  /// Detector preset for one of the Table 1 experiments.
  static DetectorGeometry Preset(Experiment experiment);
};

}  // namespace daspos

#endif  // DASPOS_DETSIM_GEOMETRY_H_
