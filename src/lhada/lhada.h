// The Les Houches analysis database (§2.3, Recommendation 1b): "a common
// platform to store analysis databases, collecting object definitions,
// cuts, and all other information ... necessary to reproduce or use the
// results of the analyses." This module implements a small declarative
// analysis-description language (LHADA-style): object definitions with
// per-candidate cuts, and named event-level cuts with dependencies, parsed
// from plain text, validated, executable over AOD events, and serializable
// back to canonical text — analysis preservation "at the abstract level of
// analysis objects, rather than the preservation of a specific code base"
// (§2.4).
//
// Grammar (line-oriented; '#' starts a comment):
//   analysis <name>
//   object <name>
//     take <electron|muon|photon|jet>
//     select <pt|eta|abseta|phi|charge|isolation|displacement> <op> <number>
//   cut <name>
//     require <earlier-cut-name>
//     select count(<object-name>) <op> <number>
//     select met <op> <number>
//     select mass(<object-name>[i], <object-name>[j]) <op> <number>
//     select dphi(<object-name>[i], <object-name>[j]) <op> <number>
//     select oppositecharge(<object-name>[i], <object-name>[j])
//     hist <tag> <quantity> <nbins> <lo> <hi>
// with <op> one of < <= > >= == != and <quantity> one of met,
// count(<c>), mass(<c>[i], <c>[j]), dphi(<c>[i], <c>[j]), or
// pt|eta|abseta|phi(<c>[i]). Histograms fill when their cut passes, so a
// preserved description regenerates the publication plots, not just the
// cutflow (Recommendation 1a: "kinematic variables utilized should be
// unambiguously defined").
#ifndef DASPOS_LHADA_LHADA_H_
#define DASPOS_LHADA_LHADA_H_

#include <map>
#include <string>
#include <vector>

#include "event/aod.h"
#include "hist/histo1d.h"
#include "support/result.h"

namespace daspos {
namespace lhada {

enum class CompareOp { kLt, kLe, kGt, kGe, kEq, kNe };

std::string_view CompareOpName(CompareOp op);
bool Compare(double lhs, CompareOp op, double rhs);

/// A per-candidate attribute cut inside an object block.
struct AttributeCut {
  std::string attribute;  // pt, eta, abseta, phi, charge, isolation, ...
  CompareOp op = CompareOp::kGt;
  double value = 0.0;
};

/// One object definition: a typed base collection filtered by cuts.
/// Selected candidates are pt-ordered.
struct ObjectDef {
  std::string name;
  ObjectType base = ObjectType::kJet;
  std::vector<AttributeCut> cuts;
};

/// One condition inside a cut block.
struct Condition {
  enum class Kind { kCount, kMet, kMass, kDeltaPhi, kOppositeCharge };
  Kind kind = Kind::kCount;
  /// Collection operands ([collection, index]); kCount uses only the first
  /// collection, kMet none.
  std::string collection_a;
  int index_a = 0;
  std::string collection_b;
  int index_b = 0;
  CompareOp op = CompareOp::kGe;
  double value = 0.0;
};

/// An observable quantity a histogram can fill.
struct Quantity {
  enum class Kind { kMet, kCount, kMass, kDeltaPhi, kAttribute };
  Kind kind = Kind::kMet;
  std::string collection_a;
  int index_a = 0;
  std::string collection_b;
  int index_b = 0;
  /// For kAttribute: pt, eta, abseta, phi.
  std::string attribute;
};

/// A declarative histogram, filled when its enclosing cut passes.
struct HistDef {
  std::string tag;
  Quantity quantity;
  int nbins = 10;
  double lo = 0.0;
  double hi = 1.0;
};

/// One named event-level cut.
struct CutDef {
  std::string name;
  /// Cuts that must pass first.
  std::vector<std::string> requires_cuts;
  std::vector<Condition> conditions;
  std::vector<HistDef> hists;
};

/// Per-event evaluation outcome.
struct EventResult {
  /// Pass/fail per cut, in definition order.
  std::vector<bool> passed;
  /// True if every cut passed.
  bool all_passed = false;
};

/// Aggregated cutflow over a sample.
struct Cutflow {
  std::vector<std::string> cut_names;
  std::vector<uint64_t> passed_counts;
  uint64_t events = 0;

  std::string Render() const;
};

class AnalysisDescription {
 public:
  /// Parses and validates a description document.
  static Result<AnalysisDescription> Parse(const std::string& text);

  /// Parses syntax only, skipping semantic validation: duplicate names,
  /// dangling references, and forward 'require's survive into the returned
  /// structure. This is the preservation linter's entry point — it needs
  /// the defective structure to itemize findings, where Parse stops at the
  /// first problem.
  static Result<AnalysisDescription> ParseStructure(const std::string& text);

  const std::string& name() const { return name_; }
  const std::vector<ObjectDef>& objects() const { return objects_; }
  const std::vector<CutDef>& cuts() const { return cuts_; }

  /// Evaluates one event.
  EventResult Evaluate(const AodEvent& event) const;

  /// Evaluates a sample and accumulates the cutflow.
  Cutflow Run(const std::vector<AodEvent>& events) const;

  /// Like Run, but also fills every declared histogram (paths are
  /// "/<analysis>/<cut>/<tag>").
  struct RunOutput {
    Cutflow cutflow;
    std::vector<Histo1D> histograms;
  };
  RunOutput RunWithHistograms(const std::vector<AodEvent>& events) const;

  /// Canonical text form; Parse(Serialize()) reproduces the description.
  std::string Serialize() const;

 private:
  Status Validate() const;
  /// Builds the selected candidate lists for one event.
  std::map<std::string, std::vector<PhysicsObject>> SelectObjects(
      const AodEvent& event) const;

  std::string name_;
  std::vector<ObjectDef> objects_;
  std::vector<CutDef> cuts_;
};

}  // namespace lhada
}  // namespace daspos

#endif  // DASPOS_LHADA_LHADA_H_
