// The "informal common analysis database" of §2.3: phenomenologists deposit
// analysis descriptions (lhada.h documents) under stable identifiers and
// retrieve them for reinterpretation. Descriptions are stored in their
// canonical text form, so the database preserves *documents*, not binaries.
#ifndef DASPOS_LHADA_DATABASE_H_
#define DASPOS_LHADA_DATABASE_H_

#include <map>
#include <string>
#include <vector>

#include "lhada/lhada.h"
#include "support/result.h"

namespace daspos {
namespace lhada {

class AnalysisDatabase {
 public:
  /// Validates (by parsing) and stores a description document under the
  /// analysis name declared inside it.
  Result<std::string> Submit(const std::string& document);

  /// Retrieves the canonical document.
  Result<std::string> GetDocument(const std::string& name) const;

  /// Parses and returns the executable description.
  Result<AnalysisDescription> GetAnalysis(const std::string& name) const;

  bool Has(const std::string& name) const;
  std::vector<std::string> Names() const;
  size_t size() const { return documents_.size(); }

  /// Case-insensitive substring search over names and cut names.
  std::vector<std::string> Search(const std::string& query) const;

 private:
  std::map<std::string, std::string> documents_;
  std::vector<std::string> order_;
};

}  // namespace lhada
}  // namespace daspos

#endif  // DASPOS_LHADA_DATABASE_H_
