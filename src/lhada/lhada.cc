#include "lhada/lhada.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <set>

#include "event/fourvector.h"
#include "support/strings.h"
#include "support/table.h"

namespace daspos {
namespace lhada {

std::string_view CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kEq:
      return "==";
    case CompareOp::kNe:
      return "!=";
  }
  return "?";
}

bool Compare(double lhs, CompareOp op, double rhs) {
  switch (op) {
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
  }
  return false;
}

namespace {

Result<CompareOp> ParseOp(std::string_view token) {
  if (token == "<") return CompareOp::kLt;
  if (token == "<=") return CompareOp::kLe;
  if (token == ">") return CompareOp::kGt;
  if (token == ">=") return CompareOp::kGe;
  if (token == "==") return CompareOp::kEq;
  if (token == "!=") return CompareOp::kNe;
  return Status::InvalidArgument("unknown comparison operator '" +
                                 std::string(token) + "'");
}

Result<ObjectType> ParseBaseType(std::string_view token) {
  if (token == "electron") return ObjectType::kElectron;
  if (token == "muon") return ObjectType::kMuon;
  if (token == "photon") return ObjectType::kPhoton;
  if (token == "jet") return ObjectType::kJet;
  return Status::InvalidArgument("unknown base collection '" +
                                 std::string(token) +
                                 "' (electron|muon|photon|jet)");
}

const std::set<std::string>& KnownAttributes() {
  static const std::set<std::string> kAttributes = {
      "pt", "eta", "abseta", "phi", "charge", "isolation", "displacement"};
  return kAttributes;
}

double Attribute(const PhysicsObject& object, const std::string& name) {
  if (name == "pt") return object.momentum.Pt();
  if (name == "eta") return object.momentum.Eta();
  if (name == "abseta") return std::fabs(object.momentum.Eta());
  if (name == "phi") return object.momentum.Phi();
  if (name == "charge") return object.charge;
  if (name == "isolation") return object.isolation;
  if (name == "displacement") return object.displacement_mm;
  return 0.0;
}

/// Splits "name[3]" into collection name and index.
Result<std::pair<std::string, int>> ParseIndexed(std::string_view token) {
  size_t open = token.find('[');
  size_t close = token.find(']');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close < open) {
    return Status::InvalidArgument("expected '<collection>[i]', got '" +
                                   std::string(token) + "'");
  }
  std::string name(Trim(token.substr(0, open)));
  DASPOS_ASSIGN_OR_RETURN(uint64_t index,
                          ParseU64(token.substr(open + 1, close - open - 1)));
  return std::make_pair(name, static_cast<int>(index));
}

/// Splits a "fn(arg1, arg2)" call; returns {fn, args}.
Result<std::pair<std::string, std::vector<std::string>>> ParseCall(
    std::string_view token) {
  size_t open = token.find('(');
  if (open == std::string_view::npos || token.back() != ')') {
    return Status::InvalidArgument("expected a function call, got '" +
                                   std::string(token) + "'");
  }
  std::string fn(Trim(token.substr(0, open)));
  std::string args_text(token.substr(open + 1, token.size() - open - 2));
  std::vector<std::string> args;
  for (const std::string& arg : Split(args_text, ',')) {
    args.emplace_back(Trim(arg));
  }
  return std::make_pair(fn, args);
}

/// Splits a line into whitespace-separated tokens, but keeps function-call
/// parentheses groups intact by rejoining tokens until parens balance.
std::vector<std::string> Tokenize(std::string_view line) {
  std::vector<std::string> raw;
  std::string current;
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!current.empty()) {
        raw.push_back(current);
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) raw.push_back(current);

  std::vector<std::string> out;
  for (const std::string& token : raw) {
    if (!out.empty()) {
      int balance = 0;
      for (char c : out.back()) {
        if (c == '(') ++balance;
        if (c == ')') --balance;
      }
      if (balance > 0) {
        out.back() += " " + token;
        continue;
      }
    }
    out.push_back(token);
  }
  return out;
}

/// Parses a quantity token: "met", "count(c)", "mass(a[i], b[j])",
/// "dphi(a[i], b[j])", or "pt|eta|abseta|phi(c[i])".
Result<Quantity> ParseQuantity(std::string_view token) {
  Quantity quantity;
  if (token == "met") {
    quantity.kind = Quantity::Kind::kMet;
    return quantity;
  }
  DASPOS_ASSIGN_OR_RETURN(auto call, ParseCall(token));
  const auto& [fn, args] = call;
  if (fn == "count") {
    if (args.size() != 1) {
      return Status::InvalidArgument("count takes one collection");
    }
    quantity.kind = Quantity::Kind::kCount;
    quantity.collection_a = args[0];
    return quantity;
  }
  if (fn == "mass" || fn == "dphi") {
    if (args.size() != 2) {
      return Status::InvalidArgument(fn + " takes two indexed candidates");
    }
    quantity.kind = fn == "mass" ? Quantity::Kind::kMass
                                 : Quantity::Kind::kDeltaPhi;
    DASPOS_ASSIGN_OR_RETURN(auto a, ParseIndexed(args[0]));
    DASPOS_ASSIGN_OR_RETURN(auto b, ParseIndexed(args[1]));
    quantity.collection_a = a.first;
    quantity.index_a = a.second;
    quantity.collection_b = b.first;
    quantity.index_b = b.second;
    return quantity;
  }
  if (fn == "pt" || fn == "eta" || fn == "abseta" || fn == "phi") {
    if (args.size() != 1) {
      return Status::InvalidArgument(fn + " takes one indexed candidate");
    }
    quantity.kind = Quantity::Kind::kAttribute;
    quantity.attribute = fn;
    DASPOS_ASSIGN_OR_RETURN(auto a, ParseIndexed(args[0]));
    quantity.collection_a = a.first;
    quantity.index_a = a.second;
    return quantity;
  }
  return Status::InvalidArgument("unknown quantity '" + fn + "'");
}

std::string QuantityToString(const Quantity& quantity) {
  switch (quantity.kind) {
    case Quantity::Kind::kMet:
      return "met";
    case Quantity::Kind::kCount:
      return "count(" + quantity.collection_a + ")";
    case Quantity::Kind::kMass:
    case Quantity::Kind::kDeltaPhi: {
      const char* fn =
          quantity.kind == Quantity::Kind::kMass ? "mass" : "dphi";
      return std::string(fn) + "(" + quantity.collection_a + "[" +
             std::to_string(quantity.index_a) + "], " +
             quantity.collection_b + "[" +
             std::to_string(quantity.index_b) + "])";
    }
    case Quantity::Kind::kAttribute:
      return quantity.attribute + "(" + quantity.collection_a + "[" +
             std::to_string(quantity.index_a) + "])";
  }
  return "?";
}

}  // namespace

Result<AnalysisDescription> AnalysisDescription::Parse(
    const std::string& text) {
  DASPOS_ASSIGN_OR_RETURN(AnalysisDescription description,
                          ParseStructure(text));
  DASPOS_RETURN_IF_ERROR(description.Validate());
  return description;
}

Result<AnalysisDescription> AnalysisDescription::ParseStructure(
    const std::string& text) {
  AnalysisDescription description;
  ObjectDef* current_object = nullptr;
  CutDef* current_cut = nullptr;
  int line_number = 0;

  auto fail = [&](const std::string& what) {
    return Status::InvalidArgument("line " + std::to_string(line_number) +
                                   ": " + what);
  };

  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_number;
    std::string line(raw_line);
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::vector<std::string> tokens = Tokenize(Trim(line));
    if (tokens.empty()) continue;
    const std::string& keyword = tokens[0];

    if (keyword == "analysis") {
      if (tokens.size() != 2) return fail("'analysis' takes one name");
      description.name_ = tokens[1];
    } else if (keyword == "object") {
      if (tokens.size() != 2) return fail("'object' takes one name");
      description.objects_.push_back(ObjectDef{tokens[1], ObjectType::kJet, {}});
      current_object = &description.objects_.back();
      current_cut = nullptr;
    } else if (keyword == "cut") {
      if (tokens.size() != 2) return fail("'cut' takes one name");
      description.cuts_.push_back(CutDef{tokens[1], {}, {}, {}});
      current_cut = &description.cuts_.back();
      current_object = nullptr;
    } else if (keyword == "take") {
      if (current_object == nullptr) return fail("'take' outside object");
      if (tokens.size() != 2) return fail("'take' takes one base type");
      auto base = ParseBaseType(tokens[1]);
      if (!base.ok()) return fail(base.status().message());
      current_object->base = *base;
    } else if (keyword == "hist") {
      if (current_cut == nullptr) return fail("'hist' outside cut");
      if (tokens.size() != 6) {
        return fail("'hist' needs '<tag> <quantity> <nbins> <lo> <hi>'");
      }
      HistDef hist;
      hist.tag = tokens[1];
      auto quantity = ParseQuantity(tokens[2]);
      if (!quantity.ok()) return fail(quantity.status().message());
      hist.quantity = *quantity;
      auto nbins = ParseU64(tokens[3]);
      if (!nbins.ok() || *nbins == 0) return fail("bad bin count");
      hist.nbins = static_cast<int>(*nbins);
      auto lo = ParseDouble(tokens[4]);
      auto hi = ParseDouble(tokens[5]);
      if (!lo.ok() || !hi.ok() || *hi <= *lo) return fail("bad hist range");
      hist.lo = *lo;
      hist.hi = *hi;
      current_cut->hists.push_back(std::move(hist));
    } else if (keyword == "require") {
      if (current_cut == nullptr) return fail("'require' outside cut");
      if (tokens.size() != 2) return fail("'require' takes one cut name");
      current_cut->requires_cuts.push_back(tokens[1]);
    } else if (keyword == "select") {
      if (current_object != nullptr) {
        if (tokens.size() != 4) {
          return fail("object select needs '<attr> <op> <value>'");
        }
        if (KnownAttributes().count(tokens[1]) == 0) {
          return fail("unknown attribute '" + tokens[1] + "'");
        }
        auto op = ParseOp(tokens[2]);
        if (!op.ok()) return fail(op.status().message());
        auto value = ParseDouble(tokens[3]);
        if (!value.ok()) return fail("bad number '" + tokens[3] + "'");
        current_object->cuts.push_back({tokens[1], *op, *value});
      } else if (current_cut != nullptr) {
        Condition condition;
        if (tokens.size() >= 2 && tokens[1] == "met") {
          if (tokens.size() != 4) return fail("met select needs '<op> <value>'");
          condition.kind = Condition::Kind::kMet;
          auto op = ParseOp(tokens[2]);
          if (!op.ok()) return fail(op.status().message());
          auto value = ParseDouble(tokens[3]);
          if (!value.ok()) return fail("bad number");
          condition.op = *op;
          condition.value = *value;
        } else if (tokens.size() >= 2) {
          auto call = ParseCall(tokens[1]);
          if (!call.ok()) return fail(call.status().message());
          const auto& [fn, args] = *call;
          if (fn == "count") {
            if (args.size() != 1 || tokens.size() != 4) {
              return fail("count(<collection>) <op> <value>");
            }
            condition.kind = Condition::Kind::kCount;
            condition.collection_a = args[0];
          } else if (fn == "mass" || fn == "dphi") {
            if (args.size() != 2 || tokens.size() != 4) {
              return fail(fn + "(<c>[i], <c>[j]) <op> <value>");
            }
            condition.kind = fn == "mass" ? Condition::Kind::kMass
                                          : Condition::Kind::kDeltaPhi;
            auto a = ParseIndexed(args[0]);
            auto b = ParseIndexed(args[1]);
            if (!a.ok()) return fail(a.status().message());
            if (!b.ok()) return fail(b.status().message());
            condition.collection_a = a->first;
            condition.index_a = a->second;
            condition.collection_b = b->first;
            condition.index_b = b->second;
          } else if (fn == "oppositecharge") {
            if (args.size() != 2 || tokens.size() != 2) {
              return fail("oppositecharge(<c>[i], <c>[j]) takes no comparison");
            }
            condition.kind = Condition::Kind::kOppositeCharge;
            auto a = ParseIndexed(args[0]);
            auto b = ParseIndexed(args[1]);
            if (!a.ok()) return fail(a.status().message());
            if (!b.ok()) return fail(b.status().message());
            condition.collection_a = a->first;
            condition.index_a = a->second;
            condition.collection_b = b->first;
            condition.index_b = b->second;
          } else {
            return fail("unknown function '" + fn + "'");
          }
          if (fn != "oppositecharge") {
            auto op = ParseOp(tokens[2]);
            if (!op.ok()) return fail(op.status().message());
            auto value = ParseDouble(tokens[3]);
            if (!value.ok()) return fail("bad number '" + tokens[3] + "'");
            condition.op = *op;
            condition.value = *value;
          }
        } else {
          return fail("malformed select");
        }
        current_cut->conditions.push_back(std::move(condition));
      } else {
        return fail("'select' outside object/cut block");
      }
    } else {
      return fail("unknown keyword '" + keyword + "'");
    }
  }
  return description;
}

Status AnalysisDescription::Validate() const {
  if (name_.empty()) {
    return Status::InvalidArgument("description needs an 'analysis' name");
  }
  std::set<std::string> object_names;
  for (const ObjectDef& object : objects_) {
    if (!object_names.insert(object.name).second) {
      return Status::InvalidArgument("duplicate object '" + object.name +
                                     "'");
    }
  }
  std::set<std::string> cut_names;
  for (const CutDef& cut : cuts_) {
    if (object_names.count(cut.name) > 0 ||
        !cut_names.insert(cut.name).second) {
      return Status::InvalidArgument("duplicate name '" + cut.name + "'");
    }
    for (const std::string& required : cut.requires_cuts) {
      if (cut_names.count(required) == 0 || required == cut.name) {
        return Status::InvalidArgument(
            "cut '" + cut.name + "' requires unknown or later cut '" +
            required + "' (requires must reference earlier cuts)");
      }
    }
    for (const Condition& condition : cut.conditions) {
      auto check_collection = [&](const std::string& collection) -> Status {
        if (collection.empty()) return Status::OK();
        if (object_names.count(collection) == 0) {
          return Status::InvalidArgument("cut '" + cut.name +
                                         "' references unknown collection '" +
                                         collection + "'");
        }
        return Status::OK();
      };
      if (condition.kind != Condition::Kind::kMet) {
        DASPOS_RETURN_IF_ERROR(check_collection(condition.collection_a));
      }
      if (condition.kind == Condition::Kind::kMass ||
          condition.kind == Condition::Kind::kDeltaPhi ||
          condition.kind == Condition::Kind::kOppositeCharge) {
        DASPOS_RETURN_IF_ERROR(check_collection(condition.collection_b));
      }
      if (condition.index_a < 0 || condition.index_b < 0) {
        return Status::InvalidArgument("negative candidate index");
      }
    }
    for (const HistDef& hist : cut.hists) {
      auto check = [&](const std::string& collection) -> Status {
        if (collection.empty() ||
            object_names.count(collection) > 0) {
          return Status::OK();
        }
        return Status::InvalidArgument(
            "hist '" + hist.tag + "' references unknown collection '" +
            collection + "'");
      };
      DASPOS_RETURN_IF_ERROR(check(hist.quantity.collection_a));
      DASPOS_RETURN_IF_ERROR(check(hist.quantity.collection_b));
    }
  }
  if (cuts_.empty()) {
    return Status::InvalidArgument("description needs at least one cut");
  }
  return Status::OK();
}

std::map<std::string, std::vector<PhysicsObject>>
AnalysisDescription::SelectObjects(const AodEvent& event) const {
  std::map<std::string, std::vector<PhysicsObject>> out;
  for (const ObjectDef& object : objects_) {
    std::vector<PhysicsObject> selected;
    for (const PhysicsObject& candidate : event.objects) {
      if (candidate.type != object.base) continue;
      bool pass = true;
      for (const AttributeCut& cut : object.cuts) {
        if (!Compare(Attribute(candidate, cut.attribute), cut.op,
                     cut.value)) {
          pass = false;
          break;
        }
      }
      if (pass) selected.push_back(candidate);
    }
    std::sort(selected.begin(), selected.end(),
              [](const PhysicsObject& a, const PhysicsObject& b) {
                return a.momentum.Pt() > b.momentum.Pt();
              });
    out[object.name] = std::move(selected);
  }
  return out;
}

EventResult AnalysisDescription::Evaluate(const AodEvent& event) const {
  auto collections = SelectObjects(event);
  const PhysicsObject* met = event.Met();
  double met_value = met != nullptr ? met->momentum.Pt() : 0.0;

  EventResult result;
  result.passed.resize(cuts_.size(), false);
  std::map<std::string, bool> passed_by_name;

  for (size_t c = 0; c < cuts_.size(); ++c) {
    const CutDef& cut = cuts_[c];
    bool pass = true;
    for (const std::string& required : cut.requires_cuts) {
      if (!passed_by_name[required]) pass = false;
    }
    for (const Condition& condition : cut.conditions) {
      if (!pass) break;
      switch (condition.kind) {
        case Condition::Kind::kCount: {
          double count = static_cast<double>(
              collections[condition.collection_a].size());
          pass = Compare(count, condition.op, condition.value);
          break;
        }
        case Condition::Kind::kMet:
          pass = Compare(met_value, condition.op, condition.value);
          break;
        case Condition::Kind::kMass:
        case Condition::Kind::kDeltaPhi:
        case Condition::Kind::kOppositeCharge: {
          const auto& list_a = collections[condition.collection_a];
          const auto& list_b = collections[condition.collection_b];
          if (condition.index_a >= static_cast<int>(list_a.size()) ||
              condition.index_b >= static_cast<int>(list_b.size())) {
            pass = false;
            break;
          }
          const PhysicsObject& a =
              list_a[static_cast<size_t>(condition.index_a)];
          const PhysicsObject& b =
              list_b[static_cast<size_t>(condition.index_b)];
          if (condition.kind == Condition::Kind::kOppositeCharge) {
            pass = a.charge * b.charge < 0;
          } else if (condition.kind == Condition::Kind::kMass) {
            pass = Compare(InvariantMass(a.momentum, b.momentum),
                           condition.op, condition.value);
          } else {
            pass = Compare(DeltaPhi(a.momentum, b.momentum), condition.op,
                           condition.value);
          }
          break;
        }
      }
    }
    result.passed[c] = pass;
    passed_by_name[cut.name] = pass;
  }
  result.all_passed = true;
  for (bool passed : result.passed) result.all_passed &= passed;
  return result;
}

Cutflow AnalysisDescription::Run(const std::vector<AodEvent>& events) const {
  return RunWithHistograms(events).cutflow;
}

namespace {

/// Evaluates a quantity on the selected collections; empty when an indexed
/// candidate is absent.
std::optional<double> EvaluateQuantity(
    const Quantity& quantity,
    std::map<std::string, std::vector<PhysicsObject>>& collections,
    double met_value) {
  switch (quantity.kind) {
    case Quantity::Kind::kMet:
      return met_value;
    case Quantity::Kind::kCount:
      return static_cast<double>(collections[quantity.collection_a].size());
    case Quantity::Kind::kMass:
    case Quantity::Kind::kDeltaPhi: {
      const auto& list_a = collections[quantity.collection_a];
      const auto& list_b = collections[quantity.collection_b];
      if (quantity.index_a >= static_cast<int>(list_a.size()) ||
          quantity.index_b >= static_cast<int>(list_b.size())) {
        return std::nullopt;
      }
      const PhysicsObject& a = list_a[static_cast<size_t>(quantity.index_a)];
      const PhysicsObject& b = list_b[static_cast<size_t>(quantity.index_b)];
      return quantity.kind == Quantity::Kind::kMass
                 ? InvariantMass(a.momentum, b.momentum)
                 : DeltaPhi(a.momentum, b.momentum);
    }
    case Quantity::Kind::kAttribute: {
      const auto& list = collections[quantity.collection_a];
      if (quantity.index_a >= static_cast<int>(list.size())) {
        return std::nullopt;
      }
      return Attribute(list[static_cast<size_t>(quantity.index_a)],
                       quantity.attribute == "phi" ? "phi"
                                                   : quantity.attribute);
    }
  }
  return std::nullopt;
}

}  // namespace

AnalysisDescription::RunOutput AnalysisDescription::RunWithHistograms(
    const std::vector<AodEvent>& events) const {
  RunOutput output;
  for (const CutDef& cut : cuts_) output.cutflow.cut_names.push_back(cut.name);
  output.cutflow.passed_counts.assign(cuts_.size(), 0);
  output.cutflow.events = events.size();

  // Book every declared histogram.
  std::vector<std::vector<size_t>> hist_index(cuts_.size());
  for (size_t c = 0; c < cuts_.size(); ++c) {
    for (const HistDef& hist : cuts_[c].hists) {
      hist_index[c].push_back(output.histograms.size());
      output.histograms.emplace_back(
          "/" + name_ + "/" + cuts_[c].name + "/" + hist.tag, hist.nbins,
          hist.lo, hist.hi);
    }
  }

  for (const AodEvent& event : events) {
    EventResult result = Evaluate(event);
    for (size_t c = 0; c < result.passed.size(); ++c) {
      if (!result.passed[c]) continue;
      ++output.cutflow.passed_counts[c];
      if (hist_index[c].empty()) continue;
      auto collections = SelectObjects(event);
      const PhysicsObject* met = event.Met();
      double met_value = met != nullptr ? met->momentum.Pt() : 0.0;
      for (size_t h = 0; h < cuts_[c].hists.size(); ++h) {
        auto value = EvaluateQuantity(cuts_[c].hists[h].quantity,
                                      collections, met_value);
        if (value.has_value()) {
          output.histograms[hist_index[c][h]].Fill(*value, event.weight);
        }
      }
    }
  }
  return output;
}

std::string Cutflow::Render() const {
  TextTable table;
  table.SetTitle("Cutflow (" + std::to_string(events) + " events):");
  table.SetHeader({"cut", "passed", "efficiency"});
  for (size_t c = 0; c < cut_names.size(); ++c) {
    double efficiency = events > 0 ? static_cast<double>(passed_counts[c]) /
                                         static_cast<double>(events)
                                   : 0.0;
    table.AddRow({cut_names[c], std::to_string(passed_counts[c]),
                  FormatDouble(efficiency, 4)});
  }
  return table.Render();
}

std::string AnalysisDescription::Serialize() const {
  std::string out = "analysis " + name_ + "\n";
  for (const ObjectDef& object : objects_) {
    out += "\nobject " + object.name + "\n";
    out += "  take " + std::string(ObjectTypeName(object.base)) + "\n";
    for (const AttributeCut& cut : object.cuts) {
      out += "  select " + cut.attribute + " " +
             std::string(CompareOpName(cut.op)) + " " +
             FormatDouble(cut.value, 17) + "\n";
    }
  }
  for (const CutDef& cut : cuts_) {
    out += "\ncut " + cut.name + "\n";
    for (const std::string& required : cut.requires_cuts) {
      out += "  require " + required + "\n";
    }
    for (const Condition& condition : cut.conditions) {
      out += "  select ";
      switch (condition.kind) {
        case Condition::Kind::kCount:
          out += "count(" + condition.collection_a + ") " +
                 std::string(CompareOpName(condition.op)) + " " +
                 FormatDouble(condition.value, 17);
          break;
        case Condition::Kind::kMet:
          out += "met " + std::string(CompareOpName(condition.op)) + " " +
                 FormatDouble(condition.value, 17);
          break;
        case Condition::Kind::kMass:
        case Condition::Kind::kDeltaPhi: {
          const char* fn =
              condition.kind == Condition::Kind::kMass ? "mass" : "dphi";
          out += std::string(fn) + "(" + condition.collection_a + "[" +
                 std::to_string(condition.index_a) + "], " +
                 condition.collection_b + "[" +
                 std::to_string(condition.index_b) + "]) " +
                 std::string(CompareOpName(condition.op)) + " " +
                 FormatDouble(condition.value, 17);
          break;
        }
        case Condition::Kind::kOppositeCharge:
          out += "oppositecharge(" + condition.collection_a + "[" +
                 std::to_string(condition.index_a) + "], " +
                 condition.collection_b + "[" +
                 std::to_string(condition.index_b) + "])";
          break;
      }
      out += "\n";
    }
    for (const HistDef& hist : cut.hists) {
      out += "  hist " + hist.tag + " " + QuantityToString(hist.quantity) +
             " " + std::to_string(hist.nbins) + " " +
             FormatDouble(hist.lo, 17) + " " + FormatDouble(hist.hi, 17) +
             "\n";
    }
  }
  return out;
}

}  // namespace lhada
}  // namespace daspos
