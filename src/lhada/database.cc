#include "lhada/database.h"

#include "support/strings.h"

namespace daspos {
namespace lhada {

Result<std::string> AnalysisDatabase::Submit(const std::string& document) {
  DASPOS_ASSIGN_OR_RETURN(AnalysisDescription description,
                          AnalysisDescription::Parse(document));
  const std::string& name = description.name();
  if (documents_.count(name) > 0) {
    return Status::AlreadyExists("analysis '" + name +
                                 "' already in the database");
  }
  // Store the canonical form so lookups are byte-stable regardless of the
  // submitter's formatting.
  documents_.emplace(name, description.Serialize());
  order_.push_back(name);
  return name;
}

Result<std::string> AnalysisDatabase::GetDocument(
    const std::string& name) const {
  auto it = documents_.find(name);
  if (it == documents_.end()) {
    return Status::NotFound("no analysis '" + name + "' in the database");
  }
  return it->second;
}

Result<AnalysisDescription> AnalysisDatabase::GetAnalysis(
    const std::string& name) const {
  DASPOS_ASSIGN_OR_RETURN(std::string document, GetDocument(name));
  return AnalysisDescription::Parse(document);
}

bool AnalysisDatabase::Has(const std::string& name) const {
  return documents_.count(name) > 0;
}

std::vector<std::string> AnalysisDatabase::Names() const { return order_; }

std::vector<std::string> AnalysisDatabase::Search(
    const std::string& query) const {
  std::string needle = ToLower(query);
  std::vector<std::string> out;
  for (const std::string& name : order_) {
    if (ToLower(name).find(needle) != std::string::npos ||
        ToLower(documents_.at(name)).find(needle) != std::string::npos) {
      out.push_back(name);
    }
  }
  return out;
}

}  // namespace lhada
}  // namespace daspos
