#include "hepdata/record.h"

#include <algorithm>
#include <cmath>

#include "support/strings.h"

namespace daspos {
namespace hepdata {

DataTable DataTable::FromHistogram(const Histo1D& histogram, std::string name,
                                   std::string independent,
                                   std::string dependent) {
  DataTable table;
  table.name = std::move(name);
  table.independent_variable = std::move(independent);
  table.dependent_variable = std::move(dependent);
  const Axis& axis = histogram.axis();
  table.points.reserve(static_cast<size_t>(axis.nbins()));
  for (int i = 0; i < axis.nbins(); ++i) {
    DataPoint point;
    point.x_lo = axis.BinLow(i);
    point.x_hi = axis.BinHigh(i);
    point.y = histogram.BinContent(i);
    point.y_err = histogram.BinError(i);
    table.points.push_back(point);
  }
  return table;
}

Result<Histo1D> DataTable::ToHistogram(const std::string& path) const {
  if (points.empty()) {
    return Status::InvalidArgument("table '" + name + "' has no points");
  }
  double width = points[0].x_hi - points[0].x_lo;
  if (width <= 0.0) {
    return Status::InvalidArgument("table '" + name + "' has non-positive bin width");
  }
  for (const DataPoint& point : points) {
    if (std::fabs((point.x_hi - point.x_lo) - width) > 1e-9 * width) {
      return Status::InvalidArgument(
          "table '" + name + "' has non-uniform binning");
    }
  }
  Histo1D histogram(path, static_cast<int>(points.size()), points[0].x_lo,
                    points.back().x_hi);
  for (size_t i = 0; i < points.size(); ++i) {
    histogram.SetBin(static_cast<int>(i), points[i].y,
                     points[i].y_err * points[i].y_err);
  }
  return histogram;
}

Json DataTable::ToJson() const {
  Json json = Json::Object();
  json["name"] = name;
  json["independent_variable"] = independent_variable;
  json["dependent_variable"] = dependent_variable;
  Json rows = Json::Array();
  for (const DataPoint& point : points) {
    Json row = Json::Array();
    row.push_back(point.x_lo);
    row.push_back(point.x_hi);
    row.push_back(point.y);
    row.push_back(point.y_err);
    rows.push_back(std::move(row));
  }
  json["points"] = std::move(rows);
  return json;
}

Result<DataTable> DataTable::FromJson(const Json& json) {
  DataTable table;
  table.name = json.Get("name").as_string();
  table.independent_variable = json.Get("independent_variable").as_string();
  table.dependent_variable = json.Get("dependent_variable").as_string();
  const Json& rows = json.Get("points");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Json& row = rows.at(i);
    if (row.size() != 4) {
      return Status::Corruption("data point row must have 4 entries");
    }
    DataPoint point;
    point.x_lo = row.at(0).as_number();
    point.x_hi = row.at(1).as_number();
    point.y = row.at(2).as_number();
    point.y_err = row.at(3).as_number();
    table.points.push_back(point);
  }
  return table;
}

Json HepDataRecord::ToJson() const {
  Json json = Json::Object();
  json["id"] = id;
  json["title"] = title;
  json["experiment"] = experiment;
  json["year"] = year;
  json["reaction"] = reaction;
  Json keyword_list = Json::Array();
  for (const std::string& keyword : keywords) keyword_list.push_back(keyword);
  json["keywords"] = std::move(keyword_list);
  Json table_list = Json::Array();
  for (const DataTable& table : tables) table_list.push_back(table.ToJson());
  json["tables"] = std::move(table_list);
  return json;
}

Result<HepDataRecord> HepDataRecord::FromJson(const Json& json) {
  HepDataRecord record;
  record.id = json.Get("id").as_string();
  record.title = json.Get("title").as_string();
  record.experiment = json.Get("experiment").as_string();
  record.year = static_cast<int>(json.Get("year").as_int());
  record.reaction = json.Get("reaction").as_string();
  const Json& keywords = json.Get("keywords");
  for (size_t i = 0; i < keywords.size(); ++i) {
    record.keywords.push_back(keywords.at(i).as_string());
  }
  const Json& tables = json.Get("tables");
  for (size_t i = 0; i < tables.size(); ++i) {
    DASPOS_ASSIGN_OR_RETURN(DataTable table,
                            DataTable::FromJson(tables.at(i)));
    record.tables.push_back(std::move(table));
  }
  return record;
}

Status HepDataArchive::Submit(HepDataRecord record) {
  if (record.id.empty()) {
    return Status::InvalidArgument("record needs an id");
  }
  if (records_.count(record.id) > 0) {
    return Status::AlreadyExists("record '" + record.id + "' exists");
  }
  if (record.tables.empty()) {
    return Status::InvalidArgument("record '" + record.id +
                                   "' has no data tables");
  }
  for (const DataTable& table : record.tables) {
    if (table.points.empty()) {
      return Status::InvalidArgument("table '" + table.name + "' is empty");
    }
    for (const DataPoint& point : table.points) {
      if (point.x_hi <= point.x_lo) {
        return Status::InvalidArgument("table '" + table.name +
                                       "' has an inverted bin");
      }
      if (point.y_err < 0.0) {
        return Status::InvalidArgument("table '" + table.name +
                                       "' has a negative uncertainty");
      }
    }
  }
  order_.push_back(record.id);
  records_.emplace(record.id, std::move(record));
  return Status::OK();
}

Result<HepDataRecord> HepDataArchive::Get(const std::string& id) const {
  auto it = records_.find(id);
  if (it == records_.end()) {
    return Status::NotFound("no record '" + id + "'");
  }
  return it->second;
}

bool HepDataArchive::Has(const std::string& id) const {
  return records_.count(id) > 0;
}

std::vector<std::string> HepDataArchive::Search(
    const std::string& query) const {
  std::string needle = ToLower(query);
  std::vector<std::string> out;
  for (const std::string& id : order_) {
    const HepDataRecord& record = records_.at(id);
    auto matches = [&](const std::string& text) {
      return ToLower(text).find(needle) != std::string::npos;
    };
    bool hit = matches(record.title) || matches(record.reaction) ||
               matches(record.experiment);
    for (const std::string& keyword : record.keywords) {
      hit = hit || matches(keyword);
    }
    if (hit) out.push_back(id);
  }
  return out;
}

Status HepDataArchive::LinkInspire(const std::string& inspire_id,
                                   const std::string& record_id) {
  if (!Has(record_id)) {
    return Status::NotFound("no record '" + record_id + "' to link");
  }
  auto& linked = inspire_links_[inspire_id];
  for (const std::string& existing : linked) {
    if (existing == record_id) return Status::OK();  // idempotent
  }
  linked.push_back(record_id);
  return Status::OK();
}

std::vector<std::string> HepDataArchive::RecordsForInspire(
    const std::string& inspire_id) const {
  auto it = inspire_links_.find(inspire_id);
  return it != inspire_links_.end() ? it->second
                                    : std::vector<std::string>{};
}

}  // namespace hepdata
}  // namespace daspos
