// The HepData-analog (§2.3): a "Reactions Database" of published numerical
// results — data tables with reaction strings and keywords, searchable, and
// cross-linked from INSPIRE-like literature ids. It preserves *results*,
// not code ("it does not usually preserve the code necessary to reproduce
// the analysis").
#ifndef DASPOS_HEPDATA_RECORD_H_
#define DASPOS_HEPDATA_RECORD_H_

#include <map>
#include <string>
#include <vector>

#include "hist/histo1d.h"
#include "serialize/json.h"
#include "support/result.h"

namespace daspos {
namespace hepdata {

/// One row of a data table: x bin and measured value with uncertainty.
struct DataPoint {
  double x_lo = 0.0;
  double x_hi = 0.0;
  double y = 0.0;
  double y_err = 0.0;
};

/// One table of a record (e.g. a differential cross section, or an
/// acceptance grid row for a SUSY search — the §2.3 examples).
struct DataTable {
  std::string name;
  std::string independent_variable;  // "M(mu+mu-) [GeV]"
  std::string dependent_variable;    // "d(sigma)/dM [pb/GeV]"
  std::vector<DataPoint> points;

  /// Builds a table from a histogram (bin edges + contents + errors).
  static DataTable FromHistogram(const Histo1D& histogram, std::string name,
                                 std::string independent,
                                 std::string dependent);
  /// Reconstructs a histogram when the binning is uniform; fails otherwise.
  Result<Histo1D> ToHistogram(const std::string& path) const;

  Json ToJson() const;
  static Result<DataTable> FromJson(const Json& json);
};

/// One published record.
struct HepDataRecord {
  /// Record id, conventionally "ins<number>" mirroring the INSPIRE id.
  std::string id;
  std::string title;
  std::string experiment;
  int year = 0;
  /// Reaction string ("P P --> Z0 < MU+ MU- > X").
  std::string reaction;
  std::vector<std::string> keywords;
  std::vector<DataTable> tables;

  Json ToJson() const;
  static Result<HepDataRecord> FromJson(const Json& json);
};

/// The archive: submission, retrieval, search, and literature links.
class HepDataArchive {
 public:
  /// Validates and stores a record: unique id, at least one table, every
  /// table non-empty with coherent bin edges.
  Status Submit(HepDataRecord record);

  Result<HepDataRecord> Get(const std::string& id) const;
  bool Has(const std::string& id) const;
  size_t size() const { return records_.size(); }

  /// Case-insensitive substring search over title, reaction, experiment,
  /// and keywords. Returns matching ids in submission order.
  std::vector<std::string> Search(const std::string& query) const;

  /// Links an INSPIRE literature id to a record (both directions queryable,
  /// mirroring "INSPIRE entries often contain links to entries ... in the
  /// HepData archive").
  Status LinkInspire(const std::string& inspire_id,
                     const std::string& record_id);
  std::vector<std::string> RecordsForInspire(
      const std::string& inspire_id) const;

 private:
  std::map<std::string, HepDataRecord> records_;
  std::vector<std::string> order_;
  std::map<std::string, std::vector<std::string>> inspire_links_;
};

}  // namespace hepdata
}  // namespace daspos

#endif  // DASPOS_HEPDATA_RECORD_H_
