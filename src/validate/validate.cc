#include "validate/validate.h"

#include <algorithm>
#include <cctype>
#include <memory>
#include <utility>

#include "conditions/store.h"
#include "detsim/calib.h"
#include "hist/compare.h"
#include "hist/yoda_io.h"
#include "rivet/analysis.h"
#include "rivet/registry.h"
#include "support/fault.h"
#include "support/metrics.h"
#include "support/metrics_registry.h"
#include "support/parallel.h"
#include "support/sha256.h"
#include "support/strings.h"
#include "support/trace.h"
#include "tiers/dataset.h"
#include "workflow/engine.h"
#include "workflow/journal.h"
#include "workflow/steps.h"

namespace daspos {
namespace validate {

namespace {

constexpr char kTitlePrefix[] = "campaign:";
constexpr char kManifestKey[] = "daspos_campaign";
constexpr char kReferencePrefix[] = "validate/";
constexpr char kReferenceSuffix[] = ".yoda";
constexpr int kManifestSchema = 1;

bool IsPathSafeName(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return name != "." && name != "..";
}

Result<Process> ProcessByName(const std::string& name) {
  for (const ProcessInfo& info : AllProcesses()) {
    if (info.name == name) return info.id;
  }
  return Status::InvalidArgument("unknown process '" + name + "'");
}

/// Runs the campaign's chain strictly serially (the deterministic reference
/// path: one thread, no intra-step pool) with the caller's retry/journal/
/// fault knobs. The conditions database lives only for the execution, like
/// the capturing run's did.
Status RunCampaignChain(const CampaignSpec& spec, ExecuteOptions options,
                        WorkflowContext* context,
                        ProvenanceStore* provenance) {
  Workflow workflow = StandardChainWorkflow(spec.process, spec.events,
                                            spec.seed);
  ConditionsDb conditions;
  CalibrationSet calib;
  DASPOS_RETURN_IF_ERROR(
      conditions.Append(kCalibrationTag, 1, calib.ToPayload()));
  context->set_conditions(&conditions);
  options.max_threads = 1;
  auto report = workflow.Execute(context, provenance, options);
  context->set_conditions(nullptr);
  return report.status();
}

/// Handles on every validation instrument, resolved once per farm run.
struct Instruments {
  Counter* runs;
  Counter* cells;
  Counter* pass;
  Counter* warn;
  Counter* fail;
  Counter* histograms;
  Histogram* cell_wall;

  static Instruments Resolve() {
    MetricsRegistry& reg = MetricsRegistry::Global();
    return Instruments{
        &reg.GetCounter(metric_names::kValidationRunsTotal),
        &reg.GetCounter(metric_names::kValidationCellsTotal),
        &reg.GetCounter(metric_names::kValidationPassTotal),
        &reg.GetCounter(metric_names::kValidationWarnTotal),
        &reg.GetCounter(metric_names::kValidationFailTotal),
        &reg.GetCounter(metric_names::kValidationHistogramsTotal),
        &reg.GetHistogram(metric_names::kValidationCellWallMs,
                          Histogram::DefaultLatencyBucketsMs()),
    };
  }

  void CountCell(const CellResult& cell) const {
    cells->Increment();
    switch (cell.verdict) {
      case Verdict::kPass: pass->Increment(); break;
      case Verdict::kWarn: warn->Increment(); break;
      case Verdict::kFail: fail->Increment(); break;
    }
    histograms->Increment(static_cast<uint64_t>(cell.histograms_compared));
    cell_wall->Observe(cell.wall_ms);
  }
};

CellResult FailedCell(const std::string& campaign, const std::string& analysis,
                      std::string detail) {
  CellResult cell;
  cell.campaign = campaign;
  cell.analysis = analysis;
  cell.verdict = Verdict::kFail;
  cell.detail = std::move(detail);
  return cell;
}

/// Compares produced vs reference histograms path by path. chi^2 is a shape
/// comparison (normalized copies); KS normalizes internally.
Status CompareHistograms(const std::vector<Histo1D>& produced,
                         const std::vector<Histo1D>& reference,
                         CellResult* cell) {
  for (const Histo1D& ref : reference) {
    const Histo1D* match = nullptr;
    for (const Histo1D& histo : produced) {
      if (histo.path() == ref.path()) {
        match = &histo;
        break;
      }
    }
    if (match == nullptr) {
      ++cell->histograms_missing;
      continue;
    }
    Histo1D a = *match;
    Histo1D b = ref;
    a.Normalize();
    b.Normalize();
    DASPOS_ASSIGN_OR_RETURN(Chi2Result chi2, Chi2Test(a, b));
    DASPOS_ASSIGN_OR_RETURN(double ks, KolmogorovDistance(*match, ref));
    cell->worst_chi2 = std::max(cell->worst_chi2, chi2.reduced());
    cell->worst_ks = std::max(cell->worst_ks, ks);
    ++cell->histograms_compared;
  }
  return Status::OK();
}

/// One matrix cell: run the analysis over the re-generated events and gate
/// the comparison through the thresholds.
CellResult ValidateCell(const Campaign& campaign, const std::string& analysis,
                        const std::vector<GenEvent>& events,
                        const std::string& drift_detail,
                        const Thresholds& thresholds) {
  Span span("validate:cell", "validate");
  span.AddAttribute("campaign", campaign.spec.name);
  span.AddAttribute("analysis", analysis);
  WallTimer timer;

  CellResult cell;
  cell.campaign = campaign.spec.name;
  cell.analysis = analysis;
  cell.chain_identical = drift_detail.empty();

  auto finish = [&](Verdict verdict, std::string detail) {
    cell.verdict = verdict;
    cell.detail = std::move(detail);
    cell.wall_ms = timer.ElapsedMillis();
    return cell;
  };

  auto reference_it = campaign.reference_yoda.find(analysis);
  if (reference_it == campaign.reference_yoda.end()) {
    return finish(Verdict::kFail, "no archived reference histograms");
  }
  auto reference = ReadYoda(reference_it->second);
  if (!reference.ok()) {
    return finish(Verdict::kFail,
                  "reference unreadable: " + reference.status().ToString());
  }
  auto instance = rivet::AnalysisRegistry::Global().Create(analysis);
  if (!instance.ok()) {
    return finish(Verdict::kFail, instance.status().ToString());
  }

  rivet::AnalysisHandler handler;
  handler.Add(std::move(*instance));
  // Serial Run: per-analysis fills are bit-identical either way, and the
  // farm's parallelism lives at the matrix level.
  handler.Run(events, nullptr);
  std::vector<Histo1D> produced = handler.Finalize();

  if (auto status = CompareHistograms(produced, *reference, &cell);
      !status.ok()) {
    return finish(Verdict::kFail, "comparison failed: " + status.ToString());
  }
  if (cell.histograms_missing > 0) {
    return finish(Verdict::kFail,
                  "missing " + std::to_string(cell.histograms_missing) +
                      " of " +
                      std::to_string(cell.histograms_missing +
                                     cell.histograms_compared) +
                      " reference histogram(s)");
  }
  if (cell.histograms_compared == 0) {
    return finish(Verdict::kFail, "reference has no histograms");
  }
  if (cell.worst_chi2 > thresholds.fail_chi2) {
    return finish(Verdict::kFail, "reduced chi2 " +
                                      FormatDouble(cell.worst_chi2, 3) +
                                      " > " +
                                      FormatDouble(thresholds.fail_chi2, 3));
  }
  if (cell.worst_chi2 > thresholds.warn_chi2) {
    return finish(Verdict::kWarn, "reduced chi2 " +
                                      FormatDouble(cell.worst_chi2, 3) +
                                      " > " +
                                      FormatDouble(thresholds.warn_chi2, 3));
  }
  if (cell.worst_ks > thresholds.warn_ks) {
    return finish(Verdict::kWarn,
                  "KS distance " + FormatDouble(cell.worst_ks, 3) + " > " +
                      FormatDouble(thresholds.warn_ks, 3));
  }
  if (!cell.chain_identical) {
    return finish(Verdict::kWarn, drift_detail);
  }
  return finish(Verdict::kPass, "");
}

/// Re-executes one campaign's chain and validates every selected analysis
/// against it. Chain-level failures fail every cell of the campaign.
std::vector<CellResult> ValidateCampaign(const Campaign& campaign,
                                         const std::vector<std::string>& analyses,
                                         const ValidateOptions& options) {
  Span span("validate:campaign", "validate");
  span.AddAttribute("campaign", campaign.spec.name);

  auto fail_all = [&](const std::string& detail) {
    std::vector<CellResult> cells;
    cells.reserve(analyses.size());
    for (const std::string& analysis : analyses) {
      cells.push_back(FailedCell(campaign.spec.name, analysis, detail));
    }
    return cells;
  };

  ExecuteOptions exec;
  exec.max_step_retries = options.max_step_retries;
  exec.retry_backoff_ms = options.retry_backoff_ms;
  exec.step_faults = options.step_faults;
  std::unique_ptr<RunJournal> journal;
  if (!options.journal_root.empty()) {
    auto opened =
        RunJournal::Open(options.journal_root + "/" + campaign.spec.name);
    if (!opened.ok()) {
      return fail_all("journal open failed: " + opened.status().ToString());
    }
    journal = std::move(*opened);
    exec.journal = journal.get();
    exec.resume = true;
  }

  WorkflowContext context;
  ProvenanceStore provenance;
  if (auto status =
          RunCampaignChain(campaign.spec, exec, &context, &provenance);
      !status.ok()) {
    return fail_all("chain execution failed: " + status.ToString());
  }

  // Bit-preservation drift: every dataset the capturing chain archived must
  // reproduce digest-for-digest.
  std::string drift;
  for (const auto& [name, digest] : campaign.dataset_digests) {
    auto blob = context.GetDataset(name);
    if (!blob.ok()) {
      drift += (drift.empty() ? "" : ", ");
      drift += "dataset '" + name + "' not produced";
      continue;
    }
    if (Sha256::HashHex(*blob) != digest) {
      drift += (drift.empty() ? "" : ", ");
      drift += "dataset '" + name + "' digest drift";
    }
  }
  if (!drift.empty()) drift = "bit-preservation drift: " + drift;

  auto events_blob = context.GetDataset("gen");
  if (!events_blob.ok()) {
    return fail_all("chain produced no 'gen' dataset");
  }
  auto events = ReadGenDataset(*events_blob);
  if (!events.ok()) {
    return fail_all("gen dataset unreadable: " + events.status().ToString());
  }

  // Nested fan-out is safe: ParallelMap on a busy pool has the caller
  // participate instead of deadlocking.
  return ParallelMap<CellResult>(
      options.pool, analyses.size(),
      [&](size_t i) {
        return ValidateCell(campaign, analyses[i], *events, drift,
                            options.thresholds);
      },
      /*grain=*/1);
}

}  // namespace

std::string_view VerdictName(Verdict verdict) {
  switch (verdict) {
    case Verdict::kPass: return "pass";
    case Verdict::kWarn: return "warn";
    case Verdict::kFail: return "fail";
  }
  return "fail";
}

Result<std::string> CaptureCampaign(Archive* archive, CampaignSpec spec) {
  if (archive == nullptr) {
    return Status::InvalidArgument("capture requires an archive");
  }
  if (!IsPathSafeName(spec.name)) {
    return Status::InvalidArgument(
        "campaign name must be non-empty and path-safe ([A-Za-z0-9._-]): '" +
        spec.name + "'");
  }
  if (spec.events == 0) {
    return Status::InvalidArgument("campaign needs at least one event");
  }
  rivet::AnalysisRegistry& registry = rivet::AnalysisRegistry::Global();
  if (spec.analyses.empty()) spec.analyses = registry.Names();
  std::sort(spec.analyses.begin(), spec.analyses.end());
  spec.analyses.erase(
      std::unique(spec.analyses.begin(), spec.analyses.end()),
      spec.analyses.end());
  for (const std::string& analysis : spec.analyses) {
    if (!registry.Has(analysis)) {
      return Status::NotFound("analysis '" + analysis +
                              "' is not in the registry");
    }
  }

  Span span("validate:capture", "validate");
  span.AddAttribute("campaign", spec.name);

  WorkflowContext context;
  ProvenanceStore provenance;
  DASPOS_RETURN_IF_ERROR(
      RunCampaignChain(spec, ExecuteOptions{}, &context, &provenance));

  DASPOS_ASSIGN_OR_RETURN(std::string_view gen_blob,
                          context.GetDataset("gen"));
  DASPOS_ASSIGN_OR_RETURN(std::vector<GenEvent> events,
                          ReadGenDataset(gen_blob));

  SubmissionPackage submission;
  submission.title = kTitlePrefix + spec.name;
  submission.creator = "daspos validate";
  submission.description = "continuous-validation campaign " + spec.name;
  submission.keywords = {"validation", "campaign"};

  Json manifest = Json::Object();
  manifest["schema"] = kManifestSchema;
  manifest["name"] = spec.name;
  manifest["process"] = GetProcessInfo(spec.process).name;
  manifest["events"] = static_cast<int64_t>(spec.events);
  manifest["seed"] = static_cast<int64_t>(spec.seed);
  Json analyses_json = Json::Array();
  for (const std::string& analysis : spec.analyses) {
    analyses_json.push_back(Json(analysis));
  }
  manifest["analyses"] = std::move(analyses_json);
  Json digests = Json::Object();
  for (const std::string& name : context.DatasetNames()) {
    DASPOS_ASSIGN_OR_RETURN(std::string_view blob, context.GetDataset(name));
    digests[name] = Sha256::HashHex(blob);
  }
  manifest["datasets"] = std::move(digests);
  submission.context[kManifestKey] = std::move(manifest);

  for (const std::string& analysis : spec.analyses) {
    DASPOS_ASSIGN_OR_RETURN(std::unique_ptr<rivet::Analysis> instance,
                            registry.Create(analysis));
    rivet::AnalysisHandler handler;
    handler.Add(std::move(instance));
    handler.Run(events, nullptr);
    PackageFile file;
    file.logical_name = kReferencePrefix + analysis + kReferenceSuffix;
    file.media_type = "text/x-yoda";
    file.bytes = WriteYoda(handler.Finalize());
    submission.files.push_back(std::move(file));
  }
  PackageFile chain_file;
  chain_file.logical_name = "validate/provenance.json";
  chain_file.media_type = "application/json";
  chain_file.bytes = provenance.Serialize();
  submission.files.push_back(std::move(chain_file));

  return archive->Deposit(submission);
}

Result<CampaignSet> EnumerateCampaigns(const Archive& archive) {
  CampaignSet set;
  for (const HoldingSummary& holding : archive.Holdings()) {
    if (holding.title.rfind(kTitlePrefix, 0) != 0) continue;
    BrokenPackage broken;
    broken.archive_id = holding.archive_id;
    broken.name = holding.title.substr(sizeof(kTitlePrefix) - 1);

    auto package = archive.Retrieve(holding.archive_id);
    if (!package.ok()) {
      broken.error = package.status().ToString();
      set.broken.push_back(std::move(broken));
      continue;
    }
    const Json& manifest = package->content.context.Get(kManifestKey);
    if (!manifest.is_object() || !manifest.Get("name").is_string() ||
        !manifest.Get("process").is_string() ||
        !manifest.Get("events").is_number() ||
        !manifest.Get("seed").is_number() ||
        !manifest.Get("analyses").is_array()) {
      broken.error = "malformed campaign manifest";
      set.broken.push_back(std::move(broken));
      continue;
    }
    Campaign campaign;
    campaign.archive_id = holding.archive_id;
    campaign.spec.name = manifest.Get("name").as_string();
    auto process = ProcessByName(manifest.Get("process").as_string());
    if (!process.ok()) {
      broken.error = process.status().ToString();
      set.broken.push_back(std::move(broken));
      continue;
    }
    campaign.spec.process = *process;
    campaign.spec.events =
        static_cast<size_t>(manifest.Get("events").as_int());
    campaign.spec.seed = static_cast<uint64_t>(manifest.Get("seed").as_int());
    const Json& analyses = manifest.Get("analyses");
    for (size_t i = 0; i < analyses.size(); ++i) {
      campaign.spec.analyses.push_back(analyses.at(i).as_string());
    }
    std::sort(campaign.spec.analyses.begin(), campaign.spec.analyses.end());
    const Json& digests = manifest.Get("datasets");
    if (digests.is_object()) {
      for (const auto& [name, digest] : digests.members()) {
        campaign.dataset_digests[name] = digest.as_string();
      }
    }
    for (const PackageFile& file : package->content.files) {
      const std::string& name = file.logical_name;
      if (name.rfind(kReferencePrefix, 0) != 0) continue;
      if (name.size() <= sizeof(kReferencePrefix) - 1 + 5) continue;
      if (name.substr(name.size() - 5) != kReferenceSuffix) continue;
      std::string analysis = name.substr(
          sizeof(kReferencePrefix) - 1,
          name.size() - (sizeof(kReferencePrefix) - 1) - 5);
      campaign.reference_yoda[analysis] = file.bytes;
    }
    set.campaigns.push_back(std::move(campaign));
  }
  std::sort(set.campaigns.begin(), set.campaigns.end(),
            [](const Campaign& a, const Campaign& b) {
              return a.spec.name < b.spec.name;
            });
  std::sort(set.broken.begin(), set.broken.end(),
            [](const BrokenPackage& a, const BrokenPackage& b) {
              return a.name < b.name;
            });
  return set;
}

Verdict ValidationReport::Overall() const {
  Verdict worst = Verdict::kPass;
  for (const CellResult& cell : cells) {
    worst = std::max(worst, cell.verdict);
  }
  return worst;
}

std::string ValidationReport::RenderText() const {
  std::string out = "validation matrix: " + std::to_string(campaigns) +
                    " campaign(s), " + std::to_string(cells.size()) +
                    " cell(s)\n";
  for (const CellResult& cell : cells) {
    std::string verdict(VerdictName(cell.verdict));
    std::transform(verdict.begin(), verdict.end(), verdict.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    out += "  " + verdict + "  " + cell.campaign + " / " + cell.analysis;
    if (cell.histograms_compared > 0) {
      out += "  " + std::to_string(cell.histograms_compared) +
             " histo(s)  chi2/ndf " + FormatDouble(cell.worst_chi2, 3) +
             "  ks " + FormatDouble(cell.worst_ks, 3);
    }
    if (!cell.detail.empty()) out += "  (" + cell.detail + ")";
    out += "\n";
  }
  std::string overall(VerdictName(Overall()));
  std::transform(overall.begin(), overall.end(), overall.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  out += "verdict: " + overall + " (" + std::to_string(passed) + " pass, " +
         std::to_string(warned) + " warn, " + std::to_string(failed) +
         " fail)\n";
  return out;
}

Json ValidationReport::ToJson() const {
  Json json = Json::Object();
  json["verdict"] = std::string(VerdictName(Overall()));
  json["campaigns"] = static_cast<int64_t>(campaigns);
  json["passed"] = static_cast<int64_t>(passed);
  json["warned"] = static_cast<int64_t>(warned);
  json["failed"] = static_cast<int64_t>(failed);
  json["wall_ms"] = wall_ms;
  Json cell_array = Json::Array();
  for (const CellResult& cell : cells) {
    Json entry = Json::Object();
    entry["campaign"] = cell.campaign;
    entry["analysis"] = cell.analysis;
    entry["verdict"] = std::string(VerdictName(cell.verdict));
    entry["detail"] = cell.detail;
    entry["histograms_compared"] = static_cast<int64_t>(cell.histograms_compared);
    entry["histograms_missing"] = static_cast<int64_t>(cell.histograms_missing);
    entry["worst_chi2"] = cell.worst_chi2;
    entry["worst_ks"] = cell.worst_ks;
    entry["chain_identical"] = cell.chain_identical;
    entry["wall_ms"] = cell.wall_ms;
    cell_array.push_back(std::move(entry));
  }
  json["cells"] = std::move(cell_array);
  return json;
}

Result<ValidationReport> ValidateArchive(const Archive& archive,
                                         const ValidateOptions& options) {
  Instruments instruments = Instruments::Resolve();
  instruments.runs->Increment();
  Span span("validate:matrix", "validate");
  WallTimer timer;

  DASPOS_ASSIGN_OR_RETURN(CampaignSet set, EnumerateCampaigns(archive));

  std::vector<const Campaign*> campaigns;
  for (const Campaign& campaign : set.campaigns) {
    if (!options.campaign_filter.empty() &&
        campaign.spec.name != options.campaign_filter) {
      continue;
    }
    campaigns.push_back(&campaign);
  }
  std::vector<std::vector<std::string>> selected(campaigns.size());
  for (size_t i = 0; i < campaigns.size(); ++i) {
    for (const std::string& analysis : campaigns[i]->spec.analyses) {
      if (!options.analysis_filter.empty() &&
          analysis != options.analysis_filter) {
        continue;
      }
      selected[i].push_back(analysis);
    }
  }

  std::vector<std::vector<CellResult>> per_campaign =
      ParallelMap<std::vector<CellResult>>(
          options.pool, campaigns.size(),
          [&](size_t i) {
            return ValidateCampaign(*campaigns[i], selected[i], options);
          },
          /*grain=*/1);

  ValidationReport report;
  report.campaigns = campaigns.size();
  for (std::vector<CellResult>& cells : per_campaign) {
    for (CellResult& cell : cells) report.cells.push_back(std::move(cell));
  }
  for (const BrokenPackage& broken : set.broken) {
    if (!options.campaign_filter.empty() &&
        broken.name != options.campaign_filter) {
      continue;
    }
    ++report.campaigns;
    report.cells.push_back(
        FailedCell(broken.name, "(package)",
                   "campaign package unreadable: " + broken.error));
  }
  std::sort(report.cells.begin(), report.cells.end(),
            [](const CellResult& a, const CellResult& b) {
              if (a.campaign != b.campaign) return a.campaign < b.campaign;
              return a.analysis < b.analysis;
            });
  for (const CellResult& cell : report.cells) {
    instruments.CountCell(cell);
    switch (cell.verdict) {
      case Verdict::kPass: ++report.passed; break;
      case Verdict::kWarn: ++report.warned; break;
      case Verdict::kFail: ++report.failed; break;
    }
  }
  report.wall_ms = timer.ElapsedMillis();
  return report;
}

}  // namespace validate
}  // namespace daspos
