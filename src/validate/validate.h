// Continuous-validation farm: the DPHEP insight (arXiv:1310.7814) that a
// preserved analysis is only preserved if it is *re-executed on a schedule*
// and its outputs compared against archived references. A "campaign"
// package freezes the full configuration of a production chain (process,
// event count, seed) plus per-analysis reference histograms and dataset
// digests; `ValidateArchive` re-runs every campaign x analysis cell through
// the real workflow engine and reports pass/warn/fail per cell.
//
// The farm is deliberately built on the same machinery it validates —
// journal checkpoint/resume, step retries, fault injection, the chi^2/KS
// comparison primitives — so a durability or error-swallowing bug in any of
// them surfaces as a failing cell instead of staying latent.
#ifndef DASPOS_VALIDATE_VALIDATE_H_
#define DASPOS_VALIDATE_VALIDATE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "archive/archive.h"
#include "mc/process.h"
#include "serialize/json.h"
#include "support/result.h"

namespace daspos {

class FaultPlan;
class ThreadPool;

namespace validate {

/// Everything needed to re-execute a preserved production chain bit-for-bit:
/// the §3.2 claim that preservation means capturing "the full provenance"
/// reduced to the chain's closed set of inputs.
struct CampaignSpec {
  /// Path-safe identifier ([A-Za-z0-9._-]); doubles as the journal subdir.
  std::string name;
  Process process = Process::kZToLL;
  size_t events = 0;
  uint64_t seed = 0;
  /// Rivet-analog analysis names validated against this campaign (sorted).
  /// Empty at capture time selects every registered analysis.
  std::vector<std::string> analyses;
};

/// A campaign as enumerated from the archive.
struct Campaign {
  CampaignSpec spec;
  std::string archive_id;
  /// Analysis name -> archived reference histograms (YODA text).
  std::map<std::string, std::string> reference_yoda;
  /// Dataset name -> SHA-256 of the blob the capturing chain produced;
  /// the bit-preservation baseline drift is measured against.
  std::map<std::string, std::string> dataset_digests;
};

/// A campaign-shaped package that could not be read back — surfaced as a
/// failing cell, never silently skipped.
struct BrokenPackage {
  std::string archive_id;
  std::string name;  // best-effort campaign name (from the holding title)
  std::string error;
};

struct CampaignSet {
  std::vector<Campaign> campaigns;  // sorted by campaign name
  std::vector<BrokenPackage> broken;
};

/// Runs the campaign chain serially (the deterministic reference path),
/// runs each analysis over the generated events, and deposits the campaign
/// package: manifest context, per-analysis reference YODA files, the
/// provenance chain, and per-dataset digests. Returns the archive id.
Result<std::string> CaptureCampaign(Archive* archive, CampaignSpec spec);

/// All campaign packages in the archive (by holding title "campaign:<name>").
Result<CampaignSet> EnumerateCampaigns(const Archive& archive);

enum class Verdict { kPass = 0, kWarn = 1, kFail = 2 };
std::string_view VerdictName(Verdict verdict);

/// Statistical gates. The chain is seeded and serial, so a healthy cell
/// reproduces bit-identically (chi^2 = 0); the warn band exists for
/// environment drift (compiler, libm) that changes bits but not physics.
struct Thresholds {
  double fail_chi2 = 3.0;  // reduced chi^2 above this fails the cell
  double warn_chi2 = 0.5;  // ... above this warns
  double warn_ks = 0.05;   // Kolmogorov-Smirnov distance above this warns
};

struct ValidateOptions {
  Thresholds thresholds;
  /// Step retry budget for the re-executed chains (see ExecuteOptions).
  int max_step_retries = 0;
  double retry_backoff_ms = 0.0;
  /// Chaos mode: fault injector shared by every re-executed chain
  /// (not owned). Pair with retries so injected faults are absorbed.
  FaultPlan* step_faults = nullptr;
  /// When set, each campaign checkpoints/resumes a RunJournal under
  /// <journal_root>/<campaign-name> — exercising the journal durability
  /// path on every farm run.
  std::string journal_root;
  /// Pool for cross-matrix concurrency (not owned); null runs serially.
  /// Each chain itself stays serial so results are thread-count invariant.
  ThreadPool* pool = nullptr;
  /// Exact-match filters; empty selects everything.
  std::string campaign_filter;
  std::string analysis_filter;
};

/// One campaign x analysis cell of the validation matrix.
struct CellResult {
  std::string campaign;
  std::string analysis;
  Verdict verdict = Verdict::kFail;
  /// One-line reason for a warn/fail verdict; empty on pass.
  std::string detail;
  int histograms_compared = 0;
  int histograms_missing = 0;
  double worst_chi2 = 0.0;  // worst reduced chi^2 across histograms
  double worst_ks = 0.0;    // worst KS distance across histograms
  /// True when every archived dataset digest reproduced bit-for-bit.
  bool chain_identical = false;
  double wall_ms = 0.0;
};

struct ValidationReport {
  std::vector<CellResult> cells;  // sorted by (campaign, analysis)
  size_t campaigns = 0;
  size_t passed = 0;
  size_t warned = 0;
  size_t failed = 0;
  double wall_ms = 0.0;

  /// Worst verdict across cells (pass when the matrix is empty).
  Verdict Overall() const;
  /// Deterministic report (no wall-clock fields in the cell lines).
  std::string RenderText() const;
  Json ToJson() const;
};

/// Re-executes the full campaign x analysis matrix and returns the report.
/// Campaigns fan out over `options.pool`; verdicts and report ordering are
/// deterministic regardless of thread count. Also publishes
/// daspos_validation_* metrics to MetricsRegistry::Global().
Result<ValidationReport> ValidateArchive(const Archive& archive,
                                         const ValidateOptions& options = {});

}  // namespace validate
}  // namespace daspos

#endif  // DASPOS_VALIDATE_VALIDATE_H_
