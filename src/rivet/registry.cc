#include "rivet/registry.h"

namespace daspos {
namespace rivet {

AnalysisRegistry& AnalysisRegistry::Global() {
  static AnalysisRegistry* registry = [] {
    auto* r = new AnalysisRegistry();
    RegisterBuiltinAnalyses(r);
    return r;
  }();
  return *registry;
}

Status AnalysisRegistry::Register(const std::string& name, Factory factory) {
  if (name.empty()) {
    return Status::InvalidArgument("analysis name must not be empty");
  }
  auto [it, inserted] = factories_.emplace(name, std::move(factory));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("analysis '" + name + "' already registered");
  }
  return Status::OK();
}

Result<std::unique_ptr<Analysis>> AnalysisRegistry::Create(
    const std::string& name) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    return Status::NotFound("no analysis '" + name + "' in the repository");
  }
  return it->second();
}

bool AnalysisRegistry::Has(const std::string& name) const {
  return factories_.count(name) > 0;
}

std::vector<std::string> AnalysisRegistry::Names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) {
    (void)factory;
    out.push_back(name);
  }
  return out;
}

Status SubmitValidatedAnalysis(AnalysisRegistry* registry,
                               const std::string& name,
                               AnalysisRegistry::Factory factory,
                               const std::vector<GenEvent>& validation_events,
                               const std::vector<Histo1D>& reference,
                               double max_reduced_chi2) {
  if (validation_events.empty()) {
    return Status::InvalidArgument(
        "submission needs validation events to run over");
  }
  if (reference.empty()) {
    return Status::InvalidArgument(
        "submission needs reference histograms to validate against");
  }
  std::unique_ptr<Analysis> candidate = factory();
  if (candidate == nullptr) {
    return Status::InvalidArgument("factory produced no analysis");
  }
  if (candidate->Name() != name) {
    return Status::InvalidArgument("analysis names itself '" +
                                   candidate->Name() + "', submitted as '" +
                                   name + "'");
  }
  AnalysisHandler handler;
  handler.Add(std::move(candidate));
  handler.Run(validation_events);
  std::vector<Histo1D> produced = handler.Finalize();

  DASPOS_ASSIGN_OR_RETURN(ValidationResult validation,
                          CompareToReference(produced, reference));
  if (!validation.Compatible(max_reduced_chi2)) {
    return Status::FailedPrecondition(
        "validation failed: " + std::to_string(validation.histograms_missing) +
        " histogram(s) missing, worst chi2/ndof " +
        std::to_string(validation.worst_reduced_chi2) +
        " — not admitted to the repository");
  }
  return registry->Register(name, std::move(factory));
}

}  // namespace rivet
}  // namespace daspos
