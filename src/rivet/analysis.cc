#include "rivet/analysis.h"

#include "support/metrics_registry.h"
#include "support/parallel.h"
#include "support/trace.h"

namespace daspos {
namespace rivet {

Histo1D* Analysis::Book(const std::string& tag, int nbins, double lo,
                        double hi) {
  std::string path = "/" + Name() + "/" + tag;
  auto [it, inserted] =
      histograms_.insert_or_assign(tag, Histo1D(path, nbins, lo, hi));
  if (inserted) order_.push_back(tag);
  return &it->second;
}

Histo1D* Analysis::Histogram(const std::string& tag) {
  auto it = histograms_.find(tag);
  return it != histograms_.end() ? &it->second : nullptr;
}

std::vector<Histo1D> Analysis::Histograms() const {
  std::vector<Histo1D> out;
  out.reserve(order_.size());
  for (const std::string& tag : order_) out.push_back(histograms_.at(tag));
  return out;
}

void AnalysisHandler::Add(std::unique_ptr<Analysis> analysis) {
  analyses_.push_back(std::move(analysis));
}

void AnalysisHandler::Run(const std::vector<GenEvent>& events,
                          ThreadPool* pool) {
  Span span("rivet:run", "rivet");
  span.AddAttribute("events", static_cast<uint64_t>(events.size()));
  span.AddAttribute("analyses", static_cast<uint64_t>(analyses_.size()));
  MetricsRegistry::Global()
      .GetCounter(metric_names::kRivetEventsTotal,
                  "generator events run through rivet analyses")
      .Increment(static_cast<uint64_t>(events.size()));
  if (!initialized_) {
    for (auto& analysis : analyses_) analysis->Init();
    initialized_ = true;
  }
  // Weight bookkeeping stays on the calling thread, in event order.
  for (const GenEvent& event : events) {
    sum_of_weights_ += event.weight;
    ++events_processed_;
  }
  // Parallelism is across analyses, never across events: each analysis
  // walks the identical in-order event stream it would see serially, so
  // order-sensitive accumulations reproduce exactly.
  ParallelFor(
      pool, analyses_.size(),
      [this, &events](size_t a) {
        for (const GenEvent& event : events) analyses_[a]->Analyze(event);
      },
      /*grain=*/1);
}

std::vector<Histo1D> AnalysisHandler::Finalize() {
  std::vector<Histo1D> out;
  for (auto& analysis : analyses_) {
    analysis->Finalize(sum_of_weights_);
    for (Histo1D& histogram : analysis->Histograms()) {
      out.push_back(std::move(histogram));
    }
  }
  return out;
}

Result<ValidationResult> CompareToReference(
    const std::vector<Histo1D>& produced,
    const std::vector<Histo1D>& reference) {
  ValidationResult result;
  for (const Histo1D& ref : reference) {
    const Histo1D* match = nullptr;
    for (const Histo1D& histogram : produced) {
      if (histogram.path() == ref.path()) {
        match = &histogram;
        break;
      }
    }
    if (match == nullptr) {
      ++result.histograms_missing;
      continue;
    }
    // Shape comparison: normalize copies before the chi2.
    Histo1D a = *match;
    Histo1D b = ref;
    a.Normalize();
    b.Normalize();
    DASPOS_ASSIGN_OR_RETURN(Chi2Result chi2, Chi2Test(a, b));
    ++result.histograms_compared;
    if (chi2.reduced() > result.worst_reduced_chi2) {
      result.worst_reduced_chi2 = chi2.reduced();
    }
  }
  return result;
}

}  // namespace rivet
}  // namespace daspos
