// The analysis repository: "Once validated, the analysis 'code' can be
// included in the RIVET distribution, allowing anyone to reproduce the
// results" (§2.3). Analyses register a factory under their name; the
// registry is the public, open catalogue (contrast recast/, which is
// closed).
#ifndef DASPOS_RIVET_REGISTRY_H_
#define DASPOS_RIVET_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "rivet/analysis.h"
#include "support/result.h"

namespace daspos {
namespace rivet {

class AnalysisRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Analysis>()>;

  /// The process-wide registry with all built-in analyses pre-registered.
  static AnalysisRegistry& Global();

  /// Registers a factory; fails if the name is taken.
  Status Register(const std::string& name, Factory factory);

  /// Instantiates a registered analysis.
  Result<std::unique_ptr<Analysis>> Create(const std::string& name) const;

  bool Has(const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, Factory> factories_;
};

/// Registers the analyses shipped with this repository into `registry`
/// (done automatically for Global()).
void RegisterBuiltinAnalyses(AnalysisRegistry* registry);

/// The §2.3 upload flow: "Once validated, the analysis 'code' can be
/// included in the RIVET distribution." Runs a fresh instance from
/// `factory` over `validation_events`, shape-compares the output against
/// the submitter's `reference` histograms, and registers the factory only
/// if everything reproduces within `max_reduced_chi2`. The repository
/// never contains analyses whose preserved reference they cannot
/// themselves reproduce.
Status SubmitValidatedAnalysis(AnalysisRegistry* registry,
                               const std::string& name,
                               AnalysisRegistry::Factory factory,
                               const std::vector<GenEvent>& validation_events,
                               const std::vector<Histo1D>& reference,
                               double max_reduced_chi2 = 3.0);

}  // namespace rivet
}  // namespace daspos

#endif  // DASPOS_RIVET_REGISTRY_H_
