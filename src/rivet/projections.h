// Projections: reusable truth-event selectors, mirroring the "series of
// standard tools written in C++ [that] can be exploited to replicate
// analysis cuts and procedures within the RIVET framework" (§2.3).
#ifndef DASPOS_RIVET_PROJECTIONS_H_
#define DASPOS_RIVET_PROJECTIONS_H_

#include <optional>
#include <vector>

#include "event/fourvector.h"
#include "event/truth.h"

namespace daspos {
namespace rivet {

/// Kinematic acceptance cuts shared by all projections.
struct Cuts {
  double min_pt = 0.0;
  double max_abs_eta = 100.0;

  bool Pass(const FourVector& momentum) const {
    return momentum.Pt() >= min_pt &&
           std::fabs(momentum.Eta()) <= max_abs_eta;
  }
};

/// All final-state particles passing cuts.
std::vector<GenParticle> FinalState(const GenEvent& event, const Cuts& cuts);

/// Charged final-state particles passing cuts.
std::vector<GenParticle> ChargedFinalState(const GenEvent& event,
                                           const Cuts& cuts);

/// Final-state particles with one of the given |pdg ids|.
std::vector<GenParticle> IdentifiedFinalState(
    const GenEvent& event, const std::vector<int>& abs_pdg_ids,
    const Cuts& cuts);

/// An opposite-charge same-flavour lepton pair compatible with a resonance.
struct DileptonPair {
  GenParticle lepton_minus;
  GenParticle lepton_plus;
  FourVector momentum;
  double mass = 0.0;
};

/// Finds the dilepton pair of `flavor` (11 or 13) with invariant mass
/// closest to `target_mass` inside [mass_lo, mass_hi].
std::optional<DileptonPair> FindDilepton(const GenEvent& event, int flavor,
                                         double target_mass, double mass_lo,
                                         double mass_hi, const Cuts& cuts);

/// A truth-level jet from cone clustering of visible final-state hadrons.
struct TruthJet {
  FourVector momentum;
  int constituent_count = 0;
};

/// Greedy cone jet clustering (radius dr) of visible final-state particles
/// excluding isolated prompt leptons and photons from heavy decays is NOT
/// attempted here — this is the simple QCD-oriented RIVET-style clustering.
std::vector<TruthJet> TruthJets(const GenEvent& event, double cone_dr,
                                double min_jet_pt, const Cuts& particle_cuts);

}  // namespace rivet
}  // namespace daspos

#endif  // DASPOS_RIVET_PROJECTIONS_H_
