#include "rivet/projections.h"

#include <algorithm>
#include <cmath>

#include "event/pdg.h"

namespace daspos {
namespace rivet {

std::vector<GenParticle> FinalState(const GenEvent& event, const Cuts& cuts) {
  std::vector<GenParticle> out;
  for (const GenParticle& particle : event.particles) {
    if (particle.IsFinalState() && cuts.Pass(particle.momentum)) {
      out.push_back(particle);
    }
  }
  return out;
}

std::vector<GenParticle> ChargedFinalState(const GenEvent& event,
                                           const Cuts& cuts) {
  std::vector<GenParticle> out;
  for (const GenParticle& particle : event.particles) {
    if (particle.IsFinalState() && cuts.Pass(particle.momentum) &&
        std::fabs(pdg::Charge(particle.pdg_id)) > 0.3) {
      out.push_back(particle);
    }
  }
  return out;
}

std::vector<GenParticle> IdentifiedFinalState(
    const GenEvent& event, const std::vector<int>& abs_pdg_ids,
    const Cuts& cuts) {
  std::vector<GenParticle> out;
  for (const GenParticle& particle : event.particles) {
    if (!particle.IsFinalState() || !cuts.Pass(particle.momentum)) continue;
    int abs_id = std::abs(particle.pdg_id);
    for (int wanted : abs_pdg_ids) {
      if (abs_id == wanted) {
        out.push_back(particle);
        break;
      }
    }
  }
  return out;
}

std::optional<DileptonPair> FindDilepton(const GenEvent& event, int flavor,
                                         double target_mass, double mass_lo,
                                         double mass_hi, const Cuts& cuts) {
  std::vector<GenParticle> minus;
  std::vector<GenParticle> plus;
  for (const GenParticle& particle : event.particles) {
    if (!particle.IsFinalState() || !cuts.Pass(particle.momentum)) continue;
    if (particle.pdg_id == flavor) minus.push_back(particle);
    if (particle.pdg_id == -flavor) plus.push_back(particle);
  }
  std::optional<DileptonPair> best;
  double best_distance = 1e300;
  for (const GenParticle& lm : minus) {
    for (const GenParticle& lp : plus) {
      double mass = InvariantMass(lm.momentum, lp.momentum);
      if (mass < mass_lo || mass > mass_hi) continue;
      double distance = std::fabs(mass - target_mass);
      if (distance < best_distance) {
        best_distance = distance;
        DileptonPair pair;
        pair.lepton_minus = lm;
        pair.lepton_plus = lp;
        pair.momentum = lm.momentum + lp.momentum;
        pair.mass = mass;
        best = pair;
      }
    }
  }
  return best;
}

std::vector<TruthJet> TruthJets(const GenEvent& event, double cone_dr,
                                double min_jet_pt,
                                const Cuts& particle_cuts) {
  // Visible particles only.
  std::vector<const GenParticle*> inputs;
  for (const GenParticle& particle : event.particles) {
    if (!particle.IsFinalState()) continue;
    if (pdg::IsInvisible(particle.pdg_id)) continue;
    if (!particle_cuts.Pass(particle.momentum)) continue;
    inputs.push_back(&particle);
  }
  std::sort(inputs.begin(), inputs.end(),
            [](const GenParticle* a, const GenParticle* b) {
              return a->momentum.Pt() > b->momentum.Pt();
            });

  std::vector<bool> used(inputs.size(), false);
  std::vector<TruthJet> jets;
  for (size_t seed = 0; seed < inputs.size(); ++seed) {
    if (used[seed]) continue;
    TruthJet jet;
    const FourVector& axis = inputs[seed]->momentum;
    for (size_t i = seed; i < inputs.size(); ++i) {
      if (used[i]) continue;
      if (DeltaR(axis, inputs[i]->momentum) < cone_dr) {
        used[i] = true;
        jet.momentum += inputs[i]->momentum;
        ++jet.constituent_count;
      }
    }
    if (jet.momentum.Pt() >= min_jet_pt) jets.push_back(jet);
  }
  std::sort(jets.begin(), jets.end(), [](const TruthJet& a, const TruthJet& b) {
    return a.momentum.Pt() > b.momentum.Pt();
  });
  return jets;
}

}  // namespace rivet
}  // namespace daspos
