// Built-in preserved analyses — the repository content of the RIVET-analog.
// Each mirrors a classic LHC truth-level measurement and doubles as a
// master-class topic from the paper's Table 1 (W, Z, Higgs, QCD).
#include <cmath>
#include <memory>

#include "event/pdg.h"
#include "rivet/projections.h"
#include "rivet/registry.h"

namespace daspos {
namespace rivet {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Z -> l+l- line shape and kinematics.
class ZllAnalysis : public Analysis {
 public:
  std::string Name() const override { return "DASPOS_2014_ZLL"; }
  std::string Summary() const override {
    return "Z -> l+l- mass line shape, Z pT, and lepton pT";
  }

  void Init() override {
    mass_ = Book("mll", 60, 60.0, 120.0);
    z_pt_ = Book("z_pt", 50, 0.0, 100.0);
    lepton_pt_ = Book("lepton_pt", 50, 0.0, 100.0);
  }

  void Analyze(const GenEvent& event) override {
    Cuts cuts{20.0, 2.5};
    for (int flavor : {pdg::kElectron, pdg::kMuon}) {
      auto pair = FindDilepton(event, flavor, 91.1876, 60.0, 120.0, cuts);
      if (!pair) continue;
      mass_->Fill(pair->mass, event.weight);
      z_pt_->Fill(pair->momentum.Pt(), event.weight);
      lepton_pt_->Fill(pair->lepton_minus.momentum.Pt(), event.weight);
      lepton_pt_->Fill(pair->lepton_plus.momentum.Pt(), event.weight);
    }
  }

  void Finalize(double sum_of_weights) override {
    if (sum_of_weights <= 0.0) return;
    mass_->Scale(1.0 / sum_of_weights);
    z_pt_->Scale(1.0 / sum_of_weights);
    lepton_pt_->Scale(1.0 / sum_of_weights);
  }

 private:
  Histo1D* mass_ = nullptr;
  Histo1D* z_pt_ = nullptr;
  Histo1D* lepton_pt_ = nullptr;
};

/// QCD dijet kinematics.
class DijetAnalysis : public Analysis {
 public:
  std::string Name() const override { return "DASPOS_2014_DIJET"; }
  std::string Summary() const override {
    return "leading-jet pT, dijet azimuthal decorrelation, jet multiplicity";
  }

  void Init() override {
    leading_pt_ = Book("leading_jet_pt", 48, 20.0, 260.0);
    dphi_ = Book("dijet_dphi", 32, 0.0, kPi);
    njets_ = Book("n_jets", 10, -0.5, 9.5);
  }

  void Analyze(const GenEvent& event) override {
    auto jets = TruthJets(event, 0.4, 20.0, Cuts{0.2, 4.0});
    njets_->Fill(static_cast<double>(jets.size()), event.weight);
    if (jets.empty()) return;
    leading_pt_->Fill(jets[0].momentum.Pt(), event.weight);
    if (jets.size() >= 2) {
      dphi_->Fill(DeltaPhi(jets[0].momentum, jets[1].momentum), event.weight);
    }
  }

  void Finalize(double sum_of_weights) override {
    if (sum_of_weights <= 0.0) return;
    leading_pt_->Scale(1.0 / sum_of_weights);
    dphi_->Scale(1.0 / sum_of_weights);
    njets_->Scale(1.0 / sum_of_weights);
  }

 private:
  Histo1D* leading_pt_ = nullptr;
  Histo1D* dphi_ = nullptr;
  Histo1D* njets_ = nullptr;
};

/// W charge asymmetry vs |eta| of the charged lepton.
class WAsymmetryAnalysis : public Analysis {
 public:
  std::string Name() const override { return "DASPOS_2014_WASYM"; }
  std::string Summary() const override {
    return "W+/W- lepton charge asymmetry vs |eta|";
  }

  void Init() override {
    plus_eta_ = Book("lplus_abseta", 10, 0.0, 2.5);
    minus_eta_ = Book("lminus_abseta", 10, 0.0, 2.5);
    asymmetry_ = Book("charge_asymmetry", 10, 0.0, 2.5);
  }

  void Analyze(const GenEvent& event) override {
    Cuts cuts{20.0, 2.5};
    auto leptons = IdentifiedFinalState(
        event, {pdg::kElectron, pdg::kMuon}, cuts);
    for (const GenParticle& lepton : leptons) {
      // Require the lepton to come from a W.
      if (lepton.mother < 0 ||
          std::abs(event.particles[static_cast<size_t>(lepton.mother)]
                       .pdg_id) != pdg::kWPlus) {
        continue;
      }
      double abs_eta = std::fabs(lepton.momentum.Eta());
      if (pdg::Charge(lepton.pdg_id) > 0) {
        plus_eta_->Fill(abs_eta, event.weight);
      } else {
        minus_eta_->Fill(abs_eta, event.weight);
      }
    }
  }

  void Finalize(double sum_of_weights) override {
    (void)sum_of_weights;
    // A = (N+ - N-) / (N+ + N-) per bin; error propagation is quadratic.
    for (int i = 0; i < asymmetry_->axis().nbins(); ++i) {
      double plus = plus_eta_->BinContent(i);
      double minus = minus_eta_->BinContent(i);
      double total = plus + minus;
      if (total <= 0.0) continue;
      double asym = (plus - minus) / total;
      // Binomial-ish error on the asymmetry.
      double err = 2.0 * std::sqrt(plus * minus / total) / total;
      asymmetry_->SetBin(i, asym, err * err);
    }
  }

 private:
  Histo1D* plus_eta_ = nullptr;
  Histo1D* minus_eta_ = nullptr;
  Histo1D* asymmetry_ = nullptr;
};

/// Soft-QCD charged-particle spectra — the "details of QCD" bread-and-
/// butter RIVET was designed for (§2.4).
class ChargedParticleAnalysis : public Analysis {
 public:
  std::string Name() const override { return "DASPOS_2014_CHARGED"; }
  std::string Summary() const override {
    return "charged-particle multiplicity and pT spectrum";
  }

  void Init() override {
    multiplicity_ = Book("n_charged", 50, -0.5, 99.5);
    pt_spectrum_ = Book("charged_pt", 50, 0.0, 5.0);
  }

  void Analyze(const GenEvent& event) override {
    auto charged = ChargedFinalState(event, Cuts{0.1, 2.5});
    multiplicity_->Fill(static_cast<double>(charged.size()), event.weight);
    for (const GenParticle& particle : charged) {
      pt_spectrum_->Fill(particle.momentum.Pt(), event.weight);
    }
  }

  void Finalize(double sum_of_weights) override {
    if (sum_of_weights <= 0.0) return;
    multiplicity_->Scale(1.0 / sum_of_weights);
    pt_spectrum_->Scale(1.0 / sum_of_weights);
  }

 private:
  Histo1D* multiplicity_ = nullptr;
  Histo1D* pt_spectrum_ = nullptr;
};

/// D-meson flight length and K-pi mass — the truth-level counterpart of
/// the LHCb "D lifetime" master class in Table 1.
class DMesonAnalysis : public Analysis {
 public:
  std::string Name() const override { return "DASPOS_2014_DMESON"; }
  std::string Summary() const override {
    return "D0 flight length and K-pi invariant mass";
  }

  void Init() override {
    flight_ = Book("flight_mm", 40, 0.0, 4.0);
    mass_ = Book("kpi_mass", 40, 1.7, 2.0);
  }

  void Analyze(const GenEvent& event) override {
    // Find K-/pi+ pairs sharing a displaced production vertex.
    const GenParticle* kaon = nullptr;
    const GenParticle* pion = nullptr;
    for (const GenParticle& particle : event.particles) {
      if (!particle.IsFinalState() || particle.vertex_mm <= 0.0) continue;
      if (particle.pdg_id == pdg::kKMinus) kaon = &particle;
      if (particle.pdg_id == pdg::kPiPlus) pion = &particle;
    }
    if (kaon == nullptr || pion == nullptr) return;
    if (kaon->vertex_mm != pion->vertex_mm) return;  // different vertices
    flight_->Fill(kaon->vertex_mm, event.weight);
    mass_->Fill(InvariantMass(kaon->momentum, pion->momentum), event.weight);
  }

  void Finalize(double sum_of_weights) override {
    if (sum_of_weights <= 0.0) return;
    flight_->Scale(1.0 / sum_of_weights);
    mass_->Scale(1.0 / sum_of_weights);
  }

 private:
  Histo1D* flight_ = nullptr;
  Histo1D* mass_ = nullptr;
};

}  // namespace

void RegisterBuiltinAnalyses(AnalysisRegistry* registry) {
  (void)registry->Register("DASPOS_2014_DMESON", [] {
    return std::make_unique<DMesonAnalysis>();
  });
  (void)registry->Register("DASPOS_2014_ZLL", [] {
    return std::make_unique<ZllAnalysis>();
  });
  (void)registry->Register("DASPOS_2014_DIJET", [] {
    return std::make_unique<DijetAnalysis>();
  });
  (void)registry->Register("DASPOS_2014_WASYM", [] {
    return std::make_unique<WAsymmetryAnalysis>();
  });
  (void)registry->Register("DASPOS_2014_CHARGED", [] {
    return std::make_unique<ChargedParticleAnalysis>();
  });
}

}  // namespace rivet
}  // namespace daspos
