// The RIVET-analog analysis framework (§2.3): an analysis is a plugin over
// *unfolded truth-level* events that books histograms, applies cuts via
// projections, and compares against preserved reference data. The framework
// deliberately refuses detector-level input — the §2.4 limitation ("no way
// to include a detector simulation") that the RECAST bridge lifts.
#ifndef DASPOS_RIVET_ANALYSIS_H_
#define DASPOS_RIVET_ANALYSIS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "event/truth.h"
#include "hist/compare.h"
#include "hist/histo1d.h"
#include "support/result.h"

namespace daspos {

class ThreadPool;

namespace rivet {

/// Base class for preserved analyses. Lifecycle: Init -> Analyze per event
/// -> Finalize. Histograms are booked through the base so the handler owns
/// the output.
class Analysis {
 public:
  virtual ~Analysis() = default;

  /// Unique analysis key, conventionally EXPERIMENT_YEAR_TOPIC
  /// ("DASPOS_2014_ZLL").
  virtual std::string Name() const = 0;
  /// One-line physics summary (shown in the repository listing).
  virtual std::string Summary() const = 0;

  virtual void Init() = 0;
  virtual void Analyze(const GenEvent& event) = 0;
  /// Called once at the end; `sum_of_weights` is the accumulated event
  /// weight for normalization.
  virtual void Finalize(double sum_of_weights) = 0;

  /// Histograms produced (after Finalize).
  std::vector<Histo1D> Histograms() const;

 protected:
  /// Books (or rebooks) a histogram under /<name>/<tag>.
  Histo1D* Book(const std::string& tag, int nbins, double lo, double hi);
  Histo1D* Histogram(const std::string& tag);

 private:
  std::map<std::string, Histo1D> histograms_;
  std::vector<std::string> order_;
};

/// Runs a set of analyses over truth events and collects outputs —
/// the equivalent of the `rivet` executable.
class AnalysisHandler {
 public:
  /// Registers an analysis instance (handler takes ownership).
  void Add(std::unique_ptr<Analysis> analysis);

  /// Processes events; can be called repeatedly. With a pool, the analyses
  /// run concurrently — each analysis still sees the full event sequence in
  /// order, so per-analysis histogram fills (float accumulation included)
  /// are bit-identical to the serial run. Events are never sharded across
  /// threads within one analysis.
  void Run(const std::vector<GenEvent>& events, ThreadPool* pool = nullptr);

  /// Finalizes all analyses and returns every histogram.
  std::vector<Histo1D> Finalize();

  size_t analysis_count() const { return analyses_.size(); }
  uint64_t events_processed() const { return events_processed_; }

 private:
  std::vector<std::unique_ptr<Analysis>> analyses_;
  bool initialized_ = false;
  double sum_of_weights_ = 0.0;
  uint64_t events_processed_ = 0;
};

/// Verdict of comparing produced histograms against reference data.
struct ValidationResult {
  int histograms_compared = 0;
  int histograms_missing = 0;
  double worst_reduced_chi2 = 0.0;
  bool Compatible(double max_reduced_chi2 = 3.0) const {
    return histograms_missing == 0 &&
           worst_reduced_chi2 <= max_reduced_chi2;
  }
};

/// Shape-compares (after normalization) each produced histogram with the
/// reference histogram of the same path. References with no produced
/// counterpart count as missing.
Result<ValidationResult> CompareToReference(
    const std::vector<Histo1D>& produced,
    const std::vector<Histo1D>& reference);

}  // namespace rivet
}  // namespace daspos

#endif  // DASPOS_RIVET_ANALYSIS_H_
