#include "interview/maturity.h"

namespace daspos {
namespace interview {

namespace {

// Level texts condensed from Appendix A of the workshop report.
constexpr std::string_view kDataManagement[5] = {
    "data management focuses on the day-to-day",
    "some awareness of risks; few take preventative action",
    "policies and plans in place for disaster recovery and sustainability",
    "recovery plans have implementation procedures; data loss unlikely",
    "recovery plans routinely tested; succession plans safeguard data",
};
constexpr std::string_view kDataDescription[5] = {
    "metadata is an unfamiliar concept; low engagement with documentation",
    "metadata and description practices vary by individual",
    "metadata well understood; guidance supports use of standards",
    "data well labeled, annotated, systematically organized",
    "data can be understood by other researchers",
};
constexpr std::string_view kPreservation[5] = {
    "low awareness of requirements to preserve data",
    "data may remain available mostly by chance, not practice",
    "preservation is understood and well-planned",
    "high engagement: data selected for preservation, repositories in place",
    "data efficiently and effectively preserved; infrastructure widely used",
};
constexpr std::string_view kAccess[5] = {
    "individuals store data and manage access requests",
    "guidance and services for access exist but are poorly used",
    "a mix of systems meets different access needs",
    "access systematically controlled through user rights",
    "systems meet all user needs and security is maintained",
};
constexpr std::string_view kSharing[5] = {
    "low awareness of data sharing requirements",
    "ad hoc data sharing (data provided on request)",
    "sharing supported: training and infrastructure in place",
    "data shared as appropriate (legally and ethically possible)",
    "culture of openness; sharing systems recognized and copied",
};

}  // namespace

std::string_view MaturityAxisName(MaturityAxis axis) {
  switch (axis) {
    case MaturityAxis::kDataManagement:
      return "data management & disaster recovery";
    case MaturityAxis::kDataDescription:
      return "data description";
    case MaturityAxis::kPreservation:
      return "preservation";
    case MaturityAxis::kAccess:
      return "access";
    case MaturityAxis::kSharing:
      return "sharing";
  }
  return "?";
}

Result<std::string_view> MaturityLevelDescription(MaturityAxis axis,
                                                  int level) {
  if (level < 1 || level > 5) {
    return Status::OutOfRange("maturity level must be 1..5, got " +
                              std::to_string(level));
  }
  size_t index = static_cast<size_t>(level - 1);
  switch (axis) {
    case MaturityAxis::kDataManagement:
      return kDataManagement[index];
    case MaturityAxis::kDataDescription:
      return kDataDescription[index];
    case MaturityAxis::kPreservation:
      return kPreservation[index];
    case MaturityAxis::kAccess:
      return kAccess[index];
    case MaturityAxis::kSharing:
      return kSharing[index];
  }
  return Status::InvalidArgument("unknown maturity axis");
}

int MaturityAssessment::Level(MaturityAxis axis) const {
  switch (axis) {
    case MaturityAxis::kDataManagement:
      return data_management;
    case MaturityAxis::kDataDescription:
      return data_description;
    case MaturityAxis::kPreservation:
      return preservation;
    case MaturityAxis::kAccess:
      return access;
    case MaturityAxis::kSharing:
      return sharing;
  }
  return 0;
}

void MaturityAssessment::SetLevel(MaturityAxis axis, int level) {
  switch (axis) {
    case MaturityAxis::kDataManagement:
      data_management = level;
      return;
    case MaturityAxis::kDataDescription:
      data_description = level;
      return;
    case MaturityAxis::kPreservation:
      preservation = level;
      return;
    case MaturityAxis::kAccess:
      access = level;
      return;
    case MaturityAxis::kSharing:
      sharing = level;
      return;
  }
}

Status MaturityAssessment::Validate() const {
  for (MaturityAxis axis : kAllMaturityAxes) {
    int level = Level(axis);
    if (level < 1 || level > 5) {
      return Status::OutOfRange(std::string(MaturityAxisName(axis)) +
                                " level " + std::to_string(level) +
                                " outside [1,5]");
    }
  }
  return Status::OK();
}

double MaturityAssessment::Overall() const {
  double total = 0.0;
  for (MaturityAxis axis : kAllMaturityAxes) total += Level(axis);
  return total / kAllMaturityAxes.size();
}

}  // namespace interview
}  // namespace daspos
