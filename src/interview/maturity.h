// The five-level maturity grids of the Data Interview Template (Appendix A
// of the paper): data management & disaster recovery (question 5F), data
// description (6D), preservation (8E), and access & sharing (9F, two rows).
// Level descriptions follow the appendix wording.
#ifndef DASPOS_INTERVIEW_MATURITY_H_
#define DASPOS_INTERVIEW_MATURITY_H_

#include <array>
#include <string_view>

#include "support/result.h"

namespace daspos {
namespace interview {

enum class MaturityAxis {
  kDataManagement = 0,  // 5F: data management and disaster recovery
  kDataDescription = 1, // 6D: metadata and data description
  kPreservation = 2,    // 8E: curation/preservation practice
  kAccess = 3,          // 9F row 1: access systems
  kSharing = 4,         // 9F row 2: sharing culture
};

inline constexpr std::array<MaturityAxis, 5> kAllMaturityAxes = {
    MaturityAxis::kDataManagement, MaturityAxis::kDataDescription,
    MaturityAxis::kPreservation, MaturityAxis::kAccess,
    MaturityAxis::kSharing};

std::string_view MaturityAxisName(MaturityAxis axis);

/// Appendix wording for `level` in [1,5] on `axis`; fails out of range.
Result<std::string_view> MaturityLevelDescription(MaturityAxis axis,
                                                  int level);

/// A complete assessment: one level per axis.
struct MaturityAssessment {
  int data_management = 1;
  int data_description = 1;
  int preservation = 1;
  int access = 1;
  int sharing = 1;

  int Level(MaturityAxis axis) const;
  void SetLevel(MaturityAxis axis, int level);

  /// All levels in [1,5]?
  Status Validate() const;

  /// Mean level across the five axes.
  double Overall() const;
};

}  // namespace interview
}  // namespace daspos

#endif  // DASPOS_INTERVIEW_MATURITY_H_
