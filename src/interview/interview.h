// The Data Interview Template (Appendix A): a structured questionnaire an
// experiment fills in — data description, lifecycle stages with software
// dependencies, preservation answers, sharing policies, and the maturity
// self-assessment. "The interview template provided a framework for the
// experiments to outline their thoughts or plans for data/software/
// knowledge preservation using a common set of considerations" (§3).
#ifndef DASPOS_INTERVIEW_INTERVIEW_H_
#define DASPOS_INTERVIEW_INTERVIEW_H_

#include <string>
#include <vector>

#include "event/experiment.h"
#include "interview/maturity.h"
#include "serialize/json.h"
#include "support/result.h"

namespace daspos {
namespace interview {

/// A2: one stage of the data lifecycle, with its software (A4).
struct LifecycleStage {
  std::string name;         // "Collection", "Analysis stage 1", ...
  std::string description;
  uint64_t file_count = 0;
  uint64_t total_bytes = 0;
  std::vector<std::string> formats;
  /// Software needed at this stage, with external/internal split (A4.A).
  std::vector<std::string> internal_software;
  std::vector<std::string> external_software;
  std::string software_version;  // A4.B
};

/// 9: one row of the data sharing grid.
struct SharingPolicy {
  std::string stage;
  std::string audience;     // "collaborators", "whole world", ...
  std::string when;         // "1 year after publication"
  std::string conditions;   // "acknowledgement required"
};

struct DataInterview {
  // Header.
  std::string respondent;
  std::string organization;
  Experiment experiment = Experiment::kAtlas;

  // A1: overview of the data.
  std::string data_description;

  // A2/A4: lifecycle with software.
  std::vector<LifecycleStage> lifecycle;

  // B5: storage/backup/recovery answers.
  std::string storage_strategy;
  bool backups = false;
  bool disaster_recovery_plan = false;
  bool funding_agency_requires_plan = false;

  // B8: preservation answers.
  std::string most_important_to_preserve;
  std::string useful_lifetime;
  std::string software_to_preserve;
  bool generation_process_documented = false;

  // B9: sharing.
  std::vector<SharingPolicy> sharing;

  // Maturity self-assessment (5F, 6D, 8E, 9F).
  MaturityAssessment maturity;

  /// Structural validation: respondent, at least one lifecycle stage, and
  /// a valid maturity assessment.
  Status Validate() const;

  Json ToJson() const;
  static Result<DataInterview> FromJson(const Json& json);

  /// Renders the interview as a text report with the maturity grid.
  std::string RenderReport() const;
};

/// Filled-in example interviews for the four Table 1 experiments, with
/// deliberately different maturity profiles (E4 bench input).
std::vector<DataInterview> ExampleInterviews();

}  // namespace interview
}  // namespace daspos

#endif  // DASPOS_INTERVIEW_INTERVIEW_H_
