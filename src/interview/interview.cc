#include "interview/interview.h"

#include "support/strings.h"
#include "support/table.h"

namespace daspos {
namespace interview {

Status DataInterview::Validate() const {
  if (respondent.empty()) {
    return Status::InvalidArgument("interview needs a respondent");
  }
  if (lifecycle.empty()) {
    return Status::InvalidArgument(
        "interview needs at least one lifecycle stage (question 2)");
  }
  for (const LifecycleStage& stage : lifecycle) {
    if (stage.name.empty()) {
      return Status::InvalidArgument("lifecycle stage without a name");
    }
  }
  return maturity.Validate();
}

namespace {

Json StageToJson(const LifecycleStage& stage) {
  Json json = Json::Object();
  json["name"] = stage.name;
  json["description"] = stage.description;
  json["file_count"] = stage.file_count;
  json["total_bytes"] = stage.total_bytes;
  Json formats = Json::Array();
  for (const std::string& format : stage.formats) formats.push_back(format);
  json["formats"] = std::move(formats);
  Json internal = Json::Array();
  for (const std::string& sw : stage.internal_software) internal.push_back(sw);
  json["internal_software"] = std::move(internal);
  Json external = Json::Array();
  for (const std::string& sw : stage.external_software) external.push_back(sw);
  json["external_software"] = std::move(external);
  json["software_version"] = stage.software_version;
  return json;
}

LifecycleStage StageFromJson(const Json& json) {
  LifecycleStage stage;
  stage.name = json.Get("name").as_string();
  stage.description = json.Get("description").as_string();
  stage.file_count = static_cast<uint64_t>(json.Get("file_count").as_int());
  stage.total_bytes = static_cast<uint64_t>(json.Get("total_bytes").as_int());
  const Json& formats = json.Get("formats");
  for (size_t i = 0; i < formats.size(); ++i) {
    stage.formats.push_back(formats.at(i).as_string());
  }
  const Json& internal = json.Get("internal_software");
  for (size_t i = 0; i < internal.size(); ++i) {
    stage.internal_software.push_back(internal.at(i).as_string());
  }
  const Json& external = json.Get("external_software");
  for (size_t i = 0; i < external.size(); ++i) {
    stage.external_software.push_back(external.at(i).as_string());
  }
  stage.software_version = json.Get("software_version").as_string();
  return stage;
}

}  // namespace

Json DataInterview::ToJson() const {
  Json json = Json::Object();
  json["respondent"] = respondent;
  json["organization"] = organization;
  json["experiment"] = std::string(ExperimentName(experiment));
  json["data_description"] = data_description;
  Json stages = Json::Array();
  for (const LifecycleStage& stage : lifecycle) {
    stages.push_back(StageToJson(stage));
  }
  json["lifecycle"] = std::move(stages);
  json["storage_strategy"] = storage_strategy;
  json["backups"] = backups;
  json["disaster_recovery_plan"] = disaster_recovery_plan;
  json["funding_agency_requires_plan"] = funding_agency_requires_plan;
  json["most_important_to_preserve"] = most_important_to_preserve;
  json["useful_lifetime"] = useful_lifetime;
  json["software_to_preserve"] = software_to_preserve;
  json["generation_process_documented"] = generation_process_documented;
  Json sharing_list = Json::Array();
  for (const SharingPolicy& policy : sharing) {
    Json entry = Json::Object();
    entry["stage"] = policy.stage;
    entry["audience"] = policy.audience;
    entry["when"] = policy.when;
    entry["conditions"] = policy.conditions;
    sharing_list.push_back(std::move(entry));
  }
  json["sharing"] = std::move(sharing_list);
  Json levels = Json::Object();
  for (MaturityAxis axis : kAllMaturityAxes) {
    levels[std::string(MaturityAxisName(axis))] = maturity.Level(axis);
  }
  json["maturity"] = std::move(levels);
  return json;
}

Result<DataInterview> DataInterview::FromJson(const Json& json) {
  DataInterview interview;
  interview.respondent = json.Get("respondent").as_string();
  interview.organization = json.Get("organization").as_string();
  std::string experiment_name = json.Get("experiment").as_string();
  for (Experiment experiment : kAllExperiments) {
    if (experiment_name == ExperimentName(experiment)) {
      interview.experiment = experiment;
    }
  }
  interview.data_description = json.Get("data_description").as_string();
  const Json& stages = json.Get("lifecycle");
  for (size_t i = 0; i < stages.size(); ++i) {
    interview.lifecycle.push_back(StageFromJson(stages.at(i)));
  }
  interview.storage_strategy = json.Get("storage_strategy").as_string();
  interview.backups = json.Get("backups").as_bool();
  interview.disaster_recovery_plan =
      json.Get("disaster_recovery_plan").as_bool();
  interview.funding_agency_requires_plan =
      json.Get("funding_agency_requires_plan").as_bool();
  interview.most_important_to_preserve =
      json.Get("most_important_to_preserve").as_string();
  interview.useful_lifetime = json.Get("useful_lifetime").as_string();
  interview.software_to_preserve =
      json.Get("software_to_preserve").as_string();
  interview.generation_process_documented =
      json.Get("generation_process_documented").as_bool();
  const Json& sharing_list = json.Get("sharing");
  for (size_t i = 0; i < sharing_list.size(); ++i) {
    const Json& entry = sharing_list.at(i);
    SharingPolicy policy;
    policy.stage = entry.Get("stage").as_string();
    policy.audience = entry.Get("audience").as_string();
    policy.when = entry.Get("when").as_string();
    policy.conditions = entry.Get("conditions").as_string();
    interview.sharing.push_back(std::move(policy));
  }
  const Json& levels = json.Get("maturity");
  for (MaturityAxis axis : kAllMaturityAxes) {
    const Json& level = levels.Get(std::string(MaturityAxisName(axis)));
    if (level.is_number()) {
      interview.maturity.SetLevel(axis, static_cast<int>(level.as_int()));
    }
  }
  DASPOS_RETURN_IF_ERROR(interview.Validate());
  return interview;
}

std::string DataInterview::RenderReport() const {
  std::string out = "Data/Software Interview: " +
                    std::string(ExperimentName(experiment)) + "\n";
  out += "Respondent: " + respondent + " (" + organization + ")\n";
  out += "Data: " + data_description + "\n\n";

  TextTable lifecycle_table;
  lifecycle_table.SetTitle("Data lifecycle (question 2 + 4)");
  lifecycle_table.SetHeader(
      {"stage", "files", "size", "formats", "external software"});
  for (const LifecycleStage& stage : lifecycle) {
    lifecycle_table.AddRow({stage.name, std::to_string(stage.file_count),
                            FormatBytes(stage.total_bytes),
                            Join(stage.formats, ", "),
                            Join(stage.external_software, ", ")});
  }
  out += lifecycle_table.Render() + "\n";

  TextTable sharing_table;
  sharing_table.SetTitle("Data sharing grid (question 9)");
  sharing_table.SetHeader({"stage", "audience", "when", "conditions"});
  for (const SharingPolicy& policy : sharing) {
    sharing_table.AddRow(
        {policy.stage, policy.audience, policy.when, policy.conditions});
  }
  out += sharing_table.Render() + "\n";

  TextTable maturity_table;
  maturity_table.SetTitle("Maturity self-assessment");
  maturity_table.SetHeader({"axis", "level", "meaning"});
  for (MaturityAxis axis : kAllMaturityAxes) {
    int level = maturity.Level(axis);
    auto description = MaturityLevelDescription(axis, level);
    maturity_table.AddRow({std::string(MaturityAxisName(axis)),
                           std::to_string(level),
                           description.ok() ? std::string(*description)
                                            : "(invalid level)"});
  }
  out += maturity_table.Render();
  out += "Overall maturity: " + FormatDouble(maturity.Overall(), 3) + "\n";
  return out;
}

std::vector<DataInterview> ExampleInterviews() {
  std::vector<DataInterview> out;
  for (Experiment experiment : kAllExperiments) {
    DataInterview interview;
    interview.respondent = "computing coordinator";
    interview.organization = std::string(ExperimentName(experiment));
    interview.experiment = experiment;
    interview.data_description =
        "proton-proton collision events, raw and derived tiers";

    LifecycleStage raw;
    raw.name = "Collection (RAW)";
    raw.file_count = 1000;
    raw.total_bytes = 1000ull << 30;
    raw.formats = {"daspos.raw.v1"};
    raw.internal_software = {"DAQ, trigger"};
    raw.external_software = {"conditions database"};
    raw.software_version = "online-2013";
    LifecycleStage reco;
    reco.name = "Reconstruction (RECO/AOD)";
    reco.file_count = 2000;
    reco.total_bytes = 400ull << 30;
    reco.formats = {"daspos.reco.v1", "daspos.aod.v1"};
    reco.internal_software = {"reconstruction release"};
    reco.external_software = {"conditions database", "grid middleware"};
    reco.software_version = "reco-v1.0";
    LifecycleStage analysis;
    analysis.name = "Analysis (derived)";
    analysis.file_count = 200;
    analysis.total_bytes = 20ull << 30;
    analysis.formats = {"daspos.derived.v1"};
    analysis.internal_software = {"group skims"};
    analysis.external_software = {"histogramming toolkit"};
    analysis.software_version = "analysis-2014";
    interview.lifecycle = {raw, reco, analysis};

    interview.storage_strategy = "tape archive + disk pools at Tier-0/1";
    interview.backups = true;
    interview.most_important_to_preserve =
        "AOD tier plus the software and conditions to reprocess it";
    interview.useful_lifetime = "decades (unique collision energy)";
    interview.software_to_preserve =
        "reconstruction release and analysis skim code";

    interview.sharing.push_back(
        {"Analysis", "project collaborators", "always", "none"});
    interview.sharing.push_back({"Publication", "whole world",
                                 "on publication", "citation requested"});

    // Maturity profiles diverge per experiment, echoing §4's data-policy
    // status (CMS/LHCb approved release policies; Alice/Atlas in
    // discussion at the time).
    switch (experiment) {
      case Experiment::kAlice:
        interview.disaster_recovery_plan = false;
        interview.generation_process_documented = false;
        interview.maturity = {2, 2, 2, 3, 2};
        break;
      case Experiment::kAtlas:
        interview.disaster_recovery_plan = true;
        interview.generation_process_documented = true;
        interview.maturity = {4, 4, 3, 4, 3};
        break;
      case Experiment::kCms:
        interview.disaster_recovery_plan = true;
        interview.funding_agency_requires_plan = true;
        interview.generation_process_documented = true;
        interview.sharing.push_back({"AOD subset", "whole world",
                                     "public data release",
                                     "registration"});
        interview.maturity = {4, 3, 4, 4, 5};
        break;
      case Experiment::kLhcb:
        interview.disaster_recovery_plan = true;
        interview.generation_process_documented = true;
        interview.maturity = {3, 3, 4, 3, 4};
        break;
    }
    out.push_back(std::move(interview));
  }
  return out;
}

}  // namespace interview
}  // namespace daspos
