#include "workflow/steps.h"

#include "support/parallel.h"
#include "tiers/dataset.h"

namespace daspos {

Json GeneratorConfigToJson(const GeneratorConfig& config) {
  Json json = Json::Object();
  json["process"] = static_cast<int>(config.process);
  json["process_name"] = GetProcessInfo(config.process).name;
  json["seed"] = config.seed;
  json["pileup_mean"] = config.pileup_mean;
  json["zprime_mass"] = config.zprime_mass;
  json["zprime_width"] = config.zprime_width;
  json["tune_activity"] = config.tune_activity;
  json["lepton_flavor"] = config.lepton_flavor;
  return json;
}

Result<GeneratorConfig> GeneratorConfigFromJson(const Json& json) {
  if (!json.is_object() || !json.Has("process")) {
    return Status::InvalidArgument("generator config JSON missing 'process'");
  }
  GeneratorConfig config;
  config.process = static_cast<Process>(json.Get("process").as_int());
  config.seed = static_cast<uint64_t>(json.Get("seed").as_int());
  config.pileup_mean = json.Get("pileup_mean").as_number();
  if (json.Has("zprime_mass")) {
    config.zprime_mass = json.Get("zprime_mass").as_number();
  }
  if (json.Has("zprime_width")) {
    config.zprime_width = json.Get("zprime_width").as_number();
  }
  if (json.Has("tune_activity")) {
    config.tune_activity = json.Get("tune_activity").as_number();
  }
  if (json.Has("lepton_flavor")) {
    config.lepton_flavor = static_cast<int>(json.Get("lepton_flavor").as_int());
  }
  return config;
}

Json GeometryToJson(const DetectorGeometry& geometry) {
  // Complete capture: a replayed chain must rebuild the exact detector.
  Json json = Json::Object();
  json["name"] = geometry.name;
  json["tracker_layers"] = geometry.tracker_layers;
  json["tracker_inner_radius_m"] = geometry.tracker_inner_radius_m;
  json["tracker_layer_spacing_m"] = geometry.tracker_layer_spacing_m;
  json["tracker_eta_max"] = geometry.tracker_eta_max;
  json["tracker_eta_cells"] = geometry.tracker_eta_cells;
  json["tracker_phi_cells"] = geometry.tracker_phi_cells;
  json["field_tesla"] = geometry.field_tesla;
  json["tracker_hit_efficiency"] = geometry.tracker_hit_efficiency;
  json["ecal_eta_max"] = geometry.ecal_eta_max;
  json["ecal_eta_cells"] = geometry.ecal_eta_cells;
  json["ecal_phi_cells"] = geometry.ecal_phi_cells;
  json["ecal_stochastic"] = geometry.ecal_stochastic;
  json["ecal_constant"] = geometry.ecal_constant;
  json["hcal_eta_max"] = geometry.hcal_eta_max;
  json["hcal_eta_cells"] = geometry.hcal_eta_cells;
  json["hcal_phi_cells"] = geometry.hcal_phi_cells;
  json["hcal_stochastic"] = geometry.hcal_stochastic;
  json["hcal_constant"] = geometry.hcal_constant;
  json["muon_layers"] = geometry.muon_layers;
  json["muon_eta_max"] = geometry.muon_eta_max;
  json["muon_eta_cells"] = geometry.muon_eta_cells;
  json["muon_phi_cells"] = geometry.muon_phi_cells;
  json["muon_hit_efficiency"] = geometry.muon_hit_efficiency;
  return json;
}

Result<DetectorGeometry> GeometryFromJson(const Json& json) {
  if (!json.is_object() || !json.Has("tracker_layers")) {
    return Status::InvalidArgument("geometry JSON missing fields");
  }
  DetectorGeometry g;
  g.name = json.Get("name").as_string();
  g.tracker_layers = static_cast<int>(json.Get("tracker_layers").as_int());
  g.tracker_inner_radius_m = json.Get("tracker_inner_radius_m").as_number();
  g.tracker_layer_spacing_m =
      json.Get("tracker_layer_spacing_m").as_number();
  g.tracker_eta_max = json.Get("tracker_eta_max").as_number();
  g.tracker_eta_cells =
      static_cast<int>(json.Get("tracker_eta_cells").as_int());
  g.tracker_phi_cells =
      static_cast<int>(json.Get("tracker_phi_cells").as_int());
  g.field_tesla = json.Get("field_tesla").as_number();
  g.tracker_hit_efficiency =
      json.Get("tracker_hit_efficiency").as_number();
  g.ecal_eta_max = json.Get("ecal_eta_max").as_number();
  g.ecal_eta_cells = static_cast<int>(json.Get("ecal_eta_cells").as_int());
  g.ecal_phi_cells = static_cast<int>(json.Get("ecal_phi_cells").as_int());
  g.ecal_stochastic = json.Get("ecal_stochastic").as_number();
  g.ecal_constant = json.Get("ecal_constant").as_number();
  g.hcal_eta_max = json.Get("hcal_eta_max").as_number();
  g.hcal_eta_cells = static_cast<int>(json.Get("hcal_eta_cells").as_int());
  g.hcal_phi_cells = static_cast<int>(json.Get("hcal_phi_cells").as_int());
  g.hcal_stochastic = json.Get("hcal_stochastic").as_number();
  g.hcal_constant = json.Get("hcal_constant").as_number();
  g.muon_layers = static_cast<int>(json.Get("muon_layers").as_int());
  g.muon_eta_max = json.Get("muon_eta_max").as_number();
  g.muon_eta_cells = static_cast<int>(json.Get("muon_eta_cells").as_int());
  g.muon_phi_cells = static_cast<int>(json.Get("muon_phi_cells").as_int());
  g.muon_hit_efficiency = json.Get("muon_hit_efficiency").as_number();
  return g;
}

Json SimulationConfigToJson(const SimulationConfig& config) {
  Json json = Json::Object();
  json["geometry"] = GeometryToJson(config.geometry);
  json["calib_payload"] = config.calib.ToPayload();
  json["seed"] = config.seed;
  json["noise_cells_mean"] = config.noise_cells_mean;
  json["trig_egamma_et"] = config.trig_egamma_et;
  json["trig_muon_pt"] = config.trig_muon_pt;
  json["trig_ht"] = config.trig_ht;
  json["minbias_prescale"] = config.minbias_prescale;
  return json;
}

Result<SimulationConfig> SimulationConfigFromJson(const Json& json) {
  if (!json.is_object() || !json.Has("geometry")) {
    return Status::InvalidArgument("simulation config JSON missing fields");
  }
  SimulationConfig config;
  DASPOS_ASSIGN_OR_RETURN(config.geometry,
                          GeometryFromJson(json.Get("geometry")));
  DASPOS_ASSIGN_OR_RETURN(
      config.calib,
      CalibrationSet::FromPayload(json.Get("calib_payload").as_string()));
  config.seed = static_cast<uint64_t>(json.Get("seed").as_int());
  config.noise_cells_mean = json.Get("noise_cells_mean").as_number();
  config.trig_egamma_et = json.Get("trig_egamma_et").as_number();
  config.trig_muon_pt = json.Get("trig_muon_pt").as_number();
  config.trig_ht = json.Get("trig_ht").as_number();
  config.minbias_prescale =
      static_cast<uint32_t>(json.Get("minbias_prescale").as_int());
  return config;
}

// ------------------------------------------------------------- Generation

GenerationStep::GenerationStep(GeneratorConfig config, size_t event_count,
                               std::string dataset_name)
    : config_(config),
      event_count_(event_count),
      dataset_name_(std::move(dataset_name)) {}

Json GenerationStep::Config() const {
  Json json = Json::Object();
  json["generator"] = GeneratorConfigToJson(config_);
  json["event_count"] = static_cast<uint64_t>(event_count_);
  return json;
}

Result<std::string> GenerationStep::Run(
    const std::vector<std::string_view>& inputs,
    WorkflowContext* context) const {
  (void)context;
  if (!inputs.empty()) {
    return Status::InvalidArgument("generation takes no inputs");
  }
  EventGenerator generator(config_);
  std::vector<GenEvent> events = generator.GenerateMany(event_count_);
  last_events_ = events.size();

  DatasetInfo info;
  info.tier = DataTier::kGen;
  info.name = dataset_name_;
  info.producer = "generation v1.0";
  info.description = GetProcessInfo(config_.process).description;
  return WriteGenDataset(info, events);
}

// ------------------------------------------------------------- Simulation

SimulationStep::SimulationStep(SimulationConfig config, uint32_t run_number,
                               std::string dataset_name)
    : config_(config),
      run_number_(run_number),
      dataset_name_(std::move(dataset_name)) {}

Json SimulationStep::Config() const {
  Json json = Json::Object();
  json["simulation"] = SimulationConfigToJson(config_);
  json["run_number"] = run_number_;
  return json;
}

Result<std::string> SimulationStep::Run(
    const std::vector<std::string_view>& inputs,
    WorkflowContext* context) const {
  if (inputs.size() != 1) {
    return Status::InvalidArgument("simulation takes exactly one GEN input");
  }
  DatasetInfo gen_info;
  DASPOS_ASSIGN_OR_RETURN(std::vector<GenEvent> truth,
                          ReadGenDataset(inputs[0], &gen_info));
  DetectorSimulation simulation(config_);
  // Simulate's randomness is event-local (seeded from the event number), so
  // events digitize independently and in parallel with identical output.
  std::vector<RawEvent> raw = ParallelMap<RawEvent>(
      context != nullptr ? context->worker_pool() : nullptr, truth.size(),
      [&simulation, &truth, this](size_t i) {
        return simulation.Simulate(truth[i], run_number_);
      },
      /*grain=*/1);
  last_events_ = raw.size();

  DatasetInfo info;
  info.tier = DataTier::kRaw;
  info.name = dataset_name_;
  info.producer = "simulation v1.0";
  info.parents = {gen_info.name};
  info.description = "digitized detector response";
  return WriteRawDataset(info, raw);
}

// --------------------------------------------------------- Reconstruction

ReconstructionStep::ReconstructionStep(DetectorGeometry geometry,
                                       std::string dataset_name)
    : geometry_(std::move(geometry)), dataset_name_(std::move(dataset_name)) {}

Json ReconstructionStep::Config() const {
  Json json = Json::Object();
  json["geometry"] = GeometryToJson(geometry_);
  json["conditions_tag"] = kCalibrationTag;
  return json;
}

Result<std::string> ReconstructionStep::Run(
    const std::vector<std::string_view>& inputs,
    WorkflowContext* context) const {
  if (inputs.size() != 1) {
    return Status::InvalidArgument(
        "reconstruction takes exactly one RAW input");
  }
  if (context->conditions() == nullptr) {
    return Status::FailedPrecondition(
        "reconstruction requires a conditions provider (calibration "
        "constants), §3.2");
  }
  DatasetInfo raw_info;
  DASPOS_ASSIGN_OR_RETURN(std::vector<RawEvent> raw,
                          ReadRawDataset(inputs[0], &raw_info));
  if (raw.empty()) {
    return Status::InvalidArgument("RAW dataset is empty");
  }
  uint32_t run = raw.front().run_number;
  DASPOS_ASSIGN_OR_RETURN(
      std::string payload,
      context->conditions()->GetPayload(kCalibrationTag, run));
  DASPOS_ASSIGN_OR_RETURN(CalibrationSet calib,
                          CalibrationSet::FromPayload(payload));

  ReconstructionConfig config;
  config.geometry = geometry_;
  config.calib = calib;
  Reconstructor reconstructor(config);

  std::vector<RecoEvent> reco =
      reconstructor.ReconstructAll(raw, context->worker_pool());
  last_events_ = reco.size();

  DatasetInfo info;
  info.tier = DataTier::kReco;
  info.name = dataset_name_;
  info.producer = "reconstruction v1.0 (calib v" +
                  std::to_string(calib.version) + ")";
  info.parents = {raw_info.name};
  info.description = "tracks, clusters, candidate physics objects";
  return WriteRecoDataset(info, reco);
}

// ------------------------------------------------------------- AOD

AodReductionStep::AodReductionStep(std::string dataset_name)
    : dataset_name_(std::move(dataset_name)) {}

Json AodReductionStep::Config() const {
  Json json = Json::Object();
  json["drops"] = "tracks, clusters (basic and intermediate categories)";
  return json;
}

Result<std::string> AodReductionStep::Run(
    const std::vector<std::string_view>& inputs,
    WorkflowContext* context) const {
  if (inputs.size() != 1) {
    return Status::InvalidArgument(
        "AOD reduction takes exactly one RECO input");
  }
  DatasetInfo reco_info;
  DASPOS_ASSIGN_OR_RETURN(std::vector<RecoEvent> reco,
                          ReadRecoDataset(inputs[0], &reco_info));
  std::vector<AodEvent> aod = ParallelMap<AodEvent>(
      context != nullptr ? context->worker_pool() : nullptr, reco.size(),
      [&reco](size_t i) { return AodEvent::FromReco(reco[i]); },
      /*grain=*/8);
  last_events_ = aod.size();

  DatasetInfo info;
  info.tier = DataTier::kAod;
  info.name = dataset_name_;
  info.producer = "aod_reduction v1.0";
  info.parents = {reco_info.name};
  info.description = "refined physics objects only";
  return WriteAodDataset(info, aod);
}

// ------------------------------------------------------------- Derivation

DerivationStep::DerivationStep(SkimSpec skim, SlimSpec slim,
                               std::string dataset_name)
    : skim_(std::move(skim)),
      slim_(std::move(slim)),
      dataset_name_(std::move(dataset_name)) {}

Json DerivationStep::Config() const {
  Json json = Json::Object();
  json["skim"] = skim_.ToJson();
  json["slim"] = slim_.ToJson();
  return json;
}

Result<std::string> DerivationStep::Run(
    const std::vector<std::string_view>& inputs,
    WorkflowContext* context) const {
  if (inputs.size() != 1) {
    return Status::InvalidArgument("derivation takes exactly one AOD input");
  }
  DerivationStats stats;
  DASPOS_ASSIGN_OR_RETURN(
      std::string blob,
      DeriveDataset(inputs[0], dataset_name_, skim_, slim_, &stats,
                    context != nullptr ? context->worker_pool() : nullptr));
  last_events_ = stats.output_events;
  return blob;
}

// ------------------------------------------------------------------ Merge

MergeStep::MergeStep(std::string dataset_name)
    : dataset_name_(std::move(dataset_name)) {}

Json MergeStep::Config() const {
  Json json = Json::Object();
  json["operation"] = "concatenate records of same-tier datasets";
  return json;
}

Result<std::string> MergeStep::Run(
    const std::vector<std::string_view>& inputs,
    WorkflowContext* context) const {
  (void)context;
  if (inputs.empty()) {
    return Status::InvalidArgument("merge needs at least one input");
  }
  DatasetInfo merged_info;
  std::vector<ContainerReader> readers;
  readers.reserve(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    DASPOS_ASSIGN_OR_RETURN(ContainerReader reader,
                            ContainerReader::Open(inputs[i]));
    DASPOS_ASSIGN_OR_RETURN(DatasetInfo info,
                            DatasetInfo::FromJson(reader.metadata()));
    if (i == 0) {
      merged_info = info;
      merged_info.parents.clear();  // replaced by the merge input list
    } else if (info.tier != merged_info.tier) {
      return Status::InvalidArgument(
          "cannot merge tiers " + std::string(TierName(merged_info.tier)) +
          " and " + std::string(TierName(info.tier)));
    }
    merged_info.parents.push_back(info.name);
    readers.push_back(std::move(reader));
  }
  // The first input's name also landed in parents; keep the list as the
  // full input set and rename the output.
  merged_info.name = dataset_name_;
  merged_info.producer = "merge v1.0";

  Json meta = merged_info.ToJson();
  meta["schema"] = std::string(TierSchema(merged_info.tier));
  meta["schema_version"] = 1;
  ContainerWriter writer(meta);
  uint64_t events = 0;
  for (const ContainerReader& reader : readers) {
    for (std::string_view record : reader.records()) {
      writer.AddRecord(record);
      ++events;
    }
  }
  last_events_ = events;
  return writer.Finish();
}

Workflow StandardChainWorkflow(Process process, size_t event_count,
                               uint64_t seed) {
  GeneratorConfig gen_config;
  gen_config.process = process;
  gen_config.seed = seed;
  SimulationConfig sim_config;
  sim_config.seed = seed + 1;

  Workflow workflow;
  (void)workflow.AddStep(
      std::make_shared<GenerationStep>(gen_config, event_count, "gen"), {},
      "gen");
  (void)workflow.AddStep(
      std::make_shared<SimulationStep>(sim_config, 1, "raw"), {"gen"}, "raw");
  (void)workflow.AddStep(
      std::make_shared<ReconstructionStep>(sim_config.geometry, "reco"),
      {"raw"}, "reco");
  (void)workflow.AddStep(std::make_shared<AodReductionStep>("aod"), {"reco"},
                         "aod");
  (void)workflow.AddStep(
      std::make_shared<DerivationStep>(
          SkimSpec::RequireObjects(ObjectType::kMuon, 2, 10.0),
          SlimSpec::LeptonsOnly(10.0), "derived"),
      {"aod"}, "derived");
  return workflow;
}

}  // namespace daspos
