#include "workflow/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <filesystem>

#include "serialize/json.h"
#include "support/io.h"
#include "support/strings.h"

namespace daspos {

namespace fs = std::filesystem;

namespace {

Json RecordToJson(const RunJournal::Record& record) {
  Json json = Json::Object();
  json["step"] = record.step;
  json["output"] = record.output;
  json["digest"] = record.digest;
  json["config_hash"] = record.config_hash;
  json["bytes"] = record.bytes;
  json["events"] = record.events;
  return json;
}

/// Reads a non-negative integer field. A missing, non-numeric, negative, or
/// fractional value is corruption, not zero: a crash-truncated or bit-rotted
/// line must read as "not a record", never as a record with bytes=0.
bool ReadU64Field(const Json& json, std::string_view key, uint64_t* out) {
  const Json& field = json.Get(key);
  if (!field.is_number()) return false;
  double value = field.as_number();
  if (value < 0.0 || value != std::floor(value)) return false;
  *out = static_cast<uint64_t>(value);
  return true;
}

bool RecordFromJson(const Json& json, RunJournal::Record* out) {
  if (!json.is_object()) return false;
  if (!json.Get("step").is_string() || !json.Get("output").is_string() ||
      !json.Get("digest").is_string() ||
      !json.Get("config_hash").is_string()) {
    return false;
  }
  if (!ReadU64Field(json, "bytes", &out->bytes) ||
      !ReadU64Field(json, "events", &out->events)) {
    return false;
  }
  out->step = json.Get("step").as_string();
  out->output = json.Get("output").as_string();
  out->digest = json.Get("digest").as_string();
  out->config_hash = json.Get("config_hash").as_string();
  return true;
}

}  // namespace

RunJournal::RunJournal(std::string dir)
    : dir_(std::move(dir)), objects_(dir_ + "/objects") {}

std::string RunJournal::LinesPath(const std::string& dir) {
  return dir + "/journal.jsonl";
}

Result<std::unique_ptr<RunJournal>> RunJournal::Open(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(fs::path(dir) / "objects", ec);
  if (ec) {
    return Status::IOError("cannot create journal directory " + dir + ": " +
                           ec.message());
  }
  std::unique_ptr<RunJournal> journal(new RunJournal(dir));
  const std::string lines_path = LinesPath(dir);
  if (FileExists(lines_path)) {
    DASPOS_ASSIGN_OR_RETURN(std::string text, ReadFileToString(lines_path));
    // No other thread can hold the journal yet, but records_ is guarded and
    // the analysis has no "not yet shared" notion — taking the lock here is
    // free and keeps the invariant unconditional.
    MutexLock lock(journal->mu_);
    for (const std::string& line : Split(text, '\n')) {
      if (Trim(line).empty()) continue;
      auto parsed = Json::Parse(line);
      RunJournal::Record record;
      // A malformed line is a crash-truncated tail: keep everything before
      // it, ignore the rest. Resume re-executes from that point.
      if (!parsed.ok() || !RecordFromJson(*parsed, &record)) break;
      journal->records_.push_back(std::move(record));
    }
  }
  return journal;
}

Status RunJournal::Append(Record record, std::string_view blob) {
  // Blob first: the journal line must never reference bytes that are not
  // yet durable. FileObjectStore writes atomically (temp + fsync + rename).
  DASPOS_ASSIGN_OR_RETURN(record.digest, objects_.Put(blob));
  std::string line = RecordToJson(record).Dump() + "\n";

  // Held across the file I/O on purpose: the lock also serializes appends,
  // so journal lines never interleave and records_ mirrors file order.
  MutexLock lock(mu_);
  const std::string lines_path = LinesPath(dir_);
  // O_CREAT on a fresh journal adds a directory entry, which has its own
  // durability point: fsyncing the file makes the first record's bytes
  // durable, but only a directory fsync makes the *name* durable. Without
  // it a crash can lose the whole journal even though Append returned OK.
  const bool created = !FileExists(lines_path);
  int fd = ::open(lines_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open journal for append: " + dir_ + ": " +
                           std::strerror(errno));
  }
  const char* cursor = line.data();
  size_t remaining = line.size();
  while (remaining > 0) {
    ssize_t written = ::write(fd, cursor, remaining);
    if (written < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      ::close(fd);
      return Status::IOError("journal append failed: " + dir_ + ": " +
                             std::strerror(saved));
    }
    cursor += written;
    remaining -= static_cast<size_t>(written);
  }
  if (::fsync(fd) != 0) {
    int saved = errno;
    ::close(fd);
    return Status::IOError("journal fsync failed: " + dir_ + ": " +
                           std::strerror(saved));
  }
  ::close(fd);
  if (created) {
    // The record is not checkpointed until its file is reachable after a
    // crash; surface the failure rather than remembering a record the disk
    // may not have.
    DASPOS_RETURN_IF_ERROR(FsyncDir(dir_));
  }
  records_.push_back(std::move(record));
  return Status::OK();
}

std::optional<RunJournal::Record> RunJournal::Find(
    const std::string& step) const {
  MutexLock lock(mu_);
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (it->step == step) return *it;
  }
  return std::nullopt;
}

Result<std::string> RunJournal::LoadBlob(const std::string& digest) const {
  return objects_.Get(digest);
}

std::vector<RunJournal::Record> RunJournal::records() const {
  MutexLock lock(mu_);
  return records_;
}

}  // namespace daspos
