#include "workflow/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "serialize/json.h"
#include "support/io.h"
#include "support/strings.h"

namespace daspos {

namespace fs = std::filesystem;

namespace {

Json RecordToJson(const RunJournal::Record& record) {
  Json json = Json::Object();
  json["step"] = record.step;
  json["output"] = record.output;
  json["digest"] = record.digest;
  json["config_hash"] = record.config_hash;
  json["bytes"] = record.bytes;
  json["events"] = record.events;
  return json;
}

bool RecordFromJson(const Json& json, RunJournal::Record* out) {
  if (!json.is_object()) return false;
  if (!json.Get("step").is_string() || !json.Get("output").is_string() ||
      !json.Get("digest").is_string() ||
      !json.Get("config_hash").is_string()) {
    return false;
  }
  out->step = json.Get("step").as_string();
  out->output = json.Get("output").as_string();
  out->digest = json.Get("digest").as_string();
  out->config_hash = json.Get("config_hash").as_string();
  out->bytes = static_cast<uint64_t>(json.Get("bytes").as_int());
  out->events = static_cast<uint64_t>(json.Get("events").as_int());
  return true;
}

}  // namespace

RunJournal::RunJournal(std::string dir)
    : dir_(std::move(dir)), objects_(dir_ + "/objects") {}

std::string RunJournal::LinesPath(const std::string& dir) {
  return dir + "/journal.jsonl";
}

Result<std::unique_ptr<RunJournal>> RunJournal::Open(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(fs::path(dir) / "objects", ec);
  if (ec) {
    return Status::IOError("cannot create journal directory " + dir + ": " +
                           ec.message());
  }
  std::unique_ptr<RunJournal> journal(new RunJournal(dir));
  const std::string lines_path = LinesPath(dir);
  if (FileExists(lines_path)) {
    DASPOS_ASSIGN_OR_RETURN(std::string text, ReadFileToString(lines_path));
    for (const std::string& line : Split(text, '\n')) {
      if (Trim(line).empty()) continue;
      auto parsed = Json::Parse(line);
      RunJournal::Record record;
      // A malformed line is a crash-truncated tail: keep everything before
      // it, ignore the rest. Resume re-executes from that point.
      if (!parsed.ok() || !RecordFromJson(*parsed, &record)) break;
      journal->records_.push_back(std::move(record));
    }
  }
  return journal;
}

Status RunJournal::Append(Record record, std::string_view blob) {
  // Blob first: the journal line must never reference bytes that are not
  // yet durable. FileObjectStore writes atomically (temp + fsync + rename).
  DASPOS_ASSIGN_OR_RETURN(record.digest, objects_.Put(blob));
  std::string line = RecordToJson(record).Dump() + "\n";

  std::lock_guard<std::mutex> lock(mu_);
  int fd = ::open(LinesPath(dir_).c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open journal for append: " + dir_ + ": " +
                           std::strerror(errno));
  }
  const char* cursor = line.data();
  size_t remaining = line.size();
  while (remaining > 0) {
    ssize_t written = ::write(fd, cursor, remaining);
    if (written < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      ::close(fd);
      return Status::IOError("journal append failed: " + dir_ + ": " +
                             std::strerror(saved));
    }
    cursor += written;
    remaining -= static_cast<size_t>(written);
  }
  if (::fsync(fd) != 0) {
    int saved = errno;
    ::close(fd);
    return Status::IOError("journal fsync failed: " + dir_ + ": " +
                           std::strerror(saved));
  }
  ::close(fd);
  records_.push_back(std::move(record));
  return Status::OK();
}

std::optional<RunJournal::Record> RunJournal::Find(
    const std::string& step) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (it->step == step) return *it;
  }
  return std::nullopt;
}

Result<std::string> RunJournal::LoadBlob(const std::string& digest) const {
  return objects_.Get(digest);
}

std::vector<RunJournal::Record> RunJournal::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

}  // namespace daspos
