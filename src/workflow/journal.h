// Run journal: the crash-recovery checkpoint for workflow execution.
//
// A journal is a directory holding `journal.jsonl` (one JSON record per
// completed step, appended and fsynced as the run progresses) and `objects/`
// (a content-addressed FileObjectStore with each step's output blob, keyed
// by digest). An interrupted run can be resumed by re-executing only the
// steps whose journal records are missing or no longer verify — the digest
// check is literal: blobs are re-hashed on load.
#ifndef DASPOS_WORKFLOW_JOURNAL_H_
#define DASPOS_WORKFLOW_JOURNAL_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "archive/object_store.h"
#include "support/result.h"
#include "support/sync.h"

namespace daspos {

/// Append-only record of completed workflow steps with checkpointed output
/// blobs. Append is thread-safe (workers checkpoint concurrently); loading
/// tolerates a truncated final line, which is exactly what a crash mid-append
/// leaves behind.
class RunJournal {
 public:
  /// One completed step. `digest` is the SHA-256 content id of the output
  /// blob in the journal's object store; `config_hash` identifies the step
  /// configuration so a resumed run never reuses output produced under a
  /// different config.
  struct Record {
    std::string step;
    std::string output;
    std::string digest;
    std::string config_hash;
    uint64_t bytes = 0;
    uint64_t events = 0;
  };

  /// Opens (creating if needed) the journal directory and loads any existing
  /// records. Parsing stops silently at the first malformed line: everything
  /// before a crash-truncated tail is still usable.
  static Result<std::unique_ptr<RunJournal>> Open(const std::string& dir);

  /// Checkpoints one completed step: stores `blob` in the object store
  /// (filling record.digest), then appends the record as one fsynced JSONL
  /// line. The blob is durable before the journal line that references it.
  Status Append(Record record, std::string_view blob) DASPOS_EXCLUDES(mu_);

  /// Latest record for `step` (copied; safe to hold across Appends), or
  /// nullopt if none. Later records win, so a re-run that re-checkpoints a
  /// step supersedes the stale entry.
  std::optional<Record> Find(const std::string& step) const
      DASPOS_EXCLUDES(mu_);

  /// Loads a checkpointed blob; the store re-hashes on read, so a rotted
  /// checkpoint comes back as Corruption, never as wrong bytes.
  Result<std::string> LoadBlob(const std::string& digest) const;

  /// Snapshot of all records (copied under the lock).
  std::vector<Record> records() const DASPOS_EXCLUDES(mu_);
  const std::string& dir() const { return dir_; }

  /// Path of the JSONL file inside a journal directory.
  static std::string LinesPath(const std::string& dir);

 private:
  explicit RunJournal(std::string dir);

  std::string dir_;
  FileObjectStore objects_;
  /// Serializes appends (one fsynced JSONL line at a time) and guards the
  /// in-memory mirror of the file.
  mutable Mutex mu_;
  std::vector<Record> records_ DASPOS_GUARDED_BY(mu_);
};

}  // namespace daspos

#endif  // DASPOS_WORKFLOW_JOURNAL_H_
