#include "workflow/provenance.h"

#include <algorithm>
#include <deque>
#include <set>

namespace daspos {

Json ProvenanceRecord::ToJson() const {
  Json json = Json::Object();
  json["dataset"] = dataset;
  json["producer"] = producer;
  json["producer_version"] = producer_version;
  json["config_hash"] = config_hash;
  json["config"] = config;
  Json parent_list = Json::Array();
  for (const std::string& parent : parents) parent_list.push_back(parent);
  json["parents"] = std::move(parent_list);
  json["sequence"] = sequence;
  json["output_bytes"] = output_bytes;
  json["output_events"] = output_events;
  return json;
}

Result<ProvenanceRecord> ProvenanceRecord::FromJson(const Json& json) {
  if (!json.is_object() || !json.Has("dataset")) {
    return Status::Corruption("provenance record missing 'dataset'");
  }
  ProvenanceRecord record;
  record.dataset = json.Get("dataset").as_string();
  record.producer = json.Get("producer").as_string();
  record.producer_version = json.Get("producer_version").as_string();
  record.config_hash = json.Get("config_hash").as_string();
  record.config = json.Get("config");
  const Json& parents = json.Get("parents");
  for (size_t i = 0; i < parents.size(); ++i) {
    record.parents.push_back(parents.at(i).as_string());
  }
  record.sequence = static_cast<uint64_t>(json.Get("sequence").as_int());
  record.output_bytes =
      static_cast<uint64_t>(json.Get("output_bytes").as_int());
  record.output_events =
      static_cast<uint64_t>(json.Get("output_events").as_int());
  return record;
}

Status ProvenanceStore::Add(ProvenanceRecord record) {
  if (record.dataset.empty()) {
    return Status::InvalidArgument("provenance record needs a dataset name");
  }
  if (records_.count(record.dataset) > 0) {
    return Status::AlreadyExists("provenance already recorded for '" +
                                 record.dataset + "'");
  }
  record.sequence = next_sequence_++;
  order_.push_back(record.dataset);
  records_.emplace(record.dataset, std::move(record));
  return Status::OK();
}

Result<ProvenanceRecord> ProvenanceStore::Get(
    const std::string& dataset) const {
  auto it = records_.find(dataset);
  if (it == records_.end()) {
    return Status::NotFound("no provenance for '" + dataset + "'");
  }
  return it->second;
}

bool ProvenanceStore::Has(const std::string& dataset) const {
  return records_.count(dataset) > 0;
}

std::vector<std::string> ProvenanceStore::Datasets() const { return order_; }

Result<std::vector<std::string>> ProvenanceStore::Ancestry(
    const std::string& dataset) const {
  if (!Has(dataset)) {
    return Status::NotFound("no provenance for '" + dataset + "'");
  }
  std::vector<std::string> out;
  std::set<std::string> seen;
  std::deque<std::string> frontier;
  frontier.push_back(dataset);
  seen.insert(dataset);
  while (!frontier.empty()) {
    std::string current = frontier.front();
    frontier.pop_front();
    auto it = records_.find(current);
    if (it == records_.end()) continue;  // chain breaks here
    for (const std::string& parent : it->second.parents) {
      if (seen.insert(parent).second) {
        out.push_back(parent);
        frontier.push_back(parent);
      }
    }
  }
  return out;
}

std::vector<std::string> ProvenanceStore::MissingParents() const {
  std::set<std::string> missing;
  for (const auto& [dataset, record] : records_) {
    (void)dataset;
    for (const std::string& parent : record.parents) {
      if (!Has(parent)) missing.insert(parent);
    }
  }
  return {missing.begin(), missing.end()};
}

std::string ProvenanceStore::Serialize() const {
  Json json = Json::Array();
  for (const std::string& dataset : order_) {
    json.push_back(records_.at(dataset).ToJson());
  }
  return json.Dump(2);
}

Result<ProvenanceStore> ProvenanceStore::Parse(const std::string& text) {
  DASPOS_ASSIGN_OR_RETURN(Json json, Json::Parse(text));
  if (!json.is_array()) {
    return Status::Corruption("provenance document must be a JSON array");
  }
  ProvenanceStore store;
  for (size_t i = 0; i < json.size(); ++i) {
    DASPOS_ASSIGN_OR_RETURN(ProvenanceRecord record,
                            ProvenanceRecord::FromJson(json.at(i)));
    uint64_t sequence = record.sequence;
    DASPOS_RETURN_IF_ERROR(store.Add(std::move(record)));
    // Preserve original sequence numbers.
    store.records_[store.order_.back()].sequence = sequence;
    store.next_sequence_ = std::max(store.next_sequence_, sequence + 1);
  }
  return store;
}

}  // namespace daspos
