// Workflow engine: a dataflow graph of processing steps over named
// datasets, with optional provenance capture. Models the "nested levels of
// processing required to go from the raw data ... to the final physics
// analysis" (§5) in a form a preservation system can record and re-execute.
//
// Execution is a parallel DAG schedule: every step whose inputs are
// available runs concurrently on a worker pool, while provenance records and
// the report stay in a deterministic topological order (independent of
// thread count and completion timing), so captured chains are byte-identical
// whether re-executed serially or wide.
#ifndef DASPOS_WORKFLOW_ENGINE_H_
#define DASPOS_WORKFLOW_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "conditions/provider.h"
#include "lint/checks.h"
#include "serialize/json.h"
#include "support/metrics.h"
#include "support/result.h"
#include "support/sync.h"
#include "workflow/provenance.h"

namespace daspos {

class FaultPlan;
class RunJournal;
class ThreadPool;

/// Execution-time environment: dataset storage plus external services
/// (the conditions database — the paper's canonical external dependency).
///
/// Thread-safe: steps running concurrently may Put and Get datasets. Views
/// returned by GetDataset stay valid and immutable for the context's
/// lifetime (datasets are write-once; map nodes are reference-stable).
class WorkflowContext {
 public:
  /// Stores a dataset blob under a unique logical name.
  Status PutDataset(const std::string& name, std::string blob)
      DASPOS_EXCLUDES(mutex_);
  Result<std::string_view> GetDataset(const std::string& name) const
      DASPOS_EXCLUDES(mutex_);
  bool HasDataset(const std::string& name) const DASPOS_EXCLUDES(mutex_);
  std::vector<std::string> DatasetNames() const DASPOS_EXCLUDES(mutex_);
  uint64_t TotalBytes() const DASPOS_EXCLUDES(mutex_);

  /// Optional conditions service, not owned.
  void set_conditions(const ConditionsProvider* provider) {
    conditions_ = provider;
  }
  const ConditionsProvider* conditions() const { return conditions_; }

  /// Shared worker pool for intra-step data parallelism (not owned). The
  /// engine sets it for the duration of Execute so every step fans its hot
  /// loop out over the same workers instead of oversubscribing; null means
  /// run serially. Set happens-before any step runs (publication goes
  /// through the pool's queue mutex).
  void set_worker_pool(ThreadPool* pool) { worker_pool_ = pool; }
  ThreadPool* worker_pool() const { return worker_pool_; }

 private:
  mutable SharedMutex mutex_;
  std::map<std::string, std::string> datasets_ DASPOS_GUARDED_BY(mutex_);
  // Set before any step runs and cleared after the pool drains; steps only
  // read these, so they stay outside the lock by design.
  const ConditionsProvider* conditions_ = nullptr;
  ThreadPool* worker_pool_ = nullptr;
};

/// One processing step. Implementations are in steps.h; anything honoring
/// this interface can join a workflow. Run must be safe to call while other
/// steps run on different threads (it may only touch its own state and the
/// thread-safe context).
class WorkflowStep {
 public:
  virtual ~WorkflowStep() = default;

  virtual std::string name() const = 0;
  virtual std::string version() const = 0;
  /// Canonical configuration capture; hashed into provenance.
  virtual Json Config() const = 0;
  /// Consumes the input blobs and returns the output dataset blob.
  virtual Result<std::string> Run(const std::vector<std::string_view>& inputs,
                                  WorkflowContext* context) const = 0;
  /// Number of events in the produced blob (for provenance accounting);
  /// steps that cannot tell return 0.
  virtual uint64_t last_output_events() const { return 0; }
};

/// Report of one executed workflow. Steps are ordered by their stable
/// topological rank (dependency depth, then registration order) — never by
/// completion time — so two executions of the same graph produce the same
/// step sequence regardless of parallelism.
struct WorkflowReport {
  struct StepResult {
    std::string step;
    std::string output;
    uint64_t output_bytes = 0;
    uint64_t output_events = 0;
    /// Wall-clock time of the step (input gather + Run + dataset store).
    double wall_ms = 0.0;
    /// Run attempts consumed (1 = first try succeeded; 0 = restored from a
    /// journal checkpoint without running).
    int attempts = 1;
    /// True when the output was restored from a run-journal checkpoint.
    bool from_checkpoint = false;
  };
  std::vector<StepResult> steps;
  /// Steps that exhausted their retries (keep_going mode only; an empty
  /// list means full success).
  std::vector<std::string> failed_steps;
  /// Steps never dispatched because a (transitive) dependency failed
  /// (keep_going mode only).
  std::vector<std::string> skipped_steps;
  /// Wall-clock time of the whole Execute, and the worker count used.
  double wall_ms = 0.0;
  size_t threads_used = 0;
  /// Worker-pool activity over this execution (tasks = dispatched steps
  /// plus intra-step parallel chunks), computed from registry counter
  /// deltas around the pool's lifetime. busy_ms sums task wall time across
  /// workers, so Utilization() is the fraction of thread-seconds spent in
  /// task bodies.
  struct PoolActivity {
    size_t threads = 0;
    uint64_t tasks_executed = 0;
    double busy_ms = 0.0;
    double wall_ms = 0.0;

    double Utilization() const {
      if (threads == 0 || wall_ms <= 0.0) return 0.0;
      return busy_ms / (static_cast<double>(threads) * wall_ms);
    }
  };
  PoolActivity pool;

  bool fully_succeeded() const {
    return failed_steps.empty() && skipped_steps.empty();
  }

  /// The report as JSON (for `daspos chain --json` and archival next to the
  /// provenance chain). Includes a `metrics` block — the current state of
  /// every instrument in MetricsRegistry::Global().
  Json ToJson() const;

  /// Per-step timing table (support/metrics renderer).
  std::string RenderTimingTable(const std::string& title = "") const;
};

/// Knobs for Workflow::Execute.
struct ExecuteOptions {
  /// Worker threads for ready-step dispatch. 0 means one per hardware
  /// thread; 1 reproduces strictly serial execution.
  size_t max_threads = 0;

  /// Extra attempts after a step's first failure. Only transient failures
  /// (IOError, DeadlineExceeded) are retried; anything else is permanent.
  int max_step_retries = 0;

  /// Base backoff between step retries (exponential, jittered). Tests set 0
  /// for speed.
  double retry_backoff_ms = 10.0;

  /// Per-step wall-clock budget in milliseconds; 0 disables. A step cannot
  /// be killed mid-Run, so this is a post-hoc deadline: an attempt that
  /// finishes past its budget has its output discarded and counts as a
  /// retryable DeadlineExceeded failure.
  double step_timeout_ms = 0.0;

  /// Graceful degradation: when a step exhausts its retries, quarantine it
  /// (with its transitive dependents) and keep executing independent
  /// branches. Execute then returns an OK report with `failed_steps` /
  /// `skipped_steps` naming the casualties instead of an error status.
  bool keep_going = false;

  /// Checkpoint journal (not owned). Every completed step is appended with
  /// its output blob; with `resume` set, steps whose journaled record still
  /// matches (same step name, output, config hash) and whose blob digest
  /// verifies are restored without re-running.
  RunJournal* journal = nullptr;
  bool resume = false;

  /// Fault injector for chaos testing (not owned). Consulted once per step
  /// attempt; an injected fault counts as a transient step failure.
  FaultPlan* step_faults = nullptr;
};

/// A directed acyclic processing graph. Steps are bound to named inputs and
/// one named output; execution order is resolved by data availability.
class Workflow {
 public:
  /// Binds a step. The step name and the output name must each be unique
  /// across the workflow (AlreadyExists otherwise), and the output must not
  /// appear among the step's own inputs (self-cycle).
  Status AddStep(std::shared_ptr<WorkflowStep> step,
                 std::vector<std::string> inputs, std::string output);

  /// Runs every step whose inputs are (or become) available; independent
  /// steps run concurrently on up to `options.max_threads` workers. Before
  /// anything runs, the graph is gated through the preservation linter: a
  /// chain with cycles, missing inputs, or unreachable steps is rejected
  /// with named diagnostics instead of failing mid-run. On a step failure
  /// no further steps are dispatched. When `provenance` is non-null, a
  /// record per produced dataset is added — the capture the E5 bench
  /// prices — in the same deterministic order as the report.
  Result<WorkflowReport> Execute(WorkflowContext* context,
                                 ProvenanceStore* provenance = nullptr,
                                 const ExecuteOptions& options = {}) const;

  /// Execution-free description of the graph for the preservation linter.
  /// When `context` is given, its datasets count as external inputs.
  lint::WorkflowGraphSpec GraphSpec(const WorkflowContext* context =
                                        nullptr) const;

  size_t step_count() const { return bindings_.size(); }

 private:
  struct Binding {
    std::shared_ptr<WorkflowStep> step;
    std::vector<std::string> inputs;
    std::string output;
  };
  std::vector<Binding> bindings_;
};

}  // namespace daspos

#endif  // DASPOS_WORKFLOW_ENGINE_H_
