// Workflow engine: a dataflow graph of processing steps over named
// datasets, with optional provenance capture. Models the "nested levels of
// processing required to go from the raw data ... to the final physics
// analysis" (§5) in a form a preservation system can record and re-execute.
#ifndef DASPOS_WORKFLOW_ENGINE_H_
#define DASPOS_WORKFLOW_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "conditions/provider.h"
#include "serialize/json.h"
#include "support/result.h"
#include "workflow/provenance.h"

namespace daspos {

/// Execution-time environment: dataset storage plus external services
/// (the conditions database — the paper's canonical external dependency).
class WorkflowContext {
 public:
  /// Stores a dataset blob under a unique logical name.
  Status PutDataset(const std::string& name, std::string blob);
  Result<std::string_view> GetDataset(const std::string& name) const;
  bool HasDataset(const std::string& name) const;
  std::vector<std::string> DatasetNames() const;
  uint64_t TotalBytes() const;

  /// Optional conditions service, not owned.
  void set_conditions(const ConditionsProvider* provider) {
    conditions_ = provider;
  }
  const ConditionsProvider* conditions() const { return conditions_; }

 private:
  std::map<std::string, std::string> datasets_;
  const ConditionsProvider* conditions_ = nullptr;
};

/// One processing step. Implementations are in steps.h; anything honoring
/// this interface can join a workflow.
class WorkflowStep {
 public:
  virtual ~WorkflowStep() = default;

  virtual std::string name() const = 0;
  virtual std::string version() const = 0;
  /// Canonical configuration capture; hashed into provenance.
  virtual Json Config() const = 0;
  /// Consumes the input blobs and returns the output dataset blob.
  virtual Result<std::string> Run(const std::vector<std::string_view>& inputs,
                                  WorkflowContext* context) const = 0;
  /// Number of events in the produced blob (for provenance accounting);
  /// steps that cannot tell return 0.
  virtual uint64_t last_output_events() const { return 0; }
};

/// Report of one executed workflow.
struct WorkflowReport {
  struct StepResult {
    std::string step;
    std::string output;
    uint64_t output_bytes = 0;
  };
  std::vector<StepResult> steps;
};

/// A directed acyclic processing graph. Steps are bound to named inputs and
/// one named output; execution order is resolved by data availability.
class Workflow {
 public:
  /// Binds a step. The output name must be unique across the workflow.
  Status AddStep(std::shared_ptr<WorkflowStep> step,
                 std::vector<std::string> inputs, std::string output);

  /// Runs every step whose inputs are (or become) available. Fails if some
  /// step can never run (missing input / cycle) or any step fails.
  /// When `provenance` is non-null, a record per produced dataset is added
  /// — the capture the E5 bench prices.
  Result<WorkflowReport> Execute(WorkflowContext* context,
                                 ProvenanceStore* provenance = nullptr) const;

  size_t step_count() const { return bindings_.size(); }

 private:
  struct Binding {
    std::shared_ptr<WorkflowStep> step;
    std::vector<std::string> inputs;
    std::string output;
  };
  std::vector<Binding> bindings_;
};

}  // namespace daspos

#endif  // DASPOS_WORKFLOW_ENGINE_H_
