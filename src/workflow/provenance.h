// Provenance retention (§3.2): "the parentage and computing (producer)
// description of a given file may not be included ... an external structure
// to capture that provenance chain will need to be created." This is that
// structure: one record per produced dataset, with parentage, producer, and
// a hash of the full step configuration.
#ifndef DASPOS_WORKFLOW_PROVENANCE_H_
#define DASPOS_WORKFLOW_PROVENANCE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "serialize/json.h"
#include "support/result.h"

namespace daspos {

/// Provenance of one dataset.
struct ProvenanceRecord {
  /// Logical name of the produced dataset.
  std::string dataset;
  /// Producing step and its version.
  std::string producer;
  std::string producer_version;
  /// SHA-256 of the canonical configuration dump: two datasets with equal
  /// (producer, config_hash, parents) are reproductions of each other.
  std::string config_hash;
  /// The full captured configuration.
  Json config;
  /// Logical names of input datasets.
  std::vector<std::string> parents;
  /// Logical production time (monotonic sequence number within the store).
  uint64_t sequence = 0;
  uint64_t output_bytes = 0;
  uint64_t output_events = 0;

  Json ToJson() const;
  static Result<ProvenanceRecord> FromJson(const Json& json);
};

/// Queryable provenance catalog.
class ProvenanceStore {
 public:
  /// Registers a record (sequence is assigned). One record per dataset.
  Status Add(ProvenanceRecord record);

  Result<ProvenanceRecord> Get(const std::string& dataset) const;
  bool Has(const std::string& dataset) const;
  size_t size() const { return records_.size(); }

  /// All registered dataset names, in registration order.
  std::vector<std::string> Datasets() const;

  /// Transitive ancestors of `dataset` (nearest first). Ancestors without
  /// records are included by name so callers can see where the chain breaks.
  Result<std::vector<std::string>> Ancestry(const std::string& dataset) const;

  /// Provenance-gap detection: parent names referenced by some record but
  /// having no record of their own — exactly the "parentage not included"
  /// failure mode the paper warns about.
  std::vector<std::string> MissingParents() const;

  /// Whole-store JSON round-trip (for archival of the provenance chain).
  std::string Serialize() const;
  static Result<ProvenanceStore> Parse(const std::string& text);

 private:
  std::map<std::string, ProvenanceRecord> records_;
  std::vector<std::string> order_;
  uint64_t next_sequence_ = 1;
};

}  // namespace daspos

#endif  // DASPOS_WORKFLOW_PROVENANCE_H_
