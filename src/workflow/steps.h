// Concrete workflow steps for the standard HEP chain of §3.2:
//   Generation -> Simulation -> Reconstruction -> AOD -> Derivation.
// Each step captures its full configuration as JSON for provenance.
#ifndef DASPOS_WORKFLOW_STEPS_H_
#define DASPOS_WORKFLOW_STEPS_H_

#include <cstdint>
#include <string>

#include "detsim/simulation.h"
#include "mc/generator.h"
#include "reco/reconstruction.h"
#include "tiers/skimslim.h"
#include "workflow/engine.h"

namespace daspos {

/// Conditions tag under which the detector calibration payload lives.
inline constexpr char kCalibrationTag[] = "calib/detector";

/// Produces a GEN dataset from nothing (the "Monte Carlo Generation" step).
class GenerationStep : public WorkflowStep {
 public:
  GenerationStep(GeneratorConfig config, size_t event_count,
                 std::string dataset_name);

  std::string name() const override { return "generation[" + dataset_name_ + "]"; }
  std::string version() const override { return "1.0"; }
  Json Config() const override;
  Result<std::string> Run(const std::vector<std::string_view>& inputs,
                          WorkflowContext* context) const override;
  uint64_t last_output_events() const override { return last_events_; }

 private:
  GeneratorConfig config_;
  size_t event_count_;
  std::string dataset_name_;
  mutable uint64_t last_events_ = 0;
};

/// GEN -> RAW digitization.
class SimulationStep : public WorkflowStep {
 public:
  SimulationStep(SimulationConfig config, uint32_t run_number,
                 std::string dataset_name);

  std::string name() const override { return "simulation[" + dataset_name_ + "]"; }
  std::string version() const override { return "1.0"; }
  Json Config() const override;
  Result<std::string> Run(const std::vector<std::string_view>& inputs,
                          WorkflowContext* context) const override;
  uint64_t last_output_events() const override { return last_events_; }

 private:
  SimulationConfig config_;
  uint32_t run_number_;
  std::string dataset_name_;
  mutable uint64_t last_events_ = 0;
};

/// RAW -> RECO. Fetches calibration from the context's conditions provider
/// (tag kCalibrationTag) at the run number of the data — the external
/// database dependency §3.2 highlights.
class ReconstructionStep : public WorkflowStep {
 public:
  ReconstructionStep(DetectorGeometry geometry, std::string dataset_name);

  std::string name() const override { return "reconstruction[" + dataset_name_ + "]"; }
  std::string version() const override { return "1.0"; }
  Json Config() const override;
  Result<std::string> Run(const std::vector<std::string_view>& inputs,
                          WorkflowContext* context) const override;
  uint64_t last_output_events() const override { return last_events_; }

 private:
  DetectorGeometry geometry_;
  std::string dataset_name_;
  mutable uint64_t last_events_ = 0;
};

/// RECO -> AOD: drops basic and intermediate data categories.
class AodReductionStep : public WorkflowStep {
 public:
  explicit AodReductionStep(std::string dataset_name);

  std::string name() const override { return "aod_reduction[" + dataset_name_ + "]"; }
  std::string version() const override { return "1.0"; }
  Json Config() const override;
  Result<std::string> Run(const std::vector<std::string_view>& inputs,
                          WorkflowContext* context) const override;
  uint64_t last_output_events() const override { return last_events_; }

 private:
  std::string dataset_name_;
  mutable uint64_t last_events_ = 0;
};

/// AOD -> derived format (skim + slim).
class DerivationStep : public WorkflowStep {
 public:
  DerivationStep(SkimSpec skim, SlimSpec slim, std::string dataset_name);

  std::string name() const override { return "derivation[" + dataset_name_ + "]"; }
  std::string version() const override { return "1.0"; }
  Json Config() const override;
  Result<std::string> Run(const std::vector<std::string_view>& inputs,
                          WorkflowContext* context) const override;
  uint64_t last_output_events() const override { return last_events_; }

 private:
  SkimSpec skim_;
  SlimSpec slim_;
  std::string dataset_name_;
  mutable uint64_t last_events_ = 0;
};

/// Merges several datasets of the same tier into one (the §3.1 reality
/// that "large samples of events must be compiled": productions run in
/// parallel batches that are merged for analysis). Records are concatenated
/// without re-decoding; the output metadata lists every parent.
class MergeStep : public WorkflowStep {
 public:
  explicit MergeStep(std::string dataset_name);

  std::string name() const override { return "merge[" + dataset_name_ + "]"; }
  std::string version() const override { return "1.0"; }
  Json Config() const override;
  Result<std::string> Run(const std::vector<std::string_view>& inputs,
                          WorkflowContext* context) const override;
  uint64_t last_output_events() const override { return last_events_; }

 private:
  std::string dataset_name_;
  mutable uint64_t last_events_ = 0;
};

/// The standard GEN->RAW->RECO->AOD->derived chain of §3.2 over dataset
/// names "gen"/"raw"/"reco"/"aod"/"derived", shared by the CLI and the
/// continuous-validation farm so a preserved campaign re-executes exactly
/// the chain that produced it. Reconstruction reads kCalibrationTag from the
/// context's conditions provider at run 1.
Workflow StandardChainWorkflow(Process process, size_t event_count,
                               uint64_t seed);

/// JSON captures of the substrate configurations (shared with recast/ and
/// the provenance-replay machinery in core/). All are lossless round trips.
Json GeneratorConfigToJson(const GeneratorConfig& config);
Result<GeneratorConfig> GeneratorConfigFromJson(const Json& json);
Json GeometryToJson(const DetectorGeometry& geometry);
Result<DetectorGeometry> GeometryFromJson(const Json& json);
Json SimulationConfigToJson(const SimulationConfig& config);
Result<SimulationConfig> SimulationConfigFromJson(const Json& json);

}  // namespace daspos

#endif  // DASPOS_WORKFLOW_STEPS_H_
