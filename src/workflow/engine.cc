#include "workflow/engine.h"

#include <algorithm>
#include <functional>
#include <set>
#include <utility>

#include "support/fault.h"
#include "support/metrics_registry.h"
#include "support/retry.h"
#include "support/sha256.h"
#include "support/strings.h"
#include "support/sync.h"
#include "support/threadpool.h"
#include "support/trace.h"
#include "workflow/journal.h"

namespace daspos {

namespace {

/// The registry snapshot as JSON for the chain report: counters and gauges
/// as name -> value objects, histograms as name -> {buckets, count, sum}.
/// Built here rather than in support/ because support sits below serialize
/// in the layer order.
Json MetricsSnapshotJson() {
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  Json json = Json::Object();
  Json counters = Json::Object();
  for (const auto& counter : snapshot.counters) {
    counters[counter.name] = counter.value;
  }
  json["counters"] = std::move(counters);
  Json gauges = Json::Object();
  for (const auto& gauge : snapshot.gauges) {
    gauges[gauge.name] = static_cast<double>(gauge.value);
  }
  json["gauges"] = std::move(gauges);
  Json histograms = Json::Object();
  for (const auto& histogram : snapshot.histograms) {
    Json entry = Json::Object();
    Json bounds = Json::Array();
    for (double bound : histogram.bounds) bounds.push_back(bound);
    entry["le"] = std::move(bounds);
    Json buckets = Json::Array();
    for (uint64_t count : histogram.bucket_counts) buckets.push_back(count);
    entry["buckets"] = std::move(buckets);
    entry["count"] = histogram.count;
    entry["sum"] = histogram.sum;
    histograms[histogram.name] = std::move(entry);
  }
  json["histograms"] = std::move(histograms);
  return json;
}

}  // namespace

Status WorkflowContext::PutDataset(const std::string& name,
                                   std::string blob) {
  if (name.empty()) {
    return Status::InvalidArgument("dataset name must not be empty");
  }
  WriterMutexLock lock(mutex_);
  auto [it, inserted] = datasets_.emplace(name, std::move(blob));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("dataset '" + name + "' already stored");
  }
  return Status::OK();
}

Result<std::string_view> WorkflowContext::GetDataset(
    const std::string& name) const {
  ReaderMutexLock lock(mutex_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("dataset '" + name + "' not in context");
  }
  // Map nodes are reference-stable and blobs are write-once, so the view
  // outlives the lock safely.
  return std::string_view(it->second);
}

bool WorkflowContext::HasDataset(const std::string& name) const {
  ReaderMutexLock lock(mutex_);
  return datasets_.count(name) > 0;
}

std::vector<std::string> WorkflowContext::DatasetNames() const {
  ReaderMutexLock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(datasets_.size());
  for (const auto& [name, blob] : datasets_) {
    (void)blob;
    out.push_back(name);
  }
  return out;
}

uint64_t WorkflowContext::TotalBytes() const {
  ReaderMutexLock lock(mutex_);
  uint64_t total = 0;
  for (const auto& [name, blob] : datasets_) {
    (void)name;
    total += blob.size();
  }
  return total;
}

Json WorkflowReport::ToJson() const {
  Json json = Json::Object();
  json["threads"] = static_cast<uint64_t>(threads_used);
  json["wall_ms"] = wall_ms;
  Json pool_json = Json::Object();
  pool_json["threads"] = static_cast<uint64_t>(pool.threads);
  pool_json["tasks_executed"] = pool.tasks_executed;
  pool_json["busy_ms"] = pool.busy_ms;
  pool_json["utilization"] = pool.Utilization();
  json["pool"] = std::move(pool_json);
  Json step_list = Json::Array();
  for (const StepResult& result : steps) {
    Json step = Json::Object();
    step["step"] = result.step;
    step["output"] = result.output;
    step["output_bytes"] = result.output_bytes;
    step["output_events"] = result.output_events;
    step["wall_ms"] = result.wall_ms;
    step["attempts"] = result.attempts;
    step["from_checkpoint"] = result.from_checkpoint;
    step_list.push_back(std::move(step));
  }
  json["steps"] = std::move(step_list);
  Json failed_list = Json::Array();
  for (const std::string& name : failed_steps) failed_list.push_back(name);
  json["failed"] = std::move(failed_list);
  Json skipped_list = Json::Array();
  for (const std::string& name : skipped_steps) skipped_list.push_back(name);
  json["skipped"] = std::move(skipped_list);
  json["metrics"] = MetricsSnapshotJson();
  return json;
}

std::string WorkflowReport::RenderTimingTable(const std::string& title) const {
  std::vector<StepMetrics> metrics;
  metrics.reserve(steps.size());
  for (const StepResult& result : steps) {
    metrics.push_back({result.step + " -> " + result.output, result.wall_ms,
                       result.output_bytes, result.output_events});
  }
  return RenderStepMetricsTable(metrics, title);
}

Status Workflow::AddStep(std::shared_ptr<WorkflowStep> step,
                         std::vector<std::string> inputs,
                         std::string output) {
  if (step == nullptr) {
    return Status::InvalidArgument("null workflow step");
  }
  if (output.empty()) {
    return Status::InvalidArgument("workflow step needs an output name");
  }
  for (const std::string& input : inputs) {
    if (input == output) {
      return Status::InvalidArgument(
          "step '" + step->name() + "' lists its output '" + output +
          "' among its own inputs (self-cycle)");
    }
  }
  for (const Binding& binding : bindings_) {
    if (binding.output == output) {
      return Status::AlreadyExists("output '" + output +
                                   "' already produced by step '" +
                                   binding.step->name() + "'");
    }
    if (binding.step->name() == step->name()) {
      // Step names key provenance records and journal checkpoints; a
      // duplicate would make resume and reporting ambiguous.
      return Status::AlreadyExists("step '" + step->name() +
                                   "' already added to the workflow");
    }
  }
  bindings_.push_back({std::move(step), std::move(inputs), std::move(output)});
  return Status::OK();
}

namespace {

constexpr size_t kNoRank = static_cast<size_t>(-1);

/// Per-step outcome, filled in by whichever worker ran the step and read by
/// the scheduler thread after the run settles (synchronized via the
/// scheduler mutex).
struct StepSlot {
  Status status = Status::OK();
  bool ran = false;
  uint64_t bytes = 0;
  uint64_t events = 0;
  double wall_ms = 0.0;
  int attempts = 1;
  bool from_checkpoint = false;
  ProvenanceRecord record;
};

/// Scheduler state shared between Execute and the pool workers it
/// dispatches. Function locals cannot carry thread-safety annotations, so
/// the shared pieces live in a named struct whose fields declare their
/// guard; `mutex` orders every scheduling decision.
struct DispatchState {
  Mutex mutex;
  CondVar settled_cv;
  /// Unsatisfied input count per step; a step is dispatched when it hits 0.
  std::vector<size_t> remaining DASPOS_GUARDED_BY(mutex);
  /// 1 when the step has been handed to the pool.
  std::vector<char> submitted DASPOS_GUARDED_BY(mutex);
  size_t scheduled DASPOS_GUARDED_BY(mutex) = 0;
  size_t settled DASPOS_GUARDED_BY(mutex) = 0;
  bool failed DASPOS_GUARDED_BY(mutex) = false;
  size_t first_failed_rank DASPOS_GUARDED_BY(mutex) = kNoRank;
  Status failure DASPOS_GUARDED_BY(mutex) = Status::OK();
};

}  // namespace

lint::WorkflowGraphSpec Workflow::GraphSpec(
    const WorkflowContext* context) const {
  lint::WorkflowGraphSpec spec;
  spec.steps.reserve(bindings_.size());
  for (const Binding& binding : bindings_) {
    spec.steps.push_back(
        {binding.step->name(), binding.inputs, binding.output});
  }
  if (context != nullptr) {
    for (std::string& name : context->DatasetNames()) {
      spec.external_inputs.insert(std::move(name));
    }
  }
  return spec;
}

Result<WorkflowReport> Workflow::Execute(WorkflowContext* context,
                                         ProvenanceStore* provenance,
                                         const ExecuteOptions& options) const {
  WallTimer total_timer;
  const size_t step_count = bindings_.size();

  using namespace metric_names;
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter(kWorkflowExecutionsTotal, "Workflow::Execute invocations")
      .Increment();
  Counter& steps_total = registry.GetCounter(
      kWorkflowStepsTotal, "workflow steps settled successfully");
  Counter& step_failures = registry.GetCounter(
      kWorkflowStepFailuresTotal,
      "workflow steps that exhausted their attempts");
  Counter& step_retries = registry.GetCounter(
      kWorkflowStepRetriesTotal, "step attempts beyond each step's first");
  Counter& checkpoint_restores = registry.GetCounter(
      kWorkflowCheckpointRestoresTotal,
      "steps restored from a run-journal checkpoint");
  Histogram& step_wall_ms = registry.GetHistogram(
      kWorkflowStepWallMs, Histogram::DefaultLatencyBucketsMs(),
      "per-step wall time (gather + run + store)");
  Span execute_span("workflow:execute", "workflow");
  execute_span.AddAttribute("steps", static_cast<uint64_t>(step_count));

  // Dependency graph over bindings: an input either comes from another
  // step's output (an edge) or must pre-exist in the context (external).
  std::map<std::string, size_t> producer_of;
  for (size_t i = 0; i < step_count; ++i) {
    producer_of[bindings_[i].output] = i;
  }
  std::vector<std::vector<size_t>> dependents(step_count);
  std::vector<size_t> indegree(step_count, 0);
  std::vector<std::vector<std::string>> missing_external(step_count);
  for (size_t i = 0; i < step_count; ++i) {
    for (const std::string& input : bindings_[i].inputs) {
      auto it = producer_of.find(input);
      if (it != producer_of.end()) {
        dependents[it->second].push_back(i);
        ++indegree[i];
      } else if (!context->HasDataset(input)) {
        missing_external[i].push_back(input);
      }
    }
  }

  // Stable topological rank via Kahn's algorithm, smallest binding index
  // first. Steps left unranked can never run: they miss an external input,
  // depend (transitively) on such a step, or sit in a cycle. Report and
  // provenance are emitted in rank order, which makes captured chains
  // independent of thread count and completion timing.
  std::vector<size_t> rank(step_count, kNoRank);
  std::vector<size_t> topo;
  topo.reserve(step_count);
  {
    std::vector<size_t> pending = indegree;
    std::set<size_t> ready;
    for (size_t i = 0; i < step_count; ++i) {
      if (pending[i] == 0 && missing_external[i].empty()) ready.insert(i);
    }
    while (!ready.empty()) {
      size_t i = *ready.begin();
      ready.erase(ready.begin());
      rank[i] = topo.size();
      topo.push_back(i);
      for (size_t dependent : dependents[i]) {
        if (--pending[dependent] == 0 &&
            missing_external[dependent].empty()) {
          ready.insert(dependent);
        }
      }
    }
  }

  // Preservation-lint gate: a graph some step of which can never run is
  // rejected up front with named diagnostics — nothing executes, no
  // partial datasets or provenance are produced (arXiv:1310.7814's "catch
  // it before anyone re-runs" discipline).
  if (topo.size() < step_count) {
    lint::LintReport lint_report =
        lint::CheckWorkflowGraph(GraphSpec(context));
    std::string blocked;
    for (const lint::Diagnostic& diagnostic : lint_report.diagnostics()) {
      if (diagnostic.severity != lint::Severity::kError) continue;
      if (!blocked.empty()) blocked += "; ";
      blocked += diagnostic.subject + " (" + diagnostic.message + ") [" +
                 diagnostic.code + "]";
    }
    return Status::FailedPrecondition(
        "workflow cannot progress; blocked steps: " + blocked);
  }

  // No clamp to the step count: a mostly-linear chain still profits from a
  // wide pool because steps fan their own event loops out over it.
  size_t threads =
      options.max_threads > 0 ? options.max_threads
                              : ThreadPool::DefaultThreadCount();

  WorkflowReport report;
  report.threads_used = threads;

  // Resume pre-pass: a step whose journal record matches its identity (step
  // name, output, config hash) and whose checkpointed blob still verifies
  // (the store re-hashes on read) is restored instead of re-executed. Any
  // mismatch — renamed step, changed config, rotted blob, truncated journal
  // tail — silently falls back to a normal run of that step.
  std::vector<std::string> checkpoint_blob(step_count);
  std::vector<uint64_t> checkpoint_bytes(step_count, 0);
  std::vector<uint64_t> checkpoint_events(step_count, 0);
  std::vector<char> checkpointed(step_count, 0);
  if (options.resume && options.journal != nullptr) {
    for (size_t i = 0; i < step_count; ++i) {
      const Binding& binding = bindings_[i];
      auto record = options.journal->Find(binding.step->name());
      if (!record.has_value()) continue;
      if (record->output != binding.output) continue;
      if (record->config_hash !=
          Sha256::HashHex(binding.step->Config().Dump())) {
        continue;
      }
      auto blob = options.journal->LoadBlob(record->digest);
      if (!blob.ok()) continue;
      checkpoint_blob[i] = std::move(*blob);
      checkpoint_bytes[i] = record->bytes;
      checkpoint_events[i] = record->events;
      checkpointed[i] = 1;
    }
  }

  // Indegree-tracked dispatch: every ready step is submitted to the pool;
  // each completion decrements its dependents and submits those that hit
  // zero. A failure stops further dispatch (in-flight steps drain).
  std::vector<StepSlot> slots(step_count);
  DispatchState sched;
  {
    MutexLock lock(sched.mutex);
    sched.remaining = indegree;
    sched.submitted.assign(step_count, 0);
  }

  // The pool publishes cumulative counters to the global registry; deltas
  // around this execution give the report its pool-activity block.
  const uint64_t pool_tasks_before = registry.CounterValue(kPoolTasksTotal);
  const uint64_t pool_busy_us_before =
      registry.CounterValue(kPoolBusyUsTotal);

  {
    ThreadPool pool(threads);
    // Steps share this pool for their intra-step event loops. At one thread
    // the pool is withheld so every loop takes its strictly serial path —
    // the reference each parallel width must reproduce byte for byte.
    context->set_worker_pool(threads > 1 ? &pool : nullptr);
    std::function<void(size_t)> run_step = [&](size_t index) {
      {
        MutexLock lock(sched.mutex);
        if (sched.failed) {
          ++sched.settled;
          if (sched.settled == sched.scheduled) sched.settled_cv.NotifyAll();
          return;
        }
      }
      const Binding& binding = bindings_[index];
      StepSlot& slot = slots[index];
      // The step span opens on the worker thread, so attempt spans and any
      // archive/pool spans its body opens on that worker nest under it.
      Span step_span("step:" + binding.step->name(), "workflow");
      step_span.AddAttribute("output", binding.output);
      WallTimer timer;
      Status status = Status::OK();
      if (checkpointed[index]) {
        // Restore from the journal: the blob already passed its digest
        // check in the pre-pass; publishing it is all that remains.
        slot.bytes = checkpoint_bytes[index];
        slot.events = checkpoint_events[index];
        slot.attempts = 0;
        slot.from_checkpoint = true;
        checkpoint_restores.Increment();
        step_span.AddAttribute("from_checkpoint", "true");
        status = context->PutDataset(binding.output,
                                     std::move(checkpoint_blob[index]));
      } else {
        std::vector<std::string_view> inputs;
        inputs.reserve(binding.inputs.size());
        for (const std::string& input : binding.inputs) {
          auto blob = context->GetDataset(input);
          if (!blob.ok()) {
            status = blob.status();
            break;
          }
          inputs.push_back(*blob);
        }
        std::string produced;
        if (status.ok()) {
          // One retry loop per step: transient failures (injected faults,
          // I/O hiccups, blown deadlines) are re-attempted with exponential
          // backoff; permanent failures stop immediately.
          RetryPolicy policy;
          policy.max_attempts = std::max(0, options.max_step_retries) + 1;
          policy.backoff_ms = options.retry_backoff_ms;
          policy.jitter_seed = static_cast<uint64_t>(index) + 1;
          int attempts_used = 0;
          status = RetryCall(
              policy,
              [&]() -> Status {
                ++attempts_used;
                Span attempt_span("attempt:" + binding.step->name(),
                                  "workflow");
                attempt_span.AddAttribute(
                    "attempt", static_cast<uint64_t>(attempts_used));
                WallTimer attempt_timer;
                if (options.step_faults != nullptr) {
                  DASPOS_RETURN_IF_ERROR(options.step_faults->Next(
                      "step:" + binding.step->name()));
                }
                auto output = binding.step->Run(inputs, context);
                if (!output.ok()) return output.status();
                if (options.step_timeout_ms > 0.0 &&
                    attempt_timer.ElapsedMillis() > options.step_timeout_ms) {
                  // A step cannot be killed mid-Run; enforce the budget as
                  // a post-hoc deadline and discard the late output.
                  return Status::DeadlineExceeded(
                      "step '" + binding.step->name() + "' exceeded " +
                      FormatDouble(options.step_timeout_ms, 4) +
                      " ms budget");
                }
                produced = std::move(*output);
                return Status::OK();
              },
              "step " + binding.step->name());
          slot.attempts = attempts_used;
          if (attempts_used > 1) {
            step_retries.Increment(static_cast<uint64_t>(attempts_used - 1));
          }
        }
        if (status.ok()) {
          slot.bytes = produced.size();
          slot.events = binding.step->last_output_events();
          if (options.journal != nullptr) {
            // Checkpoint before publishing: a crash after Append re-runs
            // nothing on resume, a crash before it re-runs this step.
            RunJournal::Record record;
            record.step = binding.step->name();
            record.output = binding.output;
            record.config_hash =
                Sha256::HashHex(binding.step->Config().Dump());
            record.bytes = slot.bytes;
            record.events = slot.events;
            status = options.journal->Append(std::move(record), produced);
          }
          if (status.ok()) {
            status = context->PutDataset(binding.output, std::move(produced));
          }
        } else {
          slot.events = binding.step->last_output_events();
        }
      }
      if (status.ok() && provenance != nullptr) {
        ProvenanceRecord record;
        record.dataset = binding.output;
        record.producer = binding.step->name();
        record.producer_version = binding.step->version();
        record.config = binding.step->Config();
        record.config_hash = Sha256::HashHex(record.config.Dump());
        record.parents = binding.inputs;
        record.output_bytes = slot.bytes;
        record.output_events = slot.events;
        slot.record = std::move(record);
      }
      slot.wall_ms = timer.ElapsedMillis();
      slot.ran = status.ok();
      if (status.ok()) {
        steps_total.Increment();
        step_wall_ms.Observe(slot.wall_ms);
        step_span.AddAttribute("bytes", slot.bytes);
        step_span.AddAttribute("attempts",
                               static_cast<uint64_t>(slot.attempts));
      } else {
        step_failures.Increment();
        step_span.AddAttribute("error", status.message());
      }
      slot.status = std::move(status);

      MutexLock lock(sched.mutex);
      ++sched.settled;
      if (!slot.status.ok()) {
        if (options.keep_going) {
          // Graceful degradation: the failed step is quarantined (its
          // dependents never reach indegree zero, so they are never
          // dispatched) while independent branches keep running.
        } else {
          if (!sched.failed || rank[index] < sched.first_failed_rank) {
            sched.first_failed_rank = rank[index];
            sched.failure = slot.status;
          }
          sched.failed = true;
        }
      } else if (!sched.failed) {
        for (size_t dependent : dependents[index]) {
          if (rank[dependent] == kNoRank) continue;  // permanently blocked
          if (--sched.remaining[dependent] == 0) {
            ++sched.scheduled;
            sched.submitted[dependent] = 1;
            pool.Submit([&run_step, dependent] { run_step(dependent); });
          }
        }
      }
      if (sched.settled == sched.scheduled) sched.settled_cv.NotifyAll();
    };

    {
      MutexLock lock(sched.mutex);
      for (size_t i : topo) {
        if (sched.remaining[i] == 0) {
          ++sched.scheduled;
          sched.submitted[i] = 1;
          pool.Submit([&run_step, i] { run_step(i); });
        }
      }
    }
    {
      MutexLock lock(sched.mutex);
      // Explicit predicate loop: the analysis cannot see through a
      // cv.wait(lock, pred) lambda.
      while (sched.settled != sched.scheduled) {
        sched.settled_cv.Wait(sched.mutex);
      }
    }
    // All steps are settled, but the worker that ran the last one may not
    // have recorded its registry updates yet; Wait() flushes that (the
    // counter updates happen before the active-count decrement Wait sees).
    pool.Wait();
    report.pool.threads = threads;
    report.pool.tasks_executed =
        registry.CounterValue(kPoolTasksTotal) - pool_tasks_before;
    report.pool.busy_ms =
        static_cast<double>(registry.CounterValue(kPoolBusyUsTotal) -
                            pool_busy_us_before) /
        1000.0;
    context->set_worker_pool(nullptr);
  }  // pool drains before slots are read below

  // The workers are gone, but the annotated fields still want their lock
  // held for reads; copy the final verdict out under it.
  bool failed;
  Status failure = Status::OK();
  std::vector<char> submitted;
  {
    MutexLock lock(sched.mutex);
    failed = sched.failed;
    failure = sched.failure;
    submitted = std::move(sched.submitted);
  }

  // Deterministic assembly: rank order, never completion order. Steps that
  // completed before a failure keep their provenance, as in serial runs.
  for (size_t i : topo) {
    StepSlot& slot = slots[i];
    if (!slot.ran) continue;
    if (provenance != nullptr) {
      DASPOS_RETURN_IF_ERROR(provenance->Add(std::move(slot.record)));
    }
    report.steps.push_back({bindings_[i].step->name(), bindings_[i].output,
                            slot.bytes, slot.events, slot.wall_ms,
                            slot.attempts, slot.from_checkpoint});
  }

  if (failed) return failure;

  // keep_going accounting (rank order): a settled-but-failed step is
  // `failed`; a step never dispatched lost a (transitive) dependency and is
  // `skipped`.
  for (size_t i : topo) {
    if (slots[i].ran) continue;
    if (submitted[i]) {
      report.failed_steps.push_back(bindings_[i].step->name());
    } else {
      report.skipped_steps.push_back(bindings_[i].step->name());
    }
  }

  report.wall_ms = total_timer.ElapsedMillis();
  report.pool.wall_ms = report.wall_ms;
  return report;
}

}  // namespace daspos
