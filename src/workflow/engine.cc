#include "workflow/engine.h"

#include "support/sha256.h"

namespace daspos {

Status WorkflowContext::PutDataset(const std::string& name,
                                   std::string blob) {
  if (name.empty()) {
    return Status::InvalidArgument("dataset name must not be empty");
  }
  auto [it, inserted] = datasets_.emplace(name, std::move(blob));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("dataset '" + name + "' already stored");
  }
  return Status::OK();
}

Result<std::string_view> WorkflowContext::GetDataset(
    const std::string& name) const {
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("dataset '" + name + "' not in context");
  }
  return std::string_view(it->second);
}

bool WorkflowContext::HasDataset(const std::string& name) const {
  return datasets_.count(name) > 0;
}

std::vector<std::string> WorkflowContext::DatasetNames() const {
  std::vector<std::string> out;
  out.reserve(datasets_.size());
  for (const auto& [name, blob] : datasets_) {
    (void)blob;
    out.push_back(name);
  }
  return out;
}

uint64_t WorkflowContext::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& [name, blob] : datasets_) {
    (void)name;
    total += blob.size();
  }
  return total;
}

Status Workflow::AddStep(std::shared_ptr<WorkflowStep> step,
                         std::vector<std::string> inputs,
                         std::string output) {
  if (step == nullptr) {
    return Status::InvalidArgument("null workflow step");
  }
  if (output.empty()) {
    return Status::InvalidArgument("workflow step needs an output name");
  }
  for (const Binding& binding : bindings_) {
    if (binding.output == output) {
      return Status::AlreadyExists("output '" + output +
                                   "' already produced by step '" +
                                   binding.step->name() + "'");
    }
  }
  bindings_.push_back({std::move(step), std::move(inputs), std::move(output)});
  return Status::OK();
}

Result<WorkflowReport> Workflow::Execute(WorkflowContext* context,
                                         ProvenanceStore* provenance) const {
  WorkflowReport report;
  std::vector<bool> done(bindings_.size(), false);
  size_t completed = 0;

  while (completed < bindings_.size()) {
    bool progressed = false;
    for (size_t i = 0; i < bindings_.size(); ++i) {
      if (done[i]) continue;
      const Binding& binding = bindings_[i];
      bool ready = true;
      for (const std::string& input : binding.inputs) {
        if (!context->HasDataset(input)) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;

      std::vector<std::string_view> inputs;
      inputs.reserve(binding.inputs.size());
      for (const std::string& input : binding.inputs) {
        DASPOS_ASSIGN_OR_RETURN(std::string_view blob,
                                context->GetDataset(input));
        inputs.push_back(blob);
      }
      DASPOS_ASSIGN_OR_RETURN(std::string output,
                              binding.step->Run(inputs, context));
      uint64_t output_bytes = output.size();
      DASPOS_RETURN_IF_ERROR(
          context->PutDataset(binding.output, std::move(output)));

      if (provenance != nullptr) {
        ProvenanceRecord record;
        record.dataset = binding.output;
        record.producer = binding.step->name();
        record.producer_version = binding.step->version();
        record.config = binding.step->Config();
        record.config_hash = Sha256::HashHex(record.config.Dump());
        record.parents = binding.inputs;
        record.output_bytes = output_bytes;
        record.output_events = binding.step->last_output_events();
        DASPOS_RETURN_IF_ERROR(provenance->Add(std::move(record)));
      }

      report.steps.push_back(
          {binding.step->name(), binding.output, output_bytes});
      done[i] = true;
      ++completed;
      progressed = true;
    }
    if (!progressed) {
      std::string blocked;
      for (size_t i = 0; i < bindings_.size(); ++i) {
        if (!done[i]) {
          if (!blocked.empty()) blocked += ", ";
          blocked += bindings_[i].step->name();
        }
      }
      return Status::FailedPrecondition(
          "workflow cannot progress; blocked steps: " + blocked);
    }
  }
  return report;
}

}  // namespace daspos
