#include "stats/limits.h"

#include <cmath>

namespace daspos {

namespace {

/// Log Poisson pmf without the constant n! term.
double LogPoisson(double n, double mean) {
  if (mean <= 1e-12) mean = 1e-12;
  return n * std::log(mean) - mean;
}

}  // namespace

Result<double> UpperLimit(const CountingExperiment& experiment,
                          double credibility) {
  if (experiment.signal_per_mu <= 0.0) {
    return Status::InvalidArgument("signal_per_mu must be positive");
  }
  if (credibility <= 0.0 || credibility >= 1.0) {
    return Status::InvalidArgument("credibility must be in (0,1)");
  }
  if (experiment.observed < 0.0 || experiment.background < 0.0) {
    return Status::InvalidArgument("counts must be non-negative");
  }

  // Posterior(mu) ~ Poisson(observed | background + mu * signal_per_mu).
  // Integrate numerically on an adaptive grid: mu up to the point where the
  // posterior is negligible.
  const double n = experiment.observed;
  const double b = experiment.background;
  const double s = experiment.signal_per_mu;

  // A safe upper integration bound: background-free expectation plus a wide
  // Poisson tail.
  double mu_max = (n + 10.0 * std::sqrt(n + 1.0) + 10.0) / s + 10.0 / s;
  const int steps = 20000;
  const double dmu = mu_max / steps;

  // Normalize via log-sum against the mode to avoid underflow.
  double log_mode = LogPoisson(n, b + 0.0 * s);
  for (int i = 0; i <= steps; ++i) {
    double mu = i * dmu;
    double lp = LogPoisson(n, b + mu * s);
    if (lp > log_mode) log_mode = lp;
  }
  double total = 0.0;
  for (int i = 0; i <= steps; ++i) {
    double mu = i * dmu;
    total += std::exp(LogPoisson(n, b + mu * s) - log_mode);
  }
  double target = credibility * total;
  double cumulative = 0.0;
  for (int i = 0; i <= steps; ++i) {
    double mu = i * dmu;
    cumulative += std::exp(LogPoisson(n, b + mu * s) - log_mode);
    if (cumulative >= target) return mu;
  }
  return mu_max;
}

double DiscoverySignificance(double observed, double background) {
  if (background <= 0.0 || observed <= background) return 0.0;
  double z2 =
      2.0 * (observed * std::log(observed / background) -
             (observed - background));
  return z2 > 0.0 ? std::sqrt(z2) : 0.0;
}

Result<double> ExpectedLimit(const CountingExperiment& experiment,
                             double credibility) {
  CountingExperiment expected = experiment;
  expected.observed = experiment.background;
  return UpperLimit(expected, credibility);
}

}  // namespace daspos
