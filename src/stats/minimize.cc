#include "stats/minimize.h"

#include <algorithm>
#include <cmath>

namespace daspos {

MinimizeResult Minimize(
    const std::function<double(const std::vector<double>&)>& fn,
    std::vector<double> start, const MinimizeOptions& options) {
  const size_t n = start.size();
  MinimizeResult result;
  if (n == 0) {
    result.converged = true;
    return result;
  }

  // Build the initial simplex.
  std::vector<std::vector<double>> simplex(n + 1, start);
  for (size_t i = 0; i < n; ++i) {
    double step = options.initial_step * std::fabs(start[i]);
    if (step < 1e-6) step = options.initial_step;
    simplex[i + 1][i] += step;
  }
  std::vector<double> values(n + 1);
  for (size_t i = 0; i <= n; ++i) values[i] = fn(simplex[i]);

  auto order = [&]() {
    std::vector<size_t> idx(n + 1);
    for (size_t i = 0; i <= n; ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [&](size_t a, size_t b) { return values[a] < values[b]; });
    std::vector<std::vector<double>> new_simplex(n + 1);
    std::vector<double> new_values(n + 1);
    for (size_t i = 0; i <= n; ++i) {
      new_simplex[i] = simplex[idx[i]];
      new_values[i] = values[idx[i]];
    }
    simplex = std::move(new_simplex);
    values = std::move(new_values);
  };

  int iteration = 0;
  for (; iteration < options.max_iterations; ++iteration) {
    order();
    // Converged only when both the function values and the simplex itself
    // have collapsed: a symmetric straddle of the minimum can have equal
    // values at distinct points.
    double spread = 0.0;
    for (size_t i = 1; i <= n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        spread = std::max(spread, std::fabs(simplex[i][j] - simplex[0][j]));
      }
    }
    double scale = 0.0;
    for (size_t j = 0; j < n; ++j) {
      scale = std::max(scale, std::fabs(simplex[0][j]));
    }
    if (std::fabs(values[n] - values[0]) <
            options.tolerance * (std::fabs(values[0]) + options.tolerance) &&
        spread < 1e-7 * (scale + 1.0)) {
      result.converged = true;
      break;
    }
    if (std::fabs(values[n] - values[0]) <
        options.tolerance * (std::fabs(values[0]) + options.tolerance)) {
      // Equal values at distinct points: shrink towards the best point to
      // break the symmetry instead of declaring victory.
      for (size_t i = 1; i <= n; ++i) {
        for (size_t j = 0; j < n; ++j) {
          simplex[i][j] =
              simplex[0][j] + 0.5 * (simplex[i][j] - simplex[0][j]);
        }
        values[i] = fn(simplex[i]);
      }
      continue;
    }

    // Centroid of all but the worst.
    std::vector<double> centroid(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) centroid[j] += simplex[i][j];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    auto blend = [&](double factor) {
      std::vector<double> point(n);
      for (size_t j = 0; j < n; ++j) {
        point[j] = centroid[j] + factor * (simplex[n][j] - centroid[j]);
      }
      return point;
    };

    std::vector<double> reflected = blend(-1.0);
    double reflected_value = fn(reflected);
    if (reflected_value < values[0]) {
      // Try expansion.
      std::vector<double> expanded = blend(-2.0);
      double expanded_value = fn(expanded);
      if (expanded_value < reflected_value) {
        simplex[n] = std::move(expanded);
        values[n] = expanded_value;
      } else {
        simplex[n] = std::move(reflected);
        values[n] = reflected_value;
      }
      continue;
    }
    if (reflected_value < values[n - 1]) {
      simplex[n] = std::move(reflected);
      values[n] = reflected_value;
      continue;
    }
    // Contraction.
    std::vector<double> contracted = blend(0.5);
    double contracted_value = fn(contracted);
    if (contracted_value < values[n]) {
      simplex[n] = std::move(contracted);
      values[n] = contracted_value;
      continue;
    }
    // Shrink towards the best point.
    for (size_t i = 1; i <= n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        simplex[i][j] = simplex[0][j] + 0.5 * (simplex[i][j] - simplex[0][j]);
      }
      values[i] = fn(simplex[i]);
    }
  }
  order();
  result.parameters = simplex[0];
  result.value = values[0];
  result.iterations = iteration;
  return result;
}

}  // namespace daspos
