// Derivative-free function minimization (Nelder-Mead simplex), the engine
// behind the likelihood fits. These are the "more advanced analysis or
// statistical techniques" (limit-setting, likelihood fitting) that §2.4
// lists as missing from RIVET and present in full experiment frameworks.
#ifndef DASPOS_STATS_MINIMIZE_H_
#define DASPOS_STATS_MINIMIZE_H_

#include <functional>
#include <vector>

namespace daspos {

struct MinimizeOptions {
  int max_iterations = 2000;
  /// Convergence: simplex function-value spread below this.
  double tolerance = 1e-9;
  /// Initial simplex scale per parameter (relative, with absolute floor).
  double initial_step = 0.1;
};

struct MinimizeResult {
  std::vector<double> parameters;
  double value = 0.0;
  bool converged = false;
  int iterations = 0;
};

/// Minimizes `fn` starting from `start`. `fn` must be defined everywhere
/// (return a large value outside the physical region).
MinimizeResult Minimize(const std::function<double(const std::vector<double>&)>& fn,
                        std::vector<double> start,
                        const MinimizeOptions& options = {});

}  // namespace daspos

#endif  // DASPOS_STATS_MINIMIZE_H_
