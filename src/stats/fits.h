// Binned likelihood fits for the analyses in this repository: a Gaussian
// peak over linear background (Z and Higgs mass measurements) and an
// exponential decay (D-meson lifetime master class).
#ifndef DASPOS_STATS_FITS_H_
#define DASPOS_STATS_FITS_H_

#include "hist/histo1d.h"
#include "support/result.h"

namespace daspos {

/// Result of the peak fit.
struct PeakFit {
  double amplitude = 0.0;  // events in the peak
  double mean = 0.0;
  double sigma = 0.0;
  double background_per_bin = 0.0;  // flat component at the window center
  double background_slope = 0.0;
  double nll = 0.0;
  bool converged = false;
};

/// Fits Gaussian + linear background to a histogram via binned Poisson
/// maximum likelihood. `mean_guess`/`sigma_guess` seed the fit.
Result<PeakFit> FitGaussianPeak(const Histo1D& histogram, double mean_guess,
                                double sigma_guess);

/// Result of the exponential decay fit.
struct DecayFit {
  double lifetime = 0.0;  // in the x units of the histogram
  double normalization = 0.0;
  double nll = 0.0;
  bool converged = false;
};

/// Fits N * exp(-x / tau) to a histogram via binned Poisson likelihood.
Result<DecayFit> FitExponentialDecay(const Histo1D& histogram,
                                     double lifetime_guess);

/// Sideband background subtraction: estimates the background under
/// [signal_lo, signal_hi] by linear interpolation from the sidebands and
/// returns the background-subtracted signal yield. The §2.4 capability
/// ("background subtraction") that plain RIVET lacks.
struct SubtractionResult {
  double signal_yield = 0.0;
  double background_estimate = 0.0;
  double signal_error = 0.0;
};
Result<SubtractionResult> SidebandSubtract(const Histo1D& histogram,
                                           double signal_lo, double signal_hi);

}  // namespace daspos

#endif  // DASPOS_STATS_FITS_H_
