#include "stats/fits.h"

#include <cmath>

#include "stats/minimize.h"

namespace daspos {

namespace {

constexpr double kSqrtTwoPi = 2.5066282746310002;
constexpr double kHuge = 1e12;

/// Poisson negative log likelihood for one bin (constant terms dropped).
inline double BinNll(double expected, double observed) {
  if (expected <= 1e-12) expected = 1e-12;
  return expected - observed * std::log(expected);
}

}  // namespace

Result<PeakFit> FitGaussianPeak(const Histo1D& histogram, double mean_guess,
                                double sigma_guess) {
  if (histogram.Integral() <= 0.0) {
    return Status::InvalidArgument("cannot fit an empty histogram");
  }
  const Axis& axis = histogram.axis();
  const double width = axis.width();
  const double center = 0.5 * (axis.lo() + axis.hi());

  // Parameters: amplitude, mean, sigma, b0 (per-bin), b1 (per-bin per unit x).
  auto nll = [&](const std::vector<double>& p) {
    double amplitude = p[0];
    double mean = p[1];
    double sigma = p[2];
    double b0 = p[3];
    double b1 = p[4];
    // Physical region: a "peak" wider than a third of the fit window is
    // indistinguishable from background and is excluded so the linear
    // component, not the Gaussian, absorbs flat spectra.
    if (amplitude < 0.0 || sigma <= width * 0.05 ||
        sigma > (axis.hi() - axis.lo()) / 3.0 ||
        mean < axis.lo() || mean > axis.hi()) {
      return kHuge;
    }
    double total = 0.0;
    for (int i = 0; i < axis.nbins(); ++i) {
      double x = axis.BinCenter(i);
      double gauss = amplitude * width / (sigma * kSqrtTwoPi) *
                     std::exp(-0.5 * (x - mean) * (x - mean) / (sigma * sigma));
      double background = b0 + b1 * (x - center);
      if (background < 0.0) background = 0.0;
      total += BinNll(gauss + background, histogram.BinContent(i));
    }
    return total;
  };

  double integral = histogram.Integral();
  MinimizeResult fit =
      Minimize(nll, {0.8 * integral, mean_guess, sigma_guess,
                     0.2 * integral / axis.nbins(), 0.0});
  PeakFit out;
  out.amplitude = fit.parameters[0];
  out.mean = fit.parameters[1];
  out.sigma = std::fabs(fit.parameters[2]);
  out.background_per_bin = fit.parameters[3];
  out.background_slope = fit.parameters[4];
  out.nll = fit.value;
  out.converged = fit.converged && fit.value < kHuge;
  return out;
}

Result<DecayFit> FitExponentialDecay(const Histo1D& histogram,
                                     double lifetime_guess) {
  if (histogram.Integral() <= 0.0) {
    return Status::InvalidArgument("cannot fit an empty histogram");
  }
  if (lifetime_guess <= 0.0) {
    return Status::InvalidArgument("lifetime guess must be positive");
  }
  const Axis& axis = histogram.axis();
  const double width = axis.width();

  auto nll = [&](const std::vector<double>& p) {
    double norm = p[0];
    double tau = p[1];
    if (norm <= 0.0 || tau <= 0.0) return kHuge;
    double total = 0.0;
    for (int i = 0; i < axis.nbins(); ++i) {
      double x = axis.BinCenter(i);
      double expected = norm * width / tau * std::exp(-x / tau);
      total += BinNll(expected, histogram.BinContent(i));
    }
    return total;
  };

  MinimizeResult fit =
      Minimize(nll, {histogram.Integral(), lifetime_guess});
  DecayFit out;
  out.normalization = fit.parameters[0];
  out.lifetime = fit.parameters[1];
  out.nll = fit.value;
  out.converged = fit.converged && fit.value < kHuge;
  return out;
}

Result<SubtractionResult> SidebandSubtract(const Histo1D& histogram,
                                           double signal_lo,
                                           double signal_hi) {
  const Axis& axis = histogram.axis();
  if (signal_lo >= signal_hi || signal_lo <= axis.lo() ||
      signal_hi >= axis.hi()) {
    return Status::InvalidArgument(
        "signal window must lie strictly inside the histogram range");
  }
  double signal_sum = 0.0;
  double signal_sum_w2 = 0.0;
  int signal_bins = 0;
  double sideband_sum = 0.0;
  int sideband_bins = 0;
  for (int i = 0; i < axis.nbins(); ++i) {
    double x = axis.BinCenter(i);
    if (x >= signal_lo && x < signal_hi) {
      signal_sum += histogram.BinContent(i);
      double err = histogram.BinError(i);
      signal_sum_w2 += err * err;
      ++signal_bins;
    } else {
      sideband_sum += histogram.BinContent(i);
      ++sideband_bins;
    }
  }
  if (sideband_bins == 0) {
    return Status::InvalidArgument("no sideband bins outside the window");
  }
  SubtractionResult out;
  out.background_estimate =
      sideband_sum / sideband_bins * signal_bins;
  out.signal_yield = signal_sum - out.background_estimate;
  out.signal_error = std::sqrt(signal_sum_w2 + out.background_estimate);
  return out;
}

}  // namespace daspos
