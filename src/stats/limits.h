// Limit setting and significance for counting experiments — the statistical
// interpretation step of the RECAST reinterpretation use case (§2.3):
// "the results can be compared with those from collision data to constrain
// the new models in question."
#ifndef DASPOS_STATS_LIMITS_H_
#define DASPOS_STATS_LIMITS_H_

#include "support/result.h"

namespace daspos {

/// A single-bin counting experiment.
struct CountingExperiment {
  /// Observed events in the signal region.
  double observed = 0.0;
  /// Expected background.
  double background = 0.0;
  /// Expected signal events per unit signal strength (efficiency x
  /// acceptance x cross-section x luminosity at mu = 1).
  double signal_per_mu = 0.0;
};

/// Bayesian upper limit on the signal strength mu at the given credibility
/// (default 95%), flat prior in mu, Poisson likelihood. Background is taken
/// as known. Fails if signal_per_mu <= 0.
Result<double> UpperLimit(const CountingExperiment& experiment,
                          double credibility = 0.95);

/// Discovery significance of the observation against the background-only
/// hypothesis, using the asymptotic formula
///   Z = sqrt(2 (n ln(n/b) - (n - b)))   for n > b, else 0.
double DiscoverySignificance(double observed, double background);

/// Expected (median) upper limit when observing exactly the background.
Result<double> ExpectedLimit(const CountingExperiment& experiment,
                             double credibility = 0.95);

}  // namespace daspos

#endif  // DASPOS_STATS_LIMITS_H_
