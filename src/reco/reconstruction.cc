#include "reco/reconstruction.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/metrics_registry.h"
#include "support/parallel.h"
#include "support/trace.h"

namespace daspos {

std::vector<RecoEvent> Reconstructor::ReconstructAll(
    const std::vector<RawEvent>& raw, ThreadPool* pool) const {
  Span span("reco:reconstruct_all", "reco");
  span.AddAttribute("events", static_cast<uint64_t>(raw.size()));
  MetricsRegistry::Global()
      .GetCounter(metric_names::kRecoEventsTotal, "events reconstructed")
      .Increment(static_cast<uint64_t>(raw.size()));
  return ParallelMap<RecoEvent>(
      pool, raw.size(), [this, &raw](size_t i) { return Reconstruct(raw[i]); },
      /*grain=*/1);
}

namespace {

constexpr double kPi = 3.14159265358979323846;

double AngularDistance(double eta1, double phi1, double eta2, double phi2) {
  double deta = eta1 - eta2;
  double dphi = std::fabs(phi1 - phi2);
  if (dphi > kPi) dphi = 2.0 * kPi - dphi;
  return std::sqrt(deta * deta + dphi * dphi);
}

FourVector ClusterFourVector(const CaloCluster& cluster) {
  // Massless object at the cluster direction.
  double pt = cluster.energy / std::cosh(cluster.eta);
  return FourVector::FromPtEtaPhiM(pt, cluster.eta, cluster.phi, 0.0);
}

}  // namespace

RecoEvent Reconstructor::Reconstruct(const RawEvent& raw) const {
  const CandidateConfig& cuts = config_.candidates;

  RecoEvent event;
  event.run_number = raw.run_number;
  event.event_number = raw.event_number;
  event.trigger_bits = raw.trigger_bits;

  TrackFinder track_finder(config_.geometry, config_.calib, config_.tracking);
  event.tracks = track_finder.FindTracks(raw);

  CaloClusterer clusterer(config_.geometry, config_.calib,
                          config_.clustering);
  event.clusters = clusterer.Cluster(raw);
  std::vector<MuonSegment> segments = clusterer.MuonSegments(raw);

  // Pileup proxy: soft tracks come ~12 per interaction.
  event.vertex_count =
      std::max(1, static_cast<int>(event.tracks.size()) / 12);

  // Track isolation helper: scalar pt sum of other tracks in a cone.
  auto isolation = [&](double eta, double phi, const Track* exclude) {
    double sum = 0.0;
    for (const Track& track : event.tracks) {
      if (&track == exclude) continue;
      if (AngularDistance(eta, phi, track.momentum.Eta(),
                          track.momentum.Phi()) < cuts.isolation_dr) {
        sum += track.momentum.Pt();
      }
    }
    return sum;
  };

  std::vector<bool> cluster_used(event.clusters.size(), false);
  std::vector<bool> track_used(event.tracks.size(), false);

  // --- muons: chamber segment matched to a tracker track ---------------
  for (const MuonSegment& segment : segments) {
    int best = -1;
    double best_dr = cuts.muon_match_dr;
    for (size_t t = 0; t < event.tracks.size(); ++t) {
      if (track_used[t]) continue;
      double dr =
          AngularDistance(segment.eta, segment.phi,
                          event.tracks[t].momentum.Eta(),
                          event.tracks[t].momentum.Phi());
      if (dr < best_dr) {
        best_dr = dr;
        best = static_cast<int>(t);
      }
    }
    if (best < 0) continue;
    const Track& track = event.tracks[static_cast<size_t>(best)];
    track_used[static_cast<size_t>(best)] = true;
    PhysicsObject muon;
    muon.type = ObjectType::kMuon;
    muon.momentum = track.momentum;
    muon.charge = track.charge;
    muon.isolation =
        isolation(track.momentum.Eta(), track.momentum.Phi(), &track);
    muon.quality = std::min(1.0, segment.layer_count / 4.0);
    muon.displacement_mm = std::fabs(track.d0_mm);
    event.objects.push_back(muon);
  }

  // --- electrons / photons: EM-rich clusters, split on a track match ---
  for (size_t c = 0; c < event.clusters.size(); ++c) {
    const CaloCluster& cluster = event.clusters[c];
    if (cluster.em_fraction < cuts.em_id_fraction) continue;
    if (cluster.energy < cuts.em_min_energy) continue;

    int best = -1;
    double best_dr = cuts.electron_match_dr;
    for (size_t t = 0; t < event.tracks.size(); ++t) {
      if (track_used[t]) continue;
      double dr = AngularDistance(cluster.eta, cluster.phi,
                                  event.tracks[t].momentum.Eta(),
                                  event.tracks[t].momentum.Phi());
      if (dr < best_dr) {
        best_dr = dr;
        best = static_cast<int>(t);
      }
    }
    PhysicsObject candidate;
    candidate.momentum = ClusterFourVector(cluster);
    candidate.quality = cluster.em_fraction;
    if (best >= 0) {
      const Track& track = event.tracks[static_cast<size_t>(best)];
      // Electron-like only if the track momentum is calorimeter-compatible
      // (suppresses soft-hadron overlaps).
      double ep = cluster.energy / std::max(0.1, track.momentum.P());
      if (ep > 0.5) {
        track_used[static_cast<size_t>(best)] = true;
        candidate.type = ObjectType::kElectron;
        candidate.charge = track.charge;
        candidate.isolation =
            isolation(cluster.eta, cluster.phi, &track);
        candidate.displacement_mm = std::fabs(track.d0_mm);
        cluster_used[c] = true;
        event.objects.push_back(candidate);
        continue;
      }
    }
    candidate.type = ObjectType::kPhoton;
    candidate.charge = 0;
    candidate.isolation = isolation(cluster.eta, cluster.phi, nullptr);
    cluster_used[c] = true;
    event.objects.push_back(candidate);
  }

  // --- jets: cone clustering of remaining calo clusters ----------------
  // Clusters are already energy-descending; greedy seeded cones.
  std::vector<FourVector> cluster_vectors;
  cluster_vectors.reserve(event.clusters.size());
  for (const CaloCluster& cluster : event.clusters) {
    cluster_vectors.push_back(ClusterFourVector(cluster));
  }
  for (size_t seed = 0; seed < event.clusters.size(); ++seed) {
    if (cluster_used[seed]) continue;
    if (cluster_vectors[seed].Et() < cuts.jet_seed_et) continue;
    FourVector jet_momentum;
    double seed_eta = event.clusters[seed].eta;
    double seed_phi = event.clusters[seed].phi;
    for (size_t c = seed; c < event.clusters.size(); ++c) {
      if (cluster_used[c]) continue;
      if (AngularDistance(seed_eta, seed_phi, event.clusters[c].eta,
                          event.clusters[c].phi) < cuts.jet_cone_dr) {
        cluster_used[c] = true;
        jet_momentum += cluster_vectors[c];
      }
    }
    if (jet_momentum.Pt() < cuts.jet_min_pt) continue;
    PhysicsObject jet;
    jet.type = ObjectType::kJet;
    jet.momentum = jet_momentum;
    jet.charge = 0;
    jet.quality = 1.0;
    event.objects.push_back(jet);
  }

  // --- missing transverse energy ----------------------------------------
  // Negative vector sum of all calorimeter clusters plus muon tracks
  // (muons leave almost nothing in the calorimeters).
  double sum_px = 0.0;
  double sum_py = 0.0;
  for (const FourVector& v : cluster_vectors) {
    sum_px += v.px();
    sum_py += v.py();
  }
  for (const PhysicsObject& obj : event.objects) {
    if (obj.type == ObjectType::kMuon) {
      sum_px += obj.momentum.px();
      sum_py += obj.momentum.py();
    }
  }
  PhysicsObject met;
  met.type = ObjectType::kMet;
  double met_pt = std::sqrt(sum_px * sum_px + sum_py * sum_py);
  met.momentum = FourVector(-sum_px, -sum_py, 0.0, met_pt);
  met.charge = 0;
  event.objects.push_back(met);

  // pt-descending objects (MET stays last by convention: sort only the
  // physics objects before it).
  std::sort(event.objects.begin(), event.objects.end() - 1,
            [](const PhysicsObject& a, const PhysicsObject& b) {
              return a.momentum.Pt() > b.momentum.Pt();
            });
  return event;
}

}  // namespace daspos
