#include "reco/clustering.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace daspos {

namespace {

constexpr double kPi = 3.14159265358979323846;

struct Cell {
  int eta_cell;
  int phi_cell;
  double eta;
  double phi;
  double energy;
  bool used = false;
};

double AngularDistance(double eta1, double phi1, double eta2, double phi2) {
  double deta = eta1 - eta2;
  double dphi = std::fabs(phi1 - phi2);
  if (dphi > kPi) dphi = 2.0 * kPi - dphi;
  return std::sqrt(deta * deta + dphi * dphi);
}

/// Greedy local-maximum clustering on a cell grid: highest unused cell
/// seeds; its 3x3 neighbourhood (with phi wrap-around) is absorbed.
struct ProtoCluster {
  double energy = 0.0;
  double eta = 0.0;  // energy-weighted
  double phi = 0.0;
  int cell_count = 0;
};

std::vector<ProtoCluster> ClusterGrid(std::vector<Cell>& cells,
                                      double seed_threshold, int phi_cells) {
  std::sort(cells.begin(), cells.end(),
            [](const Cell& a, const Cell& b) { return a.energy > b.energy; });
  // Index for neighbourhood lookups.
  std::map<std::pair<int, int>, size_t> index;
  for (size_t i = 0; i < cells.size(); ++i) {
    index[{cells[i].eta_cell, cells[i].phi_cell}] = i;
  }

  std::vector<ProtoCluster> out;
  for (Cell& seed : cells) {
    if (seed.used || seed.energy < seed_threshold) continue;
    ProtoCluster cluster;
    double sum_eta = 0.0;
    double sum_x = 0.0;  // for phi averaging use vector sum
    double sum_y = 0.0;
    for (int deta = -1; deta <= 1; ++deta) {
      for (int dphi = -1; dphi <= 1; ++dphi) {
        int pc = seed.phi_cell + dphi;
        if (pc < 0) pc += phi_cells;
        if (pc >= phi_cells) pc -= phi_cells;
        auto it = index.find({seed.eta_cell + deta, pc});
        if (it == index.end()) continue;
        Cell& member = cells[it->second];
        if (member.used) continue;
        member.used = true;
        cluster.energy += member.energy;
        ++cluster.cell_count;
        sum_eta += member.energy * member.eta;
        sum_x += member.energy * std::cos(member.phi);
        sum_y += member.energy * std::sin(member.phi);
      }
    }
    if (cluster.energy <= 0.0) continue;
    cluster.eta = sum_eta / cluster.energy;
    cluster.phi = std::atan2(sum_y, sum_x);
    out.push_back(cluster);
  }
  return out;
}

}  // namespace

std::vector<CaloCluster> CaloClusterer::Cluster(const RawEvent& raw) const {
  // Accumulate per-cell energies (several hits can share a cell).
  std::map<uint32_t, double> ecal_energy;
  std::map<uint32_t, double> hcal_energy;
  for (const RawHit& hit : raw.hits) {
    if (hit.detector == SubDetector::kEcal) {
      ecal_energy[hit.channel] += hit.adc * calib_.ecal_gain;
    } else if (hit.detector == SubDetector::kHcal) {
      hcal_energy[hit.channel] += hit.adc * calib_.hcal_gain;
    }
  }

  std::vector<Cell> ecal_cells;
  ecal_cells.reserve(ecal_energy.size());
  for (const auto& [channel, energy] : ecal_energy) {
    int eta_cell, phi_cell;
    geometry_.DecodeEcalChannel(channel, &eta_cell, &phi_cell);
    ecal_cells.push_back({eta_cell, phi_cell,
                          geometry_.EcalEtaCellCenter(eta_cell),
                          geometry_.EcalPhiCellCenter(phi_cell), energy});
  }
  std::vector<Cell> hcal_cells;
  hcal_cells.reserve(hcal_energy.size());
  for (const auto& [channel, energy] : hcal_energy) {
    int eta_cell, phi_cell;
    geometry_.DecodeHcalChannel(channel, &eta_cell, &phi_cell);
    hcal_cells.push_back({eta_cell, phi_cell,
                          geometry_.HcalEtaCellCenter(eta_cell),
                          geometry_.HcalPhiCellCenter(phi_cell), energy});
  }

  std::vector<ProtoCluster> em = ClusterGrid(ecal_cells, config_.ecal_seed_gev,
                                             geometry_.ecal_phi_cells);
  std::vector<ProtoCluster> had = ClusterGrid(
      hcal_cells, config_.hcal_seed_gev, geometry_.hcal_phi_cells);

  // Match: each hadronic cluster attaches to the nearest EM cluster within
  // match_dr; leftovers become EM-poor clusters on their own.
  std::vector<CaloCluster> out;
  std::vector<double> attached_had(em.size(), 0.0);
  for (const ProtoCluster& h : had) {
    double best_dr = config_.match_dr;
    int best = -1;
    for (size_t i = 0; i < em.size(); ++i) {
      double dr = AngularDistance(h.eta, h.phi, em[i].eta, em[i].phi);
      if (dr < best_dr) {
        best_dr = dr;
        best = static_cast<int>(i);
      }
    }
    if (best >= 0) {
      attached_had[static_cast<size_t>(best)] += h.energy;
    } else {
      CaloCluster cluster;
      cluster.energy = h.energy;
      cluster.eta = h.eta;
      cluster.phi = h.phi;
      cluster.em_fraction = 0.0;
      cluster.cell_count = h.cell_count;
      out.push_back(cluster);
    }
  }
  for (size_t i = 0; i < em.size(); ++i) {
    CaloCluster cluster;
    cluster.energy = em[i].energy + attached_had[i];
    cluster.eta = em[i].eta;
    cluster.phi = em[i].phi;
    cluster.em_fraction = em[i].energy / cluster.energy;
    cluster.cell_count = em[i].cell_count;
    out.push_back(cluster);
  }
  std::sort(out.begin(), out.end(),
            [](const CaloCluster& a, const CaloCluster& b) {
              return a.energy > b.energy;
            });
  return out;
}

std::vector<MuonSegment> CaloClusterer::MuonSegments(
    const RawEvent& raw) const {
  // Group muon hits by tower (eta, phi cell); require >= 2 distinct layers.
  std::map<std::pair<int, int>, uint32_t> layer_mask;
  for (const RawHit& hit : raw.hits) {
    if (hit.detector != SubDetector::kMuon) continue;
    int layer, eta_cell, phi_cell;
    geometry_.DecodeMuonChannel(hit.channel, &layer, &eta_cell, &phi_cell);
    layer_mask[{eta_cell, phi_cell}] |= (1u << layer);
  }
  std::vector<MuonSegment> out;
  for (const auto& [tower, mask] : layer_mask) {
    int layers = 0;
    for (uint32_t m = mask; m != 0; m >>= 1u) {
      layers += static_cast<int>(m & 1u);
    }
    if (layers < 2) continue;
    MuonSegment segment;
    segment.eta = geometry_.MuonEtaCellCenter(tower.first);
    segment.phi = geometry_.MuonPhiCellCenter(tower.second);
    segment.layer_count = layers;
    out.push_back(segment);
  }
  return out;
}

}  // namespace daspos
