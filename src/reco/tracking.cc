#include "reco/tracking.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "event/pdg.h"

namespace daspos {

namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr double kTwoPi = 2.0 * kPi;
/// Must match detsim/simulation.cc.
constexpr double kCurvature = 0.15;

double WrapToReference(double phi, double reference) {
  double d = phi - reference;
  while (d > kPi) d -= kTwoPi;
  while (d < -kPi) d += kTwoPi;
  return reference + d;
}

struct RoadHit {
  int layer;
  double r;
  double phi;
  bool used = false;
};

/// 3-parameter least squares of phi = a + b*r + c/r. Returns false when the
/// normal equations are singular (degenerate hit configuration).
bool FitHelixModel(const std::vector<const RoadHit*>& hits, double* a,
                   double* b, double* c) {
  // Normal equations: M p = v with basis functions f = (1, r, 1/r).
  double m[3][3] = {{0}};
  double v[3] = {0};
  for (const RoadHit* hit : hits) {
    double f[3] = {1.0, hit->r, 1.0 / hit->r};
    for (int i = 0; i < 3; ++i) {
      v[i] += f[i] * hit->phi;
      for (int j = 0; j < 3; ++j) m[i][j] += f[i] * f[j];
    }
  }
  double det = m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1]) -
               m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0]) +
               m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
  if (std::fabs(det) < 1e-18) return false;
  auto solve = [&](int col) {
    double t[3][3];
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) t[i][j] = (j == col) ? v[i] : m[i][j];
    }
    double d = t[0][0] * (t[1][1] * t[2][2] - t[1][2] * t[2][1]) -
               t[0][1] * (t[1][0] * t[2][2] - t[1][2] * t[2][0]) +
               t[0][2] * (t[1][0] * t[2][1] - t[1][1] * t[2][0]);
    return d / det;
  };
  *a = solve(0);
  *b = solve(1);
  *c = solve(2);
  return true;
}

}  // namespace

std::vector<Track> TrackFinder::FindTracks(const RawEvent& raw) const {
  // Decode and bucket hits by eta cell (the road coordinate).
  std::map<int, std::vector<RoadHit>> roads;
  for (const RawHit& hit : raw.hits) {
    if (hit.detector != SubDetector::kTracker) continue;
    int layer, eta_cell, phi_cell;
    geometry_.DecodeTrackerChannel(hit.channel, &layer, &eta_cell, &phi_cell);
    RoadHit road_hit;
    road_hit.layer = layer;
    road_hit.r = geometry_.TrackerLayerRadius(layer);
    // Undo the alignment constant applied at digitization.
    road_hit.phi = geometry_.TrackerPhiCellCenter(phi_cell) -
                   calib_.tracker_phi_offset;
    roads[eta_cell].push_back(road_hit);
  }

  const double cell_width = kTwoPi / geometry_.tracker_phi_cells;
  const double seed_tol = config_.seed_tolerance_cells * cell_width;
  const int min_hits = std::max(4, config_.min_hits);

  std::vector<Track> tracks;
  for (auto& [eta_cell, hits] : roads) {
    if (static_cast<int>(hits.size()) < min_hits) continue;
    std::sort(hits.begin(), hits.end(),
              [](const RoadHit& x, const RoadHit& y) {
                return x.layer < y.layer;
              });

    // Seed from (low-layer, high-layer) unused pairs.
    for (size_t i = 0; i < hits.size(); ++i) {
      if (hits[i].used) continue;
      for (size_t j = hits.size(); j-- > i + 1;) {
        if (hits[j].used || hits[j].layer <= hits[i].layer) continue;
        double phi_i = hits[i].phi;
        double phi_j = WrapToReference(hits[j].phi, phi_i);
        if (std::fabs(phi_j - phi_i) > config_.max_seed_bend) continue;

        // Two-point line prediction phi(r) = a + b r.
        double b = (phi_j - phi_i) / (hits[j].r - hits[i].r);
        double a = phi_i - b * hits[i].r;

        std::vector<const RoadHit*> members;
        for (const RoadHit& hit : hits) {
          if (hit.used) continue;
          double predicted = a + b * hit.r;
          double observed = WrapToReference(hit.phi, predicted);
          if (std::fabs(observed - predicted) < seed_tol) {
            members.push_back(&hit);
          }
        }
        if (static_cast<int>(members.size()) < min_hits) continue;
        // One hit per layer at most: keep the closest to the prediction.
        std::map<int, const RoadHit*> by_layer;
        for (const RoadHit* hit : members) {
          auto it = by_layer.find(hit->layer);
          auto residual = [&](const RoadHit* h) {
            double predicted = a + b * h->r;
            return std::fabs(WrapToReference(h->phi, predicted) - predicted);
          };
          if (it == by_layer.end() || residual(hit) < residual(it->second)) {
            by_layer[hit->layer] = hit;
          }
        }
        if (static_cast<int>(by_layer.size()) < min_hits) continue;

        std::vector<const RoadHit*> fit_hits;
        fit_hits.reserve(by_layer.size());
        double reference = phi_i;
        for (auto& [layer, hit] : by_layer) {
          (void)layer;
          fit_hits.push_back(hit);
        }
        // Re-express phis near the seed phi so the fit is wrap-free.
        std::vector<RoadHit> local;
        local.reserve(fit_hits.size());
        std::vector<const RoadHit*> local_ptrs;
        for (const RoadHit* hit : fit_hits) {
          RoadHit copy = *hit;
          copy.phi = WrapToReference(copy.phi, reference);
          local.push_back(copy);
        }
        local_ptrs.reserve(local.size());
        for (const RoadHit& hit : local) local_ptrs.push_back(&hit);

        double fa, fb, fc;
        if (!FitHelixModel(local_ptrs, &fa, &fb, &fc)) continue;

        // Chi2 against the quantization scale.
        double chi2 = 0.0;
        for (const RoadHit& hit : local) {
          double res = hit.phi - (fa + fb * hit.r + fc / hit.r);
          chi2 += res * res / (cell_width * cell_width / 12.0);
        }

        double bend = fb;
        double pt = config_.max_pt;
        int charge = bend >= 0.0 ? 1 : -1;
        double denom = std::fabs(bend);
        if (denom > kCurvature * geometry_.field_tesla / config_.max_pt) {
          pt = kCurvature * geometry_.field_tesla / denom;
        }
        double eta = geometry_.TrackerEtaCellCenter(eta_cell);
        // Azimuth at the origin: phi0 = a (the constant term).
        double phi0 = std::remainder(fa, kTwoPi);

        Track track;
        track.momentum =
            FourVector::FromPtEtaPhiM(pt, eta, phi0, pdg::Mass(pdg::kPiPlus));
        track.charge = charge;
        track.hit_count = static_cast<int>(local.size());
        track.chi2 = chi2;
        track.d0_mm = fc * 1000.0;
        tracks.push_back(track);

        // Mark members used.
        for (auto& [layer, hit] : by_layer) {
          (void)layer;
          const_cast<RoadHit*>(hit)->used = true;
        }
        break;  // take the next unused seed hit i
      }
    }
  }
  // Highest-pt first, the downstream convention.
  std::sort(tracks.begin(), tracks.end(), [](const Track& x, const Track& y) {
    return x.momentum.Pt() > y.momentum.Pt();
  });
  return tracks;
}

}  // namespace daspos
