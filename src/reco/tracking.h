// Track finding: road search plus least-squares helix-model fit over
// quantized tracker hits. The curvature of the fitted azimuthal drift gives
// charge and transverse momentum; the 1/r term gives the transverse impact
// parameter (lifetime information).
#ifndef DASPOS_RECO_TRACKING_H_
#define DASPOS_RECO_TRACKING_H_

#include <vector>

#include "detsim/calib.h"
#include "detsim/geometry.h"
#include "event/raw.h"
#include "event/reco.h"

namespace daspos {

struct TrackingConfig {
  /// Minimum hits for a track (also bounded below by 4 for the 3-parameter
  /// fit to be over-constrained).
  int min_hits = 5;
  /// Road tolerance around the two-point seed prediction, in phi cells.
  double seed_tolerance_cells = 6.0;
  /// Maximum |phi(outer) - phi(inner)| for a seed pair, radians.
  double max_seed_bend = 0.5;
  /// Reconstructed pt is clamped to this ceiling (straight tracks).
  double max_pt = 500.0;
};

/// Finds tracks in the tracker hits of one raw event.
class TrackFinder {
 public:
  TrackFinder(const DetectorGeometry& geometry, const CalibrationSet& calib,
              TrackingConfig config = {})
      : geometry_(geometry), calib_(calib), config_(config) {}

  std::vector<Track> FindTracks(const RawEvent& raw) const;

 private:
  const DetectorGeometry& geometry_;
  const CalibrationSet& calib_;
  TrackingConfig config_;
};

}  // namespace daspos

#endif  // DASPOS_RECO_TRACKING_H_
