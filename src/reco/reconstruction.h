// The Reconstruction step (§3.2): raw data -> tracks + clusters ->
// candidate physics objects (electrons, muons, photons, jets, MET).
// Requires the same calibration constants the digitization used — the
// conditions-database dependency the paper highlights.
#ifndef DASPOS_RECO_RECONSTRUCTION_H_
#define DASPOS_RECO_RECONSTRUCTION_H_

#include <vector>

#include "detsim/calib.h"
#include "detsim/geometry.h"
#include "event/raw.h"
#include "event/reco.h"
#include "reco/clustering.h"
#include "reco/tracking.h"

namespace daspos {

class ThreadPool;

struct CandidateConfig {
  /// EM fraction above which a cluster is electron/photon-like.
  double em_id_fraction = 0.80;
  double em_min_energy = 2.0;
  /// Track<->cluster and track<->muon-segment matching radii.
  double electron_match_dr = 0.15;
  double muon_match_dr = 0.30;
  /// Jet cone radius and minimum pt.
  double jet_cone_dr = 0.4;
  double jet_seed_et = 5.0;
  double jet_min_pt = 15.0;
  /// Isolation cone.
  double isolation_dr = 0.3;
};

struct ReconstructionConfig {
  DetectorGeometry geometry;
  CalibrationSet calib;
  TrackingConfig tracking;
  ClusteringConfig clustering;
  CandidateConfig candidates;
};

/// Runs the full reconstruction chain on raw events.
class Reconstructor {
 public:
  explicit Reconstructor(const ReconstructionConfig& config)
      : config_(config) {}

  RecoEvent Reconstruct(const RawEvent& raw) const;

  /// Reconstructs every event, in parallel on `pool` when given. Each event
  /// is reconstructed independently, so output order (and every byte) is
  /// identical to calling Reconstruct in a serial loop.
  std::vector<RecoEvent> ReconstructAll(const std::vector<RawEvent>& raw,
                                        ThreadPool* pool = nullptr) const;

  const ReconstructionConfig& config() const { return config_; }

 private:
  ReconstructionConfig config_;
};

}  // namespace daspos

#endif  // DASPOS_RECO_RECONSTRUCTION_H_
