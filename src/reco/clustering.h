// Calorimeter clustering: the "local-maximum-finding algorithms" of §3.2.
// ECAL and HCAL cells are clustered per compartment, then matched across
// compartments into combined clusters carrying an EM fraction.
#ifndef DASPOS_RECO_CLUSTERING_H_
#define DASPOS_RECO_CLUSTERING_H_

#include <vector>

#include "detsim/calib.h"
#include "detsim/geometry.h"
#include "event/raw.h"
#include "event/reco.h"

namespace daspos {

struct ClusteringConfig {
  /// Minimum seed-cell energy, GeV.
  double ecal_seed_gev = 0.5;
  double hcal_seed_gev = 1.0;
  /// ECAL<->HCAL cluster matching radius.
  double match_dr = 0.25;
};

/// A muon-chamber segment (grouped muon hits).
struct MuonSegment {
  double eta = 0.0;
  double phi = 0.0;
  int layer_count = 0;
};

class CaloClusterer {
 public:
  CaloClusterer(const DetectorGeometry& geometry, const CalibrationSet& calib,
                ClusteringConfig config = {})
      : geometry_(geometry), calib_(calib), config_(config) {}

  /// Combined ECAL+HCAL clusters of one raw event, energy-descending.
  std::vector<CaloCluster> Cluster(const RawEvent& raw) const;

  /// Muon segments (>= 2 chamber layers in one tower).
  std::vector<MuonSegment> MuonSegments(const RawEvent& raw) const;

 private:
  const DetectorGeometry& geometry_;
  const CalibrationSet& calib_;
  ClusteringConfig config_;
};

}  // namespace daspos

#endif  // DASPOS_RECO_CLUSTERING_H_
