#include "tiers/skimslim.h"

#include "serialize/binary.h"
#include "serialize/container.h"
#include "support/metrics_registry.h"
#include "support/parallel.h"
#include "support/strings.h"
#include "support/trace.h"

namespace daspos {

SkimSpec SkimSpec::All() {
  SkimSpec spec;
  spec.descriptor = Json::Object();
  spec.descriptor["kind"] = "all";
  return spec;
}

SkimSpec SkimSpec::RequireObjects(ObjectType type, int count, double min_pt) {
  SkimSpec spec;
  spec.descriptor = Json::Object();
  spec.descriptor["kind"] = "require_objects";
  spec.descriptor["type"] = std::string(ObjectTypeName(type));
  spec.descriptor["count"] = count;
  spec.descriptor["min_pt"] = min_pt;
  spec.name = "require_" + std::to_string(count) + "_" +
              std::string(ObjectTypeName(type)) + "_pt" +
              FormatDouble(min_pt, 3);
  spec.description = "keep events with >= " + std::to_string(count) + " " +
                     std::string(ObjectTypeName(type)) + " objects with pt > " +
                     FormatDouble(min_pt, 4) + " GeV";
  spec.predicate = [type, count, min_pt](const AodEvent& event) {
    int found = 0;
    for (const PhysicsObject& obj : event.objects) {
      if (obj.type == type && obj.momentum.Pt() > min_pt) ++found;
    }
    return found >= count;
  };
  return spec;
}

SkimSpec SkimSpec::RequireTrigger(uint32_t mask) {
  SkimSpec spec;
  spec.descriptor = Json::Object();
  spec.descriptor["kind"] = "trigger";
  spec.descriptor["mask"] = mask;
  spec.name = "trigger_mask_" + std::to_string(mask);
  spec.description =
      "keep events with any of trigger bits " + std::to_string(mask);
  spec.predicate = [mask](const AodEvent& event) {
    return (event.trigger_bits & mask) != 0;
  };
  return spec;
}

Json SkimSpec::ToJson() const {
  Json json = Json::Object();
  json["name"] = name;
  json["description"] = description;
  json["descriptor"] = descriptor;
  return json;
}

Result<SkimSpec> SkimSpec::FromJson(const Json& json) {
  const Json& descriptor =
      json.Has("descriptor") ? json.Get("descriptor") : json;
  if (!descriptor.is_object() || !descriptor.Has("kind")) {
    return Status::Unimplemented(
        "skim has no machine-readable descriptor; only direct code "
        "preservation can restore it");
  }
  std::string kind = descriptor.Get("kind").as_string();
  if (kind == "all") return All();
  if (kind == "require_objects") {
    DASPOS_ASSIGN_OR_RETURN(
        ObjectType type,
        ObjectTypeFromName(descriptor.Get("type").as_string()));
    return RequireObjects(type,
                          static_cast<int>(descriptor.Get("count").as_int()),
                          descriptor.Get("min_pt").as_number());
  }
  if (kind == "trigger") {
    return RequireTrigger(
        static_cast<uint32_t>(descriptor.Get("mask").as_int()));
  }
  return Status::Unimplemented("unknown skim kind '" + kind + "'");
}

SlimSpec SlimSpec::None() { return SlimSpec{}; }

SlimSpec SlimSpec::LeptonsOnly(double min_pt) {
  SlimSpec spec;
  spec.name = "leptons_pt" + FormatDouble(min_pt, 3);
  spec.keep_types = {ObjectType::kElectron, ObjectType::kMuon};
  spec.min_object_pt = min_pt;
  return spec;
}

SlimSpec SlimSpec::Objects(std::vector<ObjectType> types, double min_pt,
                           std::string name) {
  SlimSpec spec;
  spec.name = std::move(name);
  spec.keep_types = std::move(types);
  spec.min_object_pt = min_pt;
  return spec;
}

AodEvent SlimSpec::Apply(const AodEvent& event) const {
  AodEvent out = event;
  out.objects.clear();
  for (const PhysicsObject& obj : event.objects) {
    if (obj.type == ObjectType::kMet) {
      out.objects.push_back(obj);
      continue;
    }
    bool keep_type = false;
    for (ObjectType type : keep_types) {
      if (obj.type == type) keep_type = true;
    }
    if (keep_type && obj.momentum.Pt() >= min_object_pt) {
      out.objects.push_back(obj);
    }
  }
  return out;
}

Json SlimSpec::ToJson() const {
  Json json = Json::Object();
  json["name"] = name;
  Json types = Json::Array();
  for (ObjectType type : keep_types) {
    types.push_back(std::string(ObjectTypeName(type)));
  }
  json["keep_types"] = std::move(types);
  json["min_object_pt"] = min_object_pt;
  return json;
}

Result<SlimSpec> SlimSpec::FromJson(const Json& json) {
  if (!json.is_object() || !json.Has("keep_types")) {
    return Status::InvalidArgument("slim JSON missing 'keep_types'");
  }
  SlimSpec spec;
  spec.name = json.Get("name").as_string();
  spec.keep_types.clear();
  const Json& types = json.Get("keep_types");
  for (size_t i = 0; i < types.size(); ++i) {
    DASPOS_ASSIGN_OR_RETURN(ObjectType type,
                            ObjectTypeFromName(types.at(i).as_string()));
    spec.keep_types.push_back(type);
  }
  spec.min_object_pt = json.Get("min_object_pt").as_number();
  return spec;
}

Result<std::string> DeriveDataset(std::string_view aod_blob,
                                  const std::string& output_name,
                                  const SkimSpec& skim, const SlimSpec& slim,
                                  DerivationStats* stats, ThreadPool* pool) {
  Span span("tiers:derive", "tiers");
  span.AddAttribute("output", output_name);
  DatasetInfo input_info;
  DASPOS_ASSIGN_OR_RETURN(std::vector<AodEvent> events,
                          ReadAodDataset(aod_blob, &input_info));

  DatasetInfo output_info;
  output_info.tier = DataTier::kDerived;
  output_info.name = output_name;
  output_info.producer = "derivation(skim=" + skim.name + ",slim=" +
                         slim.name + ")";
  output_info.parents = {input_info.name};
  output_info.description = skim.description;

  // Build the container by hand so the derivation description rides in the
  // metadata (the "logical skimming/slimming description" of §3.2).
  Json meta = output_info.ToJson();
  meta["schema"] = std::string(TierSchema(DataTier::kDerived));
  meta["schema_version"] = 1;
  Json derivation = Json::Object();
  derivation["skim"] = skim.name;
  derivation["skim_description"] = skim.description;
  derivation["slim"] = slim.ToJson();
  meta["derivation"] = std::move(derivation);

  // Each chunk filters and re-encodes its events into a pre-framed record
  // buffer (exactly the bytes AddRecord would emit); the buffers splice in
  // chunk order, so the blob matches the serial loop byte for byte.
  struct ChunkRecords {
    std::string encoded;
    uint64_t kept = 0;
  };
  ChunkPlan plan = PlanChunks(events.size(), /*grain=*/16);
  std::vector<ChunkRecords> parts(plan.chunk_count);
  ForEachChunk(pool, events.size(), /*grain=*/16,
               [&](size_t chunk, size_t begin, size_t end) {
                 ChunkRecords& part = parts[chunk];
                 BinaryWriter w;
                 for (size_t i = begin; i < end; ++i) {
                   if (!skim.predicate(events[i])) continue;
                   w.PutString(slim.Apply(events[i]).ToRecord());
                   ++part.kept;
                 }
                 part.encoded = w.TakeBuffer();
               });

  ContainerWriter writer(meta);
  uint64_t kept = 0;
  size_t total_encoded = 0;
  for (const ChunkRecords& part : parts) total_encoded += part.encoded.size();
  writer.Reserve(total_encoded);
  for (const ChunkRecords& part : parts) {
    writer.AppendEncodedRecords(part.encoded, static_cast<size_t>(part.kept));
    kept += part.kept;
  }
  std::string blob = writer.Finish();
  span.AddAttribute("input_events", static_cast<uint64_t>(events.size()));
  span.AddAttribute("output_events", kept);
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry
      .GetCounter(metric_names::kTiersInputEventsTotal,
                  "AOD events read by derivation")
      .Increment(static_cast<uint64_t>(events.size()));
  registry
      .GetCounter(metric_names::kTiersOutputEventsTotal,
                  "derived events written by derivation")
      .Increment(kept);
  if (stats != nullptr) {
    stats->input_events = events.size();
    stats->output_events = kept;
    stats->input_bytes = aod_blob.size();
    stats->output_bytes = blob.size();
  }
  return blob;
}

}  // namespace daspos
