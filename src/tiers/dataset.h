// Typed dataset files: one self-describing container per tier, carrying the
// tier schema, producer, and parentage in its metadata. This is where the
// "logical skimming/slimming description" of derived formats (§3.2) becomes
// inspectable from the file alone.
#ifndef DASPOS_TIERS_DATASET_H_
#define DASPOS_TIERS_DATASET_H_

#include <string>
#include <vector>

#include "event/aod.h"
#include "event/raw.h"
#include "event/reco.h"
#include "event/truth.h"
#include "serialize/container.h"
#include "serialize/json.h"
#include "support/result.h"
#include "tiers/tier.h"

namespace daspos {

/// Descriptive metadata every dataset file carries.
struct DatasetInfo {
  DataTier tier = DataTier::kGen;
  /// Logical dataset name ("zmm_run7_aod").
  std::string name;
  /// Producing step ("reco_step v3"); provenance lives in workflow/ but the
  /// file itself names its producer so it stays interpretable standalone.
  std::string producer;
  /// Logical names of the input dataset(s).
  std::vector<std::string> parents;
  /// Free-form physics description.
  std::string description;

  Json ToJson() const;
  static Result<DatasetInfo> FromJson(const Json& json);
};

/// Serializes events of tier-appropriate type into a container blob.
/// The unparameterized record type keeps one writer per tier trivial.
std::string WriteGenDataset(const DatasetInfo& info,
                            const std::vector<GenEvent>& events);
std::string WriteRawDataset(const DatasetInfo& info,
                            const std::vector<RawEvent>& events);
std::string WriteRecoDataset(const DatasetInfo& info,
                             const std::vector<RecoEvent>& events);
std::string WriteAodDataset(const DatasetInfo& info,
                            const std::vector<AodEvent>& events);

/// Opens a dataset blob, checks the expected tier schema, and decodes all
/// events. Fixity and structure errors surface as Corruption.
Result<std::vector<GenEvent>> ReadGenDataset(std::string_view blob,
                                             DatasetInfo* info = nullptr);
Result<std::vector<RawEvent>> ReadRawDataset(std::string_view blob,
                                             DatasetInfo* info = nullptr);
Result<std::vector<RecoEvent>> ReadRecoDataset(std::string_view blob,
                                               DatasetInfo* info = nullptr);
Result<std::vector<AodEvent>> ReadAodDataset(std::string_view blob,
                                             DatasetInfo* info = nullptr);

/// Reads only the metadata of any dataset blob.
Result<DatasetInfo> ReadDatasetInfo(std::string_view blob);

}  // namespace daspos

#endif  // DASPOS_TIERS_DATASET_H_
