// Data-tier taxonomy, following the DPHEP levels the paper uses: generator
// truth, RAW detector output, full Reconstruction output, AOD, and derived
// (skimmed/slimmed) analysis formats.
#ifndef DASPOS_TIERS_TIER_H_
#define DASPOS_TIERS_TIER_H_

#include <string_view>

namespace daspos {

enum class DataTier {
  kGen = 0,
  kRaw = 1,
  kReco = 2,
  kAod = 3,
  kDerived = 4,
};

constexpr std::string_view TierName(DataTier tier) {
  switch (tier) {
    case DataTier::kGen:
      return "GEN";
    case DataTier::kRaw:
      return "RAW";
    case DataTier::kReco:
      return "RECO";
    case DataTier::kAod:
      return "AOD";
    case DataTier::kDerived:
      return "DERIVED";
  }
  return "?";
}

/// Container schema string for a tier ("daspos.raw.v1", ...).
constexpr std::string_view TierSchema(DataTier tier) {
  switch (tier) {
    case DataTier::kGen:
      return "daspos.gen.v1";
    case DataTier::kRaw:
      return "daspos.raw.v1";
    case DataTier::kReco:
      return "daspos.reco.v1";
    case DataTier::kAod:
      return "daspos.aod.v1";
    case DataTier::kDerived:
      return "daspos.derived.v1";
  }
  return "?";
}

}  // namespace daspos

#endif  // DASPOS_TIERS_TIER_H_
