// Skimming and slimming: "the dropping of events (known as 'skimming') and
// the reduction of the event content (known as 'slimming')" (§3.2). A
// derivation = one skim + one slim, applied AOD -> derived format, with the
// logical description captured so the step is preservable as metadata
// rather than as code.
#ifndef DASPOS_TIERS_SKIMSLIM_H_
#define DASPOS_TIERS_SKIMSLIM_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "event/aod.h"
#include "serialize/json.h"
#include "support/result.h"
#include "tiers/dataset.h"

namespace daspos {

class ThreadPool;

/// Event selection with a self-describing label AND a machine-readable
/// descriptor, so preserved skims rebuild from provenance (the logical
/// skimming description of §3.2 made executable again).
struct SkimSpec {
  std::string name = "all";
  std::string description = "keep every event";
  std::function<bool(const AodEvent&)> predicate = [](const AodEvent&) {
    return true;
  };
  /// Structured self-description, set by the factories below.
  Json descriptor;

  /// Common selections used by the analyses in this repository.
  static SkimSpec All();
  /// At least `count` objects of `type` with pt above `min_pt`.
  static SkimSpec RequireObjects(ObjectType type, int count, double min_pt);
  /// Any of the given trigger bits set.
  static SkimSpec RequireTrigger(uint32_t mask);

  /// Rebuilds a factory-made skim from its descriptor; hand-written
  /// predicates (empty descriptor) are not reconstructible and fail with
  /// Unimplemented — the honest answer for ad-hoc analyst code (§3.2:
  /// direct preservation of the code is then the only way).
  Json ToJson() const;
  static Result<SkimSpec> FromJson(const Json& json);
};

/// Content reduction: which object types survive, and above what pt.
struct SlimSpec {
  std::string name = "none";
  /// Object types to keep (MET is always kept).
  std::vector<ObjectType> keep_types = {
      ObjectType::kElectron, ObjectType::kMuon, ObjectType::kPhoton,
      ObjectType::kJet};
  double min_object_pt = 0.0;

  static SlimSpec None();
  static SlimSpec LeptonsOnly(double min_pt);
  static SlimSpec Objects(std::vector<ObjectType> types, double min_pt,
                          std::string name);

  /// Applies the reduction to one event.
  AodEvent Apply(const AodEvent& event) const;

  Json ToJson() const;
  static Result<SlimSpec> FromJson(const Json& json);
};

/// Outcome accounting of one derivation.
struct DerivationStats {
  uint64_t input_events = 0;
  uint64_t output_events = 0;
  uint64_t input_bytes = 0;
  uint64_t output_bytes = 0;

  double EventReduction() const {
    return input_events > 0 ? static_cast<double>(output_events) /
                                  static_cast<double>(input_events)
                            : 0.0;
  }
  double SizeReduction() const {
    return input_bytes > 0 ? static_cast<double>(output_bytes) /
                                 static_cast<double>(input_bytes)
                           : 0.0;
  }
};

/// Runs skim+slim over an AOD dataset blob and produces a derived dataset
/// blob whose metadata records the logical derivation description. With a
/// pool, events are filtered and re-encoded in parallel chunks whose record
/// buffers are merged in chunk order, so the output blob is byte-identical
/// to the serial run (the skim predicate and slim must be pure).
Result<std::string> DeriveDataset(std::string_view aod_blob,
                                  const std::string& output_name,
                                  const SkimSpec& skim, const SlimSpec& slim,
                                  DerivationStats* stats = nullptr,
                                  ThreadPool* pool = nullptr);

}  // namespace daspos

#endif  // DASPOS_TIERS_SKIMSLIM_H_
