#include "tiers/dataset.h"

namespace daspos {

namespace {

DataTier TierFromSchema(const std::string& schema, bool* ok) {
  *ok = true;
  for (DataTier tier :
       {DataTier::kGen, DataTier::kRaw, DataTier::kReco, DataTier::kAod,
        DataTier::kDerived}) {
    if (schema == TierSchema(tier)) return tier;
  }
  *ok = false;
  return DataTier::kGen;
}

Json MakeMetadata(const DatasetInfo& info) {
  Json meta = info.ToJson();
  meta["schema"] = std::string(TierSchema(info.tier));
  meta["schema_version"] = 1;
  return meta;
}

template <typename Event>
std::string WriteDataset(const DatasetInfo& info,
                         const std::vector<Event>& events) {
  ContainerWriter writer(MakeMetadata(info));
  for (const Event& event : events) writer.AddRecord(event.ToRecord());
  return writer.Finish();
}

template <typename Event>
Result<std::vector<Event>> ReadDataset(std::string_view blob,
                                       std::initializer_list<DataTier> allowed,
                                       DatasetInfo* info_out) {
  DASPOS_ASSIGN_OR_RETURN(ContainerReader reader, ContainerReader::Open(blob));
  DASPOS_ASSIGN_OR_RETURN(DatasetInfo info,
                          DatasetInfo::FromJson(reader.metadata()));
  bool tier_ok = false;
  for (DataTier tier : allowed) {
    if (info.tier == tier) tier_ok = true;
  }
  if (!tier_ok) {
    return Status::InvalidArgument(
        "dataset '" + info.name + "' has tier " +
        std::string(TierName(info.tier)) + ", not the expected one");
  }
  std::vector<Event> events;
  events.reserve(reader.records().size());
  for (std::string_view record : reader.records()) {
    DASPOS_ASSIGN_OR_RETURN(Event event, Event::FromRecord(record));
    events.push_back(std::move(event));
  }
  if (info_out != nullptr) *info_out = std::move(info);
  return events;
}

}  // namespace

Json DatasetInfo::ToJson() const {
  Json json = Json::Object();
  json["tier"] = std::string(TierName(tier));
  json["name"] = name;
  json["producer"] = producer;
  Json parent_list = Json::Array();
  for (const std::string& parent : parents) parent_list.push_back(parent);
  json["parents"] = std::move(parent_list);
  json["description"] = description;
  return json;
}

Result<DatasetInfo> DatasetInfo::FromJson(const Json& json) {
  DatasetInfo info;
  bool ok = false;
  // Prefer the schema field (authoritative); fall back to the tier name.
  if (json.Has("schema")) {
    info.tier = TierFromSchema(json.Get("schema").as_string(), &ok);
  }
  if (!ok) {
    std::string tier_name = json.Get("tier").as_string();
    for (DataTier tier :
         {DataTier::kGen, DataTier::kRaw, DataTier::kReco, DataTier::kAod,
          DataTier::kDerived}) {
      if (tier_name == TierName(tier)) {
        info.tier = tier;
        ok = true;
      }
    }
  }
  if (!ok) {
    return Status::Corruption("dataset metadata has unknown tier/schema");
  }
  info.name = json.Get("name").as_string();
  info.producer = json.Get("producer").as_string();
  const Json& parents = json.Get("parents");
  for (size_t i = 0; i < parents.size(); ++i) {
    info.parents.push_back(parents.at(i).as_string());
  }
  info.description = json.Get("description").as_string();
  return info;
}

std::string WriteGenDataset(const DatasetInfo& info,
                            const std::vector<GenEvent>& events) {
  return WriteDataset(info, events);
}
std::string WriteRawDataset(const DatasetInfo& info,
                            const std::vector<RawEvent>& events) {
  return WriteDataset(info, events);
}
std::string WriteRecoDataset(const DatasetInfo& info,
                             const std::vector<RecoEvent>& events) {
  return WriteDataset(info, events);
}
std::string WriteAodDataset(const DatasetInfo& info,
                            const std::vector<AodEvent>& events) {
  return WriteDataset(info, events);
}

Result<std::vector<GenEvent>> ReadGenDataset(std::string_view blob,
                                             DatasetInfo* info) {
  return ReadDataset<GenEvent>(blob, {DataTier::kGen}, info);
}
Result<std::vector<RawEvent>> ReadRawDataset(std::string_view blob,
                                             DatasetInfo* info) {
  return ReadDataset<RawEvent>(blob, {DataTier::kRaw}, info);
}
Result<std::vector<RecoEvent>> ReadRecoDataset(std::string_view blob,
                                               DatasetInfo* info) {
  return ReadDataset<RecoEvent>(blob, {DataTier::kReco}, info);
}
Result<std::vector<AodEvent>> ReadAodDataset(std::string_view blob,
                                             DatasetInfo* info) {
  // Derived datasets keep the AOD record layout.
  return ReadDataset<AodEvent>(blob, {DataTier::kAod, DataTier::kDerived},
                               info);
}

Result<DatasetInfo> ReadDatasetInfo(std::string_view blob) {
  DASPOS_ASSIGN_OR_RETURN(ContainerReader reader, ContainerReader::Open(blob));
  return DatasetInfo::FromJson(reader.metadata());
}

}  // namespace daspos
