#include "level2/display.h"

#include <cmath>

namespace daspos {
namespace level2 {

namespace {
/// Same curvature convention as the simulation: dphi = q*k*B*r/pt.
constexpr double kCurvature = 0.15;
}  // namespace

Scene BuildScene(const CommonEvent& event, const DisplayConfig& config) {
  Scene scene;
  scene.run = event.run;
  scene.event = event.event;
  scene.met = event.met;
  scene.met_phi = event.met_phi;

  for (const CommonTrack& track : event.tracks) {
    SceneTrack drawn;
    drawn.charge = track.charge;
    drawn.pt = track.pt;
    double pt = std::max(0.1, track.pt);
    for (int i = 0; i < config.samples_per_track; ++i) {
      double r = config.outer_radius_m * (i + 1) /
                 config.samples_per_track;
      double phi = track.phi +
                   track.charge * kCurvature * config.field_tesla * r / pt;
      ScenePoint point;
      point.x = r * std::cos(phi);
      point.y = r * std::sin(phi);
      point.z = r * std::sinh(track.eta);
      drawn.points.push_back(point);
    }
    scene.tracks.push_back(std::move(drawn));
  }

  for (const CommonObject& obj : event.objects) {
    SceneTower tower;
    tower.object_type = obj.type;
    tower.eta = obj.eta;
    tower.phi = obj.phi;
    // Logarithmic height so soft and hard objects both render.
    tower.height = 0.1 * std::log1p(obj.pt);
    scene.towers.push_back(std::move(tower));
  }
  return scene;
}

Json Scene::ToJson() const {
  Json json = Json::Object();
  json["run"] = run;
  json["event"] = event;
  Json track_list = Json::Array();
  for (const SceneTrack& track : tracks) {
    Json entry = Json::Object();
    entry["charge"] = track.charge;
    entry["pt"] = track.pt;
    Json points = Json::Array();
    for (const ScenePoint& point : track.points) {
      Json coordinates = Json::Array();
      coordinates.push_back(point.x);
      coordinates.push_back(point.y);
      coordinates.push_back(point.z);
      points.push_back(std::move(coordinates));
    }
    entry["points"] = std::move(points);
    track_list.push_back(std::move(entry));
  }
  json["tracks"] = std::move(track_list);
  Json tower_list = Json::Array();
  for (const SceneTower& tower : towers) {
    Json entry = Json::Object();
    entry["type"] = tower.object_type;
    entry["eta"] = tower.eta;
    entry["phi"] = tower.phi;
    entry["height"] = tower.height;
    tower_list.push_back(std::move(entry));
  }
  json["towers"] = std::move(tower_list);
  Json met_entry = Json::Object();
  met_entry["et"] = met;
  met_entry["phi"] = met_phi;
  json["met"] = std::move(met_entry);
  return json;
}

}  // namespace level2
}  // namespace daspos
