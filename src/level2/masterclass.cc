#include "level2/masterclass.h"

#include <cmath>

#include "event/fourvector.h"
#include "stats/fits.h"

namespace daspos {
namespace level2 {

namespace {

FourVector ObjectMomentum(const CommonObject& obj, double mass) {
  return FourVector::FromPtEtaPhiM(obj.pt, obj.eta, obj.phi, mass);
}

}  // namespace

bool MasterClassResult::ConsistentWithReference(double n_sigma) const {
  if (uncertainty <= 0.0) return false;
  return std::fabs(measured - reference) <= n_sigma * uncertainty;
}

Result<MasterClassResult> ZMassExercise(
    const std::vector<CommonEvent>& events) {
  MasterClassResult result;
  result.exercise = "Z mass";
  result.reference = 91.1876;
  result.histogram = Histo1D("/masterclass/z_mass", 60, 60.0, 120.0);

  for (const CommonEvent& event : events) {
    const CommonObject* best_plus = nullptr;
    const CommonObject* best_minus = nullptr;
    for (const CommonObject& obj : event.objects) {
      if (obj.type != "muon" || obj.pt < 20.0) continue;
      if (obj.charge > 0 && (best_plus == nullptr || obj.pt > best_plus->pt)) {
        best_plus = &obj;
      }
      if (obj.charge < 0 &&
          (best_minus == nullptr || obj.pt > best_minus->pt)) {
        best_minus = &obj;
      }
    }
    if (best_plus == nullptr || best_minus == nullptr) continue;
    double mass = InvariantMass(ObjectMomentum(*best_plus, 0.105),
                                ObjectMomentum(*best_minus, 0.105));
    result.histogram.Fill(mass);
  }
  if (result.histogram.Integral() < 20.0) {
    return Status::FailedPrecondition(
        "too few dimuon candidates for the Z exercise");
  }
  DASPOS_ASSIGN_OR_RETURN(PeakFit fit,
                          FitGaussianPeak(result.histogram, 91.0, 3.0));
  if (!fit.converged) {
    return Status::FailedPrecondition("Z mass fit did not converge");
  }
  result.measured = fit.mean;
  // Statistical error on the fitted mean ~ sigma / sqrt(N_peak).
  result.uncertainty =
      fit.sigma / std::sqrt(std::max(1.0, fit.amplitude));
  return result;
}

Result<MasterClassResult> WAsymmetryExercise(
    const std::vector<CommonEvent>& events) {
  MasterClassResult result;
  result.exercise = "W charge asymmetry";
  // (0.574 - 0.426) from the generator's W+/W- mix.
  result.reference = 0.148;
  result.histogram = Histo1D("/masterclass/w_lepton_charge", 2, -1.5, 1.5);

  double plus = 0.0;
  double minus = 0.0;
  for (const CommonEvent& event : events) {
    // Single-muon + MET signature.
    const CommonObject* muon = nullptr;
    int muons = 0;
    for (const CommonObject& obj : event.objects) {
      if (obj.type == "muon" && obj.pt > 20.0) {
        ++muons;
        muon = &obj;
      }
    }
    if (muons != 1 || event.met < 15.0) continue;
    result.histogram.Fill(muon->charge > 0 ? 1.0 : -1.0);
    if (muon->charge > 0) {
      plus += 1.0;
    } else {
      minus += 1.0;
    }
  }
  double total = plus + minus;
  if (total < 50.0) {
    return Status::FailedPrecondition(
        "too few W candidates for the asymmetry exercise");
  }
  result.measured = (plus - minus) / total;
  result.uncertainty = 2.0 * std::sqrt(plus * minus / total) / total;
  return result;
}

Result<MasterClassResult> HiggsDiphotonExercise(
    const std::vector<CommonEvent>& events) {
  MasterClassResult result;
  result.exercise = "H -> gamma gamma";
  result.reference = 125.25;
  result.histogram = Histo1D("/masterclass/diphoton_mass", 40, 105.0, 145.0);

  for (const CommonEvent& event : events) {
    const CommonObject* lead = nullptr;
    const CommonObject* sublead = nullptr;
    for (const CommonObject& obj : event.objects) {
      if (obj.type != "photon" || obj.pt < 20.0) continue;
      if (lead == nullptr || obj.pt > lead->pt) {
        sublead = lead;
        lead = &obj;
      } else if (sublead == nullptr || obj.pt > sublead->pt) {
        sublead = &obj;
      }
    }
    if (lead == nullptr || sublead == nullptr) continue;
    result.histogram.Fill(InvariantMass(ObjectMomentum(*lead, 0.0),
                                        ObjectMomentum(*sublead, 0.0)));
  }
  if (result.histogram.Integral() < 20.0) {
    return Status::FailedPrecondition(
        "too few diphoton candidates for the Higgs exercise");
  }
  DASPOS_ASSIGN_OR_RETURN(PeakFit fit,
                          FitGaussianPeak(result.histogram, 125.0, 2.0));
  if (!fit.converged) {
    return Status::FailedPrecondition("diphoton fit did not converge");
  }
  result.measured = fit.mean;
  result.uncertainty = fit.sigma / std::sqrt(std::max(1.0, fit.amplitude));
  return result;
}

Result<MasterClassResult> DLifetimeExercise(
    const std::vector<CommonEvent>& events, double reference_mean_d0_mm) {
  MasterClassResult result;
  result.exercise = "D lifetime";
  result.reference = reference_mean_d0_mm;
  result.histogram = Histo1D("/masterclass/track_d0", 40, 0.0, 0.8);

  double sum = 0.0;
  double sum2 = 0.0;
  uint64_t count = 0;
  for (const CommonEvent& event : events) {
    for (const CommonTrack& track : event.tracks) {
      if (track.pt < 0.8) continue;
      double d0 = std::fabs(track.d0_mm);
      result.histogram.Fill(d0);
      sum += d0;
      sum2 += d0 * d0;
      ++count;
    }
  }
  if (count < 50) {
    return Status::FailedPrecondition(
        "too few displaced tracks for the lifetime exercise");
  }
  result.measured = sum / static_cast<double>(count);
  double variance =
      sum2 / static_cast<double>(count) - result.measured * result.measured;
  result.uncertainty =
      std::sqrt(std::max(0.0, variance) / static_cast<double>(count));
  return result;
}

}  // namespace level2
}  // namespace daspos
