// The common simplified event format (§2.1): "a thin layer of software will
// convert data in a relatively low-level format ... into a simplified
// representation that can be used for further analysis or visualization".
// CommonEvent is that representation; every experiment dialect (dialects.h)
// converts to and from it losslessly for the fields it carries.
#ifndef DASPOS_LEVEL2_COMMON_H_
#define DASPOS_LEVEL2_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "event/aod.h"
#include "event/reco.h"
#include "serialize/json.h"
#include "support/result.h"

namespace daspos {
namespace level2 {

/// A simplified physics object ("electron", "muon", "photon", "jet").
struct CommonObject {
  std::string type;
  double pt = 0.0;
  double eta = 0.0;
  double phi = 0.0;
  int charge = 0;

  bool operator==(const CommonObject& other) const;
};

/// A simplified track (for event displays and the D-lifetime exercise).
struct CommonTrack {
  double pt = 0.0;
  double eta = 0.0;
  double phi = 0.0;
  int charge = 0;
  /// Transverse impact parameter, millimetres.
  double d0_mm = 0.0;

  bool operator==(const CommonTrack& other) const;
};

/// One outreach-format event.
struct CommonEvent {
  uint32_t run = 0;
  uint64_t event = 0;
  std::vector<CommonObject> objects;
  std::vector<CommonTrack> tracks;
  double met = 0.0;
  double met_phi = 0.0;

  bool operator==(const CommonEvent& other) const;

  /// From an AOD event (objects + MET; no tracks at this tier).
  static CommonEvent FromAod(const AodEvent& aod);
  /// From full reconstruction output (objects + MET + tracks).
  static CommonEvent FromReco(const RecoEvent& reco);

  /// The common JSON interchange document.
  Json ToJson() const;
  static Result<CommonEvent> FromJson(const Json& json);
};

}  // namespace level2
}  // namespace daspos

#endif  // DASPOS_LEVEL2_COMMON_H_
