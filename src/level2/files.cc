#include "level2/files.h"

#include <cctype>
#include <utility>

#include "serialize/binary.h"
#include "serialize/json.h"
#include "support/parallel.h"

namespace daspos {
namespace level2 {

namespace {

constexpr char kAtlasTerminator[] = "</JiveEvent>";

/// Per-event grain for parallel encode/decode: events are cheap enough that
/// tiny chunks would be all scheduling overhead.
constexpr size_t kEventGrain = 8;

/// One parallel decode slot; statuses are folded in event order afterwards,
/// so the first failing event wins exactly as in a serial loop.
struct DecodeSlot {
  Status status;
  CommonEvent event;
};

/// Decodes every frame on the pool and returns the events in frame order,
/// or the first (by input order) decode error.
Result<std::vector<CommonEvent>> DecodeFrames(
    const Level2Codec& codec, const std::vector<std::string_view>& frames,
    ThreadPool* pool) {
  std::vector<DecodeSlot> slots = ParallelMap<DecodeSlot>(
      pool, frames.size(),
      [&codec, &frames](size_t i) {
        DecodeSlot slot;
        auto decoded = codec.Decode(frames[i]);
        if (decoded.ok()) {
          slot.event = std::move(decoded).value();
        } else {
          slot.status = decoded.status();
        }
        return slot;
      },
      kEventGrain);
  std::vector<CommonEvent> events;
  events.reserve(slots.size());
  for (DecodeSlot& slot : slots) {
    DASPOS_RETURN_IF_ERROR(slot.status);
    events.push_back(std::move(slot.event));
  }
  return events;
}

/// Binary framing shared by the Alice/LHCb file conventions, with separate
/// magics so the files stay mutually unintelligible.
std::string WriteBinaryFile(const char* magic, const Level2Codec& codec,
                            const std::vector<CommonEvent>& events,
                            ThreadPool* pool) {
  std::vector<std::string> blobs = ParallelMap<std::string>(
      pool, events.size(),
      [&codec, &events](size_t i) { return codec.Encode(events[i]); },
      kEventGrain);
  BinaryWriter writer;
  size_t payload = 0;
  for (const std::string& blob : blobs) payload += blob.size() + 10;
  writer.Reserve(payload + 16);
  writer.PutRaw(std::string_view(magic, 4));
  writer.PutVarint(events.size());
  for (const std::string& blob : blobs) writer.PutString(blob);
  return writer.TakeBuffer();
}

Result<std::vector<CommonEvent>> ReadBinaryFile(const char* magic,
                                                const Level2Codec& codec,
                                                std::string_view bytes,
                                                ThreadPool* pool) {
  BinaryReader reader(bytes);
  DASPOS_ASSIGN_OR_RETURN(std::string file_magic, reader.GetRaw(4));
  if (file_magic != std::string_view(magic, 4)) {
    return Status::Corruption("wrong event-file magic");
  }
  DASPOS_ASSIGN_OR_RETURN(uint64_t count, reader.GetVarint());
  if (count > reader.remaining()) {
    return Status::Corruption("event count exceeds file size");
  }
  // Serial frame scan (the framing is sequential by nature), parallel
  // per-frame decode.
  std::vector<std::string_view> frames;
  frames.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    DASPOS_ASSIGN_OR_RETURN(uint64_t len, reader.GetVarint());
    if (reader.remaining() < len) {
      return Status::Corruption("truncated: string");
    }
    frames.push_back(bytes.substr(reader.position(), len));
    DASPOS_RETURN_IF_ERROR(reader.Skip(static_cast<size_t>(len)));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after event file");
  }
  return DecodeFrames(codec, frames, pool);
}

}  // namespace

std::string WriteEventFile(Experiment experiment,
                           const std::vector<CommonEvent>& events,
                           ThreadPool* pool) {
  const Level2Codec& codec = CodecFor(experiment);
  switch (experiment) {
    case Experiment::kAtlas: {
      // An XML event stream: concatenated standalone documents, encoded in
      // parallel and spliced in event order.
      std::vector<std::string> docs = ParallelMap<std::string>(
          pool, events.size(),
          [&codec, &events](size_t i) { return codec.Encode(events[i]); },
          kEventGrain);
      size_t total = 0;
      for (const std::string& doc : docs) total += doc.size();
      std::string out;
      out.reserve(total);
      for (const std::string& doc : docs) out += doc;
      return out;
    }
    case Experiment::kCms: {
      // One JSON file holding an array of ig documents.
      Json file = Json::Object();
      file["ig_file_version"] = 1;
      // Codec output is JSON text; encode and re-parse concurrently, then
      // nest structurally in event order.
      std::vector<Json> parsed_events = ParallelMap<Json>(
          pool, events.size(),
          [&codec, &events](size_t i) {
            auto parsed = Json::Parse(codec.Encode(events[i]));
            return std::move(parsed).value();
          },
          kEventGrain);
      Json event_list = Json::Array();
      for (Json& parsed : parsed_events) {
        event_list.push_back(std::move(parsed));
      }
      file["events"] = std::move(event_list);
      return file.Dump(1);
    }
    case Experiment::kAlice:
      return WriteBinaryFile("ALIF", codec, events, pool);
    case Experiment::kLhcb:
      return WriteBinaryFile("LHCF", codec, events, pool);
  }
  return {};
}

Result<std::vector<CommonEvent>> ReadEventFile(Experiment experiment,
                                               std::string_view bytes,
                                               ThreadPool* pool) {
  const Level2Codec& codec = CodecFor(experiment);
  switch (experiment) {
    case Experiment::kAtlas: {
      // Serial split on the document terminator, parallel per-doc decode.
      std::string data(bytes);
      std::vector<std::string_view> frames;
      size_t pos = 0;
      while (pos < data.size()) {
        size_t end = data.find(kAtlasTerminator, pos);
        if (end == std::string::npos) {
          // Only whitespace may remain.
          for (size_t i = pos; i < data.size(); ++i) {
            if (!std::isspace(static_cast<unsigned char>(data[i]))) {
              return Status::Corruption(
                  "trailing non-event content in XML stream");
            }
          }
          break;
        }
        size_t block_end = end + sizeof(kAtlasTerminator) - 1;
        frames.push_back(std::string_view(data).substr(pos, block_end - pos));
        pos = block_end;
      }
      if (frames.empty()) {
        return Status::Corruption("no events in XML stream");
      }
      return DecodeFrames(codec, frames, pool);
    }
    case Experiment::kCms: {
      DASPOS_ASSIGN_OR_RETURN(Json file, Json::Parse(bytes));
      if (!file.is_object() || !file.Has("ig_file_version")) {
        return Status::Corruption("not an ig event file");
      }
      const Json& event_list = file.Get("events");
      struct DecodeSlotLocal {
        Status status;
        CommonEvent event;
      };
      std::vector<DecodeSlotLocal> slots = ParallelMap<DecodeSlotLocal>(
          pool, event_list.size(),
          [&codec, &event_list](size_t i) {
            DecodeSlotLocal slot;
            auto decoded = codec.Decode(event_list.at(i).Dump());
            if (decoded.ok()) {
              slot.event = std::move(decoded).value();
            } else {
              slot.status = decoded.status();
            }
            return slot;
          },
          kEventGrain);
      std::vector<CommonEvent> events;
      events.reserve(slots.size());
      for (DecodeSlotLocal& slot : slots) {
        DASPOS_RETURN_IF_ERROR(slot.status);
        events.push_back(std::move(slot.event));
      }
      return events;
    }
    case Experiment::kAlice:
      return ReadBinaryFile("ALIF", codec, bytes, pool);
    case Experiment::kLhcb:
      return ReadBinaryFile("LHCF", codec, bytes, pool);
  }
  return Status::InvalidArgument("unknown experiment");
}

Result<std::string> ConvertEventFile(Experiment from, std::string_view bytes,
                                     Experiment to, ThreadPool* pool) {
  DASPOS_ASSIGN_OR_RETURN(std::vector<CommonEvent> events,
                          ReadEventFile(from, bytes, pool));
  return WriteEventFile(to, events, pool);
}

}  // namespace level2
}  // namespace daspos
