#include "level2/files.h"

#include <cctype>

#include "serialize/binary.h"
#include "serialize/json.h"

namespace daspos {
namespace level2 {

namespace {

constexpr char kAtlasTerminator[] = "</JiveEvent>";

/// Binary framing shared by the Alice/LHCb file conventions, with separate
/// magics so the files stay mutually unintelligible.
std::string WriteBinaryFile(const char* magic, const Level2Codec& codec,
                            const std::vector<CommonEvent>& events) {
  BinaryWriter writer;
  writer.PutRaw(std::string_view(magic, 4));
  writer.PutVarint(events.size());
  for (const CommonEvent& event : events) {
    writer.PutString(codec.Encode(event));
  }
  return writer.TakeBuffer();
}

Result<std::vector<CommonEvent>> ReadBinaryFile(const char* magic,
                                                const Level2Codec& codec,
                                                std::string_view bytes) {
  BinaryReader reader(bytes);
  DASPOS_ASSIGN_OR_RETURN(std::string file_magic, reader.GetRaw(4));
  if (file_magic != std::string_view(magic, 4)) {
    return Status::Corruption("wrong event-file magic");
  }
  DASPOS_ASSIGN_OR_RETURN(uint64_t count, reader.GetVarint());
  if (count > reader.remaining()) {
    return Status::Corruption("event count exceeds file size");
  }
  std::vector<CommonEvent> events;
  events.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    DASPOS_ASSIGN_OR_RETURN(std::string blob, reader.GetString());
    DASPOS_ASSIGN_OR_RETURN(CommonEvent event, codec.Decode(blob));
    events.push_back(std::move(event));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after event file");
  }
  return events;
}

}  // namespace

std::string WriteEventFile(Experiment experiment,
                           const std::vector<CommonEvent>& events) {
  const Level2Codec& codec = CodecFor(experiment);
  switch (experiment) {
    case Experiment::kAtlas: {
      // An XML event stream: concatenated standalone documents.
      std::string out;
      for (const CommonEvent& event : events) out += codec.Encode(event);
      return out;
    }
    case Experiment::kCms: {
      // One JSON file holding an array of ig documents.
      Json file = Json::Object();
      file["ig_file_version"] = 1;
      Json event_list = Json::Array();
      for (const CommonEvent& event : events) {
        // Codec output is JSON text; parse to nest it structurally.
        auto parsed = Json::Parse(codec.Encode(event));
        event_list.push_back(std::move(parsed).value());
      }
      file["events"] = std::move(event_list);
      return file.Dump(1);
    }
    case Experiment::kAlice:
      return WriteBinaryFile("ALIF", codec, events);
    case Experiment::kLhcb:
      return WriteBinaryFile("LHCF", codec, events);
  }
  return {};
}

Result<std::vector<CommonEvent>> ReadEventFile(Experiment experiment,
                                               std::string_view bytes) {
  const Level2Codec& codec = CodecFor(experiment);
  switch (experiment) {
    case Experiment::kAtlas: {
      std::vector<CommonEvent> events;
      size_t pos = 0;
      std::string data(bytes);
      while (pos < data.size()) {
        size_t end = data.find(kAtlasTerminator, pos);
        if (end == std::string::npos) {
          // Only whitespace may remain.
          for (size_t i = pos; i < data.size(); ++i) {
            if (!std::isspace(static_cast<unsigned char>(data[i]))) {
              return Status::Corruption(
                  "trailing non-event content in XML stream");
            }
          }
          break;
        }
        size_t block_end = end + sizeof(kAtlasTerminator) - 1;
        DASPOS_ASSIGN_OR_RETURN(
            CommonEvent event,
            codec.Decode(std::string_view(data).substr(pos, block_end - pos)));
        events.push_back(std::move(event));
        pos = block_end;
      }
      if (events.empty()) {
        return Status::Corruption("no events in XML stream");
      }
      return events;
    }
    case Experiment::kCms: {
      DASPOS_ASSIGN_OR_RETURN(Json file, Json::Parse(bytes));
      if (!file.is_object() || !file.Has("ig_file_version")) {
        return Status::Corruption("not an ig event file");
      }
      const Json& event_list = file.Get("events");
      std::vector<CommonEvent> events;
      events.reserve(event_list.size());
      for (size_t i = 0; i < event_list.size(); ++i) {
        DASPOS_ASSIGN_OR_RETURN(CommonEvent event,
                                codec.Decode(event_list.at(i).Dump()));
        events.push_back(std::move(event));
      }
      return events;
    }
    case Experiment::kAlice:
      return ReadBinaryFile("ALIF", codec, bytes);
    case Experiment::kLhcb:
      return ReadBinaryFile("LHCF", codec, bytes);
  }
  return Status::InvalidArgument("unknown experiment");
}

Result<std::string> ConvertEventFile(Experiment from, std::string_view bytes,
                                     Experiment to) {
  DASPOS_ASSIGN_OR_RETURN(std::vector<CommonEvent> events,
                          ReadEventFile(from, bytes));
  return WriteEventFile(to, events);
}

}  // namespace level2
}  // namespace daspos
