#include "level2/dialects.h"

#include <cstdio>
#include <map>

#include "serialize/binary.h"
#include "support/strings.h"

namespace daspos {
namespace level2 {

namespace {

std::string FormatAttr(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// ------------------------------------------------------------ Atlas (XML)

/// Minimal XML attribute scanner for the JiveXML-like dialect. Handles the
/// subset this codec emits: elements with double-quoted attributes, no
/// nested text content.
class XmlScanner {
 public:
  explicit XmlScanner(std::string_view text) : text_(text) {}

  /// Advances to the next element start tag; returns its name, or empty at
  /// end of input. Attribute map is produced as a side effect.
  Result<std::string> NextElement() {
    attributes_.clear();
    size_t open = text_.find('<', pos_);
    if (open == std::string_view::npos) return std::string();
    size_t cursor = open + 1;
    if (cursor < text_.size() && text_[cursor] == '/') {
      // Closing tag: skip it and recurse.
      size_t close = text_.find('>', cursor);
      if (close == std::string_view::npos) {
        return Status::Corruption("unterminated closing tag");
      }
      pos_ = close + 1;
      return NextElement();
    }
    size_t name_end = cursor;
    while (name_end < text_.size() && !std::isspace(static_cast<unsigned char>(text_[name_end])) &&
           text_[name_end] != '>' && text_[name_end] != '/') {
      ++name_end;
    }
    std::string name(text_.substr(cursor, name_end - cursor));
    cursor = name_end;
    // Parse attributes until '>' or '/>'.
    while (cursor < text_.size()) {
      while (cursor < text_.size() &&
             std::isspace(static_cast<unsigned char>(text_[cursor]))) {
        ++cursor;
      }
      if (cursor >= text_.size()) {
        return Status::Corruption("unterminated element " + name);
      }
      if (text_[cursor] == '>' ) {
        pos_ = cursor + 1;
        return name;
      }
      if (text_[cursor] == '/' || text_[cursor] == '?') {
        size_t close = text_.find('>', cursor);
        if (close == std::string_view::npos) {
          return Status::Corruption("unterminated element " + name);
        }
        pos_ = close + 1;
        return name;
      }
      size_t eq = text_.find('=', cursor);
      if (eq == std::string_view::npos) {
        return Status::Corruption("attribute without '=' in " + name);
      }
      std::string key(Trim(text_.substr(cursor, eq - cursor)));
      size_t quote_open = text_.find('"', eq);
      if (quote_open == std::string_view::npos) {
        return Status::Corruption("attribute without value in " + name);
      }
      size_t quote_close = text_.find('"', quote_open + 1);
      if (quote_close == std::string_view::npos) {
        return Status::Corruption("unterminated attribute in " + name);
      }
      attributes_[key] =
          std::string(text_.substr(quote_open + 1, quote_close - quote_open - 1));
      cursor = quote_close + 1;
    }
    return Status::Corruption("unterminated element " + name);
  }

  Result<double> Attr(const std::string& key) const {
    auto it = attributes_.find(key);
    if (it == attributes_.end()) {
      return Status::Corruption("missing attribute '" + key + "'");
    }
    return ParseDouble(it->second);
  }
  Result<std::string> StringAttr(const std::string& key) const {
    auto it = attributes_.find(key);
    if (it == attributes_.end()) {
      return Status::Corruption("missing attribute '" + key + "'");
    }
    return it->second;
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
  std::map<std::string, std::string> attributes_;
};

class AtlasCodec : public Level2Codec {
 public:
  Experiment experiment() const override { return Experiment::kAtlas; }
  std::string FormatName() const override { return "JiveXML-like (XML)"; }
  bool SelfDocumenting() const override { return true; }

  std::string Encode(const CommonEvent& event) const override {
    std::string out = "<?xml version=\"1.0\"?>\n";
    out += "<JiveEvent run=\"" + std::to_string(event.run) + "\" event=\"" +
           std::to_string(event.event) + "\">\n";
    for (const CommonObject& obj : event.objects) {
      out += "  <Object type=\"" + obj.type + "\" pt=\"" +
             FormatAttr(obj.pt) + "\" eta=\"" + FormatAttr(obj.eta) +
             "\" phi=\"" + FormatAttr(obj.phi) + "\" charge=\"" +
             std::to_string(obj.charge) + "\"/>\n";
    }
    for (const CommonTrack& track : event.tracks) {
      out += "  <Track pt=\"" + FormatAttr(track.pt) + "\" eta=\"" +
             FormatAttr(track.eta) + "\" phi=\"" + FormatAttr(track.phi) +
             "\" charge=\"" + std::to_string(track.charge) + "\" d0=\"" +
             FormatAttr(track.d0_mm) + "\"/>\n";
    }
    out += "  <MissingET et=\"" + FormatAttr(event.met) + "\" phi=\"" +
           FormatAttr(event.met_phi) + "\"/>\n";
    out += "</JiveEvent>\n";
    return out;
  }

  Result<CommonEvent> Decode(std::string_view bytes) const override {
    XmlScanner scanner(bytes);
    CommonEvent event;
    bool saw_root = false;
    for (;;) {
      DASPOS_ASSIGN_OR_RETURN(std::string element, scanner.NextElement());
      if (element.empty()) break;
      if (element == "?xml") continue;
      if (element == "JiveEvent") {
        DASPOS_ASSIGN_OR_RETURN(double run, scanner.Attr("run"));
        DASPOS_ASSIGN_OR_RETURN(double number, scanner.Attr("event"));
        event.run = static_cast<uint32_t>(run);
        event.event = static_cast<uint64_t>(number);
        saw_root = true;
      } else if (element == "Object") {
        CommonObject obj;
        DASPOS_ASSIGN_OR_RETURN(obj.type, scanner.StringAttr("type"));
        DASPOS_ASSIGN_OR_RETURN(obj.pt, scanner.Attr("pt"));
        DASPOS_ASSIGN_OR_RETURN(obj.eta, scanner.Attr("eta"));
        DASPOS_ASSIGN_OR_RETURN(obj.phi, scanner.Attr("phi"));
        DASPOS_ASSIGN_OR_RETURN(double charge, scanner.Attr("charge"));
        obj.charge = static_cast<int>(charge);
        event.objects.push_back(std::move(obj));
      } else if (element == "Track") {
        CommonTrack track;
        DASPOS_ASSIGN_OR_RETURN(track.pt, scanner.Attr("pt"));
        DASPOS_ASSIGN_OR_RETURN(track.eta, scanner.Attr("eta"));
        DASPOS_ASSIGN_OR_RETURN(track.phi, scanner.Attr("phi"));
        DASPOS_ASSIGN_OR_RETURN(double charge, scanner.Attr("charge"));
        track.charge = static_cast<int>(charge);
        DASPOS_ASSIGN_OR_RETURN(track.d0_mm, scanner.Attr("d0"));
        event.tracks.push_back(track);
      } else if (element == "MissingET") {
        DASPOS_ASSIGN_OR_RETURN(event.met, scanner.Attr("et"));
        DASPOS_ASSIGN_OR_RETURN(event.met_phi, scanner.Attr("phi"));
      } else {
        return Status::Corruption("unexpected element <" + element + ">");
      }
    }
    if (!saw_root) {
      return Status::Corruption("not a JiveEvent document");
    }
    return event;
  }
};

// --------------------------------------------------------------- CMS (ig)

class CmsCodec : public Level2Codec {
 public:
  Experiment experiment() const override { return Experiment::kCms; }
  std::string FormatName() const override { return "ig-like (JSON)"; }
  bool SelfDocumenting() const override { return true; }

  std::string Encode(const CommonEvent& event) const override {
    Json json = Json::Object();
    json["ig_version"] = 1;
    json["run"] = event.run;
    json["event"] = event.event;
    Json collections = Json::Object();
    Json objects = Json::Array();
    for (const CommonObject& obj : event.objects) {
      Json row = Json::Array();
      row.push_back(obj.type);
      row.push_back(obj.pt);
      row.push_back(obj.eta);
      row.push_back(obj.phi);
      row.push_back(obj.charge);
      objects.push_back(std::move(row));
    }
    collections["PhysicsObjects_V1"] = std::move(objects);
    Json tracks = Json::Array();
    for (const CommonTrack& track : event.tracks) {
      Json row = Json::Array();
      row.push_back(track.pt);
      row.push_back(track.eta);
      row.push_back(track.phi);
      row.push_back(track.charge);
      row.push_back(track.d0_mm);
      tracks.push_back(std::move(row));
    }
    collections["Tracks_V1"] = std::move(tracks);
    Json met = Json::Array();
    Json met_row = Json::Array();
    met_row.push_back(event.met);
    met_row.push_back(event.met_phi);
    met.push_back(std::move(met_row));
    collections["MET_V1"] = std::move(met);
    json["Collections"] = std::move(collections);
    // Self-description block (the "ig-specs" of Table 1).
    Json types = Json::Object();
    types["PhysicsObjects_V1"] = "type, pt, eta, phi, charge";
    types["Tracks_V1"] = "pt, eta, phi, charge, d0_mm";
    types["MET_V1"] = "et, phi";
    json["Types"] = std::move(types);
    return json.Dump(1);
  }

  Result<CommonEvent> Decode(std::string_view bytes) const override {
    DASPOS_ASSIGN_OR_RETURN(Json json, Json::Parse(bytes));
    if (!json.is_object() || !json.Has("ig_version") ||
        !json.Has("Collections")) {
      return Status::Corruption("not an ig document");
    }
    CommonEvent event;
    event.run = static_cast<uint32_t>(json.Get("run").as_int());
    event.event = static_cast<uint64_t>(json.Get("event").as_int());
    const Json& collections = json.Get("Collections");
    const Json& objects = collections.Get("PhysicsObjects_V1");
    for (size_t i = 0; i < objects.size(); ++i) {
      const Json& row = objects.at(i);
      if (row.size() != 5) return Status::Corruption("bad object row");
      CommonObject obj;
      obj.type = row.at(0).as_string();
      obj.pt = row.at(1).as_number();
      obj.eta = row.at(2).as_number();
      obj.phi = row.at(3).as_number();
      obj.charge = static_cast<int>(row.at(4).as_int());
      event.objects.push_back(std::move(obj));
    }
    const Json& tracks = collections.Get("Tracks_V1");
    for (size_t i = 0; i < tracks.size(); ++i) {
      const Json& row = tracks.at(i);
      if (row.size() != 5) return Status::Corruption("bad track row");
      CommonTrack track;
      track.pt = row.at(0).as_number();
      track.eta = row.at(1).as_number();
      track.phi = row.at(2).as_number();
      track.charge = static_cast<int>(row.at(3).as_int());
      track.d0_mm = row.at(4).as_number();
      event.tracks.push_back(track);
    }
    const Json& met = collections.Get("MET_V1");
    if (met.size() == 1 && met.at(0).size() == 2) {
      event.met = met.at(0).at(0).as_number();
      event.met_phi = met.at(0).at(1).as_number();
    }
    return event;
  }
};

// ---------------------------------------------------- Alice/LHCb (binary)

uint8_t TypeToByte(const std::string& type) {
  if (type == "electron") return 0;
  if (type == "muon") return 1;
  if (type == "photon") return 2;
  if (type == "jet") return 3;
  return 255;
}

std::string ByteToType(uint8_t byte) {
  switch (byte) {
    case 0:
      return "electron";
    case 1:
      return "muon";
    case 2:
      return "photon";
    case 3:
      return "jet";
    default:
      return "unknown";
  }
}

class AliceCodec : public Level2Codec {
 public:
  Experiment experiment() const override { return Experiment::kAlice; }
  std::string FormatName() const override { return "Root-like binary (ALI1)"; }
  bool SelfDocumenting() const override { return false; }

  std::string Encode(const CommonEvent& event) const override {
    BinaryWriter w;
    w.PutRaw("ALI1");
    w.PutU32(event.run);
    w.PutVarint(event.event);
    w.PutVarint(event.objects.size());
    for (const CommonObject& obj : event.objects) {
      w.PutU8(TypeToByte(obj.type));
      w.PutDouble(obj.pt);
      w.PutDouble(obj.eta);
      w.PutDouble(obj.phi);
      w.PutSVarint(obj.charge);
    }
    w.PutVarint(event.tracks.size());
    for (const CommonTrack& track : event.tracks) {
      w.PutDouble(track.pt);
      w.PutDouble(track.eta);
      w.PutDouble(track.phi);
      w.PutSVarint(track.charge);
      w.PutDouble(track.d0_mm);
    }
    w.PutDouble(event.met);
    w.PutDouble(event.met_phi);
    return w.TakeBuffer();
  }

  Result<CommonEvent> Decode(std::string_view bytes) const override {
    BinaryReader r(bytes);
    DASPOS_ASSIGN_OR_RETURN(std::string magic, r.GetRaw(4));
    if (magic != "ALI1") return Status::Corruption("not an ALI1 document");
    CommonEvent event;
    DASPOS_ASSIGN_OR_RETURN(event.run, r.GetU32());
    DASPOS_ASSIGN_OR_RETURN(event.event, r.GetVarint());
    DASPOS_ASSIGN_OR_RETURN(uint64_t n_objects, r.GetVarint());
    for (uint64_t i = 0; i < n_objects; ++i) {
      CommonObject obj;
      DASPOS_ASSIGN_OR_RETURN(uint8_t type, r.GetU8());
      obj.type = ByteToType(type);
      DASPOS_ASSIGN_OR_RETURN(obj.pt, r.GetDouble());
      DASPOS_ASSIGN_OR_RETURN(obj.eta, r.GetDouble());
      DASPOS_ASSIGN_OR_RETURN(obj.phi, r.GetDouble());
      DASPOS_ASSIGN_OR_RETURN(int64_t charge, r.GetSVarint());
      obj.charge = static_cast<int>(charge);
      event.objects.push_back(std::move(obj));
    }
    DASPOS_ASSIGN_OR_RETURN(uint64_t n_tracks, r.GetVarint());
    for (uint64_t i = 0; i < n_tracks; ++i) {
      CommonTrack track;
      DASPOS_ASSIGN_OR_RETURN(track.pt, r.GetDouble());
      DASPOS_ASSIGN_OR_RETURN(track.eta, r.GetDouble());
      DASPOS_ASSIGN_OR_RETURN(track.phi, r.GetDouble());
      DASPOS_ASSIGN_OR_RETURN(int64_t charge, r.GetSVarint());
      track.charge = static_cast<int>(charge);
      DASPOS_ASSIGN_OR_RETURN(track.d0_mm, r.GetDouble());
      event.tracks.push_back(track);
    }
    DASPOS_ASSIGN_OR_RETURN(event.met, r.GetDouble());
    DASPOS_ASSIGN_OR_RETURN(event.met_phi, r.GetDouble());
    if (!r.AtEnd()) return Status::Corruption("trailing bytes in ALI1");
    return event;
  }
};

class LhcbCodec : public Level2Codec {
 public:
  Experiment experiment() const override { return Experiment::kLhcb; }
  std::string FormatName() const override { return "Root-like binary (LHCB)"; }
  bool SelfDocumenting() const override { return false; }

  // Different layout: magic, MET first, event number before run, tracks
  // before objects, and per-record field order rotated.
  std::string Encode(const CommonEvent& event) const override {
    BinaryWriter w;
    w.PutRaw("LHCB");
    w.PutDouble(event.met);
    w.PutDouble(event.met_phi);
    w.PutVarint(event.event);
    w.PutU32(event.run);
    w.PutVarint(event.tracks.size());
    for (const CommonTrack& track : event.tracks) {
      w.PutDouble(track.eta);
      w.PutDouble(track.phi);
      w.PutDouble(track.pt);
      w.PutDouble(track.d0_mm);
      w.PutSVarint(track.charge);
    }
    w.PutVarint(event.objects.size());
    for (const CommonObject& obj : event.objects) {
      w.PutString(obj.type);
      w.PutDouble(obj.eta);
      w.PutDouble(obj.phi);
      w.PutDouble(obj.pt);
      w.PutSVarint(obj.charge);
    }
    return w.TakeBuffer();
  }

  Result<CommonEvent> Decode(std::string_view bytes) const override {
    BinaryReader r(bytes);
    DASPOS_ASSIGN_OR_RETURN(std::string magic, r.GetRaw(4));
    if (magic != "LHCB") return Status::Corruption("not an LHCB document");
    CommonEvent event;
    DASPOS_ASSIGN_OR_RETURN(event.met, r.GetDouble());
    DASPOS_ASSIGN_OR_RETURN(event.met_phi, r.GetDouble());
    DASPOS_ASSIGN_OR_RETURN(event.event, r.GetVarint());
    DASPOS_ASSIGN_OR_RETURN(event.run, r.GetU32());
    DASPOS_ASSIGN_OR_RETURN(uint64_t n_tracks, r.GetVarint());
    for (uint64_t i = 0; i < n_tracks; ++i) {
      CommonTrack track;
      DASPOS_ASSIGN_OR_RETURN(track.eta, r.GetDouble());
      DASPOS_ASSIGN_OR_RETURN(track.phi, r.GetDouble());
      DASPOS_ASSIGN_OR_RETURN(track.pt, r.GetDouble());
      DASPOS_ASSIGN_OR_RETURN(track.d0_mm, r.GetDouble());
      DASPOS_ASSIGN_OR_RETURN(int64_t charge, r.GetSVarint());
      track.charge = static_cast<int>(charge);
      event.tracks.push_back(track);
    }
    DASPOS_ASSIGN_OR_RETURN(uint64_t n_objects, r.GetVarint());
    for (uint64_t i = 0; i < n_objects; ++i) {
      CommonObject obj;
      DASPOS_ASSIGN_OR_RETURN(obj.type, r.GetString());
      DASPOS_ASSIGN_OR_RETURN(obj.eta, r.GetDouble());
      DASPOS_ASSIGN_OR_RETURN(obj.phi, r.GetDouble());
      DASPOS_ASSIGN_OR_RETURN(obj.pt, r.GetDouble());
      DASPOS_ASSIGN_OR_RETURN(int64_t charge, r.GetSVarint());
      obj.charge = static_cast<int>(charge);
      event.objects.push_back(std::move(obj));
    }
    if (!r.AtEnd()) return Status::Corruption("trailing bytes in LHCB");
    return event;
  }
};

}  // namespace

const Level2Codec& CodecFor(Experiment experiment) {
  static const AliceCodec alice;
  static const AtlasCodec atlas;
  static const CmsCodec cms;
  static const LhcbCodec lhcb;
  switch (experiment) {
    case Experiment::kAlice:
      return alice;
    case Experiment::kAtlas:
      return atlas;
    case Experiment::kCms:
      return cms;
    case Experiment::kLhcb:
      return lhcb;
  }
  return atlas;
}

Result<std::string> ConvertBetween(Experiment from, std::string_view bytes,
                                   Experiment to) {
  DASPOS_ASSIGN_OR_RETURN(CommonEvent event, CodecFor(from).Decode(bytes));
  return CodecFor(to).Encode(event);
}

bool DecodableAs(Experiment experiment, std::string_view bytes) {
  return CodecFor(experiment).Decode(bytes).ok();
}

}  // namespace level2
}  // namespace daspos
