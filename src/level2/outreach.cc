#include "level2/outreach.h"

namespace daspos {
namespace level2 {

std::vector<OutreachProfile> AllOutreachProfiles() {
  std::vector<OutreachProfile> profiles;

  OutreachProfile alice;
  alice.experiment = Experiment::kAlice;
  alice.event_display = "Root-based display";
  alice.geometry_format = "Root";
  alice.analysis_tools = "X/Root-based browser";
  alice.master_class_uses = "V0 decays, general tracks";
  alice.comments = "Root too heavy for classroom use";

  OutreachProfile atlas;
  atlas.experiment = Experiment::kAtlas;
  atlas.event_display = "ATLANTIS, VP1 (Java-based)";
  atlas.geometry_format = "XML, full geometry";
  atlas.analysis_tools = "MINERVA, HYPATIA, LPPP, CAMELIA";
  atlas.master_class_uses = "W, Z, Higgs with large MC samples";

  OutreachProfile cms;
  cms.experiment = Experiment::kCms;
  cms.event_display = "iSpy";
  cms.geometry_format = "XML/JSON";
  cms.analysis_tools = "JavaScript-based tools";
  cms.master_class_uses = "W, Z, Higgs; different datasets, less MC";

  OutreachProfile lhcb;
  lhcb.experiment = Experiment::kLhcb;
  lhcb.event_display = "Panoramix (OpenInventor)";
  lhcb.geometry_format = "XML";
  lhcb.analysis_tools = "X-based tools";
  lhcb.master_class_uses = "D lifetime";

  for (OutreachProfile profile : {alice, atlas, cms, lhcb}) {
    const Level2Codec& codec = CodecFor(profile.experiment);
    profile.data_format = codec.FormatName();
    profile.self_documenting = codec.SelfDocumenting();
    profiles.push_back(std::move(profile));
  }
  return profiles;
}

}  // namespace level2
}  // namespace daspos
