// Multi-event Level-2 files: outreach datasets are distributed as files of
// many events, in each experiment's own container convention — concatenated
// XML documents (Atlas), a JSON array file (CMS), and count-prefixed binary
// framings (Alice, LHCb). Conversion between file dialects goes through the
// common format, event by event, exactly like single events.
#ifndef DASPOS_LEVEL2_FILES_H_
#define DASPOS_LEVEL2_FILES_H_

#include <string>
#include <vector>

#include "level2/dialects.h"

namespace daspos {

class ThreadPool;

namespace level2 {

/// Writes `events` as one file in `experiment`'s dialect. With a pool the
/// per-event encodes run concurrently and concatenate in event order, so the
/// file is byte-identical to the serial write.
std::string WriteEventFile(Experiment experiment,
                           const std::vector<CommonEvent>& events,
                           ThreadPool* pool = nullptr);

/// Reads a dialect file back into common events. Frame splitting is serial
/// (it walks the container structure); per-event decodes run on the pool.
Result<std::vector<CommonEvent>> ReadEventFile(Experiment experiment,
                                               std::string_view bytes,
                                               ThreadPool* pool = nullptr);

/// Converts a whole file between dialects via the common format.
Result<std::string> ConvertEventFile(Experiment from, std::string_view bytes,
                                     Experiment to,
                                     ThreadPool* pool = nullptr);

}  // namespace level2
}  // namespace daspos

#endif  // DASPOS_LEVEL2_FILES_H_
