// Master-class exercises: the guided analyses of Table 1's "Master Class
// uses" row (W, Z, Higgs, D lifetime), implemented over the common Level-2
// format so any experiment's converted data can drive any exercise — the
// cross-experiment comparison §2.1 motivates.
#ifndef DASPOS_LEVEL2_MASTERCLASS_H_
#define DASPOS_LEVEL2_MASTERCLASS_H_

#include <string>
#include <vector>

#include "hist/histo1d.h"
#include "level2/common.h"
#include "support/result.h"

namespace daspos {
namespace level2 {

/// Outcome of one exercise.
struct MasterClassResult {
  std::string exercise;
  /// The measured quantity and its statistical uncertainty.
  double measured = 0.0;
  double uncertainty = 0.0;
  /// The textbook reference value the students compare against.
  double reference = 0.0;
  /// The spectrum the students look at.
  Histo1D histogram;

  /// |measured - reference| within n_sigma uncertainties.
  bool ConsistentWithReference(double n_sigma = 3.0) const;
};

/// Z-mass measurement: opposite-charge dimuon mass peak, Gaussian+linear
/// fit. Needs events with >= 2 muons.
Result<MasterClassResult> ZMassExercise(
    const std::vector<CommonEvent>& events);

/// W charge asymmetry: (N(mu+) - N(mu-)) / total in single-muon + MET
/// events. Reference reflects the LHC production asymmetry.
Result<MasterClassResult> WAsymmetryExercise(
    const std::vector<CommonEvent>& events);

/// H -> gamma gamma: diphoton mass peak over background, sideband-
/// subtracted yield and fitted mass.
Result<MasterClassResult> HiggsDiphotonExercise(
    const std::vector<CommonEvent>& events);

/// D-meson lifetime: exponential fit to the impact-parameter spectrum of
/// displaced two-track candidates. `reference_mean_d0_mm` is the expected
/// mean |d0| for the known lifetime in this detector.
Result<MasterClassResult> DLifetimeExercise(
    const std::vector<CommonEvent>& events, double reference_mean_d0_mm);

}  // namespace level2
}  // namespace daspos

#endif  // DASPOS_LEVEL2_MASTERCLASS_H_
