#include "level2/common.h"

#include <cmath>

namespace daspos {
namespace level2 {

namespace {
bool Near(double a, double b) { return std::fabs(a - b) < 1e-9; }
}  // namespace

bool CommonObject::operator==(const CommonObject& other) const {
  return type == other.type && Near(pt, other.pt) && Near(eta, other.eta) &&
         Near(phi, other.phi) && charge == other.charge;
}

bool CommonTrack::operator==(const CommonTrack& other) const {
  return Near(pt, other.pt) && Near(eta, other.eta) && Near(phi, other.phi) &&
         charge == other.charge && Near(d0_mm, other.d0_mm);
}

bool CommonEvent::operator==(const CommonEvent& other) const {
  return run == other.run && event == other.event &&
         objects == other.objects && tracks == other.tracks &&
         Near(met, other.met) && Near(met_phi, other.met_phi);
}

CommonEvent CommonEvent::FromAod(const AodEvent& aod) {
  CommonEvent out;
  out.run = aod.run_number;
  out.event = aod.event_number;
  for (const PhysicsObject& obj : aod.objects) {
    if (obj.type == ObjectType::kMet) {
      out.met = obj.momentum.Pt();
      out.met_phi = obj.momentum.Phi();
      continue;
    }
    CommonObject common;
    common.type = std::string(ObjectTypeName(obj.type));
    common.pt = obj.momentum.Pt();
    common.eta = obj.momentum.Eta();
    common.phi = obj.momentum.Phi();
    common.charge = obj.charge;
    out.objects.push_back(std::move(common));
  }
  return out;
}

CommonEvent CommonEvent::FromReco(const RecoEvent& reco) {
  CommonEvent out = FromAod(AodEvent::FromReco(reco));
  for (const Track& track : reco.tracks) {
    CommonTrack common;
    common.pt = track.momentum.Pt();
    common.eta = track.momentum.Eta();
    common.phi = track.momentum.Phi();
    common.charge = track.charge;
    common.d0_mm = track.d0_mm;
    out.tracks.push_back(common);
  }
  return out;
}

Json CommonEvent::ToJson() const {
  Json json = Json::Object();
  json["format"] = "daspos-common-l2";
  json["version"] = 1;
  json["run"] = run;
  json["event"] = event;
  Json object_list = Json::Array();
  for (const CommonObject& obj : objects) {
    Json entry = Json::Object();
    entry["type"] = obj.type;
    entry["pt"] = obj.pt;
    entry["eta"] = obj.eta;
    entry["phi"] = obj.phi;
    entry["charge"] = obj.charge;
    object_list.push_back(std::move(entry));
  }
  json["objects"] = std::move(object_list);
  Json track_list = Json::Array();
  for (const CommonTrack& track : tracks) {
    Json entry = Json::Object();
    entry["pt"] = track.pt;
    entry["eta"] = track.eta;
    entry["phi"] = track.phi;
    entry["charge"] = track.charge;
    entry["d0_mm"] = track.d0_mm;
    track_list.push_back(std::move(entry));
  }
  json["tracks"] = std::move(track_list);
  Json met_obj = Json::Object();
  met_obj["et"] = met;
  met_obj["phi"] = met_phi;
  json["met"] = std::move(met_obj);
  return json;
}

Result<CommonEvent> CommonEvent::FromJson(const Json& json) {
  if (!json.is_object() ||
      json.Get("format").as_string() != "daspos-common-l2") {
    return Status::Corruption("not a daspos-common-l2 document");
  }
  CommonEvent out;
  out.run = static_cast<uint32_t>(json.Get("run").as_int());
  out.event = static_cast<uint64_t>(json.Get("event").as_int());
  const Json& objects = json.Get("objects");
  for (size_t i = 0; i < objects.size(); ++i) {
    const Json& entry = objects.at(i);
    CommonObject obj;
    obj.type = entry.Get("type").as_string();
    obj.pt = entry.Get("pt").as_number();
    obj.eta = entry.Get("eta").as_number();
    obj.phi = entry.Get("phi").as_number();
    obj.charge = static_cast<int>(entry.Get("charge").as_int());
    out.objects.push_back(std::move(obj));
  }
  const Json& tracks = json.Get("tracks");
  for (size_t i = 0; i < tracks.size(); ++i) {
    const Json& entry = tracks.at(i);
    CommonTrack track;
    track.pt = entry.Get("pt").as_number();
    track.eta = entry.Get("eta").as_number();
    track.phi = entry.Get("phi").as_number();
    track.charge = static_cast<int>(entry.Get("charge").as_int());
    track.d0_mm = entry.Get("d0_mm").as_number();
    out.tracks.push_back(track);
  }
  const Json& met = json.Get("met");
  out.met = met.Get("et").as_number();
  out.met_phi = met.Get("phi").as_number();
  return out;
}

}  // namespace level2
}  // namespace daspos
