// The four experiment Level-2 dialects of Table 1, implemented as real,
// mutually incompatible codecs:
//   Atlas -> JiveXML-like XML text (self-documenting),
//   CMS   -> "ig"-like JSON (self-documenting),
//   Alice -> Root-like tagged binary,
//   LHCb  -> Root-like binary with a different layout.
// Direct exchange between dialects is impossible; every pair interoperates
// only through the common format (common.h) — the "converter" architecture
// §2.1 proposes.
#ifndef DASPOS_LEVEL2_DIALECTS_H_
#define DASPOS_LEVEL2_DIALECTS_H_

#include <memory>
#include <string>

#include "event/experiment.h"
#include "level2/common.h"
#include "support/result.h"

namespace daspos {
namespace level2 {

class Level2Codec {
 public:
  virtual ~Level2Codec() = default;

  virtual Experiment experiment() const = 0;
  /// Format label as it appears in the Table 1 regeneration.
  virtual std::string FormatName() const = 0;
  /// Whether the format carries its own description (Table 1 row
  /// "self-documenting?"): text formats with named fields are; positional
  /// binary layouts are not.
  virtual bool SelfDocumenting() const = 0;

  virtual std::string Encode(const CommonEvent& event) const = 0;
  virtual Result<CommonEvent> Decode(std::string_view bytes) const = 0;
};

/// The codec for one experiment's dialect (process-lifetime singletons).
const Level2Codec& CodecFor(Experiment experiment);

/// Converts an event document between dialects via the common format.
Result<std::string> ConvertBetween(Experiment from, std::string_view bytes,
                                   Experiment to);

/// True if `bytes` decodes under `experiment`'s dialect — used to build the
/// E1 interoperability matrix (dialects reject each other's documents).
bool DecodableAs(Experiment experiment, std::string_view bytes);

}  // namespace level2
}  // namespace daspos

#endif  // DASPOS_LEVEL2_DIALECTS_H_
