// Per-experiment outreach profiles: the descriptive content of the paper's
// Table 1 bound to the actually-implemented dialects, so the E1 bench
// regenerates the table from live objects instead of hard-coded prose.
#ifndef DASPOS_LEVEL2_OUTREACH_H_
#define DASPOS_LEVEL2_OUTREACH_H_

#include <string>
#include <vector>

#include "event/experiment.h"
#include "level2/dialects.h"

namespace daspos {
namespace level2 {

/// One column of Table 1.
struct OutreachProfile {
  Experiment experiment;
  std::string event_display;
  std::string geometry_format;
  std::string analysis_tools;
  /// Data format label — taken live from the implemented codec.
  std::string data_format;
  bool self_documenting = false;
  std::string master_class_uses;
  std::string comments;
};

/// The four profiles, Table 1 order (Alice, Atlas, CMS, LHCb).
std::vector<OutreachProfile> AllOutreachProfiles();

}  // namespace level2
}  // namespace daspos

#endif  // DASPOS_LEVEL2_OUTREACH_H_
