// Event-display scene model: turns a CommonEvent into drawable geometry
// (helix polylines for tracks, towers for calorimeter objects, an arrow for
// MET) serialized as JSON — the "common event display" consuming the common
// format that §2.1 proposes.
#ifndef DASPOS_LEVEL2_DISPLAY_H_
#define DASPOS_LEVEL2_DISPLAY_H_

#include <string>
#include <vector>

#include "level2/common.h"
#include "serialize/json.h"

namespace daspos {
namespace level2 {

struct DisplayConfig {
  /// Solenoid field used to draw track curvature.
  double field_tesla = 2.0;
  /// Outer radius of the drawn tracking volume, metres.
  double outer_radius_m = 1.1;
  /// Polyline points per track.
  int samples_per_track = 16;
};

/// A point in the detector's cartesian frame (metres).
struct ScenePoint {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;
};

/// One drawable track.
struct SceneTrack {
  std::vector<ScenePoint> points;
  int charge = 0;
  double pt = 0.0;
};

/// One drawable calorimeter tower.
struct SceneTower {
  std::string object_type;
  double eta = 0.0;
  double phi = 0.0;
  /// Tower length scales with energy.
  double height = 0.0;
};

struct Scene {
  uint32_t run = 0;
  uint64_t event = 0;
  std::vector<SceneTrack> tracks;
  std::vector<SceneTower> towers;
  double met = 0.0;
  double met_phi = 0.0;

  Json ToJson() const;
};

/// Builds the scene for one event.
Scene BuildScene(const CommonEvent& event, const DisplayConfig& config = {});

}  // namespace level2
}  // namespace daspos

#endif  // DASPOS_LEVEL2_DISPLAY_H_
