#include "support/fault.h"

#include <algorithm>

#include "support/strings.h"

namespace daspos {

Result<FaultSpec> FaultSpec::Parse(std::string_view spec) {
  FaultSpec out;
  if (Trim(spec).empty()) {
    return Status::InvalidArgument("empty fault spec");
  }
  for (const std::string& raw : Split(spec, ',')) {
    std::string_view field = Trim(raw);
    if (field.empty()) continue;
    size_t eq = field.find('=');
    std::string_view key = eq == std::string_view::npos ? field : field.substr(0, eq);
    std::string_view value =
        eq == std::string_view::npos ? std::string_view() : field.substr(eq + 1);
    if (key == "seed") {
      DASPOS_ASSIGN_OR_RETURN(out.seed, ParseU64(value));
    } else if (key == "rate") {
      DASPOS_ASSIGN_OR_RETURN(out.rate, ParseDouble(value));
      if (out.rate < 0.0 || out.rate >= 1.0) {
        return Status::InvalidArgument("fault rate must be in [0, 1): " +
                                       std::string(value));
      }
    } else if (key == "nth") {
      // "nth" opens a list of ordinals; bare numeric fields that follow it
      // extend the list, so "nth=3,7" parses as {3, 7}.
      DASPOS_ASSIGN_OR_RETURN(uint64_t n, ParseU64(value));
      if (n == 0) return Status::InvalidArgument("nth ordinals are 1-based");
      out.nth.push_back(n);
    } else if (eq == std::string_view::npos && !out.nth.empty()) {
      DASPOS_ASSIGN_OR_RETURN(uint64_t n, ParseU64(field));
      if (n == 0) return Status::InvalidArgument("nth ordinals are 1-based");
      out.nth.push_back(n);
    } else {
      return Status::InvalidArgument("unknown fault spec field: " +
                                     std::string(key));
    }
  }
  if (out.rate == 0.0 && out.nth.empty()) {
    return Status::InvalidArgument(
        "fault spec injects nothing; set rate= or nth=");
  }
  std::sort(out.nth.begin(), out.nth.end());
  return out;
}

FaultPlan::FaultPlan(const FaultSpec& spec) : spec_(spec), rng_(spec.seed) {}

Status FaultPlan::Next(const std::string& op) {
  MutexLock lock(mu_);
  ++operations_;
  bool fail = std::binary_search(spec_.nth.begin(), spec_.nth.end(), operations_);
  // Always consume a draw in rate mode so the decision sequence depends only
  // on the operation ordinal, not on which ordinals were scripted.
  if (spec_.rate > 0.0 && rng_.Accept(spec_.rate)) fail = true;
  if (!fail) return Status::OK();
  ++injected_;
  return Status::IOError("injected fault #" + std::to_string(injected_) +
                         " at op " + std::to_string(operations_) + " (" + op +
                         ")");
}

uint64_t FaultPlan::operations() const {
  MutexLock lock(mu_);
  return operations_;
}

uint64_t FaultPlan::injected() const {
  MutexLock lock(mu_);
  return injected_;
}

}  // namespace daspos
