#include "support/compress.h"

#include <cstring>
#include <vector>

namespace daspos {

namespace {

constexpr char kMagic[] = "DZ01";
constexpr size_t kMagicLen = 4;
constexpr size_t kWindow = 65535;   // u16 offset
constexpr size_t kMinMatch = 4;     // below this a literal is cheaper
constexpr size_t kMaxMatch = 255 + kMinMatch;
constexpr size_t kHashSize = 1 << 15;

void PutVarint(std::string& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>(v) | static_cast<char>(0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

uint32_t HashAt(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return (v * 2654435761u) >> 17 & (kHashSize - 1);
}

}  // namespace

std::string Compress(std::string_view data) {
  std::string out(kMagic, kMagicLen);
  PutVarint(out, data.size());
  if (data.empty()) return out;

  const uint8_t* input = reinterpret_cast<const uint8_t*>(data.data());
  const size_t n = data.size();
  // Hash chains: most recent position for each 4-byte prefix hash.
  std::vector<int64_t> head(kHashSize, -1);

  size_t flag_pos = 0;
  int flag_bit = 8;  // force a new flag byte immediately
  uint8_t flag = 0;

  auto begin_item = [&](bool is_match) {
    if (flag_bit == 8) {
      if (flag_pos != 0) out[flag_pos] = static_cast<char>(flag);
      flag_pos = out.size();
      out.push_back(0);
      flag = 0;
      flag_bit = 0;
    }
    if (is_match) flag |= static_cast<uint8_t>(1u << flag_bit);
    ++flag_bit;
  };

  size_t pos = 0;
  while (pos < n) {
    size_t best_len = 0;
    size_t best_offset = 0;
    if (pos + kMinMatch <= n) {
      uint32_t hash = HashAt(input + pos);
      int64_t candidate = head[hash];
      if (candidate >= 0 && pos - static_cast<size_t>(candidate) <= kWindow) {
        size_t candidate_pos = static_cast<size_t>(candidate);
        size_t offset = pos - candidate_pos;
        size_t len = 0;
        size_t max_len = std::min(kMaxMatch, n - pos);
        while (len < max_len && input[candidate_pos + len] == input[pos + len]) {
          ++len;
        }
        if (len >= kMinMatch) {
          best_len = len;
          best_offset = offset;
        }
      }
      head[hash] = static_cast<int64_t>(pos);
    }
    if (best_len >= kMinMatch) {
      begin_item(true);
      out.push_back(static_cast<char>(best_offset & 0xff));
      out.push_back(static_cast<char>(best_offset >> 8));
      out.push_back(static_cast<char>(best_len - kMinMatch));
      // Index a few interior positions so later matches can anchor here.
      size_t end = pos + best_len;
      for (size_t i = pos + 1; i + kMinMatch <= n && i < end; ++i) {
        head[HashAt(input + i)] = static_cast<int64_t>(i);
      }
      pos = end;
    } else {
      begin_item(false);
      out.push_back(static_cast<char>(input[pos]));
      ++pos;
    }
  }
  if (flag_pos != 0) out[flag_pos] = static_cast<char>(flag);
  return out;
}

Result<std::string> Decompress(std::string_view compressed) {
  if (compressed.size() < kMagicLen ||
      compressed.substr(0, kMagicLen) != std::string_view(kMagic, kMagicLen)) {
    return Status::Corruption("not a DZ01 compressed stream");
  }
  size_t pos = kMagicLen;
  // Varint raw size.
  uint64_t raw_size = 0;
  int shift = 0;
  for (;;) {
    if (pos >= compressed.size()) {
      return Status::Corruption("truncated compressed header");
    }
    uint8_t byte = static_cast<uint8_t>(compressed[pos++]);
    if (shift > 63) return Status::Corruption("bad compressed size varint");
    raw_size |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  // Guard: the output cannot be absurdly larger than the stream
  // (worst-case expansion of this format is ~8.3x... inverted: each stream
  // byte decodes to at most kMaxMatch output bytes).
  if (raw_size > compressed.size() * kMaxMatch + 64) {
    return Status::Corruption("claimed raw size implausible");
  }

  std::string out;
  out.reserve(static_cast<size_t>(raw_size));
  while (out.size() < raw_size) {
    if (pos >= compressed.size()) {
      return Status::Corruption("truncated compressed stream");
    }
    uint8_t flag = static_cast<uint8_t>(compressed[pos++]);
    for (int bit = 0; bit < 8 && out.size() < raw_size; ++bit) {
      if (flag & (1u << bit)) {
        if (pos + 3 > compressed.size()) {
          return Status::Corruption("truncated back-reference");
        }
        size_t offset = static_cast<uint8_t>(compressed[pos]) |
                        (static_cast<size_t>(
                             static_cast<uint8_t>(compressed[pos + 1]))
                         << 8);
        size_t length =
            static_cast<uint8_t>(compressed[pos + 2]) + kMinMatch;
        pos += 3;
        if (offset == 0 || offset > out.size()) {
          return Status::Corruption("back-reference outside window");
        }
        if (out.size() + length > raw_size) {
          return Status::Corruption("back-reference overruns raw size");
        }
        size_t start = out.size() - offset;
        for (size_t i = 0; i < length; ++i) {
          out.push_back(out[start + i]);  // may overlap: byte-by-byte
        }
      } else {
        if (pos >= compressed.size()) {
          return Status::Corruption("truncated literal");
        }
        out.push_back(compressed[pos++]);
      }
    }
  }
  return out;
}

}  // namespace daspos
