// Whole-file IO helpers with Status-based error reporting.
#ifndef DASPOS_SUPPORT_IO_H_
#define DASPOS_SUPPORT_IO_H_

#include <string>
#include <string_view>

#include "support/result.h"
#include "support/status.h"

namespace daspos {

/// Reads the entire file at `path` into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Reads the file in fixed-size chunks, feeding each chunk to an incremental
/// SHA-256 as it lands, so the bytes are read and hashed in one pass (no
/// second full-buffer scan). On success `*sha256_hex` holds the 64-char hex
/// digest and the return value holds the contents.
Result<std::string> ReadFileHashed(const std::string& path,
                                   std::string* sha256_hex);

/// Streaming SHA-256 of the file at `path` without retaining the contents:
/// constant memory regardless of file size.
Result<std::string> HashFileHex(const std::string& path);

/// Writes `data` to `path`, creating parent directories as needed and
/// truncating any existing file.
Status WriteStringToFile(const std::string& path, std::string_view data);

/// Crash-safe variant of WriteStringToFile: writes to a temporary file in
/// the same directory, fsyncs it, then atomically renames it over `path`.
/// A crash mid-write leaves either the old content or the new content at
/// `path`, never a partial file.
Status AtomicWriteFile(const std::string& path, std::string_view data);

/// Fsyncs the directory at `dir` so directory-entry mutations (a freshly
/// created file, a rename) survive a crash. Creating a file and fsyncing its
/// fd makes the *bytes* durable, but the *name* lives in the directory, which
/// has its own durability point — without this, a crash can lose a file whose
/// write already returned OK.
Status FsyncDir(const std::string& dir);

/// True if a regular file exists at `path`.
bool FileExists(const std::string& path);

/// Removes the file at `path` if present; missing files are not an error.
Status RemoveFile(const std::string& path);

}  // namespace daspos

#endif  // DASPOS_SUPPORT_IO_H_
