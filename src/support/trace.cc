#include "support/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>

namespace daspos {

namespace {

/// The span id most recently opened (and not yet closed) on this thread —
/// the parent of the next span constructed here. 0 = no live span.
thread_local uint64_t tls_current_span = 0;

/// Minimal JSON string escaper for span names/attributes (the exporter
/// cannot use serialize/ — support sits below it in the layer order).
void AppendEscaped(std::string& out, std::string_view text) {
  out += '"';
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Epoch of the current trace, in steady_clock nanoseconds. Atomic so span
/// destructors can timestamp without taking the tracer mutex.
std::atomic<int64_t> g_epoch_ns{0};

}  // namespace

// -------------------------------------------------------------------- Tracer

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Enable() {
  MutexLock lock(mutex_);
  for (const std::shared_ptr<ThreadBuffer>& buffer : buffers_) {
    // Raw pointer local: the analysis tracks capability expressions by base
    // object, and `raw->mutex` names the same lock as `raw->events`' guard.
    ThreadBuffer* raw = buffer.get();
    MutexLock buffer_lock(raw->mutex);
    raw->events.clear();
  }
  g_epoch_ns.store(NowNs(), std::memory_order_relaxed);
  next_id_.store(1, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

Tracer::ThreadBuffer* Tracer::BufferForThisThread() {
  // One buffer per thread; the second shared_ptr owner lives in buffers_,
  // so recorded spans survive the thread's exit.
  thread_local std::shared_ptr<ThreadBuffer> tls_buffer;
  if (tls_buffer == nullptr) {
    auto buffer = std::make_shared<ThreadBuffer>();
    MutexLock lock(mutex_);
    buffer->thread_index = buffers_.size();
    buffers_.push_back(buffer);
    tls_buffer = std::move(buffer);
  }
  return tls_buffer.get();
}

double Tracer::MicrosSinceEpoch() const {
  return static_cast<double>(NowNs() -
                             g_epoch_ns.load(std::memory_order_relaxed)) /
         1000.0;
}

std::vector<SpanEvent> Tracer::Drain() {
  std::vector<SpanEvent> spans;
  {
    MutexLock lock(mutex_);
    for (const std::shared_ptr<ThreadBuffer>& buffer : buffers_) {
      ThreadBuffer* raw = buffer.get();
      MutexLock buffer_lock(raw->mutex);
      for (SpanEvent& event : raw->events) {
        spans.push_back(std::move(event));
      }
      raw->events.clear();
    }
  }
  std::sort(spans.begin(), spans.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              return a.id < b.id;
            });
  return spans;
}

// ---------------------------------------------------------------------- Span

Span::Span(std::string_view name, std::string_view category) {
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) return;
  active_ = true;
  event_.name = std::string(name);
  event_.category = std::string(category);
  event_.id = tracer.NextSpanId();
  event_.parent_id = tls_current_span;
  prev_current_ = tls_current_span;
  tls_current_span = event_.id;
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (!active_) return;
  auto end = std::chrono::steady_clock::now();
  int64_t start_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                         start_.time_since_epoch())
                         .count();
  event_.start_us =
      static_cast<double>(start_ns -
                          g_epoch_ns.load(std::memory_order_relaxed)) /
      1000.0;
  event_.duration_us =
      std::chrono::duration<double, std::micro>(end - start_).count();
  tls_current_span = prev_current_;
  Tracer::ThreadBuffer* buffer = Tracer::Global().BufferForThisThread();
  event_.thread_index = buffer->thread_index;
  MutexLock lock(buffer->mutex);
  buffer->events.push_back(std::move(event_));
}

void Span::AddAttribute(std::string_view key, std::string_view value) {
  if (!active_) return;
  event_.attributes.emplace_back(std::string(key), std::string(value));
}

void Span::AddAttribute(std::string_view key, uint64_t value) {
  if (!active_) return;
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
  event_.attributes.emplace_back(std::string(key), buffer);
}

void Span::AddAttribute(std::string_view key, double value) {
  if (!active_) return;
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  event_.attributes.emplace_back(std::string(key), buffer);
}

// ---------------------------------------------------------------- Exporter

std::string TraceEventJson(const std::vector<SpanEvent>& spans,
                           bool normalize_timestamps) {
  // Export order: chronological for a human-readable file; name order (with
  // renumbered ids) when normalizing, so structurally identical runs export
  // byte-identically regardless of scheduling.
  std::vector<const SpanEvent*> ordered;
  ordered.reserve(spans.size());
  for (const SpanEvent& span : spans) ordered.push_back(&span);
  if (normalize_timestamps) {
    std::sort(ordered.begin(), ordered.end(),
              [](const SpanEvent* a, const SpanEvent* b) {
                if (a->name != b->name) return a->name < b->name;
                if (a->category != b->category) {
                  return a->category < b->category;
                }
                return a->id < b->id;
              });
  } else {
    std::sort(ordered.begin(), ordered.end(),
              [](const SpanEvent* a, const SpanEvent* b) {
                if (a->start_us != b->start_us) {
                  return a->start_us < b->start_us;
                }
                return a->id < b->id;
              });
  }

  // Renumbered ids keep parent links intact while hiding construction order.
  std::map<uint64_t, uint64_t> renumbered;
  if (normalize_timestamps) {
    uint64_t next = 1;
    for (const SpanEvent* span : ordered) renumbered[span->id] = next++;
  }
  auto map_id = [&](uint64_t id) -> uint64_t {
    if (!normalize_timestamps || id == 0) return id;
    auto it = renumbered.find(id);
    return it == renumbered.end() ? 0 : it->second;
  };

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buffer[96];
  bool first = true;
  for (const SpanEvent* span : ordered) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"name\":";
    AppendEscaped(out, span->name);
    out += ",\"cat\":";
    AppendEscaped(out, span->category);
    double ts = normalize_timestamps ? 0.0 : span->start_us;
    double dur = normalize_timestamps ? 0.0 : span->duration_us;
    uint64_t tid = normalize_timestamps ? 0 : span->thread_index;
    std::snprintf(buffer, sizeof(buffer),
                  ",\"ph\":\"X\",\"pid\":1,\"tid\":%" PRIu64
                  ",\"ts\":%.3f,\"dur\":%.3f,\"args\":{",
                  tid, ts, dur);
    out += buffer;
    std::snprintf(buffer, sizeof(buffer),
                  "\"span_id\":\"%" PRIu64 "\",\"parent_id\":\"%" PRIu64
                  "\"",
                  map_id(span->id), map_id(span->parent_id));
    out += buffer;
    for (const auto& [key, value] : span->attributes) {
      out += ',';
      AppendEscaped(out, key);
      out += ':';
      AppendEscaped(out, value);
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace daspos
