// Generic retry with exponential backoff, jitter, and deadlines.
// Preservation re-runs happen on degraded infrastructure where transient
// I/O failures are the norm; RetryCall turns "try once, abort the chain"
// into a bounded, deterministic recovery loop.
#ifndef DASPOS_SUPPORT_RETRY_H_
#define DASPOS_SUPPORT_RETRY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "support/result.h"
#include "support/status.h"

namespace daspos {

/// Tunable retry behaviour. The defaults suit object-store I/O: a few
/// attempts with short exponential backoff. All timing knobs are in
/// milliseconds; `jitter` is the +/- fraction applied to each backoff so
/// concurrent retries do not stampede in lockstep.
struct RetryPolicy {
  /// Total attempts including the first (1 = no retry).
  int max_attempts = 3;
  /// Backoff before the first retry; doubles (times `backoff_multiplier`)
  /// after each failed attempt, capped at `max_backoff_ms`.
  double backoff_ms = 10.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 1000.0;
  /// Fractional jitter in [0, 1): each backoff is scaled by a deterministic
  /// factor drawn uniformly from [1 - jitter, 1 + jitter).
  double jitter = 0.25;
  /// Overall deadline across all attempts; 0 disables. When the accumulated
  /// backoff would cross the deadline, RetryCall stops early and returns
  /// DeadlineExceeded (carrying the last underlying error in its message).
  double deadline_ms = 0.0;
  /// Seed for the jitter stream, so retry schedules are reproducible.
  uint64_t jitter_seed = 0;
  /// Which failures are worth retrying. Default: transient I/O errors and
  /// deadline-style step failures. NotFound/InvalidArgument/Corruption are
  /// permanent and never retried by the default predicate.
  std::function<bool(const Status&)> retryable;
  /// Sleep hook, overridable in tests to avoid real waiting. Receives the
  /// backoff in milliseconds. Defaults to std::this_thread::sleep_for.
  std::function<void(double)> sleeper;
};

/// Backoff (ms, jitter applied) before retry number `attempt` (1-based:
/// attempt 1 is the first retry). Exposed for tests and for callers that
/// schedule their own sleeps.
double RetryBackoffMillis(const RetryPolicy& policy, int attempt,
                          uint64_t jitter_seed);

/// Runs `op` until it succeeds, the policy is exhausted, or a non-retryable
/// status appears. `what` labels the operation in error messages. Returns
/// the final status; after the deadline trips the code is DeadlineExceeded.
Status RetryCall(const RetryPolicy& policy, const std::function<Status()>& op,
                 const std::string& what);

/// Result-returning flavour of RetryCall.
template <typename T>
Result<T> RetryResult(const RetryPolicy& policy,
                      const std::function<Result<T>()>& op,
                      const std::string& what) {
  Result<T> last = Status::IOError("retry never ran: " + what);
  Status final = RetryCall(
      policy,
      [&]() -> Status {
        last = op();
        return last.ok() ? Status::OK() : last.status();
      },
      what);
  if (final.ok()) return last;
  return final;
}

}  // namespace daspos

#endif  // DASPOS_SUPPORT_RETRY_H_
