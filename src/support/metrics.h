// Wall-clock step tracing shared by instrumented drivers: the workflow
// engine records one StepMetrics per executed step, and the CLI / bench
// harnesses render them as a timing table. Cumulative process-wide counters
// live in metrics_registry.h; this header is only the per-run table
// rendering.
#ifndef DASPOS_SUPPORT_METRICS_H_
#define DASPOS_SUPPORT_METRICS_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace daspos {

/// Monotonic stopwatch; starts on construction.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  /// Milliseconds elapsed since construction or the last Restart.
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// One executed unit of work in a trace.
struct StepMetrics {
  std::string label;
  double wall_ms = 0.0;
  uint64_t bytes = 0;
  uint64_t items = 0;
};

/// Renders a per-step timing table: label, wall time, share of the summed
/// wall time, output bytes, and item (event) count, plus a totals row.
std::string RenderStepMetricsTable(const std::vector<StepMetrics>& steps,
                                   const std::string& title = "");

}  // namespace daspos

#endif  // DASPOS_SUPPORT_METRICS_H_
