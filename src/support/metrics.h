// Wall-clock step tracing shared by instrumented drivers: the workflow
// engine records one StepMetrics per executed step, and the CLI / bench
// harnesses render them as a timing table. Automated re-execution is only
// trustworthy when it is observable (DPHEP validation-framework lesson), so
// the trace lives in support/ where every layer can reach it.
#ifndef DASPOS_SUPPORT_METRICS_H_
#define DASPOS_SUPPORT_METRICS_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace daspos {

/// Monotonic stopwatch; starts on construction.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  /// Milliseconds elapsed since construction or the last Restart.
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// One executed unit of work in a trace.
struct StepMetrics {
  std::string label;
  double wall_ms = 0.0;
  uint64_t bytes = 0;
  uint64_t items = 0;
};

/// Renders a per-step timing table: label, wall time, share of the summed
/// wall time, output bytes, and item (event) count, plus a totals row.
std::string RenderStepMetricsTable(const std::vector<StepMetrics>& steps,
                                   const std::string& title = "");

/// Hit/miss/invalidation counters for a verified-result cache (e.g. the
/// object store's digest cache). A hit means an expensive re-check was
/// skipped; an invalidation means a cached verdict was discarded because the
/// underlying state changed.
struct CacheCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t invalidations = 0;

  double HitRate() const {
    uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

/// Worker-pool activity over one measured interval (e.g. a chain execution):
/// busy_ms sums task wall time across all workers, so Utilization() is the
/// fraction of thread-seconds actually spent in task bodies.
struct PoolUtilization {
  size_t threads = 0;
  uint64_t tasks_executed = 0;
  double busy_ms = 0.0;
  double wall_ms = 0.0;

  double Utilization() const {
    if (threads == 0 || wall_ms <= 0.0) return 0.0;
    return busy_ms / (static_cast<double>(threads) * wall_ms);
  }
};

}  // namespace daspos

#endif  // DASPOS_SUPPORT_METRICS_H_
