// Deterministic fault injection for chaos testing the preservation runtime.
// A FaultPlan decides, operation by operation, whether to inject a transient
// failure. Decisions come from a seeded RNG (probabilistic mode) or a
// scripted list of operation ordinals (scripted mode), so every chaos run is
// reproducible from its spec string.
#ifndef DASPOS_SUPPORT_FAULT_H_
#define DASPOS_SUPPORT_FAULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "support/result.h"
#include "support/rng.h"
#include "support/status.h"
#include "support/sync.h"

namespace daspos {

/// Parsed fault-injection configuration. Built from a spec string of
/// comma-separated key=value pairs:
///   "seed=42,rate=0.3"  -- fail each op with probability 0.3 (seeded RNG)
///   "nth=3,7"           -- fail exactly the 3rd and 7th operations (1-based)
/// Both forms may be combined; a scripted ordinal always fails regardless of
/// the rate draw.
struct FaultSpec {
  uint64_t seed = 0;
  double rate = 0.0;
  std::vector<uint64_t> nth;

  static Result<FaultSpec> Parse(std::string_view spec);
};

/// Thread-safe injector constructed from a FaultSpec. Each call to Next()
/// consumes one operation slot; injected failures are transient IOErrors so
/// they flow through the same retry machinery as real storage hiccups.
/// Non-copyable: the plan owns a mutex and a global operation counter.
class FaultPlan {
 public:
  explicit FaultPlan(const FaultSpec& spec);

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  /// Decides the fate of the next operation. `op` labels it ("put", "get",
  /// "step:reconstruction", ...) for the injected error message. Returns OK
  /// to let the operation proceed, or a transient IOError to inject a fault.
  Status Next(const std::string& op) DASPOS_EXCLUDES(mu_);

  /// Total operations consulted so far.
  uint64_t operations() const DASPOS_EXCLUDES(mu_);

  /// Faults injected so far.
  uint64_t injected() const DASPOS_EXCLUDES(mu_);

 private:
  FaultSpec spec_;  // const after construction; read without the lock
  mutable Mutex mu_;
  Rng rng_ DASPOS_GUARDED_BY(mu_);
  uint64_t operations_ DASPOS_GUARDED_BY(mu_) = 0;
  uint64_t injected_ DASPOS_GUARDED_BY(mu_) = 0;
};

}  // namespace daspos

#endif  // DASPOS_SUPPORT_FAULT_H_
