#include "support/metrics_registry.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace daspos {

namespace {

/// Portable atomic add for doubles (atomic<double>::fetch_add is not
/// guaranteed lock-free everywhere; the CAS loop is).
void AtomicAdd(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

/// Shortest round-trip decimal for a bucket bound or sum ("0.25", "5",
/// "1000"); %g keeps golden outputs stable and human-readable.
std::string FormatNumber(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

}  // namespace

// ----------------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::Observe(double value) {
  // First bucket whose upper bound is >= value; everything above the last
  // bound lands in the +Inf bucket (index bounds_.size()).
  size_t bucket = std::lower_bound(bounds_.begin(), bounds_.end(), value) -
                  bounds_.begin();
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, value);
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& Histogram::DefaultLatencyBucketsMs() {
  static const std::vector<double> kBuckets = {
      0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
      1000.0, 2500.0, 5000.0};
  return kBuckets;
}

// ----------------------------------------------------------- MetricsRegistry

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Entry& MetricsRegistry::EntryFor(std::string_view name,
                                                  std::string_view help) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.help = help;
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  }
  return it->second;
}

Counter& MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help) {
  MutexLock lock(mutex_);
  Entry& entry = EntryFor(name, help);
  if (!entry.has_instrument()) entry.counter.reset(new Counter());
  if (entry.counter == nullptr) {
    // Kind mismatch: keep the original registration, hand back a detached
    // instrument so the caller still has something safe to increment.
    static Counter* mismatch = new Counter();
    return *mismatch;
  }
  return *entry.counter;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view help) {
  MutexLock lock(mutex_);
  Entry& entry = EntryFor(name, help);
  if (!entry.has_instrument()) entry.gauge.reset(new Gauge());
  if (entry.gauge == nullptr) {
    static Gauge* mismatch = new Gauge();
    return *mismatch;
  }
  return *entry.gauge;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> bounds,
                                         std::string_view help) {
  MutexLock lock(mutex_);
  Entry& entry = EntryFor(name, help);
  if (!entry.has_instrument()) {
    entry.histogram.reset(new Histogram(std::move(bounds)));
  }
  if (entry.histogram == nullptr) {
    static Histogram* mismatch =
        new Histogram(Histogram::DefaultLatencyBucketsMs());
    return *mismatch;
  }
  return *entry.histogram;
}

uint64_t MetricsRegistry::CounterValue(std::string_view name) const {
  MutexLock lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.counter == nullptr) return 0;
  return it->second.counter->value();
}

int64_t MetricsRegistry::GaugeValue(std::string_view name) const {
  MutexLock lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.gauge == nullptr) return 0;
  return it->second.gauge->value();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  MutexLock lock(mutex_);
  // entries_ is an ordered map, so every section comes out sorted by name —
  // the determinism the exporters promise.
  for (const auto& [name, entry] : entries_) {
    if (entry.counter != nullptr) {
      snapshot.counters.push_back({name, entry.help, entry.counter->value()});
    } else if (entry.gauge != nullptr) {
      snapshot.gauges.push_back({name, entry.help, entry.gauge->value()});
    } else if (entry.histogram != nullptr) {
      MetricsSnapshot::HistogramValue value;
      value.name = name;
      value.help = entry.help;
      value.bounds = entry.histogram->bounds();
      value.bucket_counts.reserve(value.bounds.size() + 1);
      for (size_t i = 0; i <= value.bounds.size(); ++i) {
        value.bucket_counts.push_back(entry.histogram->bucket_count(i));
      }
      value.count = entry.histogram->count();
      value.sum = entry.histogram->sum();
      snapshot.histograms.push_back(std::move(value));
    }
  }
  return snapshot;
}

std::string MetricsRegistry::RenderPrometheus() const {
  MetricsSnapshot snapshot = Snapshot();
  std::string out;
  out.reserve(4096);
  char line[160];

  // One merged, name-sorted stream: counters, gauges, and histograms are
  // interleaved exactly as a Prometheus scrape would show them.
  size_t c = 0, g = 0, h = 0;
  auto next_name = [&]() -> const std::string* {
    const std::string* best = nullptr;
    if (c < snapshot.counters.size()) best = &snapshot.counters[c].name;
    if (g < snapshot.gauges.size() &&
        (best == nullptr || snapshot.gauges[g].name < *best)) {
      best = &snapshot.gauges[g].name;
    }
    if (h < snapshot.histograms.size() &&
        (best == nullptr || snapshot.histograms[h].name < *best)) {
      best = &snapshot.histograms[h].name;
    }
    return best;
  };
  for (const std::string* name = next_name(); name != nullptr;
       name = next_name()) {
    if (c < snapshot.counters.size() && snapshot.counters[c].name == *name) {
      const auto& counter = snapshot.counters[c++];
      if (!counter.help.empty()) {
        out += "# HELP " + counter.name + " " + counter.help + "\n";
      }
      out += "# TYPE " + counter.name + " counter\n";
      std::snprintf(line, sizeof(line), "%s %" PRIu64 "\n",
                    counter.name.c_str(), counter.value);
      out += line;
    } else if (g < snapshot.gauges.size() &&
               snapshot.gauges[g].name == *name) {
      const auto& gauge = snapshot.gauges[g++];
      if (!gauge.help.empty()) {
        out += "# HELP " + gauge.name + " " + gauge.help + "\n";
      }
      out += "# TYPE " + gauge.name + " gauge\n";
      std::snprintf(line, sizeof(line), "%s %" PRId64 "\n",
                    gauge.name.c_str(), gauge.value);
      out += line;
    } else {
      const auto& histogram = snapshot.histograms[h++];
      if (!histogram.help.empty()) {
        out += "# HELP " + histogram.name + " " + histogram.help + "\n";
      }
      out += "# TYPE " + histogram.name + " histogram\n";
      uint64_t cumulative = 0;
      for (size_t i = 0; i < histogram.bounds.size(); ++i) {
        cumulative += histogram.bucket_counts[i];
        std::snprintf(line, sizeof(line), "%s_bucket{le=\"%s\"} %" PRIu64 "\n",
                      histogram.name.c_str(),
                      FormatNumber(histogram.bounds[i]).c_str(), cumulative);
        out += line;
      }
      cumulative += histogram.bucket_counts[histogram.bounds.size()];
      std::snprintf(line, sizeof(line),
                    "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n",
                    histogram.name.c_str(), cumulative);
      out += line;
      out += histogram.name + "_sum " + FormatNumber(histogram.sum) + "\n";
      std::snprintf(line, sizeof(line), "%s_count %" PRIu64 "\n",
                    histogram.name.c_str(), histogram.count);
      out += line;
    }
  }
  return out;
}

void MetricsRegistry::ResetForTesting() {
  MutexLock lock(mutex_);
  for (auto& [name, entry] : entries_) {
    (void)name;
    if (entry.counter != nullptr) entry.counter->Reset();
    if (entry.gauge != nullptr) entry.gauge->Reset();
    if (entry.histogram != nullptr) entry.histogram->Reset();
  }
}

void RegisterStandardMetrics(MetricsRegistry& registry) {
  using namespace metric_names;
  const std::vector<double>& latency = Histogram::DefaultLatencyBucketsMs();
  registry.GetCounter(kWorkflowExecutionsTotal,
                      "Workflow::Execute invocations");
  registry.GetCounter(kWorkflowStepsTotal,
                      "workflow steps settled successfully");
  registry.GetCounter(kWorkflowStepFailuresTotal,
                      "workflow steps that exhausted their attempts");
  registry.GetCounter(kWorkflowStepRetriesTotal,
                      "step attempts beyond each step's first");
  registry.GetCounter(kWorkflowCheckpointRestoresTotal,
                      "steps restored from a run-journal checkpoint");
  registry.GetHistogram(kWorkflowStepWallMs, latency,
                        "per-step wall time (gather + run + store)");
  registry.GetCounter(kPoolTasksTotal, "tasks executed by thread pools");
  registry.GetCounter(kPoolBusyUsTotal,
                      "microseconds spent inside pool task bodies");
  registry.GetGauge(kPoolQueueDepth, "tasks queued but not yet running");
  registry.GetHistogram(kPoolTaskWallMs, latency, "per-task wall time");
  registry.GetCounter(kArchivePutTotal, "object-store Put calls");
  registry.GetCounter(kArchiveGetTotal, "object-store Get calls");
  registry.GetCounter(kArchiveVerifyTotal, "object-store Verify calls");
  registry.GetCounter(kArchivePutBytesTotal, "bytes written by Put");
  registry.GetCounter(kArchiveGetBytesTotal, "bytes returned by Get");
  registry.GetCounter(kArchiveCacheHitsTotal,
                      "warm Gets that skipped the re-hash");
  registry.GetCounter(kArchiveCacheMissesTotal,
                      "cold Gets that hashed the full blob");
  registry.GetCounter(kArchiveCacheInvalidationsTotal,
                      "verified-digest cache entries dropped");
  registry.GetCounter(kArchiveQuarantinesTotal,
                      "blobs moved aside after a fixity mismatch");
  registry.GetHistogram(kArchiveGetWallMs, latency, "Get wall time");
  registry.GetHistogram(kArchivePutWallMs, latency, "Put wall time");
  registry.GetCounter(kArchiveWalkErrorsTotal,
                      "store-walk iteration/stat failures (an unreadable "
                      "store must not report as empty)");
  registry.GetCounter(kArchiveQuarantineErrorsTotal,
                      "quarantine moves that failed (forensic copy may be "
                      "lost)");
  registry.GetCounter(kArchiveReadRepairsTotal,
                      "rotted/missing replica copies healed during Get");
  registry.GetCounter(kArchiveDegradedReadsTotal,
                      "reads served while only a minority of replicas was "
                      "healthy");
  registry.GetCounter(kArchiveReplicaPutFailuresTotal,
                      "per-replica Put failures inside quorum writes");
  registry.GetCounter(kArchiveReplicaFallbacksTotal,
                      "reads that fell past an unhealthy replica");
  registry.GetCounter(kScrubPassesTotal, "scrub passes completed");
  registry.GetCounter(kScrubObjectsTotal, "objects fixity-scrubbed");
  registry.GetCounter(kScrubRepairsTotal,
                      "replica copies repaired by the scrubber");
  registry.GetCounter(kScrubUnrepairableTotal,
                      "objects with no healthy copy on any replica");
  registry.GetHistogram(kScrubBatchWallMs, latency,
                        "per-batch scrub wall time");
  registry.GetCounter(kMigrateObjectsTotal,
                      "objects processed by store-generation migration");
  registry.GetCounter(kMigrateBytesTotal, "bytes copied by migration");
  registry.GetCounter(kMigrateResumedTotal,
                      "migration runs resumed from an interrupted cursor");
  registry.GetCounter(kMigrateVerifyFailuresTotal,
                      "target copies that failed the post-copy re-hash");
  registry.GetCounter(kPackAppendsTotal,
                      "records appended to packfile segments");
  registry.GetCounter(kPackAppendBytesTotal,
                      "stored payload bytes appended to segments");
  registry.GetCounter(kPackReadsTotal, "packfile record reads");
  registry.GetCounter(kPackReadBytesTotal,
                      "raw (uncompressed) bytes served by packfile reads");
  registry.GetCounter(kPackMmapReadsTotal,
                      "packfile reads served zero-copy from a sealed-segment "
                      "mapping");
  registry.GetCounter(kPackCompressedBlobsTotal,
                      "blobs stored block-compressed in packfiles");
  registry.GetCounter(kPackCompressionSavedBytesTotal,
                      "raw-minus-stored bytes saved by block compression");
  registry.GetCounter(kPackChecksumFailuresTotal,
                      "packfile records whose stored checksum no longer "
                      "matches (rot or torn write)");
  registry.GetCounter(kPackIndexRebuildsTotal,
                      "segment indexes rebuilt by scanning the segment");
  registry.GetCounter(kPackTornRecordsTotal,
                      "trailing torn records dropped during tail recovery");
  registry.GetCounter(kPackSegmentsCreatedTotal,
                      "packfile segments created");
  registry.GetCounter(kPackQuarantinesTotal,
                      "packfile records quarantined after a fixity or "
                      "checksum mismatch");
  registry.GetCounter(kValidationRunsTotal, "validation farm runs");
  registry.GetCounter(kValidationCellsTotal,
                      "campaign x analysis cells validated");
  registry.GetCounter(kValidationPassTotal, "validation cells that passed");
  registry.GetCounter(kValidationWarnTotal, "validation cells that warned");
  registry.GetCounter(kValidationFailTotal, "validation cells that failed");
  registry.GetCounter(kValidationHistogramsTotal,
                      "histograms compared against archived references");
  registry.GetHistogram(kValidationCellWallMs, latency,
                        "per-cell wall time (chain + analysis + compare)");
  registry.GetCounter(kNetConnectionsTotal, "client connections accepted");
  registry.GetGauge(kNetActiveConnections, "client connections open now");
  registry.GetCounter(kNetRequestsTotal, "request frames dispatched");
  registry.GetCounter(kNetRequestErrorsTotal,
                      "requests answered with an ERROR frame");
  registry.GetCounter(kNetProtocolErrorsTotal,
                      "malformed frames (bad magic/version, oversized "
                      "declared length, unknown type, mid-frame disconnect)");
  registry.GetCounter(kNetBytesReadTotal, "bytes read from client sockets");
  registry.GetCounter(kNetBytesWrittenTotal,
                      "bytes written to client sockets");
  registry.GetCounter(kNetBackpressureStallsTotal,
                      "times a connection's reads were paused because its "
                      "outbox hit the backpressure cap");
  registry.GetCounter(kNetDrainsTotal, "graceful drains begun (SIGTERM)");
  registry.GetHistogram(kNetRequestWallMs, latency,
                        "per-request wall time (decode + handle + encode)");
  registry.GetCounter(kLintArtifactsTotal, "artifacts linted");
  registry.GetCounter(kLintFindingsTotal, "lint diagnostics emitted");
  registry.GetCounter(kRecoEventsTotal, "events reconstructed");
  registry.GetCounter(kTiersInputEventsTotal,
                      "AOD events read by derivation");
  registry.GetCounter(kTiersOutputEventsTotal,
                      "derived events written by derivation");
  registry.GetCounter(kRivetEventsTotal,
                      "generator events run through rivet analyses");
}

}  // namespace daspos
