#include "support/metrics.h"

#include "support/strings.h"
#include "support/table.h"

namespace daspos {

std::string RenderStepMetricsTable(const std::vector<StepMetrics>& steps,
                                   const std::string& title) {
  TextTable table;
  if (!title.empty()) table.SetTitle(title);
  table.SetHeader({"step", "wall", "share", "bytes", "events"});

  double total_ms = 0.0;
  uint64_t total_bytes = 0;
  uint64_t total_items = 0;
  for (const StepMetrics& step : steps) {
    total_ms += step.wall_ms;
    total_bytes += step.bytes;
    total_items += step.items;
  }
  for (const StepMetrics& step : steps) {
    double share =
        total_ms > 0.0 ? 100.0 * step.wall_ms / total_ms : 0.0;
    table.AddRow({step.label, FormatDouble(step.wall_ms, 3) + " ms",
                  FormatDouble(share, 3) + "%", FormatBytes(step.bytes),
                  std::to_string(step.items)});
  }
  table.AddRow({"TOTAL", FormatDouble(total_ms, 3) + " ms", "",
                FormatBytes(total_bytes), std::to_string(total_items)});
  return table.Render();
}

}  // namespace daspos
