// A small fixed-size worker pool draining a FIFO task queue. Built for the
// workflow engine's parallel DAG dispatch but generic: any subsystem that
// needs "run these closures on N threads and wait" can use it.
//
// Activity is published to MetricsRegistry::Global() (task count, busy time,
// queue depth, per-task latency) instead of per-pool counters — see
// docs/OBSERVABILITY.md for the metric names.
#ifndef DASPOS_SUPPORT_THREADPOOL_H_
#define DASPOS_SUPPORT_THREADPOOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "support/sync.h"

namespace daspos {

class Counter;
class Gauge;
class Histogram;

/// Fixed-size pool of worker threads. Tasks submitted while the pool lives
/// are executed in FIFO order across the workers; the destructor waits for
/// every queued and in-flight task before joining. Tasks may themselves call
/// Submit (the workflow engine schedules newly-ready steps from completing
/// ones), but must not call Wait or destroy the pool.
class ThreadPool {
 public:
  /// Spawns `thread_count` workers (clamped to at least one).
  explicit ThreadPool(size_t thread_count);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Safe from any thread, including pool workers.
  void Submit(std::function<void()> task) DASPOS_EXCLUDES(mutex_);

  /// Blocks until the queue is empty and no task is running.
  void Wait() DASPOS_EXCLUDES(mutex_);

  size_t thread_count() const { return workers_.size(); }

  /// One worker per hardware thread, and at least one.
  static size_t DefaultThreadCount();

 private:
  void WorkerLoop() DASPOS_EXCLUDES(mutex_);

  mutable Mutex mutex_;
  CondVar work_available_;
  CondVar idle_;
  std::deque<std::function<void()>> queue_ DASPOS_GUARDED_BY(mutex_);
  size_t active_ DASPOS_GUARDED_BY(mutex_) = 0;
  bool stopping_ DASPOS_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;
  // Registry handles resolved once at construction (stable for process life).
  Counter* tasks_total_;
  Counter* busy_us_total_;
  Gauge* queue_depth_;
  Histogram* task_wall_ms_;
};

}  // namespace daspos

#endif  // DASPOS_SUPPORT_THREADPOOL_H_
