// A small fixed-size worker pool draining a FIFO task queue. Built for the
// workflow engine's parallel DAG dispatch but generic: any subsystem that
// needs "run these closures on N threads and wait" can use it.
#ifndef DASPOS_SUPPORT_THREADPOOL_H_
#define DASPOS_SUPPORT_THREADPOOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace daspos {

/// Cumulative pool activity since construction. busy_ms sums wall time spent
/// inside task bodies across all workers, so utilization over an interval is
/// busy_ms / (thread_count * interval_ms).
struct ThreadPoolStats {
  uint64_t tasks_executed = 0;
  double busy_ms = 0.0;
};

/// Fixed-size pool of worker threads. Tasks submitted while the pool lives
/// are executed in FIFO order across the workers; the destructor waits for
/// every queued and in-flight task before joining. Tasks may themselves call
/// Submit (the workflow engine schedules newly-ready steps from completing
/// ones), but must not call Wait or destroy the pool.
class ThreadPool {
 public:
  /// Spawns `thread_count` workers (clamped to at least one).
  explicit ThreadPool(size_t thread_count);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Safe from any thread, including pool workers.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running.
  void Wait();

  size_t thread_count() const { return workers_.size(); }

  /// Snapshot of cumulative task counts and busy time.
  ThreadPoolStats stats() const;

  /// One worker per hardware thread, and at least one.
  static size_t DefaultThreadCount();

 private:
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;
  bool stopping_ = false;
  ThreadPoolStats stats_;
  std::vector<std::thread> workers_;
};

}  // namespace daspos

#endif  // DASPOS_SUPPORT_THREADPOOL_H_
