#include "support/mmap.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace daspos {

Result<MemoryMappedFile> MemoryMappedFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("mmap open failed for " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    int saved = errno;
    ::close(fd);
    return Status::IOError("mmap fstat failed for " + path + ": " +
                           std::strerror(saved));
  }
  size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    // mmap(len=0) is EINVAL; an empty file is a valid (empty) mapping.
    ::close(fd);
    return MemoryMappedFile(nullptr, 0);
  }
  // MAP_SHARED, not MAP_PRIVATE: for a read-only mapping of a file that may
  // still be appended to, MAP_PRIVATE leaves visibility of post-map writes
  // unspecified; MAP_SHARED reads the page cache coherently. (The mapping's
  // length is still fixed at map time — growth needs a remap either way.)
  void* data = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  int saved = errno;
  // The mapping keeps its own reference to the file; the fd is not needed
  // after mmap returns.
  ::close(fd);
  if (data == MAP_FAILED) {
    return Status::IOError("mmap failed for " + path + ": " +
                           std::strerror(saved));
  }
  MemoryMappedFile file(data, size);
  file.mapped_ = true;
  return file;
}

MemoryMappedFile::~MemoryMappedFile() {
  if (mapped_ && data_ != nullptr) ::munmap(data_, size_);
}

MemoryMappedFile::MemoryMappedFile(MemoryMappedFile&& other) noexcept
    : data_(other.data_), size_(other.size_), mapped_(other.mapped_) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
}

MemoryMappedFile& MemoryMappedFile::operator=(
    MemoryMappedFile&& other) noexcept {
  if (this != &other) {
    if (mapped_ && data_ != nullptr) ::munmap(data_, size_);
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
  }
  return *this;
}

Status DropFileCache(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("drop-cache open failed for " + path + ": " +
                           std::strerror(errno));
  }
#if defined(POSIX_FADV_DONTNEED)
  // Dirty pages cannot be evicted, so flush them first; both calls are
  // advisory and their failure only means the next read may be warm.
  (void)::fdatasync(fd);
  (void)::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
#endif
  ::close(fd);
  return Status::OK();
}

}  // namespace daspos
