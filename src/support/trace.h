// Span-based tracing for the preservation runtime. A Span is an RAII region:
// construction stamps the start, destruction stamps the duration and appends
// a finished SpanEvent to the recording thread's own buffer — the hot path
// never touches a shared lock, so tracing a wide workflow run does not
// serialize it. Buffers are drained at export into Chrome trace_event JSON
// (loadable in about://tracing and ui.perfetto.dev) via `daspos chain
// --trace-out=FILE`.
//
// Parent/child links are per-thread: the most recent live Span on a thread
// is the parent of the next one constructed there. That matches how the
// stack actually nests — a workflow step span opened on a pool worker
// automatically parents the retry-attempt and archive-operation spans its
// body opens on that worker.
//
// Determinism contract (DESIGN.md §4f): with tracing enabled, the multiset
// of span names, categories, parent links, and attribute keys produced by a
// run is independent of --threads=N; timestamps, durations, and thread
// indices are wall-clock. TraceEventJson(normalize=true) strips the
// wall-clock parts, yielding byte-identical exports for identical runs.
#ifndef DASPOS_SUPPORT_TRACE_H_
#define DASPOS_SUPPORT_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/sync.h"

namespace daspos {

/// One finished span, as drained from a thread buffer.
struct SpanEvent {
  std::string name;
  std::string category;
  /// Process-unique span id (1-based; assigned at construction order).
  uint64_t id = 0;
  /// Id of the span that was live on the same thread at construction;
  /// 0 for a root span.
  uint64_t parent_id = 0;
  /// Dense index of the recording thread (registration order).
  uint64_t thread_index = 0;
  /// Microseconds since Tracer::Enable.
  double start_us = 0.0;
  double duration_us = 0.0;
  /// key=value annotations (bytes, events, attempt number, ...).
  std::vector<std::pair<std::string, std::string>> attributes;
};

/// Process-wide span collector. Disabled by default: a Span constructed
/// while the tracer is disabled is inert (one relaxed atomic load).
class Tracer {
 public:
  static Tracer& Global();

  /// Starts a fresh trace: clears previously collected spans and resets the
  /// time origin. Safe to call while other threads run (they start
  /// recording from their next span).
  void Enable() DASPOS_EXCLUDES(mutex_);
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Collects every finished span from every thread buffer and clears them.
  /// Spans are returned sorted by (start_us, id) — chronological for a
  /// human reading the export.
  std::vector<SpanEvent> Drain() DASPOS_EXCLUDES(mutex_);

 private:
  friend class Span;
  struct ThreadBuffer {
    // Owner thread appends, Drain reads: uncontended in the steady state.
    Mutex mutex;
    std::vector<SpanEvent> events DASPOS_GUARDED_BY(mutex);
    /// Written once at registration (under the tracer mutex, before the
    /// buffer is published) and read only by the owner thread afterwards.
    uint64_t thread_index = 0;
  };

  Tracer() = default;

  /// The calling thread's buffer, registered on first use. The shared_ptr
  /// keeps recorded spans alive after the thread exits.
  ThreadBuffer* BufferForThisThread() DASPOS_EXCLUDES(mutex_);
  uint64_t NextSpanId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  double MicrosSinceEpoch() const;

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{1};
  /// Registration lock, ordered before each ThreadBuffer::mutex (Enable and
  /// Drain hold it while visiting every buffer).
  mutable Mutex mutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_ DASPOS_GUARDED_BY(mutex_);
};

/// RAII trace region recording to Tracer::Global(). Construct on the stack;
/// the span closes when it goes out of scope. No-op while the tracer is
/// disabled.
class Span {
 public:
  explicit Span(std::string_view name, std::string_view category = "daspos");
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void AddAttribute(std::string_view key, std::string_view value);
  void AddAttribute(std::string_view key, uint64_t value);
  void AddAttribute(std::string_view key, double value);

 private:
  bool active_ = false;
  uint64_t prev_current_ = 0;
  std::chrono::steady_clock::time_point start_{};
  SpanEvent event_;
};

/// Renders spans as a Chrome trace_event JSON document (complete "X" events
/// with ts/dur in microseconds), loadable in about://tracing and Perfetto.
/// With `normalize_timestamps`, wall-clock fields (ts, dur, tid) are zeroed,
/// span ids are renumbered in sorted-by-name order, and events are emitted
/// in that order — byte-identical output for structurally identical runs
/// (golden tests, cross-thread-count diffs).
std::string TraceEventJson(const std::vector<SpanEvent>& spans,
                           bool normalize_timestamps = false);

}  // namespace daspos

#endif  // DASPOS_SUPPORT_TRACE_H_
