// Read-only memory-mapped file (the rct MemoryMappedFile idiom): open once,
// then serve reads as string_views straight into the kernel page cache with
// no per-read allocation or read() syscall. Intended for immutable files —
// the packfile backend maps sealed segments and never maps the one still
// being appended to.
#ifndef DASPOS_SUPPORT_MMAP_H_
#define DASPOS_SUPPORT_MMAP_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "support/result.h"

namespace daspos {

/// Move-only owner of one read-only mapping. The mapping (and every
/// string_view derived from view()) stays valid until the object is
/// destroyed or moved-from. An empty file maps to an empty view.
class MemoryMappedFile {
 public:
  static Result<MemoryMappedFile> Open(const std::string& path);

  MemoryMappedFile() = default;
  ~MemoryMappedFile();

  MemoryMappedFile(MemoryMappedFile&& other) noexcept;
  MemoryMappedFile& operator=(MemoryMappedFile&& other) noexcept;
  MemoryMappedFile(const MemoryMappedFile&) = delete;
  MemoryMappedFile& operator=(const MemoryMappedFile&) = delete;

  /// The whole file. Substring without copying: view().substr(off, len).
  std::string_view view() const {
    return std::string_view(static_cast<const char*>(data_), size_);
  }
  size_t size() const { return size_; }
  bool valid() const { return data_ != nullptr || size_ == 0; }

 private:
  MemoryMappedFile(void* data, size_t size) : data_(data), size_(size) {}

  void* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
};

/// Best-effort hint to evict `path` from the OS page cache
/// (posix_fadvise(DONTNEED) after an fdatasync so dirty pages are not
/// pinned). Used by benchmarks to measure honestly-cold reads; a no-op
/// Status::OK on platforms without the advice. Missing files are an error.
Status DropFileCache(const std::string& path);

}  // namespace daspos

#endif  // DASPOS_SUPPORT_MMAP_H_
