// Chunked data-parallel helpers over ThreadPool with deterministic, ordered
// merge: a parallel run produces byte-identical output to the serial run at
// every thread count. Chunk boundaries depend only on (count, grain) — never
// on the pool width — so per-chunk accumulators always cover the same ranges,
// and the caller merges them in chunk order.
//
// Deadlock safety: workflow steps already execute ON pool worker threads, so
// a nested parallel region must not block waiting for pool capacity. The
// caller participates: chunks are claimed from a shared atomic cursor by the
// calling thread and by helper tasks submitted to the pool, and the caller
// only sleeps once every chunk is claimed. Progress is guaranteed even when
// no helper ever runs.
#ifndef DASPOS_SUPPORT_PARALLEL_H_
#define DASPOS_SUPPORT_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace daspos {

class ThreadPool;

/// Deterministic partition of [0, count) into near-equal chunks. The chunk
/// count is a pure function of (count, grain): never more than kMaxChunks,
/// never more chunks than items, and each chunk holds at least `grain` items
/// (except when count < grain, which yields a single short chunk).
struct ChunkPlan {
  /// Hard ceiling on chunks per region: bounds accumulator memory and keeps
  /// the plan independent of how many workers happen to be available.
  static constexpr size_t kMaxChunks = 64;

  size_t count = 0;
  size_t chunk_count = 0;

  /// Half-open [begin, end) item range of chunk `chunk`.
  std::pair<size_t, size_t> Bounds(size_t chunk) const;
};

ChunkPlan PlanChunks(size_t count, size_t grain);

/// Runs body(chunk_index, begin, end) for every chunk of PlanChunks(count,
/// grain). With a null pool (or a single chunk) the chunks run serially in
/// order on the calling thread; otherwise the caller and up to
/// thread_count() pool helpers drain chunks concurrently. Returns after
/// every chunk has finished. `body` must be safe to invoke concurrently on
/// distinct chunks.
void ForEachChunk(ThreadPool* pool, size_t count, size_t grain,
                  const std::function<void(size_t, size_t, size_t)>& body);

/// Parallel loop: fn(i) for every i in [0, count). `grain` is the minimum
/// number of items per chunk (use a larger grain for cheap bodies).
template <typename Fn>
void ParallelFor(ThreadPool* pool, size_t count, Fn&& fn, size_t grain = 1) {
  ForEachChunk(pool, count, grain,
               [&fn](size_t /*chunk*/, size_t begin, size_t end) {
                 for (size_t i = begin; i < end; ++i) fn(i);
               });
}

/// Parallel map into a pre-sized vector: out[i] = fn(i). T must be default-
/// constructible; element order always matches the serial loop.
template <typename T, typename Fn>
std::vector<T> ParallelMap(ThreadPool* pool, size_t count, Fn&& fn,
                           size_t grain = 1) {
  std::vector<T> out(count);
  ParallelFor(
      pool, count, [&out, &fn](size_t i) { out[i] = fn(i); }, grain);
  return out;
}

/// Parallel map-reduce with ordered merge: map_chunk(begin, end) produces one
/// accumulator per chunk, and reduce(acc, part) folds them IN CHUNK ORDER, so
/// order-sensitive reductions (string concatenation, event streams) match the
/// serial result exactly. Because chunk boundaries are thread-count
/// independent, even boundary-sensitive reductions are reproducible.
template <typename Acc, typename MapChunk, typename Reduce>
Acc ParallelMapReduce(ThreadPool* pool, size_t count, Acc init,
                      MapChunk&& map_chunk, Reduce&& reduce,
                      size_t grain = 1) {
  ChunkPlan plan = PlanChunks(count, grain);
  std::vector<Acc> parts(plan.chunk_count);
  ForEachChunk(pool, count, grain,
               [&parts, &map_chunk](size_t chunk, size_t begin, size_t end) {
                 parts[chunk] = map_chunk(begin, end);
               });
  Acc acc = std::move(init);
  for (Acc& part : parts) reduce(acc, std::move(part));
  return acc;
}

}  // namespace daspos

#endif  // DASPOS_SUPPORT_PARALLEL_H_
