// Status: lean error-handling vocabulary used across every daspos subsystem.
// Modeled on the RocksDB/Arrow idiom: functions that can fail return a Status
// (or a Result<T>, see result.h) instead of throwing.
#ifndef DASPOS_SUPPORT_STATUS_H_
#define DASPOS_SUPPORT_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace daspos {

/// Machine-readable failure category. Keep the list short and stable; the
/// message carries the detail.
enum class StatusCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kCorruption,
  kIOError,
  kFailedPrecondition,
  kPermissionDenied,
  kUnimplemented,
  kOutOfRange,
  kDeadlineExceeded,
};

/// Human-readable name of a status code ("NotFound", ...).
std::string_view StatusCodeName(StatusCode code);

/// Result of an operation that can fail. Cheap to copy in the OK case
/// (no allocation); failures carry a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsPermissionDenied() const {
    return code_ == StatusCode::kPermissionDenied;
  }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK Status to the caller.
#define DASPOS_RETURN_IF_ERROR(expr)          \
  do {                                        \
    ::daspos::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (0)

}  // namespace daspos

#endif  // DASPOS_SUPPORT_STATUS_H_
