// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms behind one thread-safe API. The DPHEP validation framework
// (arXiv:1310.7814) argues that automated re-execution is only trustworthy
// when it leaves continuous, inspectable evidence of what ran; the registry
// is that evidence for the whole stack — the workflow engine, the object
// store, the thread pool, and the linter all publish here, and the CLI
// exports the result as Prometheus text exposition or a JSON block in the
// chain report.
//
// Handles returned by GetCounter/GetGauge/GetHistogram are stable for the
// life of the process (instruments are never destroyed, ResetForTesting only
// zeroes values), so hot paths resolve a name once and then touch a single
// relaxed atomic per event. Operation counts are deterministic across thread
// counts; time-derived values (histogram distributions, *_us totals) are
// wall-clock — see docs/OBSERVABILITY.md for the full contract.
#ifndef DASPOS_SUPPORT_METRICS_REGISTRY_H_
#define DASPOS_SUPPORT_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "support/sync.h"

namespace daspos {

/// Monotonic event counter. Increment is one relaxed atomic add.
class Counter {
 public:
  void Increment(uint64_t by = 1) {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  std::atomic<uint64_t> value_{0};
};

/// Instantaneous level (queue depth, bytes resident). May go up and down.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram with Prometheus semantics: an observation lands in
/// the first bucket whose upper bound is >= the value (`le` is inclusive),
/// and anything past the last bound lands in the implicit +Inf bucket.
/// Bucket bounds are fixed at registration so merged/exported series always
/// line up.
class Histogram {
 public:
  void Observe(double value);

  /// Ascending upper bounds; the +Inf bucket is implicit (bounds.size()
  /// buckets plus one overflow).
  const std::vector<double>& bounds() const { return bounds_; }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  /// Raw (non-cumulative) count of bucket `i`, i in [0, bounds().size()].
  uint64_t bucket_count(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }

  /// The default latency scale, in milliseconds: 0.25 ms .. 5 s.
  static const std::vector<double>& DefaultLatencyBucketsMs();

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);
  void Reset();

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  /// Sum of observations; updated with a CAS loop (portable atomic double).
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of every registered instrument, sorted by name —
/// the input to both exporters and to the chain report's metrics block.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::string help;
    uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    std::string help;
    int64_t value = 0;
  };
  struct HistogramValue {
    std::string name;
    std::string help;
    std::vector<double> bounds;
    /// Raw per-bucket counts; bounds.size() + 1 entries (last = +Inf).
    std::vector<uint64_t> bucket_counts;
    uint64_t count = 0;
    double sum = 0.0;
  };
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
};

/// Thread-safe name -> instrument registry. Use Global() for the process
/// registry; local instances exist for tests. Getting a handle takes the
/// registry mutex once; the returned reference is valid forever.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every subsystem publishes to.
  static MetricsRegistry& Global();

  /// Returns the instrument registered under `name`, creating it on first
  /// use. `help` is recorded on creation (later calls may pass "").
  /// Registering the same name as two different kinds keeps the first kind
  /// and returns a detached dummy instrument for the mismatched request —
  /// a programming error surfaced by the dummy's absence from exports.
  Counter& GetCounter(std::string_view name, std::string_view help = "")
      DASPOS_EXCLUDES(mutex_);
  Gauge& GetGauge(std::string_view name, std::string_view help = "")
      DASPOS_EXCLUDES(mutex_);
  /// `bounds` must be ascending; they are fixed on first registration.
  Histogram& GetHistogram(std::string_view name, std::vector<double> bounds,
                          std::string_view help = "")
      DASPOS_EXCLUDES(mutex_);

  /// Current value of a counter/gauge by name; 0 when not registered.
  /// (Tests use before/after deltas of these.)
  uint64_t CounterValue(std::string_view name) const DASPOS_EXCLUDES(mutex_);
  int64_t GaugeValue(std::string_view name) const DASPOS_EXCLUDES(mutex_);

  /// Sorted-by-name copy of every instrument's current state.
  MetricsSnapshot Snapshot() const DASPOS_EXCLUDES(mutex_);

  /// Prometheus text exposition format (text/plain; version=0.0.4):
  /// # HELP / # TYPE headers, cumulative histogram buckets with inclusive
  /// `le` labels, series sorted by metric name.
  std::string RenderPrometheus() const;

  /// Zeroes every value. Handles stay valid; registrations stay in place.
  void ResetForTesting() DASPOS_EXCLUDES(mutex_);

 private:
  struct Entry {
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;

    bool has_instrument() const {
      return counter != nullptr || gauge != nullptr || histogram != nullptr;
    }
  };

  /// Finds (creating a bare, instrument-less entry if absent) the entry for
  /// `name`. The caller holds the registry mutex and attaches the right
  /// instrument kind.
  Entry& EntryFor(std::string_view name, std::string_view help)
      DASPOS_REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::map<std::string, Entry, std::less<>> entries_ DASPOS_GUARDED_BY(mutex_);
};

/// Canonical metric names — the single source both the instrumented
/// subsystems and RegisterStandardMetrics use, so exposition and
/// documentation cannot drift from the code.
namespace metric_names {
// Workflow engine.
inline constexpr char kWorkflowExecutionsTotal[] =
    "daspos_workflow_executions_total";
inline constexpr char kWorkflowStepsTotal[] = "daspos_workflow_steps_total";
inline constexpr char kWorkflowStepFailuresTotal[] =
    "daspos_workflow_step_failures_total";
inline constexpr char kWorkflowStepRetriesTotal[] =
    "daspos_workflow_step_retries_total";
inline constexpr char kWorkflowCheckpointRestoresTotal[] =
    "daspos_workflow_checkpoint_restores_total";
inline constexpr char kWorkflowStepWallMs[] = "daspos_workflow_step_wall_ms";
// Thread pool.
inline constexpr char kPoolTasksTotal[] = "daspos_pool_tasks_total";
inline constexpr char kPoolBusyUsTotal[] = "daspos_pool_busy_us_total";
inline constexpr char kPoolQueueDepth[] = "daspos_pool_queue_depth";
inline constexpr char kPoolTaskWallMs[] = "daspos_pool_task_wall_ms";
// Object store (FileObjectStore).
inline constexpr char kArchivePutTotal[] = "daspos_archive_put_total";
inline constexpr char kArchiveGetTotal[] = "daspos_archive_get_total";
inline constexpr char kArchiveVerifyTotal[] = "daspos_archive_verify_total";
inline constexpr char kArchivePutBytesTotal[] =
    "daspos_archive_put_bytes_total";
inline constexpr char kArchiveGetBytesTotal[] =
    "daspos_archive_get_bytes_total";
inline constexpr char kArchiveCacheHitsTotal[] =
    "daspos_archive_digest_cache_hits_total";
inline constexpr char kArchiveCacheMissesTotal[] =
    "daspos_archive_digest_cache_misses_total";
inline constexpr char kArchiveCacheInvalidationsTotal[] =
    "daspos_archive_digest_cache_invalidations_total";
inline constexpr char kArchiveQuarantinesTotal[] =
    "daspos_archive_quarantines_total";
inline constexpr char kArchiveGetWallMs[] = "daspos_archive_get_wall_ms";
inline constexpr char kArchivePutWallMs[] = "daspos_archive_put_wall_ms";
inline constexpr char kArchiveWalkErrorsTotal[] =
    "daspos_archive_walk_errors_total";
inline constexpr char kArchiveQuarantineErrorsTotal[] =
    "daspos_archive_quarantine_errors_total";
// Replicated store (src/archive/replicated_store.cc).
inline constexpr char kArchiveReadRepairsTotal[] =
    "daspos_archive_read_repairs_total";
inline constexpr char kArchiveDegradedReadsTotal[] =
    "daspos_archive_degraded_reads_total";
inline constexpr char kArchiveReplicaPutFailuresTotal[] =
    "daspos_archive_replica_put_failures_total";
inline constexpr char kArchiveReplicaFallbacksTotal[] =
    "daspos_archive_replica_fallbacks_total";
// Bit-preservation scrubber (src/archive/scrub.cc).
inline constexpr char kScrubPassesTotal[] = "daspos_scrub_passes_total";
inline constexpr char kScrubObjectsTotal[] = "daspos_scrub_objects_total";
inline constexpr char kScrubRepairsTotal[] = "daspos_scrub_repairs_total";
inline constexpr char kScrubUnrepairableTotal[] =
    "daspos_scrub_unrepairable_total";
inline constexpr char kScrubBatchWallMs[] = "daspos_scrub_batch_wall_ms";
// Store-generation migration (src/archive/migrate.cc).
inline constexpr char kMigrateObjectsTotal[] = "daspos_migrate_objects_total";
inline constexpr char kMigrateBytesTotal[] = "daspos_migrate_bytes_total";
inline constexpr char kMigrateResumedTotal[] = "daspos_migrate_resumed_total";
inline constexpr char kMigrateVerifyFailuresTotal[] =
    "daspos_migrate_verify_failures_total";
// Packfile backend (src/archive/pack_store.cc).
inline constexpr char kPackAppendsTotal[] = "daspos_pack_appends_total";
inline constexpr char kPackAppendBytesTotal[] =
    "daspos_pack_append_bytes_total";
inline constexpr char kPackReadsTotal[] = "daspos_pack_reads_total";
inline constexpr char kPackReadBytesTotal[] = "daspos_pack_read_bytes_total";
inline constexpr char kPackMmapReadsTotal[] = "daspos_pack_mmap_reads_total";
inline constexpr char kPackCompressedBlobsTotal[] =
    "daspos_pack_compressed_blobs_total";
inline constexpr char kPackCompressionSavedBytesTotal[] =
    "daspos_pack_compression_saved_bytes_total";
inline constexpr char kPackChecksumFailuresTotal[] =
    "daspos_pack_checksum_failures_total";
inline constexpr char kPackIndexRebuildsTotal[] =
    "daspos_pack_index_rebuilds_total";
inline constexpr char kPackTornRecordsTotal[] =
    "daspos_pack_torn_records_total";
inline constexpr char kPackSegmentsCreatedTotal[] =
    "daspos_pack_segments_created_total";
inline constexpr char kPackQuarantinesTotal[] =
    "daspos_pack_quarantines_total";
// Continuous-validation farm (src/validate).
inline constexpr char kValidationRunsTotal[] = "daspos_validation_runs_total";
inline constexpr char kValidationCellsTotal[] =
    "daspos_validation_cells_total";
inline constexpr char kValidationPassTotal[] = "daspos_validation_pass_total";
inline constexpr char kValidationWarnTotal[] = "daspos_validation_warn_total";
inline constexpr char kValidationFailTotal[] = "daspos_validation_fail_total";
inline constexpr char kValidationHistogramsTotal[] =
    "daspos_validation_histograms_compared_total";
inline constexpr char kValidationCellWallMs[] =
    "daspos_validation_cell_wall_ms";
// Network service (src/net/server.cc, dasposd).
inline constexpr char kNetConnectionsTotal[] = "daspos_net_connections_total";
inline constexpr char kNetActiveConnections[] =
    "daspos_net_active_connections";
inline constexpr char kNetRequestsTotal[] = "daspos_net_requests_total";
inline constexpr char kNetRequestErrorsTotal[] =
    "daspos_net_request_errors_total";
inline constexpr char kNetProtocolErrorsTotal[] =
    "daspos_net_protocol_errors_total";
inline constexpr char kNetBytesReadTotal[] = "daspos_net_bytes_read_total";
inline constexpr char kNetBytesWrittenTotal[] =
    "daspos_net_bytes_written_total";
inline constexpr char kNetBackpressureStallsTotal[] =
    "daspos_net_backpressure_stalls_total";
inline constexpr char kNetDrainsTotal[] = "daspos_net_drains_total";
inline constexpr char kNetRequestWallMs[] = "daspos_net_request_wall_ms";
// Linter.
inline constexpr char kLintArtifactsTotal[] = "daspos_lint_artifacts_total";
inline constexpr char kLintFindingsTotal[] = "daspos_lint_findings_total";
// Step bodies.
inline constexpr char kRecoEventsTotal[] = "daspos_reco_events_total";
inline constexpr char kTiersInputEventsTotal[] =
    "daspos_tiers_input_events_total";
inline constexpr char kTiersOutputEventsTotal[] =
    "daspos_tiers_output_events_total";
inline constexpr char kRivetEventsTotal[] = "daspos_rivet_events_total";
}  // namespace metric_names

/// Registers every standard instrument (zero-valued until its subsystem
/// runs), so `daspos metrics` exposes the full catalogue even for a process
/// that has not touched a given path yet. Idempotent.
void RegisterStandardMetrics(MetricsRegistry& registry =
                                 MetricsRegistry::Global());

}  // namespace daspos

#endif  // DASPOS_SUPPORT_METRICS_REGISTRY_H_
