// Fast non-cryptographic 64-bit checksum (XXH64 algorithm) for storage
// integrity gates where SHA-256 would dominate the cost of the operation.
//
// Role in the archive's integrity model: the SHA-256 object id <-> bytes
// binding is established once, at Put/repack time, and re-audited by
// Verify/scrub (which ALWAYS hash the full payload). Checksum64 is the
// cheap per-read gate that detects media rot and torn writes on the hot
// Get path at memory bandwidth instead of hash bandwidth — the same
// layering git uses (SHA-1 ids, CRC32 pack records) and ZFS uses
// (fletcher per block, sha256 on demand). It is NOT collision-resistant
// and must never be used to derive object identity.
#ifndef DASPOS_SUPPORT_CHECKSUM_H_
#define DASPOS_SUPPORT_CHECKSUM_H_

#include <cstdint>
#include <string_view>

namespace daspos {

/// XXH64 of `data` with the given seed. Byte-exact with the reference
/// xxHash implementation, so checksums embedded in on-disk formats stay
/// stable across compilers and releases.
uint64_t Checksum64(std::string_view data, uint64_t seed = 0);

}  // namespace daspos

#endif  // DASPOS_SUPPORT_CHECKSUM_H_
