#include "support/parallel.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "support/sync.h"
#include "support/threadpool.h"

namespace daspos {

std::pair<size_t, size_t> ChunkPlan::Bounds(size_t chunk) const {
  size_t base = count / chunk_count;
  size_t remainder = count % chunk_count;
  size_t begin = chunk * base + std::min(chunk, remainder);
  size_t end = begin + base + (chunk < remainder ? 1 : 0);
  return {begin, end};
}

ChunkPlan PlanChunks(size_t count, size_t grain) {
  ChunkPlan plan;
  plan.count = count;
  if (count == 0) return plan;
  if (grain == 0) grain = 1;
  plan.chunk_count = std::min(count / grain, ChunkPlan::kMaxChunks);
  if (plan.chunk_count == 0) plan.chunk_count = 1;
  return plan;
}

namespace {

/// State shared between the caller and pool helpers for one region. Helpers
/// hold a shared_ptr, so a helper that starts after the caller has already
/// returned (every chunk claimed) still finds valid memory, claims nothing,
/// and exits.
struct RegionState {
  explicit RegionState(const std::function<void(size_t, size_t, size_t)>& b)
      : body(b) {}

  const std::function<void(size_t, size_t, size_t)>& body;
  ChunkPlan plan;
  std::atomic<size_t> next_chunk{0};
  Mutex mutex;
  CondVar all_done;
  size_t done DASPOS_GUARDED_BY(mutex) = 0;
};

/// Claims and runs chunks until the cursor is exhausted. Runs on the calling
/// thread and on pool helpers alike.
void DrainChunks(const std::shared_ptr<RegionState>& state) {
  // Dereference once: the analysis tracks capability expressions by base
  // object, so `s.mutex` and `s.done` must share the same base.
  RegionState& s = *state;
  for (;;) {
    size_t chunk = s.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= s.plan.chunk_count) return;
    auto [begin, end] = s.plan.Bounds(chunk);
    s.body(chunk, begin, end);
    MutexLock lock(s.mutex);
    if (++s.done == s.plan.chunk_count) s.all_done.NotifyAll();
  }
}

}  // namespace

void ForEachChunk(ThreadPool* pool, size_t count, size_t grain,
                  const std::function<void(size_t, size_t, size_t)>& body) {
  ChunkPlan plan = PlanChunks(count, grain);
  if (plan.chunk_count == 0) return;
  if (pool == nullptr || pool->thread_count() <= 1 || plan.chunk_count <= 1) {
    for (size_t chunk = 0; chunk < plan.chunk_count; ++chunk) {
      auto [begin, end] = plan.Bounds(chunk);
      body(chunk, begin, end);
    }
    return;
  }

  auto state = std::make_shared<RegionState>(body);
  state->plan = plan;
  // The caller claims chunks too, so at most chunk_count - 1 helpers can
  // ever find work; extra submissions would only queue no-ops.
  size_t helpers =
      std::min(pool->thread_count(), plan.chunk_count) - 1;
  for (size_t i = 0; i < helpers; ++i) {
    pool->Submit([state] { DrainChunks(state); });
  }
  DrainChunks(state);
  RegionState& s = *state;
  MutexLock lock(s.mutex);
  // Explicit predicate loop (not cv.wait(lock, pred)): the analysis treats
  // a predicate lambda as a separate function and cannot see that it runs
  // under the lock.
  while (s.done != s.plan.chunk_count) s.all_done.Wait(s.mutex);
}

}  // namespace daspos
