// ASCII table rendering used by the bench harnesses to regenerate the
// paper's tables (Table 1, the maturity grids) in a readable fixed-width form.
#ifndef DASPOS_SUPPORT_TABLE_H_
#define DASPOS_SUPPORT_TABLE_H_

#include <string>
#include <vector>

namespace daspos {

/// Builds a fixed-width text table with a header row and column separators.
/// Cells are stored as strings; the renderer computes column widths and wraps
/// nothing (keep cells short).
class TextTable {
 public:
  /// Sets the header row; resets nothing else.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row. Rows may have fewer cells than the header; missing
  /// cells render empty. Extra cells are kept and widen the table.
  void AddRow(std::vector<std::string> row);

  /// Optional caption printed above the table.
  void SetTitle(std::string title);

  size_t row_count() const { return rows_.size(); }

  /// Renders the table with `|` separators and a rule under the header.
  std::string Render() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace daspos

#endif  // DASPOS_SUPPORT_TABLE_H_
