// Annotated synchronization layer: the one place the preservation stack
// takes a lock. Every primitive here carries Clang Thread Safety Analysis
// attributes, so on a Clang build with -DDASPOS_THREAD_SAFETY=ON the
// compiler proves, on every build, that each DASPOS_GUARDED_BY field is
// only touched with its mutex held, that no path returns while holding a
// lock, and that no lock is acquired twice. On non-Clang toolchains every
// macro expands to nothing and the wrappers cost exactly what the std
// primitives underneath them cost.
//
// Why compile-time: the paper's promise is that a preserved analysis
// re-executes identically years later, and lock-discipline drift is the
// classic way that promise silently rots. TSan (tools/check.sh --tsan)
// only samples the interleavings the test suite happens to produce; the
// analysis checks every guarded access on every translation unit, every
// time. See docs/STATIC_ANALYSIS.md for conventions and the lock
// hierarchy.
#ifndef DASPOS_SUPPORT_SYNC_H_
#define DASPOS_SUPPORT_SYNC_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// Thread-safety attributes are a Clang extension; GCC and MSVC see empty
// macros (and must, or they would error on the unknown attributes).
#if defined(__clang__) && !defined(SWIG)
#define DASPOS_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define DASPOS_THREAD_ANNOTATION__(x)
#endif

/// Marks a class as a capability (lockable). The string names the
/// capability kind in diagnostics ("mutex", "shared_mutex").
#define DASPOS_CAPABILITY(x) DASPOS_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define DASPOS_SCOPED_CAPABILITY DASPOS_THREAD_ANNOTATION__(scoped_lockable)

/// Field may only be read or written with the named mutex held.
#define DASPOS_GUARDED_BY(x) DASPOS_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer field whose *pointee* is guarded by the named mutex.
#define DASPOS_PT_GUARDED_BY(x) DASPOS_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Documents (and checks, under -Wthread-safety-beta) lock ordering.
#define DASPOS_ACQUIRED_BEFORE(...) \
  DASPOS_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define DASPOS_ACQUIRED_AFTER(...) \
  DASPOS_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// Function requires the capability held (exclusively / shared) on entry,
/// and leaves it held on exit. The convention for private *Locked helpers.
#define DASPOS_REQUIRES(...) \
  DASPOS_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define DASPOS_REQUIRES_SHARED(...) \
  DASPOS_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (must not be held on entry).
#define DASPOS_ACQUIRE(...) \
  DASPOS_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define DASPOS_ACQUIRE_SHARED(...) \
  DASPOS_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (must be held on entry).
#define DASPOS_RELEASE(...) \
  DASPOS_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define DASPOS_RELEASE_SHARED(...) \
  DASPOS_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define DASPOS_RELEASE_GENERIC(...) \
  DASPOS_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define DASPOS_TRY_ACQUIRE(...) \
  DASPOS_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (re-entrancy guard on public
/// methods of classes whose private methods take the same lock).
#define DASPOS_EXCLUDES(...) \
  DASPOS_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (trusted by the analysis).
#define DASPOS_ASSERT_CAPABILITY(x) \
  DASPOS_THREAD_ANNOTATION__(assert_capability(x))

/// Function returns a reference to the named capability.
#define DASPOS_RETURN_CAPABILITY(x) \
  DASPOS_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: the function is excluded from analysis. Every use needs a
/// comment explaining why the invariant holds anyway.
#define DASPOS_NO_THREAD_SAFETY_ANALYSIS \
  DASPOS_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace daspos {

/// Annotated exclusive mutex. Lock/Unlock/TryLock are the DASPOS
/// spellings; the lowercase BasicLockable aliases exist so CondVar (a
/// condition_variable_any) can wait on a Mutex directly.
class DASPOS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DASPOS_ACQUIRE() { mu_.lock(); }
  void Unlock() DASPOS_RELEASE() { mu_.unlock(); }
  bool TryLock() DASPOS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void lock() DASPOS_ACQUIRE() { mu_.lock(); }
  void unlock() DASPOS_RELEASE() { mu_.unlock(); }
  bool try_lock() DASPOS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Annotated reader/writer mutex (WorkflowContext's dataset map: many
/// concurrent step reads, rare write-once inserts).
class DASPOS_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() DASPOS_ACQUIRE() { mu_.lock(); }
  void Unlock() DASPOS_RELEASE() { mu_.unlock(); }
  void LockShared() DASPOS_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() DASPOS_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over a Mutex, held for the full scope.
class DASPOS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DASPOS_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() DASPOS_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive lock that can be released before scope exit (publish
/// under the lock, then notify or do I/O outside it). The destructor
/// releases only if Release() was never called.
class DASPOS_SCOPED_CAPABILITY ReleasableMutexLock {
 public:
  explicit ReleasableMutexLock(Mutex& mu) DASPOS_ACQUIRE(mu) : mu_(&mu) {
    mu_->Lock();
  }
  ~ReleasableMutexLock() DASPOS_RELEASE() {
    if (mu_ != nullptr) mu_->Unlock();
  }

  /// Releases the lock early. Calling twice is a checked (compile-time)
  /// error under the analysis and undefined behaviour without it.
  void Release() DASPOS_RELEASE() {
    mu_->Unlock();
    mu_ = nullptr;
  }

  ReleasableMutexLock(const ReleasableMutexLock&) = delete;
  ReleasableMutexLock& operator=(const ReleasableMutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// RAII exclusive (writer) lock over a SharedMutex.
class DASPOS_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) DASPOS_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() DASPOS_RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock over a SharedMutex.
class DASPOS_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) DASPOS_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() DASPOS_RELEASE() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to an annotated Mutex. Wait requires the mutex
/// held, which forces call sites into the analyzable shape:
///
///   MutexLock lock(mu_);
///   while (!predicate_over_guarded_fields()) cv_.Wait(mu_);
///
/// (A lambda predicate passed into std::condition_variable::wait would be
/// analyzed as a separate function that reads guarded fields without the
/// lock — the explicit loop keeps the guarded reads inside the locked
/// scope the analysis can see.)
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires before returning.
  /// Spurious wakeups happen; always wait in a predicate loop.
  void Wait(Mutex& mu) DASPOS_REQUIRES(mu) { cv_.wait(mu); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace daspos

#endif  // DASPOS_SUPPORT_SYNC_H_
