// SHA-256 (FIPS 180-4). Used for archive fixity and content addressing.
// Self-contained implementation: the preservation archive must not depend on
// the presence of a system crypto library to verify its own holdings.
#ifndef DASPOS_SUPPORT_SHA256_H_
#define DASPOS_SUPPORT_SHA256_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace daspos {

/// Incremental SHA-256 hasher.
///
///   Sha256 h;
///   h.Update(chunk1);
///   h.Update(chunk2);
///   std::string hex = h.HexDigest();
class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;

  Sha256() { Reset(); }

  /// Resets to the initial state (empty message).
  void Reset();

  /// Absorbs `len` bytes at `data`.
  void Update(const void* data, size_t len);
  void Update(std::string_view data) { Update(data.data(), data.size()); }

  /// Finalizes and returns the 32-byte digest. The hasher is left finalized;
  /// call Reset() to reuse.
  std::array<uint8_t, kDigestSize> Digest();

  /// Finalizes and returns the digest as 64 lowercase hex characters.
  std::string HexDigest();

  /// One-shot convenience: hex digest of `data`.
  static std::string HashHex(std::string_view data);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t bit_count_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

}  // namespace daspos

#endif  // DASPOS_SUPPORT_SHA256_H_
