// LZSS compression. Self-contained (a preservation archive must be able to
// decompress its own holdings with zero external dependencies), byte-exact,
// and deliberately simple: correctness and longevity over ratio.
//
// Stream layout: "DZ01" magic, varint raw size, then token groups: a flag
// byte announces 8 items, bit set = (u16 offset, u8 length) back-reference,
// bit clear = literal byte.
#ifndef DASPOS_SUPPORT_COMPRESS_H_
#define DASPOS_SUPPORT_COMPRESS_H_

#include <string>
#include <string_view>

#include "support/result.h"

namespace daspos {

/// Compresses `data`. Output is never catastrophically larger than the
/// input (worst case: 9/8 of input plus a small header).
std::string Compress(std::string_view data);

/// Decompresses a Compress() stream; Corruption on malformed input.
Result<std::string> Decompress(std::string_view compressed);

}  // namespace daspos

#endif  // DASPOS_SUPPORT_COMPRESS_H_
