// Deterministic random-number generation for the toy Monte-Carlo chain.
// Reproducibility is a preservation requirement: a preserved analysis must
// regenerate bit-identical event samples from a recorded seed, so we own the
// generator and the distributions instead of relying on <random>'s
// implementation-defined algorithms.
#ifndef DASPOS_SUPPORT_RNG_H_
#define DASPOS_SUPPORT_RNG_H_

#include <cstdint>

namespace daspos {

/// xoshiro256** PRNG seeded via splitmix64. Fast, high-quality, and fully
/// specified, so sequences are stable across platforms and compilers.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal sequences forever.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { Seed(seed); }

  void Seed(uint64_t seed);

  /// Next 64 uniformly random bits.
  uint64_t NextU64();

  /// Uniform in [0, 1).
  double Uniform();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double Gauss();

  /// Normal with the given mean and sigma.
  double Gauss(double mean, double sigma);

  /// Exponential with the given mean (> 0).
  double Exponential(double mean);

  /// Poisson-distributed count with the given mean (>= 0).
  /// Uses inversion for small means and normal approximation above 50.
  uint64_t Poisson(double mean);

  /// Non-relativistic Breit-Wigner (Cauchy) draw with location `mean` and
  /// full width at half maximum `gamma`; used for resonance masses.
  double BreitWigner(double mean, double gamma);

  /// True with probability p (clamped to [0,1]).
  bool Accept(double p);

  /// Forks an independent stream for a sub-task; deterministic in (this
  /// stream's state, label).
  Rng Fork(uint64_t label);

 private:
  uint64_t s_[4];
};

}  // namespace daspos

#endif  // DASPOS_SUPPORT_RNG_H_
