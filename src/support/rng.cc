#include "support/rng.h"

#include <cmath>

namespace daspos {
namespace {

inline uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

inline uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

constexpr double kPi = 3.14159265358979323846;

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextU64() {
  uint64_t result = RotL(s_[1] * 5, 7) * 9;
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = RotL(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 top bits -> double in [0,1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  // Rejection to remove modulo bias.
  uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

double Rng::Gauss() {
  // Box-Muller; draw u1 away from zero to keep log() finite.
  double u1;
  do {
    u1 = Uniform();
  } while (u1 <= 0.0);
  double u2 = Uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * kPi * u2);
}

double Rng::Gauss(double mean, double sigma) { return mean + sigma * Gauss(); }

double Rng::Exponential(double mean) {
  double u;
  do {
    u = Uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

uint64_t Rng::Poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 50.0) {
    // Knuth inversion.
    double l = std::exp(-mean);
    uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= Uniform();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation with continuity correction, floored at zero.
  double draw = Gauss(mean, std::sqrt(mean)) + 0.5;
  return draw < 0.0 ? 0 : static_cast<uint64_t>(draw);
}

double Rng::BreitWigner(double mean, double gamma) {
  double u;
  do {
    u = Uniform();
  } while (u <= 0.0 || u >= 1.0);
  return mean + 0.5 * gamma * std::tan(kPi * (u - 0.5));
}

bool Rng::Accept(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

Rng Rng::Fork(uint64_t label) {
  // Mix the current stream with the label so forks with different labels are
  // independent and a fork does not perturb the parent more than one draw.
  uint64_t mixed = NextU64() ^ (label * 0x9e3779b97f4a7c15ull + 0x7f4a7c15ull);
  return Rng(mixed);
}

}  // namespace daspos
