#include "support/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "support/rng.h"

namespace daspos {

namespace {

bool DefaultRetryable(const Status& s) {
  return s.IsIOError() || s.IsDeadlineExceeded();
}

void DefaultSleeper(double millis) {
  if (millis <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(millis));
}

}  // namespace

double RetryBackoffMillis(const RetryPolicy& policy, int attempt,
                          uint64_t jitter_seed) {
  if (attempt < 1) attempt = 1;
  double backoff = policy.backoff_ms;
  for (int i = 1; i < attempt; ++i) {
    backoff *= policy.backoff_multiplier;
    if (backoff >= policy.max_backoff_ms) break;
  }
  backoff = std::min(backoff, policy.max_backoff_ms);
  if (policy.jitter > 0.0 && backoff > 0.0) {
    // Fork per attempt so the jitter for retry N does not depend on how many
    // draws earlier retries consumed.
    Rng rng = Rng(jitter_seed).Fork(static_cast<uint64_t>(attempt));
    double j = std::min(policy.jitter, 0.999);
    backoff *= rng.Uniform(1.0 - j, 1.0 + j);
  }
  return backoff;
}

Status RetryCall(const RetryPolicy& policy, const std::function<Status()>& op,
                 const std::string& what) {
  const auto& retryable =
      policy.retryable ? policy.retryable
                       : std::function<bool(const Status&)>(DefaultRetryable);
  const auto& sleeper =
      policy.sleeper ? policy.sleeper
                     : std::function<void(double)>(DefaultSleeper);
  const int attempts = std::max(policy.max_attempts, 1);
  double elapsed_ms = 0.0;
  Status last = Status::OK();
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    last = op();
    if (last.ok()) return last;
    if (!retryable(last)) return last;
    if (attempt == attempts) break;
    double backoff = RetryBackoffMillis(policy, attempt, policy.jitter_seed);
    if (policy.deadline_ms > 0.0 && elapsed_ms + backoff > policy.deadline_ms) {
      return Status::DeadlineExceeded(
          what + ": retry deadline exceeded after " + std::to_string(attempt) +
          " attempt(s); last error: " + last.ToString());
    }
    sleeper(backoff);
    elapsed_ms += backoff;
  }
  return last;
}

}  // namespace daspos
