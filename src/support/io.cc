#include "support/io.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "support/sha256.h"

namespace daspos {

namespace fs = std::filesystem;

namespace {

// Streaming read granularity: large enough to amortize syscalls, small
// enough that the hash pipeline stays in cache.
constexpr size_t kHashChunkBytes = 256 * 1024;

/// Shared streaming core: reads `path` chunk by chunk, updating `hasher`
/// with every chunk; appends the bytes to `*contents` when non-null.
Status StreamFile(const std::string& path, Sha256& hasher,
                  std::string* contents) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string chunk(kHashChunkBytes, '\0');
  for (;;) {
    in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    std::streamsize got = in.gcount();
    if (got > 0) {
      std::string_view view(chunk.data(), static_cast<size_t>(got));
      hasher.Update(view);
      if (contents != nullptr) contents->append(view);
    }
    if (in.eof()) return Status::OK();
    if (!in) return Status::IOError("short read: " + path);
  }
}

}  // namespace

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string data;
  in.seekg(0, std::ios::end);
  std::streampos size = in.tellg();
  if (size < 0) return Status::IOError("cannot stat: " + path);
  data.resize(static_cast<size_t>(size));
  in.seekg(0);
  in.read(data.data(), size);
  if (!in) return Status::IOError("short read: " + path);
  return data;
}

Result<std::string> ReadFileHashed(const std::string& path,
                                   std::string* sha256_hex) {
  Sha256 hasher;
  std::string contents;
  std::error_code ec;
  uintmax_t size = fs::file_size(path, ec);
  if (!ec) contents.reserve(static_cast<size_t>(size));
  DASPOS_RETURN_IF_ERROR(StreamFile(path, hasher, &contents));
  if (sha256_hex != nullptr) *sha256_hex = hasher.HexDigest();
  return contents;
}

Result<std::string> HashFileHex(const std::string& path) {
  Sha256 hasher;
  DASPOS_RETURN_IF_ERROR(StreamFile(path, hasher, nullptr));
  return hasher.HexDigest();
}

Status WriteStringToFile(const std::string& path, std::string_view data) {
  std::error_code ec;
  fs::path p(path);
  if (p.has_parent_path()) {
    fs::create_directories(p.parent_path(), ec);
    if (ec) {
      return Status::IOError("cannot create directories for: " + path + ": " +
                             ec.message());
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.flush();
  if (!out) return Status::IOError("short write: " + path);
  return Status::OK();
}

Status AtomicWriteFile(const std::string& path, std::string_view data) {
  std::error_code ec;
  fs::path target(path);
  if (target.has_parent_path()) {
    fs::create_directories(target.parent_path(), ec);
    if (ec) {
      return Status::IOError("cannot create directories for: " + path + ": " +
                             ec.message());
    }
  }
  // The temporary lives in the target's directory so the final rename never
  // crosses a filesystem boundary (rename is only atomic within one).
  static std::atomic<uint64_t> counter{0};
  std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                    std::to_string(counter.fetch_add(1));
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open for write: " + tmp + ": " +
                           std::strerror(errno));
  }
  const char* cursor = data.data();
  size_t remaining = data.size();
  while (remaining > 0) {
    ssize_t written = ::write(fd, cursor, remaining);
    if (written < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      ::close(fd);
      (void)::unlink(tmp.c_str());
      return Status::IOError("short write: " + tmp + ": " +
                             std::strerror(saved));
    }
    cursor += written;
    remaining -= static_cast<size_t>(written);
  }
  // Durability point: the bytes must be on stable storage before the rename
  // publishes them, or a crash could leave a renamed-but-empty file.
  if (::fsync(fd) != 0) {
    int saved = errno;
    ::close(fd);
    (void)::unlink(tmp.c_str());
    return Status::IOError("fsync failed: " + tmp + ": " +
                           std::strerror(saved));
  }
  if (::close(fd) != 0) {
    (void)::unlink(tmp.c_str());
    return Status::IOError("close failed: " + tmp);
  }
  fs::rename(tmp, target, ec);
  if (ec) {
    (void)::unlink(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " -> " + path + ": " +
                           ec.message());
  }
  // The rename is a directory-entry mutation, so it has its own durability
  // point: until the directory is synced, a crash can roll the entry back
  // even though the data fsync succeeded. Propagate failure — an atomic
  // write that may vanish must not report OK.
  if (target.has_parent_path()) {
    DASPOS_RETURN_IF_ERROR(FsyncDir(target.parent_path().string()));
  }
  return Status::OK();
}

Status FsyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IOError("cannot open directory for fsync: " + dir + ": " +
                           std::strerror(errno));
  }
  if (::fsync(fd) != 0) {
    int saved = errno;
    ::close(fd);
    return Status::IOError("directory fsync failed: " + dir + ": " +
                           std::strerror(saved));
  }
  ::close(fd);
  return Status::OK();
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return fs::is_regular_file(path, ec);
}

Status RemoveFile(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
  if (ec) return Status::IOError("cannot remove: " + path + ": " + ec.message());
  return Status::OK();
}

}  // namespace daspos
