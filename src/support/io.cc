#include "support/io.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>

namespace daspos {

namespace fs = std::filesystem;

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string data;
  in.seekg(0, std::ios::end);
  std::streampos size = in.tellg();
  if (size < 0) return Status::IOError("cannot stat: " + path);
  data.resize(static_cast<size_t>(size));
  in.seekg(0);
  in.read(data.data(), size);
  if (!in) return Status::IOError("short read: " + path);
  return data;
}

Status WriteStringToFile(const std::string& path, std::string_view data) {
  std::error_code ec;
  fs::path p(path);
  if (p.has_parent_path()) {
    fs::create_directories(p.parent_path(), ec);
    if (ec) {
      return Status::IOError("cannot create directories for: " + path + ": " +
                             ec.message());
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.flush();
  if (!out) return Status::IOError("short write: " + path);
  return Status::OK();
}

Status AtomicWriteFile(const std::string& path, std::string_view data) {
  std::error_code ec;
  fs::path target(path);
  if (target.has_parent_path()) {
    fs::create_directories(target.parent_path(), ec);
    if (ec) {
      return Status::IOError("cannot create directories for: " + path + ": " +
                             ec.message());
    }
  }
  // The temporary lives in the target's directory so the final rename never
  // crosses a filesystem boundary (rename is only atomic within one).
  static std::atomic<uint64_t> counter{0};
  std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                    std::to_string(counter.fetch_add(1));
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open for write: " + tmp + ": " +
                           std::strerror(errno));
  }
  const char* cursor = data.data();
  size_t remaining = data.size();
  while (remaining > 0) {
    ssize_t written = ::write(fd, cursor, remaining);
    if (written < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      ::close(fd);
      (void)::unlink(tmp.c_str());
      return Status::IOError("short write: " + tmp + ": " +
                             std::strerror(saved));
    }
    cursor += written;
    remaining -= static_cast<size_t>(written);
  }
  // Durability point: the bytes must be on stable storage before the rename
  // publishes them, or a crash could leave a renamed-but-empty file.
  if (::fsync(fd) != 0) {
    int saved = errno;
    ::close(fd);
    (void)::unlink(tmp.c_str());
    return Status::IOError("fsync failed: " + tmp + ": " +
                           std::strerror(saved));
  }
  if (::close(fd) != 0) {
    (void)::unlink(tmp.c_str());
    return Status::IOError("close failed: " + tmp);
  }
  fs::rename(tmp, target, ec);
  if (ec) {
    (void)::unlink(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " -> " + path + ": " +
                           ec.message());
  }
  // Best-effort directory sync so the rename itself survives a crash.
  if (target.has_parent_path()) {
    int dir_fd = ::open(target.parent_path().c_str(), O_RDONLY | O_DIRECTORY);
    if (dir_fd >= 0) {
      (void)::fsync(dir_fd);
      ::close(dir_fd);
    }
  }
  return Status::OK();
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return fs::is_regular_file(path, ec);
}

Status RemoveFile(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
  if (ec) return Status::IOError("cannot remove: " + path + ": " + ec.message());
  return Status::OK();
}

}  // namespace daspos
