#include "support/io.h"

#include <filesystem>
#include <fstream>

namespace daspos {

namespace fs = std::filesystem;

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string data;
  in.seekg(0, std::ios::end);
  std::streampos size = in.tellg();
  if (size < 0) return Status::IOError("cannot stat: " + path);
  data.resize(static_cast<size_t>(size));
  in.seekg(0);
  in.read(data.data(), size);
  if (!in) return Status::IOError("short read: " + path);
  return data;
}

Status WriteStringToFile(const std::string& path, std::string_view data) {
  std::error_code ec;
  fs::path p(path);
  if (p.has_parent_path()) {
    fs::create_directories(p.parent_path(), ec);
    if (ec) {
      return Status::IOError("cannot create directories for: " + path + ": " +
                             ec.message());
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.flush();
  if (!out) return Status::IOError("short write: " + path);
  return Status::OK();
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return fs::is_regular_file(path, ec);
}

Status RemoveFile(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
  if (ec) return Status::IOError("cannot remove: " + path + ": " + ec.message());
  return Status::OK();
}

}  // namespace daspos
