#include "support/threadpool.h"

#include <chrono>
#include <utility>

#include "support/metrics_registry.h"

namespace daspos {

ThreadPool::ThreadPool(size_t thread_count) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  tasks_total_ = &registry.GetCounter(metric_names::kPoolTasksTotal,
                                      "tasks executed by thread pools");
  busy_us_total_ =
      &registry.GetCounter(metric_names::kPoolBusyUsTotal,
                           "microseconds spent inside pool task bodies");
  queue_depth_ = &registry.GetGauge(metric_names::kPoolQueueDepth,
                                    "tasks queued but not yet running");
  task_wall_ms_ =
      &registry.GetHistogram(metric_names::kPoolTaskWallMs,
                             Histogram::DefaultLatencyBucketsMs(),
                             "per-task wall time");
  if (thread_count == 0) thread_count = 1;
  workers_.reserve(thread_count);
  for (size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    queue_.push_back(std::move(task));
  }
  queue_depth_->Add(1);
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mutex_);
  while (!(queue_.empty() && active_ == 0)) idle_.Wait(mutex_);
}

size_t ThreadPool::DefaultThreadCount() {
  size_t hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : hardware;
}

void ThreadPool::WorkerLoop() {
  // Manual Lock/Unlock rather than a scoped lock: the loop releases the
  // mutex around each task body and reacquires it afterwards, and the
  // analysis checks that the lockset is consistent on every path and at
  // the loop back-edge.
  mutex_.Lock();
  for (;;) {
    while (!stopping_ && queue_.empty()) work_available_.Wait(mutex_);
    if (queue_.empty()) {  // stopping_ and drained
      mutex_.Unlock();
      return;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    mutex_.Unlock();
    queue_depth_->Add(-1);
    auto task_start = std::chrono::steady_clock::now();
    task();
    double task_us = std::chrono::duration<double, std::micro>(
                         std::chrono::steady_clock::now() - task_start)
                         .count();
    tasks_total_->Increment();
    busy_us_total_->Increment(static_cast<uint64_t>(task_us));
    task_wall_ms_->Observe(task_us / 1000.0);
    mutex_.Lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_.NotifyAll();
  }
}

}  // namespace daspos
