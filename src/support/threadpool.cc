#include "support/threadpool.h"

#include <chrono>
#include <utility>

namespace daspos {

ThreadPool::ThreadPool(size_t thread_count) {
  if (thread_count == 0) thread_count = 1;
  workers_.reserve(thread_count);
  for (size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

ThreadPoolStats ThreadPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

size_t ThreadPool::DefaultThreadCount() {
  size_t hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : hardware;
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_available_.wait(lock,
                         [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping_ and drained
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    auto task_start = std::chrono::steady_clock::now();
    task();
    double task_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - task_start)
                         .count();
    lock.lock();
    --active_;
    ++stats_.tasks_executed;
    stats_.busy_ms += task_ms;
    if (queue_.empty() && active_ == 0) idle_.notify_all();
  }
}

}  // namespace daspos
