#include "support/checksum.h"

#include <cstring>

namespace daspos {

namespace {

constexpr uint64_t kPrime1 = 0x9E3779B185EBCA87ULL;
constexpr uint64_t kPrime2 = 0xC2B2AE3D27D4EB4FULL;
constexpr uint64_t kPrime3 = 0x165667B19E3779F9ULL;
constexpr uint64_t kPrime4 = 0x85EBCA77C2B2AE63ULL;
constexpr uint64_t kPrime5 = 0x27D4EB2F165667C5ULL;

inline uint64_t RotL(uint64_t value, int bits) {
  return (value << bits) | (value >> (64 - bits));
}

// Unaligned LITTLE-ENDIAN loads. The digest is persisted in pack record
// headers and sidecar indexes, so it must match the XXH64 LE definition on
// every host: memcpy-of-native-integers is only correct when the host is
// little-endian; everywhere else the words are assembled byte by byte
// (compilers lower the shift form to a single mov on LE targets anyway).
#if defined(__BYTE_ORDER__) && defined(__ORDER_LITTLE_ENDIAN__) && \
    __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
#define DASPOS_CHECKSUM_NATIVE_LE 1
#else
#define DASPOS_CHECKSUM_NATIVE_LE 0
#endif

inline uint64_t Load64(const unsigned char* p) {
#if DASPOS_CHECKSUM_NATIVE_LE
  uint64_t value;
  std::memcpy(&value, p, sizeof(value));
  return value;
#else
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return value;
#endif
}

inline uint32_t Load32(const unsigned char* p) {
#if DASPOS_CHECKSUM_NATIVE_LE
  uint32_t value;
  std::memcpy(&value, p, sizeof(value));
  return value;
#else
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(p[i]) << (8 * i);
  }
  return value;
#endif
}

inline uint64_t Round(uint64_t acc, uint64_t input) {
  acc += input * kPrime2;
  acc = RotL(acc, 31);
  return acc * kPrime1;
}

inline uint64_t MergeRound(uint64_t hash, uint64_t acc) {
  hash ^= Round(0, acc);
  return hash * kPrime1 + kPrime4;
}

}  // namespace

uint64_t Checksum64(std::string_view data, uint64_t seed) {
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(data.data());
  const unsigned char* const end = p + data.size();
  uint64_t hash;

  if (data.size() >= 32) {
    // Four independent 8-byte lanes per 32-byte stripe keep the multiplier
    // pipelines busy — this is what makes XXH64 run at memory bandwidth.
    uint64_t v1 = seed + kPrime1 + kPrime2;
    uint64_t v2 = seed + kPrime2;
    uint64_t v3 = seed;
    uint64_t v4 = seed - kPrime1;
    const unsigned char* const stripe_end = end - 32;
    do {
      v1 = Round(v1, Load64(p));
      v2 = Round(v2, Load64(p + 8));
      v3 = Round(v3, Load64(p + 16));
      v4 = Round(v4, Load64(p + 24));
      p += 32;
    } while (p <= stripe_end);
    hash = RotL(v1, 1) + RotL(v2, 7) + RotL(v3, 12) + RotL(v4, 18);
    hash = MergeRound(hash, v1);
    hash = MergeRound(hash, v2);
    hash = MergeRound(hash, v3);
    hash = MergeRound(hash, v4);
  } else {
    hash = seed + kPrime5;
  }

  hash += static_cast<uint64_t>(data.size());

  while (p + 8 <= end) {
    hash ^= Round(0, Load64(p));
    hash = RotL(hash, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    hash ^= static_cast<uint64_t>(Load32(p)) * kPrime1;
    hash = RotL(hash, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    hash ^= static_cast<uint64_t>(*p) * kPrime5;
    hash = RotL(hash, 11) * kPrime1;
    ++p;
  }

  hash ^= hash >> 33;
  hash *= kPrime2;
  hash ^= hash >> 29;
  hash *= kPrime3;
  hash ^= hash >> 32;
  return hash;
}

}  // namespace daspos
