// Result<T>: value-or-Status, the companion of Status for functions that
// produce a value on success.
#ifndef DASPOS_SUPPORT_RESULT_H_
#define DASPOS_SUPPORT_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "support/status.h"

namespace daspos {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent. Never holds both an OK status and no value.
template <typename T>
class Result {
 public:
  /// Implicit from a value: success.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit from a non-OK status: failure. Constructing from an OK status
  /// is a programming error.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Access the value. Must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Value if ok, otherwise the supplied fallback.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Unwraps a Result into `lhs`, returning the error Status on failure.
/// Usage: DASPOS_ASSIGN_OR_RETURN(auto x, ComputeX());
#define DASPOS_ASSIGN_OR_RETURN(lhs, rexpr)                    \
  DASPOS_ASSIGN_OR_RETURN_IMPL(                                \
      DASPOS_RESULT_CONCAT_(_result_, __LINE__), lhs, rexpr)

#define DASPOS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#define DASPOS_RESULT_CONCAT_(a, b) DASPOS_RESULT_CONCAT_IMPL_(a, b)
#define DASPOS_RESULT_CONCAT_IMPL_(a, b) a##b

}  // namespace daspos

#endif  // DASPOS_SUPPORT_RESULT_H_
