#include "support/strings.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace daspos {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t b = 0;
  size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string HexEncode(std::string_view bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (char c : bytes) {
    unsigned char byte = static_cast<unsigned char>(c);
    out.push_back(kDigits[byte >> 4]);
    out.push_back(kDigits[byte & 0x0f]);
  }
  return out;
}

Result<std::string> HexDecode(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return Status::InvalidArgument("hex string has odd length");
  }
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::string out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = nibble(hex[i]);
    int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("non-hex character in hex string");
    }
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
  return buf;
}

std::string FormatBytes(uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, kUnits[unit]);
  }
  return buf;
}

Result<uint64_t> ParseU64(std::string_view text) {
  text = Trim(text);
  if (text.empty()) return Status::InvalidArgument("empty integer");
  uint64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument("bad integer: '" + std::string(text) + "'");
  }
  return value;
}

Result<double> ParseDouble(std::string_view text) {
  text = Trim(text);
  if (text.empty()) return Status::InvalidArgument("empty double");
  // std::from_chars for double is available in libstdc++ 11+; use it.
  double value = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument("bad double: '" + std::string(text) + "'");
  }
  return value;
}

}  // namespace daspos
