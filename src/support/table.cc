#include "support/table.h"

#include <algorithm>

namespace daspos {

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TextTable::SetTitle(std::string title) { title_ = std::move(title); }

std::string TextTable::Render() const {
  size_t cols = header_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.size());

  std::vector<size_t> widths(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t i = 0; i < cols; ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      line += " " + cell + std::string(widths[i] - cell.size(), ' ') + " |";
    }
    line += "\n";
    return line;
  };

  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  if (!header_.empty()) {
    out += render_row(header_);
    std::string rule = "|";
    for (size_t i = 0; i < cols; ++i) {
      rule += std::string(widths[i] + 2, '-') + "|";
    }
    out += rule + "\n";
  }
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace daspos
