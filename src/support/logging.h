// Minimal leveled logging to stderr. Subsystems log sparingly; the default
// level is kWarning so tests and benches stay quiet.
#ifndef DASPOS_SUPPORT_LOGGING_H_
#define DASPOS_SUPPORT_LOGGING_H_

#include <sstream>
#include <string>

namespace daspos {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the process-wide minimum level that is emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits `message` at `level` if it passes the threshold.
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

/// Stream collector whose destructor emits the accumulated line.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define DASPOS_LOG(level) \
  ::daspos::internal::LogLine(::daspos::LogLevel::level)

}  // namespace daspos

#endif  // DASPOS_SUPPORT_LOGGING_H_
