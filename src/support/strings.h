// Small string utilities shared across subsystems.
#ifndef DASPOS_SUPPORT_STRINGS_H_
#define DASPOS_SUPPORT_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/result.h"

namespace daspos {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Lowercases ASCII letters.
std::string ToLower(std::string_view text);

/// Encodes bytes as lowercase hex.
std::string HexEncode(std::string_view bytes);

/// Decodes lowercase/uppercase hex; fails on odd length or non-hex chars.
Result<std::string> HexDecode(std::string_view hex);

/// Formats a double with `digits` significant digits (for tables/reports).
std::string FormatDouble(double value, int digits = 6);

/// Formats a byte count in human-readable units ("1.5 MiB").
std::string FormatBytes(uint64_t bytes);

/// Parses a non-negative integer; fails on junk or overflow.
Result<uint64_t> ParseU64(std::string_view text);

/// Parses a double; fails on junk.
Result<double> ParseDouble(std::string_view text);

}  // namespace daspos

#endif  // DASPOS_SUPPORT_STRINGS_H_
