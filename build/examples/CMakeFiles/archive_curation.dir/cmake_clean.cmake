file(REMOVE_RECURSE
  "CMakeFiles/archive_curation.dir/archive_curation.cpp.o"
  "CMakeFiles/archive_curation.dir/archive_curation.cpp.o.d"
  "archive_curation"
  "archive_curation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archive_curation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
