# Empty compiler generated dependencies file for archive_curation.
# This may be replaced when dependencies are built.
