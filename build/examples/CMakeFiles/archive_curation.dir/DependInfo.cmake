
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/archive_curation.cpp" "examples/CMakeFiles/archive_curation.dir/archive_curation.cpp.o" "gcc" "examples/CMakeFiles/archive_curation.dir/archive_curation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/archive/CMakeFiles/daspos_archive.dir/DependInfo.cmake"
  "/root/repo/build/src/interview/CMakeFiles/daspos_interview.dir/DependInfo.cmake"
  "/root/repo/build/src/mc/CMakeFiles/daspos_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/tiers/CMakeFiles/daspos_tiers.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/daspos_event.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/daspos_serialize.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/daspos_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
