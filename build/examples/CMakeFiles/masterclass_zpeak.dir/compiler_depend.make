# Empty compiler generated dependencies file for masterclass_zpeak.
# This may be replaced when dependencies are built.
