file(REMOVE_RECURSE
  "CMakeFiles/masterclass_zpeak.dir/masterclass_zpeak.cpp.o"
  "CMakeFiles/masterclass_zpeak.dir/masterclass_zpeak.cpp.o.d"
  "masterclass_zpeak"
  "masterclass_zpeak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/masterclass_zpeak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
