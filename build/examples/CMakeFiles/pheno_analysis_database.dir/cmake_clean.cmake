file(REMOVE_RECURSE
  "CMakeFiles/pheno_analysis_database.dir/pheno_analysis_database.cpp.o"
  "CMakeFiles/pheno_analysis_database.dir/pheno_analysis_database.cpp.o.d"
  "pheno_analysis_database"
  "pheno_analysis_database.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pheno_analysis_database.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
