# Empty compiler generated dependencies file for pheno_analysis_database.
# This may be replaced when dependencies are built.
