file(REMOVE_RECURSE
  "CMakeFiles/recast_reinterpretation.dir/recast_reinterpretation.cpp.o"
  "CMakeFiles/recast_reinterpretation.dir/recast_reinterpretation.cpp.o.d"
  "recast_reinterpretation"
  "recast_reinterpretation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recast_reinterpretation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
