# Empty compiler generated dependencies file for recast_reinterpretation.
# This may be replaced when dependencies are built.
