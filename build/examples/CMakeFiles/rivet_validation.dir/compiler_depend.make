# Empty compiler generated dependencies file for rivet_validation.
# This may be replaced when dependencies are built.
