file(REMOVE_RECURSE
  "CMakeFiles/rivet_validation.dir/rivet_validation.cpp.o"
  "CMakeFiles/rivet_validation.dir/rivet_validation.cpp.o.d"
  "rivet_validation"
  "rivet_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rivet_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
