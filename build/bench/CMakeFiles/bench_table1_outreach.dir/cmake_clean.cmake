file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_outreach.dir/bench_table1_outreach.cpp.o"
  "CMakeFiles/bench_table1_outreach.dir/bench_table1_outreach.cpp.o.d"
  "bench_table1_outreach"
  "bench_table1_outreach.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_outreach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
