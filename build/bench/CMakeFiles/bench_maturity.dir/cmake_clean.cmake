file(REMOVE_RECURSE
  "CMakeFiles/bench_maturity.dir/bench_maturity.cpp.o"
  "CMakeFiles/bench_maturity.dir/bench_maturity.cpp.o.d"
  "bench_maturity"
  "bench_maturity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_maturity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
