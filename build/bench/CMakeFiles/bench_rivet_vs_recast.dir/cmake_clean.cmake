file(REMOVE_RECURSE
  "CMakeFiles/bench_rivet_vs_recast.dir/bench_rivet_vs_recast.cpp.o"
  "CMakeFiles/bench_rivet_vs_recast.dir/bench_rivet_vs_recast.cpp.o.d"
  "bench_rivet_vs_recast"
  "bench_rivet_vs_recast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rivet_vs_recast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
