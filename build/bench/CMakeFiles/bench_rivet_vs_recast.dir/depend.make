# Empty dependencies file for bench_rivet_vs_recast.
# This may be replaced when dependencies are built.
