# Empty compiler generated dependencies file for bench_workflow_provenance.
# This may be replaced when dependencies are built.
