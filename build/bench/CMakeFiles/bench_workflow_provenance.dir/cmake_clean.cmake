file(REMOVE_RECURSE
  "CMakeFiles/bench_workflow_provenance.dir/bench_workflow_provenance.cpp.o"
  "CMakeFiles/bench_workflow_provenance.dir/bench_workflow_provenance.cpp.o.d"
  "bench_workflow_provenance"
  "bench_workflow_provenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_workflow_provenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
