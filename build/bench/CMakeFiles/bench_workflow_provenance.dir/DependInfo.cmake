
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_workflow_provenance.cpp" "bench/CMakeFiles/bench_workflow_provenance.dir/bench_workflow_provenance.cpp.o" "gcc" "bench/CMakeFiles/bench_workflow_provenance.dir/bench_workflow_provenance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workflow/CMakeFiles/daspos_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/mc/CMakeFiles/daspos_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/reco/CMakeFiles/daspos_reco.dir/DependInfo.cmake"
  "/root/repo/build/src/detsim/CMakeFiles/daspos_detsim.dir/DependInfo.cmake"
  "/root/repo/build/src/tiers/CMakeFiles/daspos_tiers.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/daspos_event.dir/DependInfo.cmake"
  "/root/repo/build/src/conditions/CMakeFiles/daspos_conditions.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/daspos_serialize.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/daspos_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
