file(REMOVE_RECURSE
  "CMakeFiles/bench_reco.dir/bench_reco.cpp.o"
  "CMakeFiles/bench_reco.dir/bench_reco.cpp.o.d"
  "bench_reco"
  "bench_reco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
