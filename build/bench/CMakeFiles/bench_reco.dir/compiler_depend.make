# Empty compiler generated dependencies file for bench_reco.
# This may be replaced when dependencies are built.
