file(REMOVE_RECURSE
  "CMakeFiles/bench_tier_reduction.dir/bench_tier_reduction.cpp.o"
  "CMakeFiles/bench_tier_reduction.dir/bench_tier_reduction.cpp.o.d"
  "bench_tier_reduction"
  "bench_tier_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tier_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
