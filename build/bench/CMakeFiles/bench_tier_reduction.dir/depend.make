# Empty dependencies file for bench_tier_reduction.
# This may be replaced when dependencies are built.
