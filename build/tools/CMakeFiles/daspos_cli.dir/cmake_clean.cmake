file(REMOVE_RECURSE
  "CMakeFiles/daspos_cli.dir/daspos_cli.cc.o"
  "CMakeFiles/daspos_cli.dir/daspos_cli.cc.o.d"
  "daspos"
  "daspos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daspos_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
