# Empty dependencies file for daspos_cli.
# This may be replaced when dependencies are built.
