# Empty dependencies file for daspos_workflow.
# This may be replaced when dependencies are built.
