file(REMOVE_RECURSE
  "CMakeFiles/daspos_workflow.dir/engine.cc.o"
  "CMakeFiles/daspos_workflow.dir/engine.cc.o.d"
  "CMakeFiles/daspos_workflow.dir/provenance.cc.o"
  "CMakeFiles/daspos_workflow.dir/provenance.cc.o.d"
  "CMakeFiles/daspos_workflow.dir/steps.cc.o"
  "CMakeFiles/daspos_workflow.dir/steps.cc.o.d"
  "libdaspos_workflow.a"
  "libdaspos_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daspos_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
