file(REMOVE_RECURSE
  "libdaspos_workflow.a"
)
