file(REMOVE_RECURSE
  "CMakeFiles/daspos_recast.dir/backend.cc.o"
  "CMakeFiles/daspos_recast.dir/backend.cc.o.d"
  "CMakeFiles/daspos_recast.dir/frontend.cc.o"
  "CMakeFiles/daspos_recast.dir/frontend.cc.o.d"
  "CMakeFiles/daspos_recast.dir/request.cc.o"
  "CMakeFiles/daspos_recast.dir/request.cc.o.d"
  "CMakeFiles/daspos_recast.dir/scan.cc.o"
  "CMakeFiles/daspos_recast.dir/scan.cc.o.d"
  "CMakeFiles/daspos_recast.dir/search.cc.o"
  "CMakeFiles/daspos_recast.dir/search.cc.o.d"
  "libdaspos_recast.a"
  "libdaspos_recast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daspos_recast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
