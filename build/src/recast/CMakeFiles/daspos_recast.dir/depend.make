# Empty dependencies file for daspos_recast.
# This may be replaced when dependencies are built.
