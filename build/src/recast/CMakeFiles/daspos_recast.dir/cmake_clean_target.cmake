file(REMOVE_RECURSE
  "libdaspos_recast.a"
)
