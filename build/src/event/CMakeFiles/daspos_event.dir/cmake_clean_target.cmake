file(REMOVE_RECURSE
  "libdaspos_event.a"
)
