# Empty dependencies file for daspos_event.
# This may be replaced when dependencies are built.
