file(REMOVE_RECURSE
  "CMakeFiles/daspos_event.dir/aod.cc.o"
  "CMakeFiles/daspos_event.dir/aod.cc.o.d"
  "CMakeFiles/daspos_event.dir/fourvector.cc.o"
  "CMakeFiles/daspos_event.dir/fourvector.cc.o.d"
  "CMakeFiles/daspos_event.dir/pdg.cc.o"
  "CMakeFiles/daspos_event.dir/pdg.cc.o.d"
  "CMakeFiles/daspos_event.dir/raw.cc.o"
  "CMakeFiles/daspos_event.dir/raw.cc.o.d"
  "CMakeFiles/daspos_event.dir/reco.cc.o"
  "CMakeFiles/daspos_event.dir/reco.cc.o.d"
  "CMakeFiles/daspos_event.dir/truth.cc.o"
  "CMakeFiles/daspos_event.dir/truth.cc.o.d"
  "libdaspos_event.a"
  "libdaspos_event.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daspos_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
