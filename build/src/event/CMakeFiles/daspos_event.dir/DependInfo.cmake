
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/event/aod.cc" "src/event/CMakeFiles/daspos_event.dir/aod.cc.o" "gcc" "src/event/CMakeFiles/daspos_event.dir/aod.cc.o.d"
  "/root/repo/src/event/fourvector.cc" "src/event/CMakeFiles/daspos_event.dir/fourvector.cc.o" "gcc" "src/event/CMakeFiles/daspos_event.dir/fourvector.cc.o.d"
  "/root/repo/src/event/pdg.cc" "src/event/CMakeFiles/daspos_event.dir/pdg.cc.o" "gcc" "src/event/CMakeFiles/daspos_event.dir/pdg.cc.o.d"
  "/root/repo/src/event/raw.cc" "src/event/CMakeFiles/daspos_event.dir/raw.cc.o" "gcc" "src/event/CMakeFiles/daspos_event.dir/raw.cc.o.d"
  "/root/repo/src/event/reco.cc" "src/event/CMakeFiles/daspos_event.dir/reco.cc.o" "gcc" "src/event/CMakeFiles/daspos_event.dir/reco.cc.o.d"
  "/root/repo/src/event/truth.cc" "src/event/CMakeFiles/daspos_event.dir/truth.cc.o" "gcc" "src/event/CMakeFiles/daspos_event.dir/truth.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/serialize/CMakeFiles/daspos_serialize.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/daspos_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
