file(REMOVE_RECURSE
  "CMakeFiles/daspos_hepdata.dir/record.cc.o"
  "CMakeFiles/daspos_hepdata.dir/record.cc.o.d"
  "libdaspos_hepdata.a"
  "libdaspos_hepdata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daspos_hepdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
