# Empty dependencies file for daspos_hepdata.
# This may be replaced when dependencies are built.
