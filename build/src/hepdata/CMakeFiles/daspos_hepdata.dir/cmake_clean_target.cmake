file(REMOVE_RECURSE
  "libdaspos_hepdata.a"
)
