file(REMOVE_RECURSE
  "CMakeFiles/daspos_core.dir/bridge.cc.o"
  "CMakeFiles/daspos_core.dir/bridge.cc.o.d"
  "CMakeFiles/daspos_core.dir/preserved_analysis.cc.o"
  "CMakeFiles/daspos_core.dir/preserved_analysis.cc.o.d"
  "CMakeFiles/daspos_core.dir/replay.cc.o"
  "CMakeFiles/daspos_core.dir/replay.cc.o.d"
  "libdaspos_core.a"
  "libdaspos_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daspos_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
