file(REMOVE_RECURSE
  "libdaspos_core.a"
)
