# Empty compiler generated dependencies file for daspos_core.
# This may be replaced when dependencies are built.
