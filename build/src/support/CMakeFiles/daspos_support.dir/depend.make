# Empty dependencies file for daspos_support.
# This may be replaced when dependencies are built.
