file(REMOVE_RECURSE
  "CMakeFiles/daspos_support.dir/compress.cc.o"
  "CMakeFiles/daspos_support.dir/compress.cc.o.d"
  "CMakeFiles/daspos_support.dir/io.cc.o"
  "CMakeFiles/daspos_support.dir/io.cc.o.d"
  "CMakeFiles/daspos_support.dir/logging.cc.o"
  "CMakeFiles/daspos_support.dir/logging.cc.o.d"
  "CMakeFiles/daspos_support.dir/rng.cc.o"
  "CMakeFiles/daspos_support.dir/rng.cc.o.d"
  "CMakeFiles/daspos_support.dir/sha256.cc.o"
  "CMakeFiles/daspos_support.dir/sha256.cc.o.d"
  "CMakeFiles/daspos_support.dir/status.cc.o"
  "CMakeFiles/daspos_support.dir/status.cc.o.d"
  "CMakeFiles/daspos_support.dir/strings.cc.o"
  "CMakeFiles/daspos_support.dir/strings.cc.o.d"
  "CMakeFiles/daspos_support.dir/table.cc.o"
  "CMakeFiles/daspos_support.dir/table.cc.o.d"
  "libdaspos_support.a"
  "libdaspos_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daspos_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
