file(REMOVE_RECURSE
  "libdaspos_support.a"
)
