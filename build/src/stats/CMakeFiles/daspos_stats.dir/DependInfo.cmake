
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/fits.cc" "src/stats/CMakeFiles/daspos_stats.dir/fits.cc.o" "gcc" "src/stats/CMakeFiles/daspos_stats.dir/fits.cc.o.d"
  "/root/repo/src/stats/limits.cc" "src/stats/CMakeFiles/daspos_stats.dir/limits.cc.o" "gcc" "src/stats/CMakeFiles/daspos_stats.dir/limits.cc.o.d"
  "/root/repo/src/stats/minimize.cc" "src/stats/CMakeFiles/daspos_stats.dir/minimize.cc.o" "gcc" "src/stats/CMakeFiles/daspos_stats.dir/minimize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hist/CMakeFiles/daspos_hist.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/daspos_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
