# Empty compiler generated dependencies file for daspos_stats.
# This may be replaced when dependencies are built.
