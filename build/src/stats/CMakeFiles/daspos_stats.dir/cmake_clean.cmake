file(REMOVE_RECURSE
  "CMakeFiles/daspos_stats.dir/fits.cc.o"
  "CMakeFiles/daspos_stats.dir/fits.cc.o.d"
  "CMakeFiles/daspos_stats.dir/limits.cc.o"
  "CMakeFiles/daspos_stats.dir/limits.cc.o.d"
  "CMakeFiles/daspos_stats.dir/minimize.cc.o"
  "CMakeFiles/daspos_stats.dir/minimize.cc.o.d"
  "libdaspos_stats.a"
  "libdaspos_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daspos_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
