file(REMOVE_RECURSE
  "libdaspos_stats.a"
)
