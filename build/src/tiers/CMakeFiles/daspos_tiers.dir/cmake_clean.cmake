file(REMOVE_RECURSE
  "CMakeFiles/daspos_tiers.dir/dataset.cc.o"
  "CMakeFiles/daspos_tiers.dir/dataset.cc.o.d"
  "CMakeFiles/daspos_tiers.dir/skimslim.cc.o"
  "CMakeFiles/daspos_tiers.dir/skimslim.cc.o.d"
  "libdaspos_tiers.a"
  "libdaspos_tiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daspos_tiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
