file(REMOVE_RECURSE
  "libdaspos_tiers.a"
)
