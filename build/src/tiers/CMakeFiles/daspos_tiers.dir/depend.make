# Empty dependencies file for daspos_tiers.
# This may be replaced when dependencies are built.
