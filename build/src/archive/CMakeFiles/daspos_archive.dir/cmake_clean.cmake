file(REMOVE_RECURSE
  "CMakeFiles/daspos_archive.dir/archive.cc.o"
  "CMakeFiles/daspos_archive.dir/archive.cc.o.d"
  "CMakeFiles/daspos_archive.dir/object_store.cc.o"
  "CMakeFiles/daspos_archive.dir/object_store.cc.o.d"
  "libdaspos_archive.a"
  "libdaspos_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daspos_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
