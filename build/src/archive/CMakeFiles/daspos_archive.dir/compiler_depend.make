# Empty compiler generated dependencies file for daspos_archive.
# This may be replaced when dependencies are built.
