file(REMOVE_RECURSE
  "libdaspos_archive.a"
)
