file(REMOVE_RECURSE
  "CMakeFiles/daspos_hist.dir/compare.cc.o"
  "CMakeFiles/daspos_hist.dir/compare.cc.o.d"
  "CMakeFiles/daspos_hist.dir/histo1d.cc.o"
  "CMakeFiles/daspos_hist.dir/histo1d.cc.o.d"
  "CMakeFiles/daspos_hist.dir/histo2d.cc.o"
  "CMakeFiles/daspos_hist.dir/histo2d.cc.o.d"
  "CMakeFiles/daspos_hist.dir/profile1d.cc.o"
  "CMakeFiles/daspos_hist.dir/profile1d.cc.o.d"
  "CMakeFiles/daspos_hist.dir/yoda_io.cc.o"
  "CMakeFiles/daspos_hist.dir/yoda_io.cc.o.d"
  "libdaspos_hist.a"
  "libdaspos_hist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daspos_hist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
