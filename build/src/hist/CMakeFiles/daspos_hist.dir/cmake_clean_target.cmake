file(REMOVE_RECURSE
  "libdaspos_hist.a"
)
