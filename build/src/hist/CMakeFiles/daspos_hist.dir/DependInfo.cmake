
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hist/compare.cc" "src/hist/CMakeFiles/daspos_hist.dir/compare.cc.o" "gcc" "src/hist/CMakeFiles/daspos_hist.dir/compare.cc.o.d"
  "/root/repo/src/hist/histo1d.cc" "src/hist/CMakeFiles/daspos_hist.dir/histo1d.cc.o" "gcc" "src/hist/CMakeFiles/daspos_hist.dir/histo1d.cc.o.d"
  "/root/repo/src/hist/histo2d.cc" "src/hist/CMakeFiles/daspos_hist.dir/histo2d.cc.o" "gcc" "src/hist/CMakeFiles/daspos_hist.dir/histo2d.cc.o.d"
  "/root/repo/src/hist/profile1d.cc" "src/hist/CMakeFiles/daspos_hist.dir/profile1d.cc.o" "gcc" "src/hist/CMakeFiles/daspos_hist.dir/profile1d.cc.o.d"
  "/root/repo/src/hist/yoda_io.cc" "src/hist/CMakeFiles/daspos_hist.dir/yoda_io.cc.o" "gcc" "src/hist/CMakeFiles/daspos_hist.dir/yoda_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/daspos_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
