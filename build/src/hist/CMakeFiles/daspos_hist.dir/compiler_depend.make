# Empty compiler generated dependencies file for daspos_hist.
# This may be replaced when dependencies are built.
