file(REMOVE_RECURSE
  "libdaspos_detsim.a"
)
