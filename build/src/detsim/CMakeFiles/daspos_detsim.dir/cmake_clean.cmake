file(REMOVE_RECURSE
  "CMakeFiles/daspos_detsim.dir/calib.cc.o"
  "CMakeFiles/daspos_detsim.dir/calib.cc.o.d"
  "CMakeFiles/daspos_detsim.dir/geometry.cc.o"
  "CMakeFiles/daspos_detsim.dir/geometry.cc.o.d"
  "CMakeFiles/daspos_detsim.dir/simulation.cc.o"
  "CMakeFiles/daspos_detsim.dir/simulation.cc.o.d"
  "libdaspos_detsim.a"
  "libdaspos_detsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daspos_detsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
