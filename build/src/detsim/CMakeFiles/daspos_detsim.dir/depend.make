# Empty dependencies file for daspos_detsim.
# This may be replaced when dependencies are built.
