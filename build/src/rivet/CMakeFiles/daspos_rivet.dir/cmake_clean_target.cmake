file(REMOVE_RECURSE
  "libdaspos_rivet.a"
)
