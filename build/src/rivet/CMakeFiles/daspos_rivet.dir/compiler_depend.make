# Empty compiler generated dependencies file for daspos_rivet.
# This may be replaced when dependencies are built.
