file(REMOVE_RECURSE
  "CMakeFiles/daspos_rivet.dir/analyses.cc.o"
  "CMakeFiles/daspos_rivet.dir/analyses.cc.o.d"
  "CMakeFiles/daspos_rivet.dir/analysis.cc.o"
  "CMakeFiles/daspos_rivet.dir/analysis.cc.o.d"
  "CMakeFiles/daspos_rivet.dir/projections.cc.o"
  "CMakeFiles/daspos_rivet.dir/projections.cc.o.d"
  "CMakeFiles/daspos_rivet.dir/registry.cc.o"
  "CMakeFiles/daspos_rivet.dir/registry.cc.o.d"
  "libdaspos_rivet.a"
  "libdaspos_rivet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daspos_rivet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
