
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/level2/common.cc" "src/level2/CMakeFiles/daspos_level2.dir/common.cc.o" "gcc" "src/level2/CMakeFiles/daspos_level2.dir/common.cc.o.d"
  "/root/repo/src/level2/dialects.cc" "src/level2/CMakeFiles/daspos_level2.dir/dialects.cc.o" "gcc" "src/level2/CMakeFiles/daspos_level2.dir/dialects.cc.o.d"
  "/root/repo/src/level2/display.cc" "src/level2/CMakeFiles/daspos_level2.dir/display.cc.o" "gcc" "src/level2/CMakeFiles/daspos_level2.dir/display.cc.o.d"
  "/root/repo/src/level2/files.cc" "src/level2/CMakeFiles/daspos_level2.dir/files.cc.o" "gcc" "src/level2/CMakeFiles/daspos_level2.dir/files.cc.o.d"
  "/root/repo/src/level2/masterclass.cc" "src/level2/CMakeFiles/daspos_level2.dir/masterclass.cc.o" "gcc" "src/level2/CMakeFiles/daspos_level2.dir/masterclass.cc.o.d"
  "/root/repo/src/level2/outreach.cc" "src/level2/CMakeFiles/daspos_level2.dir/outreach.cc.o" "gcc" "src/level2/CMakeFiles/daspos_level2.dir/outreach.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/event/CMakeFiles/daspos_event.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/daspos_serialize.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/daspos_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/hist/CMakeFiles/daspos_hist.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/daspos_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
