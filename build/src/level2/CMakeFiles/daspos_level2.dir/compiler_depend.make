# Empty compiler generated dependencies file for daspos_level2.
# This may be replaced when dependencies are built.
