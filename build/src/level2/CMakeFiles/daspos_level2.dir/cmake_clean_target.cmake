file(REMOVE_RECURSE
  "libdaspos_level2.a"
)
