file(REMOVE_RECURSE
  "CMakeFiles/daspos_level2.dir/common.cc.o"
  "CMakeFiles/daspos_level2.dir/common.cc.o.d"
  "CMakeFiles/daspos_level2.dir/dialects.cc.o"
  "CMakeFiles/daspos_level2.dir/dialects.cc.o.d"
  "CMakeFiles/daspos_level2.dir/display.cc.o"
  "CMakeFiles/daspos_level2.dir/display.cc.o.d"
  "CMakeFiles/daspos_level2.dir/files.cc.o"
  "CMakeFiles/daspos_level2.dir/files.cc.o.d"
  "CMakeFiles/daspos_level2.dir/masterclass.cc.o"
  "CMakeFiles/daspos_level2.dir/masterclass.cc.o.d"
  "CMakeFiles/daspos_level2.dir/outreach.cc.o"
  "CMakeFiles/daspos_level2.dir/outreach.cc.o.d"
  "libdaspos_level2.a"
  "libdaspos_level2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daspos_level2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
