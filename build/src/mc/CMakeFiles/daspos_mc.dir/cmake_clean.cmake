file(REMOVE_RECURSE
  "CMakeFiles/daspos_mc.dir/generator.cc.o"
  "CMakeFiles/daspos_mc.dir/generator.cc.o.d"
  "CMakeFiles/daspos_mc.dir/kinematics.cc.o"
  "CMakeFiles/daspos_mc.dir/kinematics.cc.o.d"
  "CMakeFiles/daspos_mc.dir/process.cc.o"
  "CMakeFiles/daspos_mc.dir/process.cc.o.d"
  "libdaspos_mc.a"
  "libdaspos_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daspos_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
