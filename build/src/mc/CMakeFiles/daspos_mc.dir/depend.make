# Empty dependencies file for daspos_mc.
# This may be replaced when dependencies are built.
