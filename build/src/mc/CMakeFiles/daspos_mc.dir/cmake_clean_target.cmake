file(REMOVE_RECURSE
  "libdaspos_mc.a"
)
