
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mc/generator.cc" "src/mc/CMakeFiles/daspos_mc.dir/generator.cc.o" "gcc" "src/mc/CMakeFiles/daspos_mc.dir/generator.cc.o.d"
  "/root/repo/src/mc/kinematics.cc" "src/mc/CMakeFiles/daspos_mc.dir/kinematics.cc.o" "gcc" "src/mc/CMakeFiles/daspos_mc.dir/kinematics.cc.o.d"
  "/root/repo/src/mc/process.cc" "src/mc/CMakeFiles/daspos_mc.dir/process.cc.o" "gcc" "src/mc/CMakeFiles/daspos_mc.dir/process.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/event/CMakeFiles/daspos_event.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/daspos_support.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/daspos_serialize.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
