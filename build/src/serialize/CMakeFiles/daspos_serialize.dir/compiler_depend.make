# Empty compiler generated dependencies file for daspos_serialize.
# This may be replaced when dependencies are built.
