file(REMOVE_RECURSE
  "libdaspos_serialize.a"
)
