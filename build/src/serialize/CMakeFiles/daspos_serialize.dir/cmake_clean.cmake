file(REMOVE_RECURSE
  "CMakeFiles/daspos_serialize.dir/binary.cc.o"
  "CMakeFiles/daspos_serialize.dir/binary.cc.o.d"
  "CMakeFiles/daspos_serialize.dir/container.cc.o"
  "CMakeFiles/daspos_serialize.dir/container.cc.o.d"
  "CMakeFiles/daspos_serialize.dir/json.cc.o"
  "CMakeFiles/daspos_serialize.dir/json.cc.o.d"
  "libdaspos_serialize.a"
  "libdaspos_serialize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daspos_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
