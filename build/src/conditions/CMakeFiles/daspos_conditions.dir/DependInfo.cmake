
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/conditions/global_tag.cc" "src/conditions/CMakeFiles/daspos_conditions.dir/global_tag.cc.o" "gcc" "src/conditions/CMakeFiles/daspos_conditions.dir/global_tag.cc.o.d"
  "/root/repo/src/conditions/snapshot.cc" "src/conditions/CMakeFiles/daspos_conditions.dir/snapshot.cc.o" "gcc" "src/conditions/CMakeFiles/daspos_conditions.dir/snapshot.cc.o.d"
  "/root/repo/src/conditions/store.cc" "src/conditions/CMakeFiles/daspos_conditions.dir/store.cc.o" "gcc" "src/conditions/CMakeFiles/daspos_conditions.dir/store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/daspos_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
