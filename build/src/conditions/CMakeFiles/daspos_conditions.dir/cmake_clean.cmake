file(REMOVE_RECURSE
  "CMakeFiles/daspos_conditions.dir/global_tag.cc.o"
  "CMakeFiles/daspos_conditions.dir/global_tag.cc.o.d"
  "CMakeFiles/daspos_conditions.dir/snapshot.cc.o"
  "CMakeFiles/daspos_conditions.dir/snapshot.cc.o.d"
  "CMakeFiles/daspos_conditions.dir/store.cc.o"
  "CMakeFiles/daspos_conditions.dir/store.cc.o.d"
  "libdaspos_conditions.a"
  "libdaspos_conditions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daspos_conditions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
