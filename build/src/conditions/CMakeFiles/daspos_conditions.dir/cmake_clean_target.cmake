file(REMOVE_RECURSE
  "libdaspos_conditions.a"
)
