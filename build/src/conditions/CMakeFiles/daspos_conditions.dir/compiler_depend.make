# Empty compiler generated dependencies file for daspos_conditions.
# This may be replaced when dependencies are built.
