# Empty dependencies file for daspos_interview.
# This may be replaced when dependencies are built.
