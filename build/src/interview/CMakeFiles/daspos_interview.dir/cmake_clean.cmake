file(REMOVE_RECURSE
  "CMakeFiles/daspos_interview.dir/interview.cc.o"
  "CMakeFiles/daspos_interview.dir/interview.cc.o.d"
  "CMakeFiles/daspos_interview.dir/maturity.cc.o"
  "CMakeFiles/daspos_interview.dir/maturity.cc.o.d"
  "libdaspos_interview.a"
  "libdaspos_interview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daspos_interview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
