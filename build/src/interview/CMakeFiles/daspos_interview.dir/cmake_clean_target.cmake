file(REMOVE_RECURSE
  "libdaspos_interview.a"
)
