# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("serialize")
subdirs("hist")
subdirs("event")
subdirs("mc")
subdirs("detsim")
subdirs("reco")
subdirs("conditions")
subdirs("tiers")
subdirs("workflow")
subdirs("archive")
subdirs("stats")
subdirs("rivet")
subdirs("recast")
subdirs("hepdata")
subdirs("level2")
subdirs("interview")
subdirs("lhada")
subdirs("core")
