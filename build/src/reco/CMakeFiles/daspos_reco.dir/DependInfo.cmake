
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reco/clustering.cc" "src/reco/CMakeFiles/daspos_reco.dir/clustering.cc.o" "gcc" "src/reco/CMakeFiles/daspos_reco.dir/clustering.cc.o.d"
  "/root/repo/src/reco/reconstruction.cc" "src/reco/CMakeFiles/daspos_reco.dir/reconstruction.cc.o" "gcc" "src/reco/CMakeFiles/daspos_reco.dir/reconstruction.cc.o.d"
  "/root/repo/src/reco/tracking.cc" "src/reco/CMakeFiles/daspos_reco.dir/tracking.cc.o" "gcc" "src/reco/CMakeFiles/daspos_reco.dir/tracking.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/detsim/CMakeFiles/daspos_detsim.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/daspos_event.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/daspos_support.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/daspos_serialize.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
