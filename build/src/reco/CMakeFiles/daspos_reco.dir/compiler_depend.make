# Empty compiler generated dependencies file for daspos_reco.
# This may be replaced when dependencies are built.
