file(REMOVE_RECURSE
  "libdaspos_reco.a"
)
