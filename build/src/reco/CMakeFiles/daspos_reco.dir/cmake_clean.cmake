file(REMOVE_RECURSE
  "CMakeFiles/daspos_reco.dir/clustering.cc.o"
  "CMakeFiles/daspos_reco.dir/clustering.cc.o.d"
  "CMakeFiles/daspos_reco.dir/reconstruction.cc.o"
  "CMakeFiles/daspos_reco.dir/reconstruction.cc.o.d"
  "CMakeFiles/daspos_reco.dir/tracking.cc.o"
  "CMakeFiles/daspos_reco.dir/tracking.cc.o.d"
  "libdaspos_reco.a"
  "libdaspos_reco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daspos_reco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
