# Empty compiler generated dependencies file for daspos_lhada.
# This may be replaced when dependencies are built.
