file(REMOVE_RECURSE
  "libdaspos_lhada.a"
)
