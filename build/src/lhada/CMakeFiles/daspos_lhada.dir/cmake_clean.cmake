file(REMOVE_RECURSE
  "CMakeFiles/daspos_lhada.dir/database.cc.o"
  "CMakeFiles/daspos_lhada.dir/database.cc.o.d"
  "CMakeFiles/daspos_lhada.dir/lhada.cc.o"
  "CMakeFiles/daspos_lhada.dir/lhada.cc.o.d"
  "libdaspos_lhada.a"
  "libdaspos_lhada.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daspos_lhada.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
