# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/hist_test[1]_include.cmake")
include("/root/repo/build/tests/event_test[1]_include.cmake")
include("/root/repo/build/tests/mc_test[1]_include.cmake")
include("/root/repo/build/tests/detsim_test[1]_include.cmake")
include("/root/repo/build/tests/reco_test[1]_include.cmake")
include("/root/repo/build/tests/conditions_test[1]_include.cmake")
include("/root/repo/build/tests/tiers_test[1]_include.cmake")
include("/root/repo/build/tests/workflow_test[1]_include.cmake")
include("/root/repo/build/tests/archive_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/rivet_test[1]_include.cmake")
include("/root/repo/build/tests/recast_test[1]_include.cmake")
include("/root/repo/build/tests/hepdata_test[1]_include.cmake")
include("/root/repo/build/tests/level2_test[1]_include.cmake")
include("/root/repo/build/tests/interview_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/lhada_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/compress_test[1]_include.cmake")
add_test(cli_smoke "/root/repo/tests/cli_smoke.sh" "/root/repo/build/tools/daspos")
set_tests_properties(cli_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;34;add_test;/root/repo/tests/CMakeLists.txt;0;")
