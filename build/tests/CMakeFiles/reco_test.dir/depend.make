# Empty dependencies file for reco_test.
# This may be replaced when dependencies are built.
