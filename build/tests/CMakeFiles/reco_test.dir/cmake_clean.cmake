file(REMOVE_RECURSE
  "CMakeFiles/reco_test.dir/reco_test.cc.o"
  "CMakeFiles/reco_test.dir/reco_test.cc.o.d"
  "reco_test"
  "reco_test.pdb"
  "reco_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reco_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
