file(REMOVE_RECURSE
  "CMakeFiles/recast_test.dir/recast_test.cc.o"
  "CMakeFiles/recast_test.dir/recast_test.cc.o.d"
  "recast_test"
  "recast_test.pdb"
  "recast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
