file(REMOVE_RECURSE
  "CMakeFiles/hepdata_test.dir/hepdata_test.cc.o"
  "CMakeFiles/hepdata_test.dir/hepdata_test.cc.o.d"
  "hepdata_test"
  "hepdata_test.pdb"
  "hepdata_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hepdata_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
