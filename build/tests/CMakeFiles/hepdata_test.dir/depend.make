# Empty dependencies file for hepdata_test.
# This may be replaced when dependencies are built.
