file(REMOVE_RECURSE
  "CMakeFiles/hist_test.dir/hist_test.cc.o"
  "CMakeFiles/hist_test.dir/hist_test.cc.o.d"
  "hist_test"
  "hist_test.pdb"
  "hist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
