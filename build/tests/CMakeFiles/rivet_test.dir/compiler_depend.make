# Empty compiler generated dependencies file for rivet_test.
# This may be replaced when dependencies are built.
