file(REMOVE_RECURSE
  "CMakeFiles/rivet_test.dir/rivet_test.cc.o"
  "CMakeFiles/rivet_test.dir/rivet_test.cc.o.d"
  "rivet_test"
  "rivet_test.pdb"
  "rivet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rivet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
