# Empty dependencies file for level2_test.
# This may be replaced when dependencies are built.
