file(REMOVE_RECURSE
  "CMakeFiles/interview_test.dir/interview_test.cc.o"
  "CMakeFiles/interview_test.dir/interview_test.cc.o.d"
  "interview_test"
  "interview_test.pdb"
  "interview_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interview_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
