# Empty dependencies file for interview_test.
# This may be replaced when dependencies are built.
