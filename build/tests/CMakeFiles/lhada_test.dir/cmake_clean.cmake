file(REMOVE_RECURSE
  "CMakeFiles/lhada_test.dir/lhada_test.cc.o"
  "CMakeFiles/lhada_test.dir/lhada_test.cc.o.d"
  "lhada_test"
  "lhada_test.pdb"
  "lhada_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhada_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
