# Empty dependencies file for lhada_test.
# This may be replaced when dependencies are built.
