# Empty compiler generated dependencies file for detsim_test.
# This may be replaced when dependencies are built.
