file(REMOVE_RECURSE
  "CMakeFiles/detsim_test.dir/detsim_test.cc.o"
  "CMakeFiles/detsim_test.dir/detsim_test.cc.o.d"
  "detsim_test"
  "detsim_test.pdb"
  "detsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
