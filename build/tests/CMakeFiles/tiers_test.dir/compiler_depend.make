# Empty compiler generated dependencies file for tiers_test.
# This may be replaced when dependencies are built.
