file(REMOVE_RECURSE
  "CMakeFiles/tiers_test.dir/tiers_test.cc.o"
  "CMakeFiles/tiers_test.dir/tiers_test.cc.o.d"
  "tiers_test"
  "tiers_test.pdb"
  "tiers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
