// E3 — quantifies the §2.4 RIVET-vs-RECAST comparison on the Z'
// reinterpretation: the truth-level bridge (RIVET-style) vs the full
// detector-simulation back end (RECAST-style), as (a) signal efficiency,
// (b) resulting upper limits, and (c) CPU cost per event. Expected shape:
// truth-level over-estimates efficiency (no detector losses) and is much
// cheaper; the gap is the price of fidelity.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/bridge.h"
#include "event/pdg.h"
#include "recast/backend.h"
#include "support/strings.h"
#include "support/table.h"
#include "workflow/steps.h"

using namespace daspos;
using namespace daspos::recast;

namespace {

RecastRequest MakeRequest(const std::string& search, double mass,
                          size_t events) {
  GeneratorConfig model;
  model.process = Process::kZPrimeToLL;
  model.zprime_mass = mass;
  model.zprime_width = 0.03 * mass;
  model.lepton_flavor = pdg::kMuon;
  model.seed = 314159;

  RecastRequest request;
  request.search_name = search;
  request.requester = "bench";
  request.model = GeneratorConfigToJson(model);
  request.model_cross_section_pb = 0.05;
  request.event_count = events;
  return request;
}

void BM_TruthBridgeProcess(benchmark::State& state) {
  RivetBridgeBackEnd bridge;
  (void)bridge.RegisterSearch(DileptonResonanceTruthSearch());
  RecastRequest request =
      MakeRequest("DASPOS_EXO_14_001_RIVET", 1000.0, 200);
  for (auto _ : state) {
    auto result = bridge.Process(request);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 200);
  state.SetLabel("truth-level (RIVET bridge)");
}
BENCHMARK(BM_TruthBridgeProcess)->Unit(benchmark::kMillisecond);

void BM_FullSimProcess(benchmark::State& state) {
  RecastBackEnd backend;
  (void)backend.RegisterSearch(DileptonResonanceSearch());
  RecastRequest request = MakeRequest("DASPOS_EXO_14_001", 1000.0, 200);
  for (auto _ : state) {
    auto result = backend.Process(request);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 200);
  state.SetLabel("full-sim (RECAST back end)");
}
BENCHMARK(BM_FullSimProcess)->Unit(benchmark::kMillisecond);

void PrintComparison() {
  RivetBridgeBackEnd bridge;
  (void)bridge.RegisterSearch(DileptonResonanceTruthSearch());
  RecastBackEnd full_sim;
  (void)full_sim.RegisterSearch(DileptonResonanceSearch());

  TextTable table;
  table.SetTitle(
      "\nZ' (sigma = 0.05 pb) reinterpretation: truth level vs full "
      "simulation, SR_mll_800:");
  table.SetHeader({"m(Z') [GeV]", "eff truth", "eff full-sim",
                   "eff ratio", "mu95 truth", "mu95 full-sim"});
  const size_t events = 600;
  for (double mass : {600.0, 800.0, 1000.0, 1200.0, 1400.0}) {
    auto truth =
        bridge.Process(MakeRequest("DASPOS_EXO_14_001_RIVET", mass, events));
    auto sim =
        full_sim.Process(MakeRequest("DASPOS_EXO_14_001", mass, events));
    if (!truth.ok() || !sim.ok()) {
      std::fprintf(stderr, "processing failed\n");
      std::exit(1);
    }
    auto region_of = [](const RecastResult& result, const char* name) {
      for (const RegionResult& region : result.regions) {
        if (region.region == name) return region;
      }
      return RegionResult{};
    };
    RegionResult truth_region = region_of(*truth, "SR_mll_800");
    RegionResult sim_region = region_of(*sim, "SR_mll_800");
    double ratio = sim_region.efficiency > 0.0
                       ? truth_region.efficiency / sim_region.efficiency
                       : 0.0;
    table.AddRow({FormatDouble(mass, 4),
                  FormatDouble(truth_region.efficiency, 3),
                  FormatDouble(sim_region.efficiency, 3),
                  ratio > 0.0 ? FormatDouble(ratio, 3) : "-",
                  FormatDouble(truth_region.upper_limit_mu, 3),
                  FormatDouble(sim_region.upper_limit_mu, 3)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Shape to reproduce (§2.4): the RIVET-style path cannot 'include a\n"
      "detector simulation'. Above the region threshold its efficiency\n"
      "bounds full-sim from above (detector losses) and its limits are\n"
      "optimistic; right AT the threshold (600 GeV) full-sim exceeds truth\n"
      "because resolution smears events INTO the region — exactly the\n"
      "migration effect a truth-only framework cannot model. The timings\n"
      "show the full chain costing several times more CPU per event — the\n"
      "trade the RECAST<->RIVET bridge (§5) lets users pick per use case.\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("==== E3: RIVET (truth) vs RECAST (full simulation) ====\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintComparison();
  return 0;
}
