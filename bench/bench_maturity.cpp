// E4 — regenerates the Appendix A maturity grids (questions 5F, 6D, 8E,
// 9F) and renders the per-experiment assessments from the example
// interviews, plus interview serialization throughput.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "interview/interview.h"
#include "interview/maturity.h"
#include "support/strings.h"
#include "support/table.h"

using namespace daspos;
using namespace daspos::interview;

namespace {

void BM_InterviewJsonRoundTrip(benchmark::State& state) {
  DataInterview interview = ExampleInterviews()[2];
  for (auto _ : state) {
    auto restored = DataInterview::FromJson(interview.ToJson());
    benchmark::DoNotOptimize(restored);
  }
}
BENCHMARK(BM_InterviewJsonRoundTrip);

void BM_RenderReport(benchmark::State& state) {
  DataInterview interview = ExampleInterviews()[1];
  for (auto _ : state) {
    std::string report = interview.RenderReport();
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_RenderReport);

void PrintGrids() {
  // The appendix grids themselves: one table per axis, levels 1..5.
  for (MaturityAxis axis : kAllMaturityAxes) {
    TextTable grid;
    grid.SetTitle("\nMaturity grid: " + std::string(MaturityAxisName(axis)));
    grid.SetHeader({"level", "description (Appendix A wording)"});
    for (int level = 1; level <= 5; ++level) {
      auto description = MaturityLevelDescription(axis, level);
      grid.AddRow({std::to_string(level), std::string(*description)});
    }
    std::printf("%s", grid.Render().c_str());
  }

  // Per-experiment assessment matrix.
  auto interviews = ExampleInterviews();
  TextTable matrix;
  matrix.SetTitle("\nSelf-assessments of the four experiments:");
  std::vector<std::string> header = {"axis"};
  for (const DataInterview& interview : interviews) {
    header.push_back(std::string(ExperimentName(interview.experiment)));
  }
  matrix.SetHeader(header);
  for (MaturityAxis axis : kAllMaturityAxes) {
    std::vector<std::string> row = {std::string(MaturityAxisName(axis))};
    for (const DataInterview& interview : interviews) {
      row.push_back(std::to_string(interview.maturity.Level(axis)));
    }
    matrix.AddRow(row);
  }
  std::vector<std::string> overall = {"OVERALL"};
  for (const DataInterview& interview : interviews) {
    overall.push_back(FormatDouble(interview.maturity.Overall(), 2));
  }
  matrix.AddRow(overall);
  std::printf("%s\n", matrix.Render().c_str());
  std::printf(
      "Shape to reproduce (§4): experiments with approved public-data\n"
      "policies (CMS, LHCb) self-assess higher on sharing than those still\n"
      "in discussion (Alice, Atlas).\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("==== E4: Appendix A maturity grids ====\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintGrids();
  return 0;
}
