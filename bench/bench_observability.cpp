// Prices the observability layer itself: counter/histogram/span overhead on
// the hot path, the cost of a disabled vs enabled tracer, and the exporter
// render times. The registry and tracer ride inside every instrumented loop
// (workflow engine, pool, object store), so their per-event cost must stay
// in the nanoseconds for the "speed never buys a different answer" story to
// also read "evidence never buys a slowdown".
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "support/metrics_registry.h"
#include "support/trace.h"

using namespace daspos;

namespace {

// One relaxed atomic add: the cost every instrumented event pays.
void BM_CounterIncrement(benchmark::State& state) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("bench_events_total");
  for (auto _ : state) {
    counter.Increment();
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_CounterIncrement);

// Name lookup on every event — the anti-pattern the stable handles avoid.
void BM_CounterLookupAndIncrement(benchmark::State& state) {
  MetricsRegistry registry;
  registry.GetCounter("bench_events_total");
  for (auto _ : state) {
    registry.GetCounter("bench_events_total").Increment();
  }
}
BENCHMARK(BM_CounterLookupAndIncrement);

// Bucket search + two atomics + CAS-loop sum.
void BM_HistogramObserve(benchmark::State& state) {
  MetricsRegistry registry;
  Histogram& histogram = registry.GetHistogram(
      "bench_wall_ms", Histogram::DefaultLatencyBucketsMs());
  double value = 0.1;
  for (auto _ : state) {
    histogram.Observe(value);
    value += 0.7;
    if (value > 6000.0) value = 0.1;
  }
  benchmark::DoNotOptimize(histogram.count());
}
BENCHMARK(BM_HistogramObserve);

// A span while the tracer is off: one relaxed load, no allocation.
void BM_SpanDisabled(benchmark::State& state) {
  Tracer::Global().Disable();
  for (auto _ : state) {
    Span span("bench:disabled", "bench");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_SpanDisabled);

// A recorded span: two clock reads plus an append to the thread buffer.
void BM_SpanEnabled(benchmark::State& state) {
  Tracer::Global().Enable();
  for (auto _ : state) {
    Span span("bench:enabled", "bench");
    benchmark::DoNotOptimize(&span);
  }
  Tracer::Global().Disable();
  Tracer::Global().Drain();  // do not let the buffer outlive the benchmark
}
BENCHMARK(BM_SpanEnabled);

// Recorded span with attributes — the shape step/archive spans have.
void BM_SpanWithAttributes(benchmark::State& state) {
  Tracer::Global().Enable();
  for (auto _ : state) {
    Span span("bench:attrs", "bench");
    span.AddAttribute("bytes", static_cast<uint64_t>(4096));
    span.AddAttribute("output", "derived");
  }
  Tracer::Global().Disable();
  Tracer::Global().Drain();
}
BENCHMARK(BM_SpanWithAttributes);

// Prometheus render over the full standard catalogue.
void BM_RenderPrometheus(benchmark::State& state) {
  MetricsRegistry registry;
  RegisterStandardMetrics(registry);
  registry.GetCounter(metric_names::kWorkflowStepsTotal).Increment(5);
  for (int i = 0; i < 64; ++i) {
    registry
        .GetHistogram(metric_names::kWorkflowStepWallMs,
                      Histogram::DefaultLatencyBucketsMs())
        .Observe(0.5 * i);
  }
  for (auto _ : state) {
    std::string text = registry.RenderPrometheus();
    benchmark::DoNotOptimize(text.data());
  }
}
BENCHMARK(BM_RenderPrometheus);

// Trace export at a realistic span count (a 5-step chain emits ~13 spans;
// scale to a journal-sized run).
void BM_TraceEventJson(benchmark::State& state) {
  std::vector<SpanEvent> spans(static_cast<size_t>(state.range(0)));
  for (size_t i = 0; i < spans.size(); ++i) {
    spans[i].name = "step:bench_" + std::to_string(i % 5);
    spans[i].category = "workflow";
    spans[i].id = i + 1;
    spans[i].parent_id = i > 0 ? (i / 2) + 1 : 0;
    spans[i].start_us = static_cast<double>(i) * 3.0;
    spans[i].duration_us = 2.0;
    spans[i].attributes = {{"output", "derived"},
                           {"bytes", std::to_string(4096 + i)}};
  }
  for (auto _ : state) {
    std::string json = TraceEventJson(spans);
    benchmark::DoNotOptimize(json.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(spans.size()));
}
BENCHMARK(BM_TraceEventJson)->Arg(13)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
